"""Reproduce every table and figure of the paper in one run.

Walks the experiment registry (Tables I-III, Figures 2-3, the multi-hop
study and the Section V.C/V.D/V.E analyses) and prints each reproduction
in the paper's layout.  This is the script behind EXPERIMENTS.md.

Run with::

    python examples/reproduce_paper.py            # full (several minutes)
    python examples/reproduce_paper.py --quick    # reduced simulation size
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.experiments import EXPERIMENTS, run_experiment

QUICK_OVERRIDES = {
    "table2": {"slots_per_point": 40_000},
    "table3": {"slots_per_point": 40_000},
    "fig2": {"n_points": 20},
    "fig3": {"n_points": 20},
    "multihop": {"n_nodes": 60, "n_snapshots": 2},
    "search": {"slots_per_probe": 20_000},
}

FULL_OVERRIDES = {
    "multihop": {"n_nodes": 100, "n_snapshots": 3},
}


def main(argv: list) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="smaller simulations (roughly a minute total)",
    )
    parser.add_argument(
        "--only",
        metavar="ID",
        choices=sorted(EXPERIMENTS),
        help="run a single experiment id",
    )
    args = parser.parse_args(argv)

    overrides = QUICK_OVERRIDES if args.quick else FULL_OVERRIDES
    ids = [args.only] if args.only else list(EXPERIMENTS)

    for experiment_id in ids:
        experiment = EXPERIMENTS[experiment_id]
        kwargs = overrides.get(experiment_id, {})
        started = time.perf_counter()
        result = run_experiment(experiment_id, **kwargs)
        elapsed = time.perf_counter() - started
        print("=" * 72)
        print(f"{experiment.paper_artifact} ({experiment_id}) - "
              f"{experiment.description} [{elapsed:.1f}s]")
        print("=" * 72)
        print(result.render())
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
