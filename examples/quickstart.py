"""Quickstart: the selfish MAC game in five minutes.

Builds the paper's single-hop game for a small network, computes the Nash
equilibrium family and its refinement, and plays a few stages of the
repeated game under TIT-FOR-TAT to watch heterogeneous contention windows
converge.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import (
    MACGame,
    RepeatedGameEngine,
    TitForTat,
    analyze_equilibria,
    refine_equilibria,
)


def main() -> None:
    # A saturated single-hop network of 5 selfish nodes, paper defaults
    # (Table I), basic access.
    game = MACGame(n_players=5)

    # ------------------------------------------------------------------
    # 1. Equilibrium analysis (Section V)
    # ------------------------------------------------------------------
    analysis = analyze_equilibria(game.n_players, game.params, game.times)
    print("=== Nash equilibrium analysis (n=5, basic access) ===")
    print(f"optimal transmission probability tau_c* = {analysis.tau_star:.5f}")
    print(f"efficient NE window W_c*               = {analysis.window_star}")
    print(f"break-even window W_c0                 = {analysis.window_breakeven}")
    print(f"symmetric NE family (Theorem 2)        = {analysis.n_equilibria} profiles")

    # ------------------------------------------------------------------
    # 2. NE refinement (Section V.B): only W_c* survives
    # ------------------------------------------------------------------
    report = refine_equilibria(game, analysis=analysis)
    print("\n=== Refinement ===")
    print(f"efficient NE after refinement          = {report.efficient_window}")
    print(
        "Pareto-optimal:",
        report.is_pareto_optimal(report.efficient_window),
        "| social-welfare-maximal:",
        report.maximizes_social_welfare(report.efficient_window),
    )

    # ------------------------------------------------------------------
    # 3. The repeated game under TFT (Section IV)
    # ------------------------------------------------------------------
    initial = [64, 100, 150, 220, 400]  # scattered selfish configurations
    engine = RepeatedGameEngine(
        game, [TitForTat() for _ in range(game.n_players)], initial
    )
    trace = engine.run(6)
    print("\n=== TFT dynamics ===")
    for record in trace.records:
        windows = ", ".join(f"{int(w):4d}" for w in record.windows)
        print(f"stage {record.stage}:  [{windows}]")
    print(f"converged at stage {trace.converged_at} "
          f"to the common window {int(trace.final_windows[0])}")

    # Per-stage payoff at the converged window vs at the efficient NE.
    converged = int(trace.final_windows[0])
    print("\n=== Payoffs (per-node utility rate, 1/us) ===")
    print(f"at converged window {converged}: "
          f"{game.symmetric_utility(converged):.3e}")
    print(f"at the efficient NE {analysis.window_star}: "
          f"{game.symmetric_utility(analysis.window_star):.3e}")
    print("-> selfish nodes have an incentive to coordinate upward to "
          "W_c* (Section V.C's search protocol does exactly that).")


if __name__ == "__main__":
    main()
