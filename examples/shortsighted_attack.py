"""One short-sighted station in a TIT-FOR-TAT population (Section V.D).

A network of honest, long-sighted TFT players operates at the efficient
NE.  One station stops caring about the future (small discount factor)
and undercuts the common window.  The script plays the scenario out stage
by stage and then sweeps the deviator's far-sightedness to show the
paper's dichotomy:

* a short-sighted deviator profits - for one stage - and then everyone,
  deviator included, is worse off forever;
* a long-sighted deviator's best move is not to deviate at all.

Run with::

    python examples/shortsighted_attack.py
"""

from __future__ import annotations

from repro import (
    MACGame,
    RepeatedGameEngine,
    ShortSightedStrategy,
    TitForTat,
    analyze_deviation,
    efficient_window,
)
from repro.game.deviation import optimal_deviation_window

N_STATIONS = 10
DEVIANT = 0


def main() -> None:
    game = MACGame(n_players=N_STATIONS)
    w_star = efficient_window(N_STATIONS, game.params, game.times)
    w_attack = max(2, w_star // 16)

    # ------------------------------------------------------------------
    # 1. Play it out: one deviator, nine TFT players
    # ------------------------------------------------------------------
    strategies = [ShortSightedStrategy(w_attack)] + [
        TitForTat() for _ in range(N_STATIONS - 1)
    ]
    engine = RepeatedGameEngine(game, strategies, [w_star] * N_STATIONS)
    trace = engine.run(5)
    print(f"=== n={N_STATIONS}, W_c*={w_star}, deviator plays {w_attack} ===")
    for record in trace.records:
        print(
            f"stage {record.stage}: windows "
            f"[{int(record.windows[0])}, {int(record.windows[1])} x"
            f"{N_STATIONS - 1}]  payoff(deviant) = "
            f"{record.stage_payoffs[DEVIANT]:.1f}  payoff(honest) = "
            f"{record.stage_payoffs[1]:.1f}"
        )
    print("-> the deviator's one-stage windfall comes straight out of the "
          "honest players' payoffs; one reaction stage later TFT has "
          "followed and everyone sits below the NE payoff forever.")

    # ------------------------------------------------------------------
    # 2. Does it pay? Depends on the discount factor.
    # ------------------------------------------------------------------
    print("\n=== Deviation gain versus far-sightedness ===")
    for discount in (0.05, 0.5, 0.9, 0.99, 0.9999):
        fixed = analyze_deviation(
            game, w_attack, discount=discount, reference_window=w_star
        )
        best = optimal_deviation_window(
            game, discount=discount, reference_window=w_star
        )
        verdict = "pays" if fixed.profitable else "does not pay"
        print(
            f"delta_s={discount:<7}: deviating to {w_attack} {verdict} "
            f"(gain {fixed.gain:+.1f}); best deviation window = "
            f"{best.deviation_window}"
        )
    print("-> as delta_s -> 1 the best 'deviation' converges to W_c* "
          "itself: long-sighted selfishness is self-policing, which is "
          "the paper's core claim.")


if __name__ == "__main__":
    main()
