"""TFT on measured contention windows - no observation oracle.

The paper's TFT assumes every node can observe its peers' CW values,
citing [Kyasanur & Vaidya 2003].  This example removes the assumption:
each stage actually runs the DCF simulator, every station estimates the
others' windows from what it overheard (attempt rates + collision
fractions invert the backoff chain in closed form), and the strategies
act on those *estimates*.

The script shows:

1. the estimator's accuracy against known windows;
2. empirical TFT: convergence to the minimum window, and the slow
   noise-driven drift that perfect-observation analysis hides;
3. empirical Generous TFT: the paper's tolerance parameters absorbing
   exactly that estimation noise.

Run with::

    python examples/measured_tft.py
"""

from __future__ import annotations

import numpy as np

from repro.detect import EmpiricalRepeatedGame, estimate_windows
from repro.game import GenerousTitForTat, MACGame, TitForTat
from repro.phy import default_parameters
from repro.sim import DcfSimulator

N_STATIONS = 5


def main() -> None:
    params = default_parameters()
    game = MACGame(n_players=N_STATIONS, params=params)

    # ------------------------------------------------------------------
    # 1. Estimator accuracy
    # ------------------------------------------------------------------
    true_windows = [32, 64, 128, 256, 512]
    result = DcfSimulator(true_windows, params, seed=11).run(200_000)
    estimates = estimate_windows(result, params.max_backoff_stage)
    print("=== CW estimation from promiscuous observation ===")
    for true, estimate in zip(true_windows, estimates):
        print(f"true W = {true:4d}   estimated = {estimate:7.1f} "
              f"({100 * abs(estimate - true) / true:.1f}% off)")

    # ------------------------------------------------------------------
    # 2. Empirical TFT
    # ------------------------------------------------------------------
    initial = [64, 100, 200, 80, 150]
    tft = EmpiricalRepeatedGame(
        game,
        [TitForTat() for _ in range(N_STATIONS)],
        initial,
        slots_per_stage=60_000,
        seed=1,
    )
    trace = tft.run(5)
    print("\n=== Empirical TFT (decisions on estimated windows) ===")
    for stage in trace.stages:
        windows = ", ".join(f"{int(w):4d}" for w in stage.windows)
        print(f"stage {stage.stage}: [{windows}]")
    print("-> converges to the minimum as the analysis predicts, but "
          "estimation noise nudges the common window a little each "
          "stage - plain TFT chases every underestimate.")

    # ------------------------------------------------------------------
    # 3. Empirical Generous TFT
    # ------------------------------------------------------------------
    gtft = EmpiricalRepeatedGame(
        game,
        [GenerousTitForTat(memory=3, tolerance=0.8)
         for _ in range(N_STATIONS)],
        [int(np.min(initial))] * N_STATIONS,
        slots_per_stage=60_000,
        seed=1,
    )
    gtft_trace = gtft.run(6)
    print("\n=== Empirical Generous TFT (r0=3, beta=0.8) ===")
    history = gtft_trace.window_history()
    print(f"window range over {history.shape[0]} stages: "
          f"{int(history.min())}..{int(history.max())}")
    print("-> the tolerance the paper introduces 'taking into account "
          "the various factors that influence the measurement' holds "
          "the common window rock steady under the same noise.")


if __name__ == "__main__":
    main()
