"""A saturated hotspot of selfish laptops: analysis vs simulation.

The scenario the paper's introduction motivates: a room of ``n`` saturated
stations with programmable wireless adapters.  Every station can tamper
with its contention window.  What happens?

The script:

1. computes the efficient NE window ``W_c*`` and compares the network at
   ``W_c*`` against the 802.11 default (``CW_min = 32``) - selfish but
   long-sighted play *improves* on the standard here, because the
   standard's window is far too aggressive for a crowded saturated room;
2. validates the analytical fixed point against the DCF simulator;
3. runs the Section V.C distributed search protocol with noisy,
   simulator-backed payoff measurements to find ``W_c*`` without knowing
   ``n``.

Run with::

    python examples/selfish_hotspot.py
"""

from __future__ import annotations

from repro import MACGame, efficient_window, solve_symmetric
from repro.experiments.search_protocol import simulator_measurement
from repro.game.search import run_search_protocol
from repro.sim import DcfSimulator

N_STATIONS = 20
IEEE_DEFAULT_CW = 32


def main() -> None:
    game = MACGame(n_players=N_STATIONS)
    params = game.params

    # ------------------------------------------------------------------
    # 1. Efficient NE vs the 802.11 default window
    # ------------------------------------------------------------------
    w_star = efficient_window(N_STATIONS, params, game.times)
    print(f"=== {N_STATIONS} saturated stations, basic access ===")
    for label, window in (
        (f"IEEE 802.11 default (CW={IEEE_DEFAULT_CW})", IEEE_DEFAULT_CW),
        (f"efficient NE (W_c*={w_star})", w_star),
    ):
        outcome = game.stage([window] * N_STATIONS)
        print(
            f"{label:36s} utility/node = {outcome.utilities[0]:.3e}/us, "
            f"throughput = {outcome.throughput:.3f}, "
            f"collision p = {outcome.collision[0]:.3f}"
        )
    print("-> long-sighted selfishness beats the standard in a crowded "
          "saturated room: fewer collisions, more payload time.")

    # ------------------------------------------------------------------
    # 2. Model vs simulator at the NE
    # ------------------------------------------------------------------
    analytic = solve_symmetric(w_star, N_STATIONS, params.max_backoff_stage)
    simulator = DcfSimulator([w_star] * N_STATIONS, params, seed=2024)
    measured = simulator.run(150_000)
    print("\n=== Fixed point vs simulation at W_c* ===")
    print(f"tau: analytic {analytic.tau:.5f}  simulated "
          f"{measured.tau.mean():.5f}")
    print(f"p:   analytic {analytic.collision:.4f}  simulated "
          f"{measured.collision.mean():.4f}")
    print(f"normalized throughput (simulated): {measured.throughput:.3f}")

    # ------------------------------------------------------------------
    # 3. Distributed search without knowing n (Section V.C)
    # ------------------------------------------------------------------
    measure = simulator_measurement(game, slots_per_probe=60_000, seed=7)
    outcome = run_search_protocol(game, start_window=64, measure=measure, step=8)
    print("\n=== Distributed search (noisy, simulator-backed) ===")
    probes = ", ".join(f"{w}" for w, _ in outcome.measurements)
    print(f"probed windows: {probes}")
    print(f"protocol found W = {outcome.window} "
          f"(analytic W_c* = {w_star}; the utility plateau around the "
          "optimum is flat, so nearby answers cost almost nothing)")
    found_u = game.symmetric_utility(outcome.window)
    best_u = game.symmetric_utility(w_star)
    print(f"payoff at found window = {100.0 * found_u / best_u:.2f}% "
          "of the optimum")


if __name__ == "__main__":
    main()
