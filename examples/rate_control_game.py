"""Selfish rate control on top of the settled CW game (Section IX).

The paper's conclusion proposes extending its framework to "other selfish
behaviors such as rate control by redefining the proper utility
function".  This example does exactly that: a saturated single-hop
network has converged (via TFT) to the efficient contention window; now
every station also picks its PHY bit-rate from an 802.11b-style ladder.

The script shows:

1. the *performance anomaly* as an externality - one slow station
   inflates everyone's slot time;
2. the selfish equilibrium of the rate game versus the social optimum
   (the "inefficient equilibria" of [Tan & Guttag 2005], which the paper
   cites) and the resulting price of anarchy;
3. how the tension disappears when rate costs no reliability.

Run with::

    python examples/rate_control_game.py
"""

from __future__ import annotations

from repro import efficient_window
from repro.game.rate_control import (
    RateControlGame,
    RateOption,
    default_rate_options,
)
from repro.phy import AccessMode, default_parameters, slot_times

N_STATIONS = 10


def main() -> None:
    params = default_parameters()
    times = slot_times(params, AccessMode.BASIC)
    w_star = efficient_window(N_STATIONS, params, times)
    game = RateControlGame(N_STATIONS, params, w_star)
    options = game.options

    # ------------------------------------------------------------------
    # 1. The performance anomaly
    # ------------------------------------------------------------------
    fast = len(options) - 1
    all_fast = game.expected_slot_us([fast] * N_STATIONS)
    one_slow = game.expected_slot_us([0] + [fast] * (N_STATIONS - 1))
    print(f"=== {N_STATIONS} stations at W_c*={w_star}, rate ladder "
          f"{[o.label for o in options]} ===")
    print(f"expected slot, everyone at {options[fast].label}: "
          f"{all_fast:.0f} us")
    print(f"expected slot, ONE station at {options[0].label}: "
          f"{one_slow:.0f} us  (+{100 * (one_slow / all_fast - 1):.0f}%)")
    print("-> the 802.11 performance anomaly: one slow station taxes "
          "every slot the channel grants it, and everyone pays.")

    # ------------------------------------------------------------------
    # 2. Selfish equilibrium vs social optimum
    # ------------------------------------------------------------------
    equilibrium = game.solve()
    print("\n=== Equilibrium analysis ===")
    print(f"selfish NE:      everyone at "
          f"{options[equilibrium.nash_profile[0]].label} "
          f"(welfare {equilibrium.nash_welfare:.3e})")
    print(f"social optimum:  everyone at "
          f"{options[equilibrium.social_profile[0]].label} "
          f"(welfare {equilibrium.social_welfare:.3e})")
    print(f"price of anarchy: {equilibrium.price_of_anarchy:.3f}")
    print("-> reliability gains are private but airtime costs are "
          "shared, so selfish stations under-shoot the social rate - "
          "unlike the CW game, where long-sighted TFT aligns selfish "
          "and social optima.")

    # ------------------------------------------------------------------
    # 3. Remove the tension, remove the inefficiency
    # ------------------------------------------------------------------
    flat = [
        RateOption(1e6, 0.99, "1 Mb/s"),
        RateOption(11e6, 0.99, "11 Mb/s"),
    ]
    tension_free = RateControlGame(
        N_STATIONS, params, w_star, options=flat
    ).solve()
    print("\n=== Control: a loss-free ladder ===")
    print(f"NE rate: {flat[tension_free.nash_profile[0]].label}, "
          f"price of anarchy {tension_free.price_of_anarchy:.3f}")
    print("-> with no private/shared trade-off the equilibrium is "
          "efficient, confirming the externality is what drives the "
          "anarchy above.")


if __name__ == "__main__":
    main()
