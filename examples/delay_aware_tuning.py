"""Tuning the NE for latency-sensitive traffic (Section VIII).

The paper's Discussion notes its utility ignores delay and that "more
factors need to be considered depending on the target application".
This example makes the remark quantitative and lands on a perhaps
surprising answer: in a saturated network the efficient NE is *already*
delay-efficient.

The script:

1. sweeps the mean access delay and its jitter against the common
   window, locating both minima relative to ``W_c*``;
2. prices jitter into the utility at several sensitivities ``lambda``
   and reports the delay-aware NE trade-off curve;
3. validates the mean-delay model against the simulator's measured
   inter-delivery times.

Run with::

    python examples/delay_aware_tuning.py
"""

from __future__ import annotations

import numpy as np

from repro import MACGame, efficient_window
from repro.bianchi.delay import access_delay_jitter, expected_access_delay
from repro.game.delay_aware import delay_tradeoff_curve
from repro.sim import DcfSimulator

N_STATIONS = 10


def main() -> None:
    game = MACGame(n_players=N_STATIONS)
    params, times = game.params, game.times
    star = efficient_window(N_STATIONS, params, times)

    # ------------------------------------------------------------------
    # 1. Where do delay and jitter bottom out?
    # ------------------------------------------------------------------
    print(f"=== n={N_STATIONS}, W_c*={star}: delay landscape ===")
    print(f"{'W':>6} {'mean delay (ms)':>16} {'jitter (ms)':>12}")
    for window in (star // 4, star // 2, star, 2 * star, 8 * star, 24 * star):
        delay = expected_access_delay(window, N_STATIONS, params, times)
        jitter = access_delay_jitter(window, N_STATIONS, params, times)
        marker = "  <- W_c*" if window == star else ""
        print(
            f"{window:>6} {delay.delay_us / 1000:>16.1f} "
            f"{jitter / 1000:>12.1f}{marker}"
        )
    print("-> the mean bottoms out on the W_c* plateau (throughput and "
          "delay are co-optimised in saturation); the jitter minimum "
          "sits slightly above it.")

    # ------------------------------------------------------------------
    # 2. Pricing jitter into the game
    # ------------------------------------------------------------------
    weights = [0.0, 0.5, 2.0]
    curve = delay_tradeoff_curve(game, weights)
    print("\n=== Delay-aware NE trade-off ===")
    for weight in weights:
        analysis = curve[weight]
        print(
            f"lambda={weight:<4}: W*(lambda)={analysis.window_star:<4} "
            f"jitter={analysis.jitter_us / 1000:6.1f} ms  "
            f"throughput utility={analysis.throughput_utility:.4e}"
        )
    base = curve[0.0].throughput_utility
    cost = 1.0 - curve[2.0].throughput_utility / base
    print(f"-> even a strong jitter price moves the NE modestly and "
          f"costs only {100 * cost:.2f}% throughput: the paper's NE is "
          "robust to delay sensitivity within the saturated model.")

    # ------------------------------------------------------------------
    # 3. Model vs simulator
    # ------------------------------------------------------------------
    predicted = expected_access_delay(star, N_STATIONS, params, times)
    result = DcfSimulator([star] * N_STATIONS, params, seed=31).run(200_000)
    delivered = result.counters.per_node[0].successes
    measured = result.counters.elapsed_us / delivered
    print("\n=== Validation ===")
    print(f"predicted per-packet access delay: "
          f"{predicted.delay_us / 1000:.1f} ms")
    print(f"measured inter-delivery time (sim): {measured / 1000:.1f} ms "
          f"({100 * abs(measured - predicted.delay_us) / measured:.1f}% apart)")


if __name__ == "__main__":
    main()
