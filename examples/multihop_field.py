"""Selfish MAC in a mobile multi-hop field (Section VI / VII.B).

The paper's multi-hop scenario: 100 nodes with 250 m range roam a
1000 m x 1000 m field under random waypoint mobility.  Every node opens
with the efficient window of its *local* single-hop game and follows TFT;
the network floods down to the global minimum window, which Theorem 3
shows is a Nash equilibrium - not globally optimal, but quasi-optimal.

The script takes mobility snapshots and, per snapshot:

* solves the local games and the TFT flood (reporting the converged
  window and how many stages the flood took);
* verifies the Theorem 3 no-deviation property;
* measures quasi-optimality (per-node and global payoff retention);
* cross-checks the hidden-node degradation's CW-independence with the
  spatial simulator on the first snapshot.

Run with::

    python examples/multihop_field.py
"""

from __future__ import annotations

import numpy as np

from repro.experiments.multihop_quasi import hidden_independence
from repro.multihop import MultihopGame, RandomWaypointModel
from repro.phy import default_parameters

N_NODES = 60          # scaled down from 100 to keep the demo snappy
TX_RANGE = 250.0
N_SNAPSHOTS = 2


def main() -> None:
    params = default_parameters()
    model = RandomWaypointModel(
        N_NODES, max_speed=5.0, rng=np.random.default_rng(99)
    )

    first_topology = None
    print(f"=== {N_NODES} mobile nodes, {TX_RANGE:.0f} m range, "
          "random waypoint <= 5 m/s, RTS/CTS ===")
    for index, topology in enumerate(
        model.snapshots(TX_RANGE, interval=100.0, count=N_SNAPSHOTS)
    ):
        if first_topology is None:
            first_topology = topology
        game = MultihopGame(topology, params)
        equilibrium = game.solve()
        quasi = game.quasi_optimality(equilibrium)
        stable = game.check_no_profitable_deviation(equilibrium)
        degrees = topology.degrees()
        print(f"\n--- snapshot {index} "
              f"(degrees {degrees.min()}..{degrees.max()}, "
              f"mean {degrees.mean():.1f}) ---")
        print(f"local efficient windows: "
              f"{equilibrium.local.windows.min()}"
              f"..{equilibrium.local.windows.max()}")
        print(f"TFT flood converged to W_m = {equilibrium.converged_window} "
              f"in {equilibrium.convergence_stages} stages")
        print(f"Theorem 3 no-deviation check: "
              f"{'passed' if stable else 'FAILED'}")
        print(f"per-node payoff retention at the NE: worst "
              f"{quasi.worst_node_fraction:.3f} "
              "(paper reports >= 0.96)")
        print(f"global payoff retention: {quasi.global_fraction:.3f} "
              "(paper reports ~0.97)")

    # ------------------------------------------------------------------
    # The Section VI key approximation, checked mechanistically.
    # ------------------------------------------------------------------
    windows = [32, 64, 128, 256]
    degradation = hidden_independence(
        first_topology, windows, params=params, n_slots=30_000
    )
    print("\n=== Hidden-node degradation vs common CW "
          "(spatial simulator) ===")
    for window, value in zip(windows, degradation):
        print(f"  W = {window:4d}: mean hidden-loss fraction = {value:.4f}")
    spread = degradation.max() - degradation.min()
    print(f"-> varies by only {spread:.3f} absolute across an 8x window "
          "range (the sender-side collision probability varies far "
          "more): the paper's approximation that p_hn is insensitive "
          "to CW holds for windows that are not too small.")


if __name__ == "__main__":
    main()
