"""CI guard: a real ``repro serve`` process must coalesce and cache.

Boots the CLI server as a subprocess on an ephemeral port against a
fresh store, then drives it from client threads the way a deployment
would:

* a *cold* wave of concurrent requests - distinct documents plus a
  burst of identical ones, so the identical burst must coalesce onto a
  single solve;
* a *warm* wave repeating the same documents, which must be served from
  the store cache.

Asserts via ``GET /stats`` that cache hits and coalesced requests are
both non-zero, and that the warm wave triggered no further solves (see
docs/serving.md).
"""

from __future__ import annotations

import subprocess
import sys
import tempfile
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

from repro.errors import ServeError
from repro.serve import ServeClient

PORT = 8351
DISTINCT = [{"kind": "equilibrium", "params": {"n_nodes": n}} for n in (5, 9)]
IDENTICAL = [{"kind": "equilibrium", "params": {"n_nodes": 14}}] * 6
WAVE = DISTINCT + IDENTICAL


def wait_until_healthy(client: ServeClient, deadline_s: float = 30.0) -> None:
    deadline = time.monotonic() + deadline_s
    while True:
        try:
            if client.health() == {"ok": True}:
                return
        except ServeError:
            if time.monotonic() >= deadline:
                raise
            time.sleep(0.2)


def fire_wave(documents) -> None:
    def one(document):
        with ServeClient("127.0.0.1", PORT) as client:
            response = client.solve(document["kind"], document["params"])
            assert response["result"], response
            return response

    with ThreadPoolExecutor(max_workers=len(documents)) as pool:
        responses = list(pool.map(one, documents))
    digests = {r["digest"] for r in responses}
    assert len(digests) == len(DISTINCT) + 1, digests


def main() -> int:
    with tempfile.TemporaryDirectory() as tmp:
        server = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro.cli",
                "serve",
                "--port",
                str(PORT),
                "--store",
                str(Path(tmp) / "store"),
            ]
        )
        try:
            with ServeClient("127.0.0.1", PORT) as client:
                wait_until_healthy(client)
                fire_wave(WAVE)  # cold: everything solves or coalesces
                cold = client.stats()
                fire_wave(WAVE)  # warm: everything is a store hit
                warm = client.stats()
        finally:
            server.terminate()
            server.wait(timeout=30)

    assert cold["solves"] >= len(DISTINCT), cold
    assert cold["coalesced"] + cold["cache_hits"] >= len(IDENTICAL) - 1, cold
    assert warm["solves"] == cold["solves"], (cold, warm)
    assert warm["cache_hits"] > cold["cache_hits"] >= 0, (cold, warm)
    assert warm["errors"] == 0, warm

    print(
        "serve smoke OK: "
        f"{warm['requests']} requests, {warm['solves']} solves, "
        f"{warm['coalesced']} coalesced, {warm['cache_hits']} cache hits"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
