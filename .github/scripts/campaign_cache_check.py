"""CI guard: the campaign store must actually serve cache hits.

Runs a tiny two-point campaign twice into a fresh store and asserts the
second pass executes zero tasks (every digest is a store hit), then
re-executes into a second store and asserts the payload hashes are
bit-identical - the end-to-end property the store + campaign subsystem
promises (see docs/store_and_campaigns.md).
"""

from __future__ import annotations

import sys
import tempfile
from pathlib import Path

from repro.campaign import expand_tasks, run_campaign, spec_from_dict
from repro.store import ResultStore

SPEC = {
    "name": "ci-cache-check",
    "experiment": "convergence",
    "params": {"n_players": 3, "n_stages": 2},
    "grid": {"seed": [1, 2]},
    "jobs": 1,
}


def main() -> int:
    spec = spec_from_dict(SPEC)
    with tempfile.TemporaryDirectory() as tmp:
        store = ResultStore(Path(tmp) / "store")
        first = run_campaign(spec, store=store)
        assert first.executed == 2 and first.complete, first.render()

        second = run_campaign(spec, store=store)
        assert second.executed == 0, second.render()
        assert second.cached == 2, second.render()

        digests = [task.digest for task in expand_tasks(spec)]
        hashes = [store.verify(digest).result_sha256 for digest in digests]

        rerun_store = ResultStore(Path(tmp) / "rerun")
        rerun = run_campaign(spec, store=rerun_store)
        assert rerun.executed == 2, rerun.render()
        rerun_hashes = [
            rerun_store.verify(digest).result_sha256 for digest in digests
        ]
        assert rerun_hashes == hashes, (hashes, rerun_hashes)

    print("campaign cache check OK: second run served entirely from the "
          "store, payloads bit-identical across independent runs")
    return 0


if __name__ == "__main__":
    sys.exit(main())
