"""Benchmark + regeneration of the TFT/GTFT convergence dynamics study."""

from __future__ import annotations

from repro.experiments import convergence


def test_bench_convergence(benchmark, archive, params):
    result = benchmark.pedantic(
        lambda: convergence.run(params=params, n_players=8, n_stages=12),
        rounds=1,
        iterations=1,
    )
    tft, gtft, deviator = result.runs
    assert tft.common and tft.converged_at == 1
    assert gtft.common
    assert deviator.common
    archive("convergence", result.render())
