"""Benches for the paper's proposed extensions (Sections VIII-IX).

* the delay-aware NE trade-off curve (Section VIII's "more factors");
* the selfish rate-control game (Section IX's proposed extension);
* the empirical (measured-CW) TFT loop closing the [Kyasanur & Vaidya]
  observation assumption.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.detect import EmpiricalRepeatedGame
from repro.experiments.reporting import format_table
from repro.game import GenerousTitForTat, MACGame, TitForTat
from repro.game.delay_aware import delay_tradeoff_curve
from repro.game.equilibrium import efficient_window
from repro.game.rate_control import RateControlGame
from repro.phy.parameters import AccessMode
from repro.phy.timing import slot_times


def test_bench_delay_tradeoff(benchmark, archive, params):
    game = MACGame(n_players=10, params=params)
    weights = [0.0, 0.5, 2.0]
    curve = benchmark.pedantic(
        lambda: delay_tradeoff_curve(game, weights),
        rounds=1,
        iterations=1,
    )
    windows = [curve[w].window_star for w in weights]
    assert windows == sorted(windows)
    # The robustness finding: throughput cost stays under 1%.
    base = curve[0.0].throughput_utility
    assert curve[2.0].throughput_utility >= base * 0.99
    rows = [
        [
            weight,
            curve[weight].window_star,
            curve[weight].mean_delay_us / 1000.0,
            curve[weight].jitter_us / 1000.0,
            curve[weight].throughput_utility,
        ]
        for weight in weights
    ]
    archive(
        "extension_delay_tradeoff",
        format_table(
            ["lambda", "Wc*(lambda)", "mean delay (ms)", "jitter (ms)",
             "throughput utility"],
            rows,
            title="Extension: delay-aware NE (Section VIII)",
        ),
    )


def test_bench_rate_control(benchmark, archive, params):
    times = slot_times(params, AccessMode.BASIC)
    star = efficient_window(10, params, times)
    game = RateControlGame(10, params, star)
    equilibrium = benchmark.pedantic(game.solve, rounds=1, iterations=1)
    assert game.is_nash(equilibrium.nash_profile)
    assert equilibrium.price_of_anarchy > 1.0
    assert equilibrium.nash_profile[0] <= equilibrium.social_profile[0]
    options = game.options
    rows = [
        ["selfish NE", options[equilibrium.nash_profile[0]].label,
         equilibrium.nash_welfare],
        ["social optimum", options[equilibrium.social_profile[0]].label,
         equilibrium.social_welfare],
        ["price of anarchy", f"{equilibrium.price_of_anarchy:.3f}", ""],
    ]
    archive(
        "extension_rate_control",
        format_table(
            ["profile", "rate", "welfare"],
            rows,
            title="Extension: selfish rate control (Section IX)",
        ),
    )


def test_bench_empirical_tft(benchmark, archive, params):
    game = MACGame(n_players=5, params=params)

    def run_both():
        tft = EmpiricalRepeatedGame(
            game,
            [TitForTat() for _ in range(5)],
            [64, 100, 200, 80, 150],
            slots_per_stage=50_000,
            seed=1,
        ).run(4)
        gtft = EmpiricalRepeatedGame(
            game,
            [GenerousTitForTat(memory=3, tolerance=0.8) for _ in range(5)],
            [64] * 5,
            slots_per_stage=50_000,
            seed=1,
        ).run(4)
        return tft, gtft

    tft_trace, gtft_trace = benchmark.pedantic(
        run_both, rounds=1, iterations=1
    )
    assert np.all(np.abs(tft_trace.final_windows - 64) <= 8)
    assert gtft_trace.final_windows.tolist() == [64.0] * 5
    rows = [
        ["empirical TFT", str([int(w) for w in tft_trace.final_windows])],
        ["empirical GTFT", str([int(w) for w in gtft_trace.final_windows])],
    ]
    archive(
        "extension_empirical_tft",
        format_table(
            ["engine", "final windows (start min = 64)"],
            rows,
            title="Extension: TFT on measured contention windows",
        ),
    )
