"""Serving-layer benchmark: cache speedup, coalescing, micro-batching.

Drives :func:`repro.serve.bench.run_benchmark` - a real TCP load
generator against an in-process server - and writes the measurements to
``BENCH_serve.json`` at the repository root so CI can track serving
regressions alongside the kernel benchmarks.

Assertions:

* the warm (cache-served) pass is at least ``10x`` faster than the cold
  pass at p50 in a full run (the ISSUE's acceptance floor); smoke runs
  on shared CI boxes only require ``2x``;
* the coalesce probe's N identical concurrent requests trigger exactly
  **one** solve - every other request either coalesces onto it or hits
  the cache after its commit;
* the batch probe's N distinct ``fixed_point`` requests fold into fewer
  batched solver calls than requests, and every request is answered.

Set ``REPRO_BENCH_SMOKE=1`` (CI) to shrink concurrency levels and probe
sizes; the JSON artifact is still produced.
"""

from __future__ import annotations

import os
from pathlib import Path

from repro.serve.bench import render_report, run_benchmark

REPO_ROOT = Path(__file__).resolve().parent.parent
RESULT_PATH = REPO_ROOT / "BENCH_serve.json"

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")
#: Full runs demand the ISSUE's 10x warm/cold p50 ratio; smoke runs
#: keep a 2x floor so a broken cache still fails fast in CI.
MIN_WARM_SPEEDUP = 2.0 if SMOKE else 10.0


def test_serve_benchmark():
    report = run_benchmark(output=RESULT_PATH, smoke=SMOKE)
    print(f"\n{render_report(report)}\n[written to {RESULT_PATH}]")

    assert report["schema"] == "repro.bench.serve/1"

    for level in report["levels"]:
        assert level["cold"]["requests"] == level["warm"]["requests"]
        assert level["warm_speedup_p50"] >= MIN_WARM_SPEEDUP, (
            f"warm pass at concurrency {level['concurrency']} only "
            f"{level['warm_speedup_p50']:.1f}x faster than cold "
            f"(need {MIN_WARM_SPEEDUP:.0f}x)"
        )

    coalesce = report["coalesce"]
    assert coalesce["solves"] == 1
    assert coalesce["coalesced"] + coalesce["cache_hits"] == (
        coalesce["requests"] - 1
    )

    batch = report["batch"]
    assert batch["batched_requests"] == batch["requests"]
    assert 1 <= batch["solver_calls"] < batch["requests"]
    assert batch["solver_calls"] == batch["batches"]
