"""Benchmark + regeneration of the Section V.D short-sighted study.

Sweeps the deviator's discount factor; checks the paper's dichotomy
(myopic deviators profit with aggressive windows, patient ones conform)
and the induced network degradation.
"""

from __future__ import annotations

import pytest

from repro.experiments import shortsighted


def test_bench_shortsighted(benchmark, archive, params):
    result = benchmark.pedantic(
        lambda: shortsighted.run(params=params, n_players=10),
        rounds=1,
        iterations=1,
    )
    rows = {row.discount: row for row in result.rows}
    assert rows[0.01].best_window < result.reference_window // 4
    assert rows[0.01].gain > 0
    assert rows[0.9999].best_window == result.reference_window
    assert rows[0.9999].degradation == pytest.approx(0.0, abs=1e-9)
    # Best deviation window grows with far-sightedness.
    windows = [rows[d].best_window for d in sorted(rows)]
    assert windows == sorted(windows)
    archive("shortsighted", result.render())
