"""Micro-benchmarks of the library's hot paths.

These are throughput benchmarks in the conventional pytest-benchmark
sense (repeated timing), covering the operations every experiment leans
on: the symmetric and heterogeneous fixed points, the efficient-window
computation, one simulator segment and one stage of the repeated game.
"""

from __future__ import annotations

from repro.bianchi.fixedpoint import solve_heterogeneous, solve_symmetric
from repro.game.definition import MACGame
from repro.game.equilibrium import analyze_equilibria, efficient_window
from repro.sim.engine import DcfSimulator


def test_bench_symmetric_fixed_point(benchmark, params):
    result = benchmark(
        solve_symmetric, 335, 20, params.max_backoff_stage
    )
    assert 0 < result.tau < 1


def test_bench_heterogeneous_fixed_point(benchmark, params):
    windows = [16, 32, 64, 128, 256, 512, 1024, 2048]
    result = benchmark(
        solve_heterogeneous, windows, params.max_backoff_stage
    )
    assert result.residual < 1e-8


def test_bench_efficient_window(benchmark, params, basic_times=None):
    from repro.phy.timing import slot_times
    from repro.phy.parameters import AccessMode

    times = slot_times(params, AccessMode.BASIC)
    result = benchmark(efficient_window, 20, params, times)
    assert result == 335


def test_bench_equilibrium_analysis(benchmark, params):
    from repro.phy.timing import slot_times
    from repro.phy.parameters import AccessMode

    times = slot_times(params, AccessMode.BASIC)
    result = benchmark(analyze_equilibria, 10, params, times)
    assert result.window_star > 0


def test_bench_simulator_segment(benchmark, params):
    def run_segment():
        return DcfSimulator([78] * 5, params, seed=1).run(20_000)

    result = benchmark(run_segment)
    assert result.counters.total_slots >= 20_000


def test_bench_stage_solve(benchmark, params):
    game = MACGame(n_players=10, params=params)
    profile = [40, 60, 80, 100, 120, 140, 160, 180, 200, 220]
    result = benchmark(game.stage, profile)
    assert result.utilities.shape == (10,)
