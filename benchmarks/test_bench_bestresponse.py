"""Benchmark + regeneration of the myopic best-response collapse.

The Section VIII reconciliation with [Cagalj et al. 2005]: the same
model with stage-myopic best responders races to the bottom of the
strategy space, while the TFT population holds the efficient NE.
"""

from __future__ import annotations

from repro.experiments import bestresponse


def test_bench_bestresponse(benchmark, archive, params):
    result = benchmark.pedantic(
        lambda: bestresponse.run(params=params, n_players=6, n_stages=6),
        rounds=1,
        iterations=1,
    )
    # The myopic population undercuts immediately and welfare drops;
    # the TFT population's welfare never moves.
    assert result.myopic_windows[0] == result.initial_window
    assert result.myopic_windows[-1] < result.initial_window / 10
    assert result.welfare_loss > 0.2
    assert all(
        abs(w - result.tft_welfare[0]) < 1e-6 for w in result.tft_welfare
    )
    archive("bestresponse", result.render())
