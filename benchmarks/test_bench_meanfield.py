"""Mean-field vs exact per-node fixed point at population scale.

The exact batched solver couples every node to every other node: each
sweep is O(n) per instance and the whole population must be
materialised per lane.  The mean-field solver collapses exchangeable
nodes into K *types* - O(K) per sweep whatever the population - and is
exact (not approximate) for integer counts.  This benchmark times both
engines on the same K-type mixture across population sizes
``10^3 .. 10^6`` and writes ``BENCH_meanfield.json`` at the repository
root, mirroring ``BENCH_fixedpoint.json``.

Two contracts are asserted alongside the timings:

* **agreement** - mean-field tau matches the exact per-node solver
  within 1e-9 on a down-sampled population (measured ~1e-13);
* **speedup** - at the largest population the mean-field engine is at
  least 100x the exact engine per solve.

Set ``REPRO_BENCH_SMOKE=1`` (CI) to stop the scan at ``10^5`` nodes;
the JSON is still produced and the same 100x floor is asserted at the
reduced scale.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np

from repro.bianchi.batched import solve_heterogeneous_batch
from repro.bianchi.meanfield import expand_types, solve_mean_field_batch

REPO_ROOT = Path(__file__).resolve().parent.parent
RESULT_PATH = REPO_ROOT / "BENCH_meanfield.json"

MAX_STAGE = 5

#: K = 8 contention-window types and their population shares.
TYPE_WINDOWS = np.array(
    [16.0, 32.0, 64.0, 128.0, 256.0, 512.0, 1024.0, 2048.0]
)
TYPE_SHARES = np.array([0.30, 0.25, 0.15, 0.10, 0.08, 0.06, 0.04, 0.02])

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")
POPULATIONS = (
    (1_000, 10_000, 100_000)
    if SMOKE
    else (1_000, 10_000, 100_000, 1_000_000)
)
#: Populations small enough to expand for the 1e-9 agreement check.
AGREEMENT_POPULATIONS = (200,) if SMOKE else (200, 2_000)
#: Exact-solver repetitions per population (amortise timer noise).
EXACT_REPEATS = 2 if SMOKE else 3
MEANFIELD_REPEATS = 50
#: Mean-field lanes per call: the engine's production shape.  The serve
#: micro-batcher, campaign sweeps and the replicator loop all hand the
#: solver a ``(B, K)`` stack, so per-solve throughput is measured on a
#: small batch; the solo ``B = 1`` rate is recorded alongside.  The
#: exact engine is timed at ``B = 1`` because its lanes carry the whole
#: population (8 lanes of 10^6 nodes would not fit in memory - which is
#: the point of the mean-field reduction).
MEANFIELD_LANES = 8
MIN_SPEEDUP = 100.0
MAX_TAU_DIFF = 1e-9
#: Keep the exact solver on the O(n)-per-sweep fixed-point/Anderson
#: path: its Newton fallback builds an (n, n) Jacobian, which at
#: n = 10^6 would be an 8 TB array.
EXACT_MAX_ITERATIONS = 500_000


def _type_counts(population: int) -> np.ndarray:
    """Integer per-type counts summing exactly to ``population``."""
    counts = np.floor(TYPE_SHARES * population).astype(int)
    counts[0] += population - int(counts.sum())
    return counts.astype(float)


def _time_exact(population: int) -> dict:
    per_node = expand_types(TYPE_WINDOWS, _type_counts(population))
    windows = per_node[None, :]
    solve_heterogeneous_batch(
        windows, MAX_STAGE, max_iterations=EXACT_MAX_ITERATIONS
    )  # warm-up
    started = time.perf_counter()
    for _ in range(EXACT_REPEATS):
        solution = solve_heterogeneous_batch(
            windows, MAX_STAGE, max_iterations=EXACT_MAX_ITERATIONS
        )
    elapsed = time.perf_counter() - started
    assert not solution.newton.any(), (
        "exact solver fell back to Newton; timings would not be O(n)"
    )
    return {
        "engine": "exact",
        "population": population,
        "repeats": EXACT_REPEATS,
        "elapsed_s": elapsed,
        "solves_per_sec": EXACT_REPEATS / elapsed,
        "iterations": int(solution.iterations[0]),
    }


def _time_meanfield(population: int) -> dict:
    solo_w = TYPE_WINDOWS[None, :]
    solo_n = _type_counts(population)[None, :]
    windows = np.repeat(solo_w, MEANFIELD_LANES, axis=0)
    counts = np.repeat(solo_n, MEANFIELD_LANES, axis=0)
    solve_mean_field_batch(windows, counts, MAX_STAGE)  # warm-up
    started = time.perf_counter()
    for _ in range(MEANFIELD_REPEATS):
        solution = solve_mean_field_batch(windows, counts, MAX_STAGE)
    elapsed = time.perf_counter() - started
    started_solo = time.perf_counter()
    for _ in range(MEANFIELD_REPEATS):
        solve_mean_field_batch(solo_w, solo_n, MAX_STAGE)
    elapsed_solo = time.perf_counter() - started_solo
    return {
        "engine": "mean-field",
        "population": population,
        "n_types": int(TYPE_WINDOWS.shape[0]),
        "lanes": MEANFIELD_LANES,
        "repeats": MEANFIELD_REPEATS,
        "elapsed_s": elapsed,
        "solves_per_sec": MEANFIELD_LANES * MEANFIELD_REPEATS / elapsed,
        "solo_solves_per_sec": MEANFIELD_REPEATS / elapsed_solo,
        "iterations": int(solution.iterations[0]),
        "newton": bool(solution.newton[0]),
    }


def _agreement(population: int) -> float:
    """Max |dtau| between mean-field and exact on an expandable n."""
    counts = _type_counts(population)
    mean_field = solve_mean_field_batch(
        TYPE_WINDOWS[None, :], counts[None, :], MAX_STAGE
    )
    per_node = expand_types(TYPE_WINDOWS, counts)
    exact = solve_heterogeneous_batch(per_node[None, :], MAX_STAGE)
    mean_field_per_node = np.repeat(
        mean_field.tau[0], counts.astype(int)
    )
    return float(np.max(np.abs(mean_field_per_node - exact.tau[0])))


def test_bench_meanfield_speedup():
    rows = []
    for population in POPULATIONS:
        exact = _time_exact(population)
        mean_field = _time_meanfield(population)
        rows.append(
            {
                "population": population,
                "exact": exact,
                "mean_field": mean_field,
                "speedup": (
                    mean_field["solves_per_sec"] / exact["solves_per_sec"]
                ),
            }
        )
    agreement = {
        str(population): _agreement(population)
        for population in AGREEMENT_POPULATIONS
    }
    top = rows[-1]
    payload = {
        "workload": {
            "type_windows": TYPE_WINDOWS.tolist(),
            "type_shares": TYPE_SHARES.tolist(),
            "max_stage": MAX_STAGE,
            "populations": list(POPULATIONS),
            "smoke": SMOKE,
        },
        "rows": rows,
        "agreement_max_tau_diff": agreement,
        "max_tau_diff_limit": MAX_TAU_DIFF,
        "top_population": top["population"],
        "top_speedup": top["speedup"],
        "min_speedup": MIN_SPEEDUP,
    }
    RESULT_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    lines = [
        f"n={row['population']:>9,}  exact "
        f"{row['exact']['solves_per_sec']:>10,.1f}/s  mean-field "
        f"{row['mean_field']['solves_per_sec']:>10,.1f}/s  "
        f"speedup {row['speedup']:>10,.1f}x"
        for row in rows
    ]
    worst_agreement = max(agreement.values())
    lines.append(
        f"agreement max |dtau| {worst_agreement:.2e}"
        f"  [written to {RESULT_PATH}]"
    )
    print("\n" + "\n".join(lines))
    assert worst_agreement <= MAX_TAU_DIFF, (
        f"mean-field drifted {worst_agreement:.2e} from the exact "
        f"per-node solver (limit {MAX_TAU_DIFF:.0e})"
    )
    assert top["speedup"] >= MIN_SPEEDUP, (
        f"mean-field only {top['speedup']:.1f}x the exact solver at "
        f"n={top['population']} (floor {MIN_SPEEDUP}x)"
    )
