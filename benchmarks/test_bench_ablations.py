"""Ablation benches for the design choices DESIGN.md calls out.

* sensitivity of ``W_c*`` to the max backoff stage ``m`` (unstated in the
  paper's Table I);
* keeping versus dropping the energy cost ``e`` in the optimisation (the
  paper's Lemma 3 uses ``g >> e``);
* GTFT tolerance ``(r0, beta)`` versus stability under observation noise;
* simulator measurement length versus the variance of the per-node
  optimum (the Var(W_c*) columns).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.reporting import format_table
from repro.game.definition import MACGame
from repro.game.equilibrium import efficient_window
from repro.game.repeated import RepeatedGameEngine
from repro.game.strategies import GenerousTitForTat
from repro.phy.parameters import AccessMode
from repro.phy.timing import slot_times
from repro.sim.adaptive import measure_per_node_optimum


def test_bench_ablation_max_stage(benchmark, archive, params):
    """W_c* is insensitive to m in basic mode, mildly sensitive in RTS."""

    def sweep():
        rows = []
        for m in (3, 5, 7):
            p = params.with_updates(max_backoff_stage=m)
            basic = efficient_window(
                20, p, slot_times(p, AccessMode.BASIC)
            )
            rts = efficient_window(
                20, p, slot_times(p, AccessMode.RTS_CTS)
            )
            rows.append([m, basic, rts])
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    basic_values = [row[1] for row in rows]
    rts_values = [row[2] for row in rows]
    # Basic: essentially insensitive; RTS/CTS: within ~25% of the m=5
    # value across the whole ladder sweep.
    assert max(basic_values) - min(basic_values) <= 2
    reference = rows[1][2]  # m = 5
    assert max(rts_values) - min(rts_values) <= 0.25 * reference
    archive(
        "ablation_max_stage",
        format_table(
            ["m", "Wc* basic (n=20)", "Wc* RTS/CTS (n=20)"],
            rows,
            title="Ablation: max backoff stage",
        ),
    )


def test_bench_ablation_cost_term(benchmark, archive, params):
    """Keeping e moves W_c* right along a plateau that is nearly flat."""

    def sweep():
        rows = []
        game = MACGame(n_players=20, params=params)
        for ignore in (True, False):
            star = efficient_window(
                20, params, game.times, ignore_cost=ignore
            )
            utility = game.symmetric_utility(star)
            rows.append(
                ["g >> e (paper)" if ignore else "exact", star, utility]
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    star_free, star_exact = rows[0][1], rows[1][1]
    assert star_exact >= star_free
    # Plateau: the two optima's (cost-inclusive) payoffs differ < 0.5%.
    assert rows[0][2] == pytest.approx(rows[1][2], rel=0.005)
    archive(
        "ablation_cost_term",
        format_table(
            ["optimisation", "Wc* (n=20, basic)", "payoff at Wc*"],
            rows,
            title="Ablation: energy-cost term in the NE computation",
        ),
    )


def test_bench_ablation_gtft_tolerance(benchmark, archive, params):
    """Stricter GTFT chases noise; generous settings stay put."""

    def sweep():
        rows = []
        game = MACGame(n_players=5, params=params)
        for memory, tolerance in [(1, 0.99), (2, 0.9), (3, 0.75)]:
            engine = RepeatedGameEngine(
                game,
                [GenerousTitForTat(memory=memory, tolerance=tolerance)] * 5,
                [200] * 5,
                observation_noise=8,
                rng=np.random.default_rng(42),
            )
            trace = engine.run(12)
            final_min = int(trace.window_history().min())
            rows.append([memory, tolerance, final_min])
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    # The most generous configuration must hold the initial window; the
    # strictest one reacts to noise at least as much.
    assert rows[-1][2] == 200
    assert rows[0][2] <= rows[-1][2]
    archive(
        "ablation_gtft_tolerance",
        format_table(
            ["memory r0", "tolerance beta", "lowest window reached"],
            rows,
            title="Ablation: GTFT tolerance under observation noise +-8",
        ),
    )


def test_bench_ablation_measurement_length(benchmark, archive, params):
    """Longer measurements shrink Var(W_c*), as in the paper's tables."""

    def sweep():
        rows = []
        for slots in (20_000, 160_000):
            measured = measure_per_node_optimum(
                5,
                params,
                AccessMode.BASIC,
                slots_per_point=slots,
                seed=9,
            )
            rows.append([slots, measured.mean, measured.variance])
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    short_var, long_var = rows[0][2], rows[1][2]
    assert long_var <= short_var
    archive(
        "ablation_measurement_length",
        format_table(
            ["slots per point", "mean Wc*", "Var(Wc*)"],
            rows,
            title="Ablation: measurement length vs Var(Wc*) (n=5, basic)",
        ),
    )
