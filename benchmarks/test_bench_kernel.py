"""Reference-vs-vectorized kernel throughput on the Table III workload.

Times both engines on the paper's hardest sweep point - ``n = 50`` nodes
at the RTS/CTS efficient window - and writes the measurements to
``BENCH_kernel.json`` at the repository root so CI and regression tooling
can track the speedup without parsing pytest output.

The vectorized engine is measured at the batch shape the Tables II/III
sweep actually uses (17 grid points x 4 replicas = 68 rows); its
advantage comes from amortising each virtual-slot event over the batch,
so single-row comparisons understate production speed.

Both engine records carry the compute backend they ran on (the session
default from :func:`repro.backends.resolve_backend`; the reference
engine is always the pure-python ground truth) and the run's peak
memory - Python-heap peak from ``tracemalloc`` on a separate untimed
pass, plus the process ``ru_maxrss`` high-water mark - so regressions
in allocation show up next to regressions in throughput.

Set ``REPRO_BENCH_SMOKE=1`` (CI) to shrink the slot budget; the JSON is
still produced and a relaxed speedup floor is asserted.
"""

from __future__ import annotations

import json
import os
import resource
import time
import tracemalloc
from pathlib import Path

from repro import obs
from repro.backends import resolve_backend
from repro.phy.parameters import AccessMode
from repro.sim.engine import DcfSimulator
from repro.sim.vectorized import run_batch

REPO_ROOT = Path(__file__).resolve().parent.parent
RESULT_PATH = REPO_ROOT / "BENCH_kernel.json"
OBS_PROFILE_PATH = REPO_ROOT / "BENCH_obs_profile.json"

N_NODES = 50
WINDOW = 116  # Table III RTS/CTS efficient window at n = 50
MODE = AccessMode.RTS_CTS
BATCH = 68  # 17 grid points x 4 replicas, the adaptive sweep's shape

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")
N_SLOTS = 6_000 if SMOKE else 50_000
MIN_SPEEDUP = 3.0 if SMOKE else 10.0


def _peak_rss_kb() -> int:
    """Process peak RSS in kB (``ru_maxrss`` is kB on Linux)."""
    return int(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)


def _traced(run) -> float:
    """Peak Python-heap MB of one untimed ``run()`` under tracemalloc."""
    tracemalloc.start()
    try:
        run()
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    return peak / 1e6


def _time_reference(params) -> dict:
    simulator = DcfSimulator([WINDOW] * N_NODES, params, MODE, seed=1)
    simulator.run(1_000)  # warm-up
    started = time.perf_counter()
    DcfSimulator([WINDOW] * N_NODES, params, MODE, seed=2).run(N_SLOTS)
    elapsed = time.perf_counter() - started
    peak_mb = _traced(
        lambda: DcfSimulator([WINDOW] * N_NODES, params, MODE, seed=2).run(
            N_SLOTS
        )
    )
    return {
        "engine": "reference",
        "backend": "reference",
        "batch": 1,
        "n_slots": N_SLOTS,
        "elapsed_s": elapsed,
        "slots_per_sec": N_SLOTS / elapsed,
        "peak_heap_mb": peak_mb,
        "peak_rss_kb": _peak_rss_kb(),
    }


def _time_vectorized(params) -> dict:
    backend = resolve_backend()
    windows = [[WINDOW] * N_NODES] * BATCH
    run_batch(windows, params, MODE, n_slots=500, seed=1)  # warm-up
    started = time.perf_counter()
    run_batch(windows, params, MODE, n_slots=N_SLOTS, seed=2)
    elapsed = time.perf_counter() - started
    peak_mb = _traced(
        lambda: run_batch(windows, params, MODE, n_slots=N_SLOTS, seed=2)
    )
    return {
        "engine": "vectorized",
        "backend": backend.name,
        "batch": BATCH,
        "n_slots": N_SLOTS,
        "elapsed_s": elapsed,
        "slots_per_sec": BATCH * N_SLOTS / elapsed,
        "peak_heap_mb": peak_mb,
        "peak_rss_kb": _peak_rss_kb(),
    }


def test_bench_kernel_speedup(params):
    reference = _time_reference(params)
    vectorized = _time_vectorized(params)
    speedup = (
        vectorized["slots_per_sec"] / reference["slots_per_sec"]
    )
    payload = {
        "workload": {
            "n_nodes": N_NODES,
            "window": WINDOW,
            "mode": MODE.name,
            "n_slots": N_SLOTS,
            "smoke": SMOKE,
        },
        "reference": reference,
        "vectorized": vectorized,
        "speedup": speedup,
        "min_speedup": MIN_SPEEDUP,
    }
    RESULT_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    print(
        f"\nreference  {reference['slots_per_sec']:>12,.0f} slots/s"
        f"  (peak heap {reference['peak_heap_mb']:.1f} MB)"
        f"\nvectorized {vectorized['slots_per_sec']:>12,.0f} slots/s"
        f" (batch {BATCH}, backend {vectorized['backend']},"
        f" peak heap {vectorized['peak_heap_mb']:.1f} MB)"
        f"\nspeedup    {speedup:.1f}x  [written to {RESULT_PATH}]"
    )
    assert speedup >= MIN_SPEEDUP, (
        f"vectorized kernel only {speedup:.1f}x the reference engine "
        f"(floor {MIN_SPEEDUP}x) on n={N_NODES} {MODE.name}"
    )


# One kernel run performs only a handful of disabled-instrumentation
# calls (a couple of ``enabled()`` checks); pricing 200 full
# inc/observe/span rounds is a ~100x over-budget, so the 2% bound holds
# with a wide margin whenever the null path is genuinely O(1).
NULL_OP_ROUNDS = 200
MAX_NULL_OVERHEAD = 0.02


def test_bench_null_recorder_overhead(params):
    """Disabled instrumentation must cost <2% of one kernel run."""
    assert obs.enabled() is False, "bench must run with the NullRecorder"
    windows = [[WINDOW] * N_NODES] * BATCH
    run_batch(windows, params, MODE, n_slots=500, seed=1)  # warm-up
    started = time.perf_counter()
    run_batch(windows, params, MODE, n_slots=N_SLOTS, seed=2)
    kernel_s = time.perf_counter() - started

    started = time.perf_counter()
    for _ in range(NULL_OP_ROUNDS):
        obs.inc("bench.noop")
        obs.observe("bench.noop", 1)
        with obs.span("bench.noop"):
            pass
    null_s = time.perf_counter() - started

    overhead = null_s / kernel_s
    print(
        f"\n{3 * NULL_OP_ROUNDS} null instrumentation calls: "
        f"{null_s * 1e3:.2f} ms = {overhead:.2%} of one "
        f"{kernel_s * 1e3:.0f} ms kernel run (bound {MAX_NULL_OVERHEAD:.0%})"
    )
    assert overhead < MAX_NULL_OVERHEAD, (
        f"null-recorder instrumentation costs {overhead:.2%} of a kernel "
        f"run (bound {MAX_NULL_OVERHEAD:.0%})"
    )


def test_bench_obs_profile_artifact(params):
    """Profile the bench workload and write the run-profile artifact."""
    recorder = obs.MemoryRecorder()
    with obs.use_recorder(recorder):
        with obs.span("bench.kernel", smoke=SMOKE):
            run_batch(
                [[WINDOW] * N_NODES] * BATCH,
                params,
                MODE,
                n_slots=N_SLOTS,
                seed=2,
            )
    profile = obs.build_profile(
        recorder.events,
        meta={"workload": "BENCH_kernel", "smoke": SMOKE},
    )
    OBS_PROFILE_PATH.write_text(
        json.dumps(profile, indent=2, sort_keys=True) + "\n"
    )
    counters = profile["counters"]
    backend = resolve_backend().name
    assert any(key.startswith("sim.slots|") for key in counters)
    assert counters[f"sim.runs|backend={backend},engine=vectorized"] == BATCH
    print(f"\nobs profile {profile['digest']} written to {OBS_PROFILE_PATH}")
