"""Reference-vs-vectorized kernel throughput on the Table III workload.

Times both engines on the paper's hardest sweep point - ``n = 50`` nodes
at the RTS/CTS efficient window - and writes the measurements to
``BENCH_kernel.json`` at the repository root so CI and regression tooling
can track the speedup without parsing pytest output.

The vectorized engine is measured at the batch shape the Tables II/III
sweep actually uses (17 grid points x 4 replicas = 68 rows); its
advantage comes from amortising each virtual-slot event over the batch,
so single-row comparisons understate production speed.

Set ``REPRO_BENCH_SMOKE=1`` (CI) to shrink the slot budget; the JSON is
still produced and a relaxed speedup floor is asserted.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from repro.phy.parameters import AccessMode
from repro.sim.engine import DcfSimulator
from repro.sim.vectorized import run_batch

REPO_ROOT = Path(__file__).resolve().parent.parent
RESULT_PATH = REPO_ROOT / "BENCH_kernel.json"

N_NODES = 50
WINDOW = 116  # Table III RTS/CTS efficient window at n = 50
MODE = AccessMode.RTS_CTS
BATCH = 68  # 17 grid points x 4 replicas, the adaptive sweep's shape

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")
N_SLOTS = 6_000 if SMOKE else 50_000
MIN_SPEEDUP = 3.0 if SMOKE else 10.0


def _time_reference(params) -> dict:
    simulator = DcfSimulator([WINDOW] * N_NODES, params, MODE, seed=1)
    simulator.run(1_000)  # warm-up
    started = time.perf_counter()
    DcfSimulator([WINDOW] * N_NODES, params, MODE, seed=2).run(N_SLOTS)
    elapsed = time.perf_counter() - started
    return {
        "engine": "reference",
        "batch": 1,
        "n_slots": N_SLOTS,
        "elapsed_s": elapsed,
        "slots_per_sec": N_SLOTS / elapsed,
    }


def _time_vectorized(params) -> dict:
    windows = [[WINDOW] * N_NODES] * BATCH
    run_batch(windows, params, MODE, n_slots=500, seed=1)  # warm-up
    started = time.perf_counter()
    run_batch(windows, params, MODE, n_slots=N_SLOTS, seed=2)
    elapsed = time.perf_counter() - started
    return {
        "engine": "vectorized",
        "batch": BATCH,
        "n_slots": N_SLOTS,
        "elapsed_s": elapsed,
        "slots_per_sec": BATCH * N_SLOTS / elapsed,
    }


def test_bench_kernel_speedup(params):
    reference = _time_reference(params)
    vectorized = _time_vectorized(params)
    speedup = (
        vectorized["slots_per_sec"] / reference["slots_per_sec"]
    )
    payload = {
        "workload": {
            "n_nodes": N_NODES,
            "window": WINDOW,
            "mode": MODE.name,
            "n_slots": N_SLOTS,
            "smoke": SMOKE,
        },
        "reference": reference,
        "vectorized": vectorized,
        "speedup": speedup,
        "min_speedup": MIN_SPEEDUP,
    }
    RESULT_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    print(
        f"\nreference  {reference['slots_per_sec']:>12,.0f} slots/s"
        f"\nvectorized {vectorized['slots_per_sec']:>12,.0f} slots/s"
        f" (batch {BATCH})"
        f"\nspeedup    {speedup:.1f}x  [written to {RESULT_PATH}]"
    )
    assert speedup >= MIN_SPEEDUP, (
        f"vectorized kernel only {speedup:.1f}x the reference engine "
        f"(floor {MIN_SPEEDUP}x) on n={N_NODES} {MODE.name}"
    )
