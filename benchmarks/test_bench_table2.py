"""Benchmark + regeneration of Table II (efficient NE, basic access).

Regenerates the analytic and simulated columns for ``n in {5, 20, 50}``
and checks the paper's shape: analytic values within a few percent of the
published ones and simulated means on the plateau.
"""

from __future__ import annotations

import pytest

from repro.experiments import table2
from repro.experiments.table2 import PAPER_BASIC

SLOTS = 120_000


def test_bench_table2(benchmark, archive, params):
    result = benchmark.pedantic(
        lambda: table2.run(params=params, slots_per_point=SLOTS, seed=1),
        rounds=1,
        iterations=1,
    )
    by_n = {row.n_nodes: row for row in result.rows}
    for n, paper_value in PAPER_BASIC.items():
        row = by_n[n]
        assert row.analytic_window == pytest.approx(paper_value, rel=0.05)
        assert row.simulated_mean == pytest.approx(
            row.analytic_window, rel=0.4
        )
    # Monotone in n, as in the paper.
    values = [by_n[n].analytic_window for n in sorted(by_n)]
    assert values == sorted(values)
    archive("table2", result.render())
