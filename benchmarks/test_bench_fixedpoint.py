"""Scalar-vs-batched fixed-point throughput on the candidate-scan shape.

Times the legacy damped scalar solver against the Anderson-accelerated
batched solver on the deviation-analysis workload - ``B = 256`` window
vectors of ``n = 20`` nodes (a 20-node network's candidate scan, many
discounts deep) - and writes the measurements to
``BENCH_fixedpoint.json`` at the repository root, mirroring
``BENCH_kernel.json``.

Beyond raw speed, the benchmark asserts the numerical contract that
makes the speedup usable: the batched tau must match the scalar
reference within 1e-9 on every instance of the batch.

Set ``REPRO_BENCH_SMOKE=1`` (CI) to shrink the batch; the JSON is still
produced and a relaxed speedup floor is asserted.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np

from repro.bianchi.batched import solve_heterogeneous_batch
from repro.bianchi.fixedpoint import solve_heterogeneous_reference

REPO_ROOT = Path(__file__).resolve().parent.parent
RESULT_PATH = REPO_ROOT / "BENCH_fixedpoint.json"

N_NODES = 20
MAX_STAGE = 5

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")
BATCH = 32 if SMOKE else 256
#: Scalar solves are slow; time a sample and extrapolate to the batch.
REFERENCE_SAMPLE = 8 if SMOKE else 32
MIN_SPEEDUP = 3.0 if SMOKE else 10.0
MAX_TAU_DIFF = 1e-9


def _workload() -> np.ndarray:
    """Deviation-scan-like batch: one deviant window against W_c*=335."""
    rng = np.random.default_rng(2007)
    windows = np.full((BATCH, N_NODES), 335.0)
    deviants = rng.integers(2, 1025, size=BATCH)
    windows[np.arange(BATCH), rng.integers(0, N_NODES, size=BATCH)] = deviants
    return windows


def _time_reference(windows: np.ndarray) -> dict:
    sample = windows[:REFERENCE_SAMPLE]
    solve_heterogeneous_reference(sample[0], MAX_STAGE)  # warm-up
    started = time.perf_counter()
    for row in sample:
        solve_heterogeneous_reference(row, MAX_STAGE)
    elapsed = time.perf_counter() - started
    per_solve = elapsed / REFERENCE_SAMPLE
    return {
        "engine": "reference",
        "batch": 1,
        "sampled_solves": REFERENCE_SAMPLE,
        "elapsed_s": elapsed,
        "solves_per_sec": 1.0 / per_solve,
        "projected_batch_s": per_solve * BATCH,
    }


def _time_batched(windows: np.ndarray) -> dict:
    solve_heterogeneous_batch(windows[:4], MAX_STAGE)  # warm-up
    started = time.perf_counter()
    batch = solve_heterogeneous_batch(windows, MAX_STAGE)
    elapsed = time.perf_counter() - started
    return {
        "engine": "batched",
        "batch": BATCH,
        "elapsed_s": elapsed,
        "solves_per_sec": BATCH / elapsed,
        "newton_fallbacks": int(batch.newton.sum()),
    }


def _max_tau_diff(windows: np.ndarray) -> float:
    batch = solve_heterogeneous_batch(windows, MAX_STAGE)
    worst = 0.0
    for index in range(0, BATCH, max(1, BATCH // 16)):
        reference = solve_heterogeneous_reference(windows[index], MAX_STAGE)
        worst = max(
            worst,
            float(np.max(np.abs(batch.tau[index] - reference.tau))),
        )
    return worst


def test_bench_fixedpoint_speedup():
    windows = _workload()
    reference = _time_reference(windows)
    batched = _time_batched(windows)
    speedup = batched["solves_per_sec"] / reference["solves_per_sec"]
    max_tau_diff = _max_tau_diff(windows)
    payload = {
        "workload": {
            "n_nodes": N_NODES,
            "batch": BATCH,
            "max_stage": MAX_STAGE,
            "smoke": SMOKE,
        },
        "reference": reference,
        "vectorized": batched,
        "speedup": speedup,
        "min_speedup": MIN_SPEEDUP,
        "max_tau_diff": max_tau_diff,
        "max_tau_diff_limit": MAX_TAU_DIFF,
    }
    RESULT_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    print(
        f"\nreference  {reference['solves_per_sec']:>10,.1f} solves/s"
        f"\nbatched    {batched['solves_per_sec']:>10,.1f} solves/s"
        f" (batch {BATCH})"
        f"\nspeedup    {speedup:.1f}x, max |dtau| {max_tau_diff:.2e}"
        f"  [written to {RESULT_PATH}]"
    )
    assert max_tau_diff <= MAX_TAU_DIFF, (
        f"batched solver drifted {max_tau_diff:.2e} from the scalar "
        f"reference (limit {MAX_TAU_DIFF:.0e})"
    )
    assert speedup >= MIN_SPEEDUP, (
        f"batched solver only {speedup:.1f}x the scalar reference "
        f"(floor {MIN_SPEEDUP}x) on B={BATCH}, n={N_NODES}"
    )
