"""Benchmark + regeneration of Table I (network parameters).

The computation is trivial; the benchmark measures the parameter/timing
derivation path and regenerates the table so the archived reproduction is
complete.
"""

from __future__ import annotations

from repro.experiments import table1


def test_bench_table1(benchmark, archive):
    result = benchmark(table1.run)
    assert result.derived["Ts (basic)"] > result.derived["Tc (basic)"]
    archive("table1", result.render())
