"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one of the paper's tables/figures (or an
ablation) and both prints the rendered artefact and archives it under
``benchmarks/output/`` so a run of ``pytest benchmarks/ --benchmark-only``
leaves the full reproduction on disk.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.phy.parameters import default_parameters

OUTPUT_DIR = Path(__file__).resolve().parent / "output"


@pytest.fixture(scope="session")
def params():
    """The paper's Table I parameters."""
    return default_parameters()


@pytest.fixture(scope="session")
def archive():
    """Callable that archives a rendered artefact and echoes it."""
    OUTPUT_DIR.mkdir(exist_ok=True)

    def _archive(name: str, text: str) -> None:
        path = OUTPUT_DIR / f"{name}.txt"
        path.write_text(text + "\n")
        print(f"\n{text}\n[archived to {path}]")

    return _archive
