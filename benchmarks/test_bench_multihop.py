"""Benchmark + regeneration of the Section VII.B multi-hop study.

Runs random-waypoint snapshots at the paper's scale (100 nodes, 250 m
range, 1000 m x 1000 m) through the local games, the TFT flood and the
quasi-optimality sweep; checks the paper's bands (per-node >= ~96%,
global within a few percent).
"""

from __future__ import annotations

from repro.experiments import multihop_quasi


def test_bench_multihop(benchmark, archive, params):
    result = benchmark.pedantic(
        lambda: multihop_quasi.run(
            params=params, n_nodes=100, n_snapshots=2, seed=7
        ),
        rounds=1,
        iterations=1,
    )
    assert result.worst_node_fraction > 0.85
    assert result.worst_global_fraction > 0.9
    for snapshot in result.snapshots:
        assert snapshot.converged_window >= 1
    archive("multihop", result.render())
