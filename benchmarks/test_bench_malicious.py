"""Benchmark + regeneration of the Section V.E malicious-player study.

Sweeps attacker windows under the paper's defaults (monotone welfare
degradation) and regenerates the collapse configuration where the attack
genuinely paralyses the network.
"""

from __future__ import annotations

from repro.experiments import malicious
from repro.experiments.malicious import collapse_demo


def test_bench_malicious(benchmark, archive, params):
    result = benchmark.pedantic(
        lambda: malicious.run(params=params, n_players=10),
        rounds=1,
        iterations=1,
    )
    payoffs = [row.global_payoff for row in result.rows]
    assert all(a < b for a, b in zip(payoffs, payoffs[1:]))
    assert payoffs[0] < result.reference_payoff / 2
    archive("malicious", result.render())


def test_bench_malicious_collapse(benchmark, archive):
    result = benchmark.pedantic(collapse_demo, rounds=1, iterations=1)
    by_window = {row.attack_window: row for row in result.rows}
    assert by_window[1].collapsed
    archive("malicious_collapse", result.render())
