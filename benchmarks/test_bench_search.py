"""Benchmark + regeneration of the Section V.C search protocol study.

Runs the Start/Right/Left protocol from several starting points with
both analytic and simulator-backed payoff measurement; every run must
land on the efficient plateau.
"""

from __future__ import annotations

from repro.experiments import search_protocol
from repro.game.definition import MACGame


def test_bench_search(benchmark, archive, params):
    result = benchmark.pedantic(
        lambda: search_protocol.run(
            params=params, n_players=10, slots_per_probe=30_000, seed=3
        ),
        rounds=1,
        iterations=1,
    )
    game = MACGame(n_players=10, params=params)
    best = game.symmetric_utility(result.analytic_optimum)
    for run_ in result.runs:
        found = game.symmetric_utility(run_.found_window)
        # Noise-free runs must hit the plateau exactly.  Noisy runs may
        # halt early inside the flat region - the robustness the paper
        # itself leans on ("a rational player should be satisfied as
        # long as it operates not too far from W_c*").
        threshold = 0.999 if run_.exact else 0.93
        assert found >= best * threshold, (
            f"run from {run_.start_window} found {run_.found_window} "
            f"({found / best:.4f} of optimum)"
        )
    archive("search", result.render())
