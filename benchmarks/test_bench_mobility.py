"""Benchmark + regeneration of the mobility-dynamics study.

Sticky TFT (the paper's literal rule) ratchets to the historical
minimum window across mobility epochs; re-opening TFT tracks each
snapshot.  The bench archives the epoch table and asserts the ratchet
property.
"""

from __future__ import annotations

from repro.experiments import mobility_dynamics


def test_bench_mobility(benchmark, archive, params):
    result = benchmark.pedantic(
        lambda: mobility_dynamics.run(
            params=params, n_nodes=60, n_epochs=6, seed=5
        ),
        rounds=1,
        iterations=1,
    )
    sticky = result.trace.sticky_windows()
    assert all(a >= b for a, b in zip(sticky, sticky[1:]))
    assert result.trace.reopening_windows() == result.trace.snapshot_minima()
    assert result.ratchet_gap >= 0
    archive("mobility", result.render())
