"""Benchmark + regeneration of Figure 2 (global payoff vs CW, basic).

Regenerates the three ``U/C`` curves (``n in {5, 20, 50}``) and checks
the paper's shape: unimodal curves, peaks ordered by population, and the
efficient NE sitting on each curve's maximum plateau.
"""

from __future__ import annotations

import numpy as np

from repro.experiments import figure2


def test_bench_figure2(benchmark, archive, params):
    result = benchmark.pedantic(
        lambda: figure2.run(params=params, n_points=35),
        rounds=1,
        iterations=1,
    )
    for n, values in result.curves.items():
        peak = int(np.argmax(values))
        assert np.all(np.diff(values[: peak + 1]) >= -1e-15)
        assert np.all(np.diff(values[peak:]) <= 1e-15)
        star = result.optima[n]
        star_index = int(np.flatnonzero(result.windows == star)[0])
        assert values[star_index] >= values.max() * 0.999
    peaks = [result.peak_window(n) for n in (5, 20, 50)]
    assert peaks == sorted(peaks)
    archive("figure2", result.render())
