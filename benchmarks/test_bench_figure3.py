"""Benchmark + regeneration of Figure 3 (global payoff vs CW, RTS/CTS).

Beyond Figure 2's shape checks, verifies the paper's observation that
the RTS/CTS curves are much flatter: a far larger share of the sweep
stays within 5% of each curve's peak.
"""

from __future__ import annotations

import numpy as np

from repro.experiments import figure2, figure3


def test_bench_figure3(benchmark, archive, params):
    result = benchmark.pedantic(
        lambda: figure3.run(params=params, n_points=35),
        rounds=1,
        iterations=1,
    )
    for n, values in result.curves.items():
        peak = int(np.argmax(values))
        assert np.all(np.diff(values[: peak + 1]) >= -1e-15)
        assert np.all(np.diff(values[peak:]) <= 1e-15)
    basic = figure2.run(params=params, sizes=(20,), n_points=35)

    def plateau_share(curves, n):
        values = curves.curves[n]
        return float((values >= values.max() * 0.95).mean())

    assert plateau_share(result, 20) > plateau_share(basic, 20)
    archive("figure3", result.render())
