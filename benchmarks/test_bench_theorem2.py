"""Benchmark + regeneration of the Theorem 2 verification sweep.

Numerically certifies the paper's central claim: every symmetric
profile in ``[W_c0, W_c*]`` survives TFT-punished deviations for
long-sighted players, while *none* of the interior profiles survives
the one-shot stage game - the quantitative gap between this paper and
the collapse literature.
"""

from __future__ import annotations

from repro.experiments.reporting import format_table
from repro.game.definition import MACGame
from repro.game.verification import verify_theorem2


def test_bench_theorem2(benchmark, archive, params):
    game = MACGame(n_players=10, params=params)
    report = benchmark.pedantic(
        lambda: verify_theorem2(game, max_windows=6),
        rounds=1,
        iterations=1,
    )
    assert report.verified
    assert set(report.stage_equilibria) <= {params.cw_min}
    rows = [
        ["family checked", str(report.checked_windows), ""],
        [
            "worst TFT-punished deviation gain",
            f"{report.worst_gain:.4g}",
            f"at {report.worst_case}",
        ],
        ["family verified", "yes" if report.verified else "NO", ""],
        [
            "stage-game equilibria in family",
            str(report.stage_equilibria or "none (interior)"),
            "",
        ],
    ]
    archive(
        "theorem2",
        format_table(
            ["check", "value", "detail"],
            rows,
            title=(
                "Theorem 2 verification (n=10, delta="
                f"{game.discount_factor})"
            ),
        ),
    )
