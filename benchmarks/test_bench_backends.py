"""Compute-backend throughput on the two hot kernels.

Times every *available* backend from :mod:`repro.backends` on the
vectorized simulator (``run_batch``) and the batched fixed point
(``solve_heterogeneous_batch``) across node counts ``n in {20, 200,
2000}``, and writes the measurements to ``BENCH_backends.json`` at the
repository root so CI can track accelerated-backend regressions the
same way it tracks the kernel speedup.

Per backend the artifact records slots/s and solves/s at each ``n``
plus the peak-RSS delta (``ru_maxrss`` growth in kB) accumulated while
that backend ran - the calendar-queue backends keep O(batch x n) state
and should not grow the high-water mark the way a slots-axis
materialisation would.

Assertions:

* every backend's simulator estimates stay statistically close to the
  numpy reference on the same workload, and its fixed-point ``tau``
  agrees with the numpy Anderson solver to ``<= 1e-9`` (the equivalence
  contract from ``docs/performance.md``);
* the best accelerated backend is not slower than numpy at the largest
  ``n`` (smoke floor), and in a full run (``REPRO_BENCH_SMOKE`` unset)
  is at least ``5x`` numpy slots/s at ``n = 2000`` - the calendar queue
  does O(1) amortised work per slot where numpy scans all ``n`` lanes.

Set ``REPRO_BENCH_SMOKE=1`` (CI) to shrink the budgets; the JSON is
still produced with every assertion applied at the relaxed floor.
"""

from __future__ import annotations

import json
import os
import resource
import time
from pathlib import Path

import numpy as np

from repro.backends import available_backends, get_backend
from repro.bianchi.batched import solve_heterogeneous_batch
from repro.phy.parameters import AccessMode
from repro.sim.vectorized import run_batch

REPO_ROOT = Path(__file__).resolve().parent.parent
RESULT_PATH = REPO_ROOT / "BENCH_backends.json"

N_VALUES = (20, 200, 2000)
N_LARGEST = N_VALUES[-1]
WINDOW = 64
MODE = AccessMode.BASIC
SIM_BATCH = 4
SOLVE_BATCH = 16
MAX_STAGE = 5

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")
N_SLOTS = 500 if SMOKE else 2_000
#: Full runs demand the ISSUE's 5x; smoke runs (cold caches, shared CI
#: boxes) only require the accelerated path not to lose to numpy.
MIN_ACCEL_SPEEDUP = 1.0 if SMOKE else 5.0
TAU_TOL = 1e-9
SIM_REL_TOL = 0.12  # statistical closeness on a short stochastic run


def _rss_kb() -> int:
    return int(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)


def _solver_windows(n_nodes: int) -> np.ndarray:
    rng = np.random.default_rng(7)
    return rng.integers(16, 256, size=(SOLVE_BATCH, n_nodes)).astype(float)


def _measure_backend(name: str, params) -> dict:
    backend = get_backend(name)
    rss_before = _rss_kb()
    points = []
    for n_nodes in N_VALUES:
        windows = [[WINDOW] * n_nodes] * SIM_BATCH
        run_batch(
            windows, params, MODE, n_slots=50, seed=1, backend=backend
        )  # warm-up (JIT / .so build)
        started = time.perf_counter()
        result = run_batch(
            windows, params, MODE, n_slots=N_SLOTS, seed=2, backend=backend
        )
        sim_elapsed = time.perf_counter() - started

        solver_input = _solver_windows(n_nodes)
        started = time.perf_counter()
        solved = solve_heterogeneous_batch(
            solver_input, MAX_STAGE, backend=backend
        )
        solve_elapsed = time.perf_counter() - started

        points.append(
            {
                "n_nodes": n_nodes,
                "slots_per_sec": SIM_BATCH * N_SLOTS / sim_elapsed,
                "solves_per_sec": SOLVE_BATCH / solve_elapsed,
                "sim_elapsed_s": sim_elapsed,
                "solve_elapsed_s": solve_elapsed,
                "mean_tau": float(result.tau.mean()),
                "newton_lanes": int(solved.newton.sum()),
            }
        )
    return {
        "backend": name,
        "deterministic": backend.deterministic,
        "matches_numpy": backend.matches_numpy,
        "supports_fixed_point": backend.supports_fixed_point,
        "points": points,
        "peak_rss_delta_kb": _rss_kb() - rss_before,
    }


def _assert_equivalent(name: str, params) -> dict:
    """One backend's accuracy record vs the numpy reference paths."""
    backend = get_backend(name)
    windows = [[WINDOW] * 40] * SIM_BATCH
    reference = run_batch(windows, params, MODE, n_slots=N_SLOTS, seed=3)
    candidate = run_batch(
        windows, params, MODE, n_slots=N_SLOTS, seed=3, backend=backend
    )
    sim_rel = float(
        abs(candidate.tau.mean() - reference.tau.mean())
        / reference.tau.mean()
    )
    assert sim_rel <= SIM_REL_TOL, (
        f"backend {name!r} mean tau off the numpy reference by "
        f"{sim_rel:.1%} (allowed {SIM_REL_TOL:.0%})"
    )

    solver_input = _solver_windows(40)
    reference_fp = solve_heterogeneous_batch(
        solver_input, MAX_STAGE, backend="numpy"
    )
    candidate_fp = solve_heterogeneous_batch(
        solver_input, MAX_STAGE, backend=backend
    )
    tau_diff = float(np.max(np.abs(candidate_fp.tau - reference_fp.tau)))
    assert tau_diff <= TAU_TOL, (
        f"backend {name!r} fixed point differs from numpy by {tau_diff:.2e} "
        f"(allowed {TAU_TOL:.0e})"
    )
    return {"backend": name, "sim_rel_err": sim_rel, "fp_max_tau_diff": tau_diff}


def test_bench_backends(params):
    names = available_backends()
    assert "numpy" in names, "the numpy reference backend must always exist"

    records = {name: _measure_backend(name, params) for name in names}
    equivalence = [
        _assert_equivalent(name, params) for name in names if name != "numpy"
    ]

    def _slots(name: str, n_nodes: int) -> float:
        return next(
            p["slots_per_sec"]
            for p in records[name]["points"]
            if p["n_nodes"] == n_nodes
        )

    accelerated = [name for name in names if name != "numpy"]
    best = max(accelerated, key=lambda name: _slots(name, N_LARGEST), default=None)
    speedup = (
        _slots(best, N_LARGEST) / _slots("numpy", N_LARGEST) if best else None
    )

    payload = {
        "workload": {
            "n_values": list(N_VALUES),
            "window": WINDOW,
            "mode": MODE.name,
            "n_slots": N_SLOTS,
            "sim_batch": SIM_BATCH,
            "solve_batch": SOLVE_BATCH,
            "smoke": SMOKE,
        },
        "backends": [records[name] for name in names],
        "equivalence": equivalence,
        "best_accelerated": best,
        "speedup_at_n2000": speedup,
        "min_speedup": MIN_ACCEL_SPEEDUP,
    }
    RESULT_PATH.write_text(json.dumps(payload, indent=2) + "\n")

    lines = [""]
    for name in names:
        for point in records[name]["points"]:
            lines.append(
                f"{name:>8}  n={point['n_nodes']:<5}"
                f"  {point['slots_per_sec']:>12,.0f} slots/s"
                f"  {point['solves_per_sec']:>9,.0f} solves/s"
            )
        lines.append(
            f"{name:>8}  peak-RSS delta "
            f"{records[name]['peak_rss_delta_kb']} kB"
        )
    if best is not None:
        lines.append(
            f"best accelerated: {best} at {speedup:.1f}x numpy (n={N_LARGEST})"
        )
    print("\n".join(lines) + f"\n[written to {RESULT_PATH}]")

    assert best is not None, (
        "no accelerated backend available (cnative needs a C compiler; "
        "numba needs the optional dependency)"
    )
    assert speedup >= MIN_ACCEL_SPEEDUP, (
        f"best accelerated backend {best!r} is only {speedup:.2f}x numpy "
        f"at n={N_LARGEST} (floor {MIN_ACCEL_SPEEDUP}x)"
    )
