"""Benchmark + regeneration of Table III (efficient NE, RTS/CTS).

``n = 20`` reproduces the paper exactly; ``n = 50`` within 5%; ``n = 5``
sits on an extremely flat plateau (see EXPERIMENTS.md) so only the
magnitude is pinned.
"""

from __future__ import annotations

import pytest

from repro.experiments import table3
from repro.experiments.table3 import PAPER_RTS

SLOTS = 120_000


def test_bench_table3(benchmark, archive, params):
    result = benchmark.pedantic(
        lambda: table3.run(params=params, slots_per_point=SLOTS, seed=1),
        rounds=1,
        iterations=1,
    )
    by_n = {row.n_nodes: row for row in result.rows}
    assert by_n[20].analytic_window == PAPER_RTS[20]
    assert by_n[50].analytic_window == pytest.approx(PAPER_RTS[50], rel=0.05)
    assert 0.4 * PAPER_RTS[5] < by_n[5].analytic_window < 1.6 * PAPER_RTS[5]
    for row in result.rows:
        assert row.simulated_mean == pytest.approx(
            row.analytic_window, rel=0.4
        )
    archive("table3", result.render())
