"""REPRO001 positives: unseeded generators and legacy global state."""

import numpy as np
from numpy.random import default_rng

UNSEEDED_MODULE_RNG = np.random.default_rng()
EXPLICIT_NONE = np.random.default_rng(None)
KEYWORD_NONE = np.random.default_rng(seed=None)
BARE_IMPORT = default_rng()
LEGACY_STATE = np.random.RandomState()


def legacy_draw(n: int) -> float:
    np.random.seed(42)
    return float(np.random.uniform(size=n).sum())
