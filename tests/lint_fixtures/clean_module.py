"""Negative fixture: determinism-respecting code the linter must not flag."""

import math

import numpy as np

SEEDED = np.random.default_rng(2007)


def sample(n: int, rng=None):
    generator = rng if rng is not None else np.random.default_rng(2007)
    return generator.uniform(size=n)


def close_enough(tau: float, target: float) -> bool:
    return math.isclose(tau, target, rel_tol=1e-9)


def array_close(tau_estimates, reference) -> bool:
    return bool(np.allclose(tau_estimates, reference))


def collect(items, bucket=None):
    bucket = [] if bucket is None else bucket
    bucket.extend(items)
    return bucket


def count_matches(total: int, hits: int) -> bool:
    return total == hits
