"""Deliberate REPRO006 violations: hard-coded numpy in xp kernels."""

import numpy as np


def bad_kernel(xp, values):
    total = np.sum(values)
    scaled = xp.asarray(values)
    return np.where(scaled > total, scaled, xp.zeros_like(scaled))


def good_kernel(xp, values):
    total = xp.sum(values)
    return values / total


def not_a_kernel(values):
    return np.sum(values)
