"""REPRO004 positives: mutable default arguments."""

import numpy as np


def append_item(item, bucket=[]):
    bucket.append(item)
    return bucket


def tabulate(rows, *, index={}):
    return {**index, "rows": rows}


def weights(values, base=np.zeros(3)):
    return base + values
