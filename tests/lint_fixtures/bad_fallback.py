"""REPRO002 positives: seed-taking functions with non-deterministic fallbacks."""

import numpy as np


def sample(n: int, rng=None):
    generator = rng or np.random.default_rng()
    return generator.uniform(size=n)


def simulate(n: int, *, seed=None):
    if seed is None:
        generator = np.random.default_rng()
    else:
        generator = np.random.default_rng(seed)
    return generator.integers(0, n)
