"""REPRO005 positive: defines run() but is absent from registry.py."""


def run(seed: int = 0) -> dict:
    return {"seed": seed}
