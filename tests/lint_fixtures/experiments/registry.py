"""Fixture registry mirroring the shape of repro.experiments.registry."""

from dataclasses import dataclass


@dataclass(frozen=True)
class Experiment:
    id: str
    title: str
    figure: str
    runner: object


import good_exp  # noqa: E402  (fixture: never imported, only parsed)

EXPERIMENTS = {
    "good": Experiment("good", "registered fixture", "none", good_exp.run),
}
