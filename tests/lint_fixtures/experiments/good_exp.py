"""Registered experiment fixture: listed in registry.py, so no REPRO005."""


def run(seed: int = 0) -> dict:
    return {"seed": seed}
