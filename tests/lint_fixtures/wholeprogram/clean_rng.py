"""Fixture: seed-provenanced sampling that REPRO102 must NOT flag.

Every generator here flows from ``repro.rng.resolve_rng`` or a spawned
``SeedSequence`` - the sanctioned sources - through the same
return-value/argument hops as the tainted fixture, so a correct taint
analysis reports nothing (with zero suppressions).
"""

import numpy as np

from repro.rng import resolve_rng


def make_generator(seed):
    return resolve_rng(seed)


def draw_profile(rng, count):
    return rng.integers(1, 32, size=count)


def sample_windows(seed, count):
    rng = make_generator(seed)
    return draw_profile(rng, count)


def spawned_streams(seed, workers):
    root = np.random.SeedSequence(seed)
    children = root.spawn(workers)
    return [np.random.default_rng(child) for child in children]
