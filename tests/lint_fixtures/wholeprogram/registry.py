"""Fixture: a miniature experiment registry.

The analyzer extracts ``Experiment(...)`` runner arguments from any
``registry.py`` statically, so ``cached_runner.run`` becomes a
cache-entering analysis root without this file ever being imported.
"""

import cached_runner


class Experiment:
    def __init__(self, exp_id, title, description, runner):
        self.exp_id = exp_id
        self.title = title
        self.description = description
        self.runner = runner


EXPERIMENTS = (
    Experiment(
        "cached",
        "Cached sweep",
        "A runner whose results enter the content-addressed cache.",
        cached_runner.run,
    ),
)
