"""Fixture: a sampling site two calls away from a provenance-free RNG.

The per-file rule (REPRO001) would flag the bare ``default_rng()``
construction line; it is deliberately suppressed here so the fixture
demonstrates that the whole-program taint rule (REPRO102) still catches
the *flow* - the generator travels through a return value and a call
argument before the draw, which no single-file analysis can connect.
"""

import numpy as np


def make_generator():
    return np.random.default_rng()  # repro: noqa=REPRO001


def draw_profile(rng, count):
    return rng.integers(1, 32, size=count)


def sample_windows(count):
    rng = make_generator()
    return draw_profile(rng, count)
