"""Fixture: a cached experiment runner that is secretly impure.

``run`` is registered in the neighbouring ``registry.py``, so the
whole-program purity rule (REPRO101) must certify its entire call tree;
the wall-clock read is buried two calls down, which only an
interprocedural analysis can see.
"""

import time


def _stamp():
    return time.time()


def _sweep(values):
    baseline = _stamp()
    return [value - baseline for value in values]


def run(params=None):
    return _sweep([1.0, 2.0, 3.0])
