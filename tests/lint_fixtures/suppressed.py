"""Noqa fixture: each violation is deliberately suppressed in place."""

import numpy as np

SCRATCH_RNG = np.random.default_rng()  # repro: noqa=REPRO001


def exact_probe(tau: float) -> bool:
    return tau == 0.5  # repro: noqa=REPRO003


def scratch(items, bucket=[]):  # repro: noqa
    bucket.extend(items)
    return bucket
