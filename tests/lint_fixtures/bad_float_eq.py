"""REPRO003 positives: exact float comparison on probability-like values."""


def classify(tau: float, utility: float) -> bool:
    if tau == 0.3:
        return True
    return utility != -1.5


def compare(tau_a: float, tau_b: float) -> bool:
    return tau_a == tau_b
