"""Auto-replay of pinned verification scenarios.

Every JSON file under ``tests/regression/scenarios/`` is a frozen
parameter point with production-solver quantities pinned at creation
time (see :mod:`repro.verify.scenarios`).  This harness discovers them
all and asserts the numeric stack still reproduces every pin - new
counterexamples dropped into the directory become regression tests
without touching any code.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.errors import VerificationError
from repro.verify.scenarios import (
    SCENARIO_SCHEMA,
    discover_scenarios,
    load_scenario,
    replay_scenario,
)

SCENARIO_DIR = Path(__file__).parent / "scenarios"
SCENARIO_PATHS = discover_scenarios(SCENARIO_DIR)


def test_shipped_scenarios_exist():
    """The repo ships pinned Table II/III equilibria as scenarios."""
    assert len(SCENARIO_PATHS) >= 4
    claims = {path.name.split("-")[0] for path in SCENARIO_PATHS}
    assert "theorem2" in claims
    assert "bianchi" in claims


@pytest.mark.parametrize(
    "path", SCENARIO_PATHS, ids=[path.stem for path in SCENARIO_PATHS]
)
def test_scenario_replays(path):
    scenario = load_scenario(path)
    report = replay_scenario(scenario)
    assert report.ok, "\n".join(report.failures)
    assert set(report.observed) == {
        entry["quantity"] for entry in scenario["expect"]
    }


@pytest.mark.parametrize(
    "path", SCENARIO_PATHS, ids=[path.stem for path in SCENARIO_PATHS]
)
def test_scenario_files_are_canonical(path):
    """Filenames embed the content digest; files are sorted-key JSON."""
    document = json.loads(path.read_text(encoding="utf-8"))
    assert document["schema"] == SCENARIO_SCHEMA
    assert path.stem.startswith(document["claim"] + "-")


def test_tampered_pin_is_detected():
    """Replay must fail when a pinned value drifts from production."""
    scenario = load_scenario(SCENARIO_PATHS[0])
    scenario["expect"][0]["value"] = scenario["expect"][0]["value"] + 0.5
    report = replay_scenario(scenario)
    assert not report.ok
    assert any("pinned" in failure for failure in report.failures)


def test_unknown_quantity_is_reported_not_raised():
    scenario = load_scenario(SCENARIO_PATHS[0])
    scenario["expect"].append(
        {"quantity": "mystery", "value": 1.0, "rtol": 1e-9, "atol": 1e-12}
    )
    report = replay_scenario(scenario)
    assert not report.ok
    assert any("mystery" in failure for failure in report.failures)


class TestLoadValidation:
    def test_missing_file(self, tmp_path):
        with pytest.raises(VerificationError, match="cannot read"):
            load_scenario(tmp_path / "missing.json")

    def test_invalid_json(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json", encoding="utf-8")
        with pytest.raises(VerificationError, match="cannot read"):
            load_scenario(bad)

    def test_wrong_schema(self, tmp_path):
        bad = tmp_path / "schema.json"
        bad.write_text(json.dumps({"schema": "v0"}), encoding="utf-8")
        with pytest.raises(VerificationError, match="schema"):
            load_scenario(bad)

    def test_missing_required_key(self, tmp_path):
        document = load_scenario(SCENARIO_PATHS[0])
        del document["point"]
        bad = tmp_path / "partial.json"
        bad.write_text(json.dumps(document), encoding="utf-8")
        with pytest.raises(VerificationError, match="point"):
            load_scenario(bad)

    def test_empty_expect_rejected(self, tmp_path):
        document = load_scenario(SCENARIO_PATHS[0])
        document["expect"] = []
        bad = tmp_path / "empty.json"
        bad.write_text(json.dumps(document), encoding="utf-8")
        with pytest.raises(VerificationError, match="at least one"):
            load_scenario(bad)

    def test_discover_missing_directory_is_empty(self, tmp_path):
        assert discover_scenarios(tmp_path / "nope") == []
