"""Golden snapshots of the paper artefacts (Tables I-III, Figures 2/3).

Each test runs one experiment in a small, fully seeded configuration
and compares the exported payload field-by-field against the canonical
JSON checked in under ``snapshots/``.  The configurations are chosen so
the whole module runs in about a second - the goldens pin the *numeric
pipeline*, not the paper-scale statistics (those live in
``tests/integration``).

Regenerate after an intended numeric change with::

    pytest tests/golden --update-golden
"""

from __future__ import annotations

import pytest

from repro.experiments import figure2, figure3, table1, table2, table3
from repro.experiments.export import result_to_dict

from .conftest import GoldenComparer, normalize


def test_table1_golden(golden) -> None:
    golden.check("table1", result_to_dict(table1.run()))


def test_table2_golden(golden) -> None:
    result = table2.run(sizes=(5, 10), slots_per_point=8000, seed=0)
    golden.check("table2_small", result_to_dict(result))


def test_table3_golden(golden) -> None:
    result = table3.run(sizes=(5, 10), slots_per_point=8000, seed=0)
    golden.check("table3_small", result_to_dict(result))


def test_figure2_golden(golden) -> None:
    result = figure2.run(sizes=(5, 10), n_points=12)
    golden.check("figure2_small", result_to_dict(result))


def test_figure3_golden(golden) -> None:
    result = figure3.run(sizes=(5, 10), n_points=12)
    golden.check("figure3_small", result_to_dict(result))


def _bump_first_float(payload) -> bool:
    """Multiply the first non-zero float leaf by ``1 + 1e-6`` in place."""
    stack = [payload]
    while stack:
        node = stack.pop()
        items = (
            list(node.items())
            if isinstance(node, dict)
            else list(enumerate(node))
        )
        for key, value in items:
            # Exact check on purpose: skip literal zeros when picking
            # the leaf to perturb.
            if isinstance(value, float) and value != 0.0:  # repro: noqa=REPRO003
                node[key] = value * (1.0 + 1e-6)
                return True
            if isinstance(value, (dict, list)):
                stack.append(value)
    return False


def test_harness_catches_1e6_perturbation() -> None:
    """A 1e-6 relative perturbation of one value must fail the compare."""
    perturbed = normalize(result_to_dict(table1.run()))
    assert _bump_first_float(perturbed), (
        "table1 payload has no non-zero float leaf to perturb"
    )
    comparer = GoldenComparer(update=False)
    with pytest.raises(pytest.fail.Exception, match="differs"):
        comparer.check("table1", perturbed)
