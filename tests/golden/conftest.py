"""Golden-snapshot harness.

A *golden* is the canonical JSON of one experiment's exported payload
(``result_to_dict``), normalized so the comparison is meaningful:

* every float is rounded to 12 significant digits before serialisation,
  so snapshots are stable across platforms' last-bit printing noise but
  still catch perturbations down to ~1e-12 relative (a 1e-6 change is
  eleven orders of magnitude above the noise floor);
* keys are sorted and the JSON is indented, so snapshot diffs in review
  are line-per-field.

``pytest --update-golden`` rewrites the checked-in snapshots from the
current code; a plain run compares and fails with a field-level delta.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict

import pytest

SNAPSHOT_DIR = Path(__file__).parent / "snapshots"

#: Significant digits kept in golden floats (see module docstring).
FLOAT_DIGITS = 12


def normalize(value: Any) -> Any:
    """Round every float in a JSON-able payload to 12 significant digits."""
    if isinstance(value, bool) or value is None or isinstance(value, (str, int)):
        return value
    if isinstance(value, float):
        return float(f"{value:.{FLOAT_DIGITS}g}")
    if isinstance(value, dict):
        return {str(key): normalize(val) for key, val in value.items()}
    if isinstance(value, (list, tuple)):
        return [normalize(item) for item in value]
    raise TypeError(f"golden payloads must be JSON types, got {type(value)!r}")


def _leaf_paths(value: Any, prefix: str, out: Dict[str, Any]) -> None:
    if isinstance(value, dict):
        for key in value:
            _leaf_paths(value[key], f"{prefix}.{key}" if prefix else str(key), out)
    elif isinstance(value, list):
        for index, item in enumerate(value):
            _leaf_paths(item, f"{prefix}.{index}" if prefix else str(index), out)
    else:
        out[prefix or "<root>"] = value


def golden_delta(expected: Any, actual: Any) -> str:
    """Field-level description of where two normalized payloads differ."""
    flat_expected: Dict[str, Any] = {}
    flat_actual: Dict[str, Any] = {}
    _leaf_paths(expected, "", flat_expected)
    _leaf_paths(actual, "", flat_actual)
    lines = []
    for path in sorted(set(flat_expected) | set(flat_actual)):
        left = flat_expected.get(path, "<absent>")
        right = flat_actual.get(path, "<absent>")
        if left != right:
            lines.append(f"  {path}: golden {left!r} != actual {right!r}")
    return "\n".join(lines)


class GoldenComparer:
    """Compare one payload against its checked-in snapshot."""

    def __init__(self, update: bool) -> None:
        self.update = update

    def check(self, name: str, payload: Any) -> None:
        actual = normalize(payload)
        path = SNAPSHOT_DIR / f"{name}.json"
        if self.update:
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(
                json.dumps(actual, indent=2, sort_keys=True) + "\n"
            )
            return
        if not path.is_file():
            pytest.fail(
                f"missing golden snapshot {path.name}; run "
                f"`pytest tests/golden --update-golden` to create it"
            )
        expected = json.loads(path.read_text())
        if expected != actual:
            delta = golden_delta(expected, actual)
            pytest.fail(
                f"golden snapshot {path.name} differs:\n{delta}\n"
                f"(if the change is intended, rerun with --update-golden)"
            )


@pytest.fixture()
def golden(request) -> GoldenComparer:
    """The snapshot comparer, honouring ``--update-golden``."""
    return GoldenComparer(update=request.config.getoption("--update-golden"))
