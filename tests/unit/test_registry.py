"""Unit tests for the experiment registry."""

from __future__ import annotations

import pytest

from repro.errors import ParameterError
from repro.experiments.registry import (
    EXPERIMENTS,
    get_experiment,
    run_experiment,
)


class TestRegistry:
    def test_all_design_md_ids_registered(self):
        expected = {
            "table1",
            "table2",
            "table3",
            "fig2",
            "fig3",
            "multihop",
            "shortsighted",
            "malicious",
            "search",
            "convergence",
            "bestresponse",
            "mobility",
        }
        assert set(EXPERIMENTS) == expected

    def test_entries_carry_metadata(self):
        for experiment in EXPERIMENTS.values():
            assert experiment.paper_artifact
            assert experiment.description
            assert callable(experiment.runner)

    def test_get_experiment_roundtrip(self):
        assert get_experiment("table1").experiment_id == "table1"

    def test_unknown_id_raises_with_hint(self):
        with pytest.raises(ParameterError) as info:
            get_experiment("table9")
        assert "table9" in str(info.value)
        assert "table1" in str(info.value)  # hint lists known ids

    def test_run_experiment_forwards_kwargs(self):
        result = run_experiment("table1")
        assert "Packet size" in result.parameters

    def test_every_result_renders(self):
        # Only the cheap analytic experiments here; the heavy ones are
        # exercised in the integration suite.
        for experiment_id in ("table1", "convergence", "malicious"):
            result = run_experiment(experiment_id)
            text = result.render()
            assert isinstance(text, str) and text
