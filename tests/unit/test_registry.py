"""Unit tests for the experiment registry."""

from __future__ import annotations

import inspect
from pathlib import Path

import pytest

from repro.errors import ParameterError
from repro.experiments.registry import (
    EXPERIMENTS,
    get_experiment,
    run_experiment,
)

#: Smallest meaningful overrides per experiment, so the full-registry
#: render check below stays cheap enough for tier-1.
TINY_OVERRIDES = {
    "table2": {"sizes": (2,), "slots_per_point": 2_000},
    "table3": {"sizes": (2,), "slots_per_point": 2_000},
    "fig2": {"sizes": (2,), "n_points": 4},
    "fig3": {"sizes": (2,), "n_points": 4},
    "multihop": {"n_nodes": 8, "n_snapshots": 1},
    "search": {"n_players": 3, "with_simulation": False},
    "shortsighted": {"n_players": 3, "discounts": (0.5,)},
    "malicious": {"n_players": 3, "attack_windows": (2, 8)},
    "convergence": {"n_players": 3, "n_stages": 2},
    "bestresponse": {"n_players": 3, "n_stages": 2},
    "mobility": {"n_nodes": 6, "n_epochs": 1},
    "verify": {"theorems": ("bianchi", "lemma3"), "max_boxes": 2_000},
    "meanfield": {
        "agreement_populations": (8,),
        "scaling_populations": (1e3,),
        "replicator_steps": 150,
        "screening_nodes": 2_000,
        "screening_slots": 40_000,
    },
}


class TestRegistry:
    def test_all_design_md_ids_registered(self):
        expected = {
            "table1",
            "table2",
            "table3",
            "fig2",
            "fig3",
            "multihop",
            "shortsighted",
            "malicious",
            "search",
            "convergence",
            "bestresponse",
            "mobility",
            "meanfield",
            "verify",
        }
        assert set(EXPERIMENTS) == expected

    def test_entries_carry_metadata(self):
        for experiment in EXPERIMENTS.values():
            assert experiment.paper_artifact
            assert experiment.description
            assert callable(experiment.runner)

    def test_get_experiment_roundtrip(self):
        assert get_experiment("table1").experiment_id == "table1"

    def test_unknown_id_raises_with_hint(self):
        with pytest.raises(ParameterError) as info:
            get_experiment("table9")
        assert "table9" in str(info.value)
        assert "table1" in str(info.value)  # hint lists known ids

    def test_run_experiment_forwards_kwargs(self):
        result = run_experiment("table1")
        assert "Packet size" in result.parameters

    def test_every_result_renders(self):
        # Only the cheap analytic experiments here; the heavy ones are
        # exercised in the integration suite.
        for experiment_id in ("table1", "convergence", "malicious"):
            result = run_experiment(experiment_id)
            text = result.render()
            assert isinstance(text, str) and text


class TestRegistryContract:
    """Every entry honours the registry's documented runner contract.

    This is the inverse direction of lint rule REPRO005: the linter
    guarantees every experiment module is registered; these tests
    guarantee every registered entry is a real, runnable, documented
    experiment.
    """

    @pytest.mark.parametrize("experiment_id", sorted(EXPERIMENTS))
    def test_runner_accepts_zero_required_arguments(self, experiment_id):
        signature = inspect.signature(EXPERIMENTS[experiment_id].runner)
        required = [
            name
            for name, parameter in signature.parameters.items()
            if parameter.default is inspect.Parameter.empty
            and parameter.kind
            not in (
                inspect.Parameter.VAR_POSITIONAL,
                inspect.Parameter.VAR_KEYWORD,
            )
        ]
        assert required == [], (
            f"{experiment_id} runner has required parameters {required}"
        )

    @pytest.mark.parametrize("experiment_id", sorted(EXPERIMENTS))
    def test_id_documented_in_experiments_md(self, experiment_id):
        text = (
            Path(__file__).resolve().parents[2] / "EXPERIMENTS.md"
        ).read_text()
        assert experiment_id in text, (
            f"{experiment_id} is registered but absent from EXPERIMENTS.md"
        )

    @pytest.mark.parametrize("experiment_id", sorted(EXPERIMENTS))
    def test_every_runner_yields_renderable_result(self, experiment_id):
        result = run_experiment(
            experiment_id, **TINY_OVERRIDES.get(experiment_id, {})
        )
        text = result.render()
        assert isinstance(text, str) and text
        assert hasattr(result, "render")

    def test_tiny_overrides_reference_known_ids(self):
        assert set(TINY_OVERRIDES) <= set(EXPERIMENTS)
