"""Unit tests for slot statistics and normalized throughput."""

from __future__ import annotations

import numpy as np
import pytest

from repro.bianchi.throughput import normalized_throughput, slot_statistics
from repro.errors import ParameterError


class TestSlotStatistics:
    def test_single_node(self, basic_times):
        stats = slot_statistics([0.2], basic_times)
        assert stats.p_transmission == pytest.approx(0.2)
        assert stats.p_success == pytest.approx(1.0)
        assert stats.per_node_success[0] == pytest.approx(0.2)

    def test_two_symmetric_nodes(self, basic_times):
        tau = 0.25
        stats = slot_statistics([tau, tau], basic_times)
        assert stats.p_transmission == pytest.approx(1 - 0.75**2)
        single = 2 * tau * (1 - tau)
        assert stats.p_success == pytest.approx(
            single / stats.p_transmission
        )

    def test_probabilities_partition(self, basic_times):
        stats = slot_statistics([0.1, 0.2, 0.3], basic_times)
        assert stats.p_idle + stats.p_transmission == pytest.approx(1.0)
        assert 0 <= stats.p_success <= 1

    def test_expected_slot_is_convex_combination(self, basic_times):
        stats = slot_statistics([0.1, 0.2], basic_times)
        single = stats.per_node_success.sum()
        expected = (
            stats.p_idle * basic_times.idle_us
            + single * basic_times.success_us
            + (stats.p_transmission - single) * basic_times.collision_us
        )
        assert stats.expected_slot_us == pytest.approx(expected)

    def test_all_zero_tau(self, basic_times):
        stats = slot_statistics([0.0, 0.0], basic_times)
        assert stats.p_transmission == 0.0  # repro: noqa=REPRO003
        assert stats.p_success == 0.0  # repro: noqa=REPRO003
        assert stats.expected_slot_us == pytest.approx(basic_times.idle_us)

    def test_certain_collision(self, basic_times):
        stats = slot_statistics([1.0, 1.0], basic_times)
        assert stats.p_transmission == pytest.approx(1.0)
        assert stats.p_success == pytest.approx(0.0)
        assert stats.expected_slot_us == pytest.approx(
            basic_times.collision_us
        )

    def test_rejects_out_of_range(self, basic_times):
        with pytest.raises(ParameterError):
            slot_statistics([0.5, 1.2], basic_times)
        with pytest.raises(ParameterError):
            slot_statistics([-0.1], basic_times)

    def test_rejects_empty(self, basic_times):
        with pytest.raises(ParameterError):
            slot_statistics([], basic_times)


class TestNormalizedThroughput:
    def test_zero_when_silent(self, basic_times):
        assert normalized_throughput([0.0, 0.0], basic_times, 8184.0) == 0.0  # repro: noqa=REPRO003

    def test_zero_when_all_collide(self, basic_times):
        assert normalized_throughput([1.0, 1.0], basic_times, 8184.0) == 0.0  # repro: noqa=REPRO003

    def test_bounded_by_payload_fraction(self, basic_times, params):
        # Throughput can never exceed payload / Ts.
        bound = params.payload_time_us / basic_times.success_us
        for tau in (0.01, 0.05, 0.2, 0.5):
            s = normalized_throughput(
                [tau] * 5, basic_times, params.payload_time_us
            )
            assert 0 <= s <= bound + 1e-12

    def test_matches_bianchi_shape(self, basic_times, params):
        # Throughput as a function of common tau is unimodal.
        taus = np.linspace(0.001, 0.3, 40)
        values = [
            normalized_throughput(
                [t] * 10, basic_times, params.payload_time_us
            )
            for t in taus
        ]
        peak = int(np.argmax(values))
        assert 0 < peak < len(values) - 1
        assert all(
            values[i] <= values[i + 1] + 1e-12 for i in range(peak)
        )
        assert all(
            values[i] >= values[i + 1] - 1e-12
            for i in range(peak, len(values) - 1)
        )

    def test_rejects_nonpositive_payload(self, basic_times):
        with pytest.raises(ParameterError):
            normalized_throughput([0.1], basic_times, 0.0)
