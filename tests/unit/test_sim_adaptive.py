"""Unit tests for the per-node optimum measurement."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ParameterError
from repro.game.equilibrium import efficient_window
from repro.phy.parameters import AccessMode
from repro.sim.adaptive import default_window_grid, measure_per_node_optimum


class TestDefaultGrid:
    def test_centred_on_optimum(self):
        grid = default_window_grid(100)
        assert grid.min() >= 60
        assert grid.max() <= 140
        assert 100 - 10 <= np.median(grid) <= 100 + 10

    def test_unique_sorted_integers(self):
        grid = default_window_grid(37, n_points=20)
        assert np.all(grid[:-1] < grid[1:])
        assert grid.dtype.kind == "i"

    def test_small_optimum_stays_positive(self):
        grid = default_window_grid(2)
        assert grid.min() >= 1

    def test_validation(self):
        with pytest.raises(ParameterError):
            default_window_grid(0)
        with pytest.raises(ParameterError):
            default_window_grid(100, half_width=1.5)
        with pytest.raises(ParameterError):
            default_window_grid(100, n_points=2)


class TestMeasurement:
    def test_result_shapes(self, params):
        result = measure_per_node_optimum(
            3,
            params,
            grid=[20, 40, 80],
            slots_per_point=20_000,
            seed=5,
        )
        assert result.payoffs.shape == (3, 3)
        assert result.per_node_windows.shape == (3,)
        assert set(result.per_node_windows) <= {20.0, 40.0, 80.0}

    def test_mean_and_variance_consistent(self, params):
        result = measure_per_node_optimum(
            3,
            params,
            grid=[20, 40, 80],
            slots_per_point=20_000,
            seed=5,
        )
        assert result.mean == pytest.approx(result.per_node_windows.mean())
        assert result.variance == pytest.approx(
            result.per_node_windows.var()
        )

    def test_recovers_analytic_optimum_region(self, params, basic_times):
        # With enough slots, per-node optima concentrate on the plateau
        # around W_c*.
        n = 5
        star = efficient_window(n, params, basic_times)
        result = measure_per_node_optimum(
            n, params, AccessMode.BASIC, slots_per_point=120_000, seed=1
        )
        assert result.mean == pytest.approx(star, rel=0.35)

    def test_validation(self, params):
        with pytest.raises(ParameterError):
            measure_per_node_optimum(1, params)
        with pytest.raises(ParameterError):
            measure_per_node_optimum(3, params, grid=[50])
        with pytest.raises(ParameterError):
            measure_per_node_optimum(3, params, grid=[0, 50])
