"""Unit tests for geometric topologies."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import TopologyError
from repro.multihop.topology import GeometricTopology, random_topology


def make(positions, tx_range=150.0, width=1000.0, height=1000.0):
    return GeometricTopology(
        positions=np.asarray(positions, dtype=float),
        tx_range=tx_range,
        width=width,
        height=height,
    )


class TestConstruction:
    def test_rejects_single_node(self):
        with pytest.raises(TopologyError):
            make([[0, 0]])

    def test_rejects_positions_outside_area(self):
        with pytest.raises(TopologyError):
            make([[0, 0], [1500, 0]])

    def test_rejects_bad_range(self):
        with pytest.raises(TopologyError):
            make([[0, 0], [1, 1]], tx_range=0.0)

    def test_rejects_bad_area(self):
        with pytest.raises(TopologyError):
            GeometricTopology(
                positions=np.zeros((2, 2)),
                tx_range=100.0,
                width=0.0,
                height=10.0,
            )


class TestAdjacency:
    def test_line_topology(self):
        topo = make([[0, 0], [100, 0], [200, 0]])
        assert topo.degree(0) == 1
        assert topo.degree(1) == 2
        assert topo.degree(2) == 1
        np.testing.assert_array_equal(topo.neighbors(1), [0, 2])

    def test_no_self_loops(self):
        topo = make([[0, 0], [10, 0]])
        assert not topo.adjacency[0, 0]
        assert not topo.adjacency[1, 1]

    def test_adjacency_symmetric(self):
        topo = random_topology(20, rng=np.random.default_rng(1))
        np.testing.assert_array_equal(topo.adjacency, topo.adjacency.T)

    def test_boundary_distance_included(self):
        topo = make([[0, 0], [150, 0]])
        assert topo.adjacency[0, 1]

    def test_local_size_is_degree_plus_one(self):
        topo = make([[0, 0], [100, 0], [200, 0]])
        assert topo.local_size(1) == 3
        assert topo.local_size(0) == 2

    def test_node_bounds_checked(self):
        topo = make([[0, 0], [100, 0]])
        with pytest.raises(TopologyError):
            topo.neighbors(5)


class TestGraphQueries:
    def test_connected_line(self):
        topo = make([[0, 0], [100, 0], [200, 0]])
        assert topo.is_connected()
        assert topo.components() == [{0, 1, 2}]

    def test_disconnected_pair(self):
        topo = make([[0, 0], [100, 0], [900, 900]])
        assert not topo.is_connected()
        assert len(topo.components()) == 2

    def test_graph_edge_count_matches_adjacency(self):
        topo = random_topology(15, rng=np.random.default_rng(2))
        assert topo.graph.number_of_edges() == topo.adjacency.sum() // 2


class TestRandomTopology:
    def test_paper_defaults(self):
        topo = random_topology(rng=np.random.default_rng(0))
        assert topo.n_nodes == 100
        assert topo.tx_range == 250.0  # repro: noqa=REPRO003
        assert topo.width == topo.height == 1000.0  # repro: noqa=REPRO003

    def test_positions_inside_area(self):
        topo = random_topology(30, rng=np.random.default_rng(3))
        assert np.all(topo.positions >= 0)
        assert np.all(topo.positions <= 1000)

    def test_require_connected(self):
        topo = random_topology(
            50, rng=np.random.default_rng(4), require_connected=True
        )
        assert topo.is_connected()

    def test_connection_failure_raises(self):
        # Tiny range, huge area: cannot connect.
        with pytest.raises(TopologyError):
            random_topology(
                10,
                tx_range=1.0,
                rng=np.random.default_rng(5),
                require_connected=True,
                max_retries=3,
            )

    def test_rejects_single_node(self):
        with pytest.raises(TopologyError):
            random_topology(1)
