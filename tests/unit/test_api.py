"""Public API surface checks.

Guard rails for downstream users: everything advertised in ``__all__``
must resolve, and the documented entry points must stay importable from
the package root.
"""

from __future__ import annotations

import importlib

import pytest

SUBPACKAGES = [
    "repro",
    "repro.bianchi",
    "repro.detect",
    "repro.experiments",
    "repro.game",
    "repro.multihop",
    "repro.phy",
    "repro.sim",
]


class TestAllResolves:
    @pytest.mark.parametrize("name", SUBPACKAGES)
    def test_dunder_all_resolves(self, name):
        module = importlib.import_module(name)
        assert hasattr(module, "__all__")
        for symbol in module.__all__:
            assert hasattr(module, symbol), f"{name}.{symbol} missing"

    @pytest.mark.parametrize("name", SUBPACKAGES)
    def test_dunder_all_sorted_and_unique(self, name):
        module = importlib.import_module(name)
        exported = list(module.__all__)
        assert len(exported) == len(set(exported))


class TestRootApi:
    def test_headline_symbols_at_root(self):
        import repro

        for symbol in (
            "MACGame",
            "TitForTat",
            "GenerousTitForTat",
            "analyze_equilibria",
            "efficient_window",
            "refine_equilibria",
            "run_search_protocol",
            "analyze_deviation",
            "solve_symmetric",
            "solve_heterogeneous",
            "default_parameters",
        ):
            assert hasattr(repro, symbol)

    def test_version_is_semver_like(self):
        import repro

        parts = repro.__version__.split(".")
        assert len(parts) == 3
        assert all(part.isdigit() for part in parts)

    def test_errors_form_one_hierarchy(self):
        from repro import errors

        for name in errors.__all__:
            exc = getattr(errors, name)
            assert issubclass(exc, errors.ReproError)

    def test_game_layer_exports_verification(self):
        from repro.game import verify_theorem2, tft_deviation_gain

        assert callable(verify_theorem2)
        assert callable(tft_deviation_gain)
