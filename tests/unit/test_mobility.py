"""Unit tests for the random waypoint mobility model."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ParameterError
from repro.multihop.mobility import RandomWaypointModel


class TestConstruction:
    def test_defaults_match_paper(self):
        model = RandomWaypointModel(rng=np.random.default_rng(0))
        assert model.n_nodes == 100
        assert model.width == model.height == 1000.0  # repro: noqa=REPRO003
        assert model.max_speed == 5.0  # repro: noqa=REPRO003

    def test_initial_positions_inside_area(self):
        model = RandomWaypointModel(20, rng=np.random.default_rng(1))
        assert np.all(model.state.positions >= 0)
        assert np.all(model.state.positions <= 1000)

    def test_validation(self):
        with pytest.raises(ParameterError):
            RandomWaypointModel(0)
        with pytest.raises(ParameterError):
            RandomWaypointModel(5, min_speed=3.0, max_speed=1.0)
        with pytest.raises(ParameterError):
            RandomWaypointModel(5, pause_time=-1.0)
        with pytest.raises(ParameterError):
            RandomWaypointModel(5, width=-1.0)


class TestStepping:
    def test_positions_stay_inside_area(self):
        model = RandomWaypointModel(30, rng=np.random.default_rng(2))
        for _ in range(200):
            model.step(5.0)
        assert np.all(model.state.positions >= -1e-9)
        assert np.all(model.state.positions <= 1000 + 1e-9)

    def test_step_moves_at_most_speed_times_dt(self):
        model = RandomWaypointModel(
            30, min_speed=1.0, max_speed=5.0, rng=np.random.default_rng(3)
        )
        before = model.state.positions.copy()
        model.step(2.0)
        moved = np.linalg.norm(model.state.positions - before, axis=1)
        assert np.all(moved <= 5.0 * 2.0 + 1e-9)

    def test_nodes_eventually_reach_waypoints(self):
        model = RandomWaypointModel(
            10, min_speed=4.0, max_speed=5.0, rng=np.random.default_rng(4)
        )
        initial_destinations = model.state.destinations.copy()
        # Longest possible leg is the diagonal ~1414 m at >= 4 m/s.
        for _ in range(400):
            model.step(1.0)
        changed = np.any(
            model.state.destinations != initial_destinations, axis=1
        )
        assert changed.all()

    def test_pause_holds_position(self):
        model = RandomWaypointModel(
            5,
            min_speed=4.0,
            max_speed=5.0,
            pause_time=1000.0,
            rng=np.random.default_rng(5),
        )
        for _ in range(400):
            model.step(1.0)
        # Everyone has arrived somewhere and is pausing.
        assert np.all(model.state.pause_left > 0)
        frozen = model.state.positions.copy()
        model.step(1.0)
        np.testing.assert_array_equal(model.state.positions, frozen)

    def test_rejects_nonpositive_dt(self):
        model = RandomWaypointModel(5, rng=np.random.default_rng(6))
        with pytest.raises(ParameterError):
            model.step(0.0)


class TestSnapshots:
    def test_snapshot_is_frozen_copy(self):
        model = RandomWaypointModel(10, rng=np.random.default_rng(7))
        snap = model.snapshot(250.0)
        before = snap.positions.copy()
        model.step(10.0)
        np.testing.assert_array_equal(snap.positions, before)

    def test_snapshots_iterator_advances_time(self):
        model = RandomWaypointModel(
            10, min_speed=4.0, max_speed=5.0, rng=np.random.default_rng(8)
        )
        snaps = list(model.snapshots(250.0, interval=50.0, count=3))
        assert len(snaps) == 3
        assert not np.array_equal(snaps[0].positions, snaps[2].positions)

    def test_snapshots_count_validated(self):
        model = RandomWaypointModel(10, rng=np.random.default_rng(9))
        with pytest.raises(ParameterError):
            list(model.snapshots(250.0, interval=1.0, count=0))
