"""Unit tests for :mod:`repro.phy.timing`."""

from __future__ import annotations

import pytest

from repro.errors import ParameterError
from repro.phy.parameters import AccessMode, default_parameters
from repro.phy.timing import SlotTimes, slot_times


class TestBasicAccess:
    def test_paper_formulas(self, params, basic_times):
        # Ts = H + P + SIFS + ACK + DIFS; Tc = H + P + SIFS.
        assert basic_times.success_us == pytest.approx(
            400 + 8184 + 28 + 240 + 128
        )
        assert basic_times.collision_us == pytest.approx(400 + 8184 + 28)

    def test_collision_close_to_success(self, basic_times):
        # The paper's Tc ~= Ts approximation for the basic case.
        ratio = basic_times.collision_us / basic_times.success_us
        assert 0.9 < ratio < 1.0

    def test_idle_is_sigma(self, params, basic_times):
        assert basic_times.idle_us == params.slot_time_us

    def test_mode_recorded(self, basic_times):
        assert basic_times.mode is AccessMode.BASIC


class TestRtsCtsAccess:
    def test_paper_formulas(self, rts_times):
        # Ts' = RTS+SIFS+CTS+SIFS+H+P+SIFS+ACK+DIFS; Tc' = RTS+DIFS.
        assert rts_times.success_us == pytest.approx(
            288 + 28 + 240 + 28 + 400 + 8184 + 28 + 240 + 128
        )
        assert rts_times.collision_us == pytest.approx(288 + 128)

    def test_collision_much_cheaper_than_success(self, rts_times):
        # Tc' << Ts' is what makes the RTS/CTS curves flat (Section V.F).
        assert rts_times.collision_us < rts_times.success_us / 20

    def test_rts_collision_cheaper_than_basic(self, basic_times, rts_times):
        assert rts_times.collision_us < basic_times.collision_us / 10

    def test_rts_success_costlier_than_basic(self, basic_times, rts_times):
        # The handshake adds overhead to every success.
        assert rts_times.success_us > basic_times.success_us


class TestValidation:
    def test_slot_times_requires_positive_durations(self):
        with pytest.raises(ParameterError):
            SlotTimes(
                success_us=0.0,
                collision_us=1.0,
                idle_us=1.0,
                mode=AccessMode.BASIC,
            )

    def test_negative_idle_rejected(self):
        with pytest.raises(ParameterError):
            SlotTimes(
                success_us=1.0,
                collision_us=1.0,
                idle_us=-1.0,
                mode=AccessMode.BASIC,
            )

    def test_scaled_bit_rate_scales_frame_parts_only(self):
        params = default_parameters().with_updates(channel_bit_rate=2e6)
        times = slot_times(params, AccessMode.BASIC)
        # H + P + ACK shrink by 2; SIFS + DIFS do not.
        expected = (400 + 8184 + 240) / 2 + 28 + 128
        assert times.success_us == pytest.approx(expected)
