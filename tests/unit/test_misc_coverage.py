"""Miscellaneous edge-case tests across experiment modules."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import GameDefinitionError, ParameterError
from repro.experiments import mobility_dynamics, multihop_quasi, table2
from repro.experiments.search_protocol import simulator_measurement
from repro.experiments.table2 import NERow, NETableResult
from repro.game.definition import MACGame
from repro.phy.parameters import AccessMode


class TestNETableRendering:
    def test_missing_paper_value_renders_dash(self):
        result = NETableResult(
            mode=AccessMode.BASIC,
            rows=[
                NERow(
                    n_nodes=3,
                    analytic_window=40,
                    simulated_mean=41.0,
                    simulated_variance=2.0,
                    paper_window=None,
                )
            ],
        )
        text = result.render()
        assert "-" in text.splitlines()[-1]

    def test_rts_title(self):
        result = NETableResult(mode=AccessMode.RTS_CTS, rows=[])
        assert "Table III" in result.render()


class TestMultihopStudyValidation:
    def test_rejects_zero_snapshots(self, params):
        with pytest.raises(ParameterError):
            multihop_quasi.run(params=params, n_snapshots=0)

    def test_spatial_quasi_rejects_bad_window(self, params):
        from repro.multihop.topology import random_topology

        topology = random_topology(5, rng=np.random.default_rng(1))
        with pytest.raises(ParameterError):
            multihop_quasi.spatial_quasi_optimality(
                topology, 0, params=params
            )


class TestSimulatorMeasurement:
    def test_rejects_zero_slots(self, params):
        game = MACGame(n_players=3, params=params)
        with pytest.raises(ParameterError):
            simulator_measurement(game, slots_per_probe=0)

    def test_measurement_is_noisy_but_unbiased_scale(self, params):
        game = MACGame(n_players=3, params=params)
        measure = simulator_measurement(
            game, slots_per_probe=50_000, seed=5
        )
        analytic = game.symmetric_utility(64)
        measured = measure(64)
        assert measured == pytest.approx(analytic, rel=0.2)

    def test_consecutive_probes_use_fresh_streams(self, params):
        game = MACGame(n_players=3, params=params)
        measure = simulator_measurement(
            game, slots_per_probe=20_000, seed=5
        )
        assert measure(64) != measure(64)


class TestMobilityExperiment:
    def test_ratchet_gap_nonnegative(self, params):
        result = mobility_dynamics.run(
            params=params, n_nodes=20, n_epochs=3, seed=2
        )
        assert result.ratchet_gap >= 0
        text = result.render()
        assert "ratchet gap" in text
        assert "sticky" in text


class TestEmpiricalTraceEdges:
    def test_empty_trace_raises(self):
        from repro.detect.empirical import EmpiricalTrace

        with pytest.raises(GameDefinitionError):
            EmpiricalTrace().final_windows


class TestTable2SmallConfigs:
    def test_custom_sizes_flow_through(self, params):
        result = table2.run(
            params=params, sizes=(3, 4), slots_per_point=10_000
        )
        assert [row.n_nodes for row in result.rows] == [3, 4]
        assert result.rows[0].paper_window is None  # not in the paper
