"""Tests for the symmetric fixed-point memo cache."""

from __future__ import annotations

import pytest

from repro.bianchi import (
    solve_symmetric,
    symmetric_cache_info,
)
from repro.errors import ParameterError


class TestSymmetricCache:
    def test_repeat_call_returns_cached_instance(self):
        first = solve_symmetric(335.0, 20, 5)
        second = solve_symmetric(335.0, 20, 5)
        assert second is first

    def test_int_and_float_window_share_an_entry(self):
        assert solve_symmetric(64, 5, 5) is solve_symmetric(64.0, 5, 5)

    def test_distinct_arguments_distinct_entries(self):
        assert solve_symmetric(64, 5, 5) is not solve_symmetric(65, 5, 5)
        assert solve_symmetric(64, 5, 5) is not solve_symmetric(64, 6, 5)

    def test_tolerance_is_part_of_the_key(self):
        loose = solve_symmetric(48, 5, 5, tol=1e-6)
        tight = solve_symmetric(48, 5, 5, tol=1e-12)
        assert loose is not tight
        assert loose.tau == pytest.approx(tight.tau, rel=1e-4)

    def test_hits_increase_on_repeat(self):
        solve_symmetric(97, 7, 5)
        before = symmetric_cache_info().hits
        solve_symmetric(97, 7, 5)
        assert symmetric_cache_info().hits == before + 1

    def test_validation_still_raises(self):
        with pytest.raises(ParameterError):
            solve_symmetric(0.5, 5, 5)
        with pytest.raises(ParameterError):
            solve_symmetric(64, 0, 5)
