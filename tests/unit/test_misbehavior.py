"""Unit tests for misbehaviour flagging."""

from __future__ import annotations

import numpy as np
import pytest

from repro.detect import detect_misbehavior, estimate_windows
from repro.errors import ParameterError
from repro.sim.engine import DcfSimulator


class TestDetectMisbehavior:
    def test_honest_population_clean(self):
        report = detect_misbehavior([64.0, 66.0, 63.0, 65.0])
        assert not report.any_flagged

    def test_undercutter_flagged(self):
        report = detect_misbehavior([8.0, 64.0, 66.0, 63.0])
        np.testing.assert_array_equal(report.flagged_nodes, [0])

    def test_tolerance_controls_strictness(self):
        estimates = [50.0, 64.0, 64.0, 64.0]
        lenient = detect_misbehavior(estimates, tolerance=0.7)
        strict = detect_misbehavior(estimates, tolerance=0.99)
        assert not lenient.any_flagged
        assert strict.flagged_nodes.tolist() == [0]

    def test_silent_nodes_never_flagged(self):
        report = detect_misbehavior([np.nan, 8.0, 64.0, 64.0])
        assert 0 not in report.flagged_nodes
        assert 1 in report.flagged_nodes

    def test_median_robust_to_one_outlier(self):
        # The deviator itself barely moves the median reference.
        report = detect_misbehavior([4.0] + [64.0] * 6)
        assert report.reference == 64.0  # repro: noqa=REPRO003
        assert report.flagged_nodes.tolist() == [0]

    def test_explicit_reference(self):
        report = detect_misbehavior(
            [30.0, 32.0], reference=100.0, tolerance=0.8
        )
        assert report.flagged_nodes.tolist() == [0, 1]

    def test_validation(self):
        with pytest.raises(ParameterError):
            detect_misbehavior([64.0])
        with pytest.raises(ParameterError):
            detect_misbehavior([64.0, 64.0], tolerance=0.0)
        with pytest.raises(ParameterError):
            detect_misbehavior([np.nan, np.nan])
        with pytest.raises(ParameterError):
            detect_misbehavior([0.0, 64.0])
        with pytest.raises(ParameterError):
            detect_misbehavior([64.0, 64.0], reference=0.0)


class TestEndToEndDetection:
    def test_deviator_caught_from_simulation(self, params):
        # Station 0 runs at W/8 while everyone else behaves: one sim
        # segment of overheard traffic is enough to convict it.
        windows = [16, 128, 128, 128, 128]
        result = DcfSimulator(windows, params, seed=9).run(100_000)
        estimates = estimate_windows(result, params.max_backoff_stage)
        report = detect_misbehavior(estimates)
        assert report.flagged_nodes.tolist() == [0]

    def test_honest_simulation_clean(self, params):
        result = DcfSimulator([128] * 5, params, seed=9).run(100_000)
        estimates = estimate_windows(result, params.max_backoff_stage)
        report = detect_misbehavior(estimates)
        assert not report.any_flagged
