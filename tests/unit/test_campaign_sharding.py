"""Tests for horizontal campaign sharding and the multi-writer protocol.

The acceptance test at the bottom is the contract the sharding design
promises: two *processes* run disjoint shards of one campaign against a
shared store, and a plain single-process resume afterwards finds every
task cached - zero missing, zero duplicated.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.campaign import (
    campaign_status,
    expand_tasks,
    parse_shard,
    run_campaign,
    spec_from_dict,
)
from repro.errors import CampaignError
from repro.store import ResultStore, WriterJournal

REPO_SRC = str(Path(__file__).resolve().parents[2] / "src")

SWEEP = {
    "name": "sweep",
    "experiment": "convergence",
    "params": {"n_players": 3, "n_stages": 2},
    "grid": {"seed": [1, 2, 3, 4]},
    "jobs": 1,
}


@pytest.fixture()
def store(tmp_path) -> ResultStore:
    return ResultStore(tmp_path / "store")


class TestParseShard:
    def test_valid(self):
        assert parse_shard("0/4") == (0, 4)
        assert parse_shard("3/4") == (3, 4)
        assert parse_shard("0/1") == (0, 1)

    @pytest.mark.parametrize(
        "text",
        ["", "4", "a/b", "1.5/4", "0/4/2", "4/4", "-1/4", "0/0", "0/-2"],
    )
    def test_invalid(self, text):
        with pytest.raises(CampaignError):
            parse_shard(text)


class TestShardedRun:
    def test_shard_runs_only_its_slice(self, store):
        spec = spec_from_dict(SWEEP)
        report = run_campaign(
            spec, store=store, shard=(0, 2), writer_id="w0"
        )
        by_status = {o.index: o.status for o in report.outcomes}
        assert by_status == {
            0: "executed",
            1: "other-shard",
            2: "executed",
            3: "other-shard",
        }
        assert report.other_shard == 2
        assert not report.complete
        assert report.writer_progress == {"w0": 2}

    def test_disjoint_shards_cover_the_campaign(self, store):
        spec = spec_from_dict(SWEEP)
        run_campaign(spec, store=store, shard=(0, 2), writer_id="w0")
        run_campaign(spec, store=store, shard=(1, 2), writer_id="w1")
        resume = run_campaign(spec, store=store)
        assert resume.complete
        assert resume.cached == 4
        assert resume.executed == 0

    def test_claims_are_released_after_commit(self, store):
        spec = spec_from_dict(SWEEP)
        run_campaign(spec, store=store, shard=(0, 2), writer_id="w0")
        journal = WriterJournal(store.root, "probe")
        for task in expand_tasks(spec):
            assert journal.claim_owner(task.digest) is None

    def test_foreign_claim_skips_the_task(self, store):
        spec = spec_from_dict(SWEEP)
        tasks = expand_tasks(spec)
        rival = WriterJournal(store.root, "rival")
        assert rival.claim(tasks[0].digest)
        report = run_campaign(
            spec, store=store, shard=(0, 1), writer_id="w0"
        )
        skipped = report.outcomes[0]
        assert skipped.status == "claimed"
        assert skipped.claimed_by == "rival"
        assert not store.contains(tasks[0].digest)
        assert {o.status for o in report.outcomes[1:]} == {"executed"}
        assert not report.complete

    def test_writer_id_alone_enables_journalling(self, store):
        spec = spec_from_dict(SWEEP)
        report = run_campaign(spec, store=store, writer_id="solo")
        assert report.complete
        assert report.writer_progress == {"solo": 4}
        journal = WriterJournal(store.root, "solo")
        indices = sorted(e["task_index"] for e in journal.entries())
        assert indices == [0, 1, 2, 3]


class TestStatusWithClaims:
    def test_status_distinguishes_claimed_from_pending(self, store):
        spec = spec_from_dict(SWEEP)
        tasks = expand_tasks(spec)
        run_campaign(spec, store=store, shard=(0, 2), writer_id="w0")
        rival = WriterJournal(store.root, "rival")
        assert rival.claim(tasks[1].digest)
        report = campaign_status(spec, store=store)
        by_index = {o.index: o for o in report.outcomes}
        assert by_index[0].status == "cached"
        assert by_index[1].status == "claimed"
        assert by_index[1].claimed_by == "rival"
        assert by_index[3].status == "pending"
        assert report.writer_progress == {"w0": 2}
        rendered = report.render()
        assert "claimed(rival)" in rendered
        assert "w0: 2/4 committed (50.0%)" in rendered


_SHARD_WORKER = """
import sys
from repro.campaign import load_spec, parse_shard, run_campaign
from repro.store import ResultStore

spec_path, root, shard, writer = sys.argv[1:5]
spec = load_spec(spec_path)
report = run_campaign(
    spec,
    store=ResultStore(root),
    shard=parse_shard(shard),
    writer_id=writer,
)
print(report.executed)
"""


class TestTwoProcessAcceptance:
    def test_disjoint_shard_processes_then_exact_resume(self, tmp_path):
        spec_dict = dict(SWEEP, grid={"seed": [1, 2, 3, 4, 5, 6]})
        spec_path = tmp_path / "sweep.json"
        spec_path.write_text(json.dumps(spec_dict))
        root = tmp_path / "store"
        env = dict(os.environ, PYTHONPATH=REPO_SRC)
        workers = [
            subprocess.Popen(
                [
                    sys.executable,
                    "-c",
                    _SHARD_WORKER,
                    str(spec_path),
                    str(root),
                    f"{index}/2",
                    f"w{index}",
                ],
                env=env,
                stdout=subprocess.PIPE,
                stderr=subprocess.PIPE,
                text=True,
            )
            for index in (0, 1)
        ]
        executed = []
        for worker in workers:
            out, err = worker.communicate(timeout=240)
            assert worker.returncode == 0, err
            executed.append(int(out.strip()))
        # Each shard computed exactly its half - nothing duplicated.
        assert executed == [3, 3]

        spec = spec_from_dict(spec_dict)
        store = ResultStore(root)
        tasks = expand_tasks(spec)
        digests = {task.digest for task in tasks}
        indexed = {entry["digest"] for entry in store.find()}
        assert indexed == digests  # nothing missing, nothing extra

        # A plain resume (no shard) finds every task cached.
        resume = run_campaign(spec, store=store)
        assert resume.complete
        assert resume.cached == len(tasks)
        assert resume.executed == 0

        # The status probe credits each writer with its half.
        status = campaign_status(spec, store=store)
        assert status.writer_progress == {"w0": 3, "w1": 3}
