"""Unit tests for the CW observation layer."""

from __future__ import annotations

import numpy as np
import pytest

from repro.detect.empirical import EmpiricalRepeatedGame, EmpiricalTrace
from repro.detect.estimator import (
    WindowObserver,
    estimate_window,
    estimate_windows,
)
from repro.errors import (
    GameDefinitionError,
    InsufficientDataError,
    ParameterError,
)
from repro.game.definition import MACGame
from repro.game.strategies import GenerousTitForTat, TitForTat
from repro.sim.engine import DcfSimulator


class TestEstimateWindow:
    def test_inverts_equation_two_exactly(self, params):
        from repro.bianchi.markov import transmission_probability

        for window, p in [(32, 0.1), (128, 0.3), (512, 0.05)]:
            tau = transmission_probability(
                window, p, params.max_backoff_stage
            )
            recovered = estimate_window(tau, p, params.max_backoff_stage)
            assert recovered == pytest.approx(window, rel=1e-9)

    def test_validation(self, params):
        with pytest.raises(ParameterError):
            estimate_window(0.0, 0.1, 5)
        with pytest.raises(ParameterError):
            estimate_window(0.1, 1.0, 5)
        with pytest.raises(ParameterError):
            estimate_window(0.1, 0.1, -1)


class TestEstimateFromSimulation:
    def test_consistent_estimates(self, params):
        true_windows = [32, 64, 128, 256]
        result = DcfSimulator(true_windows, params, seed=2).run(150_000)
        estimates = estimate_windows(result, params.max_backoff_stage)
        np.testing.assert_allclose(estimates, true_windows, rtol=0.1)

    def test_longer_observation_tightens_estimates(self, params):
        true_windows = [64] * 4

        def error(slots):
            result = DcfSimulator(true_windows, params, seed=3).run(slots)
            estimates = estimate_windows(result, params.max_backoff_stage)
            return float(np.abs(estimates - 64).mean())

        assert error(400_000) <= error(10_000)


class TestWindowObserver:
    def test_counts_accumulate(self):
        observer = WindowObserver(n_nodes=3, max_stage=5)
        observer.record_idle(10)
        observer.record_transmission([0], success=True)
        observer.record_transmission([1, 2], success=False)
        assert observer.total_slots == 12
        np.testing.assert_array_equal(observer.attempts, [1, 1, 1])
        np.testing.assert_array_equal(observer.collisions, [0, 1, 1])

    def test_estimates_match_closed_form(self, params):
        # Feed the observer a synthetic stream consistent with known
        # (tau, p) and check the estimate.
        observer = WindowObserver(n_nodes=1, max_stage=5)
        # Node attempts every 10th slot; 20% of attempts collide
        # (simulated by a phantom second transmitter index... use
        # success=False without a peer: the observer only needs the
        # outcome flag).
        for i in range(1000):
            observer.record_idle(9)
            observer.record_transmission([0], success=(i % 5 != 0))
        tau_hat = observer.tau_estimates()[0]
        p_hat = observer.collision_estimates()[0]
        assert tau_hat == pytest.approx(0.1)
        assert p_hat == pytest.approx(0.2)
        expected = estimate_window(0.1, 0.2, 5)
        assert observer.estimates()[0] == pytest.approx(expected, rel=1e-6)

    def test_silent_node_is_nan(self):
        observer = WindowObserver(n_nodes=2, max_stage=5)
        observer.record_idle(5)
        observer.record_transmission([0], success=True)
        estimates = observer.estimates()
        assert not np.isnan(estimates[0])
        assert np.isnan(estimates[1])

    def test_validation(self):
        observer = WindowObserver(n_nodes=2, max_stage=5)
        with pytest.raises(ParameterError):
            observer.record_transmission([], success=True)
        with pytest.raises(ParameterError):
            observer.record_transmission([0, 1], success=True)
        with pytest.raises(ParameterError):
            observer.record_transmission([5], success=True)
        with pytest.raises(ParameterError):
            observer.record_idle(-1)
        with pytest.raises(ParameterError):
            observer.tau_estimates()
        with pytest.raises(ParameterError):
            WindowObserver(n_nodes=0, max_stage=5)

    def test_empty_window_raises_typed_insufficient_data(self):
        # A zero-observation window must surface as the typed error on
        # *both* estimators, never as a nan-producing division.
        observer = WindowObserver(n_nodes=2, max_stage=5)
        with pytest.raises(InsufficientDataError):
            observer.tau_estimates()
        with pytest.raises(InsufficientDataError):
            observer.collision_estimates()
        with pytest.raises(InsufficientDataError):
            observer.estimates()

    def test_silent_node_collision_estimate_is_zero_not_nan(self):
        observer = WindowObserver(n_nodes=2, max_stage=5)
        observer.record_transmission([0], success=True)
        p_hat = observer.collision_estimates()
        assert p_hat[1] == 0.0  # repro: noqa=REPRO003
        assert not np.any(np.isnan(p_hat))


class TestEmpiricalGame:
    def test_tft_converges_near_minimum(self, params):
        game = MACGame(n_players=4, params=params)
        engine = EmpiricalRepeatedGame(
            game,
            [TitForTat()] * 4,
            [64, 100, 200, 80],
            slots_per_stage=60_000,
            seed=1,
        )
        trace = engine.run(3)
        final = trace.final_windows
        # Estimation noise allows a few windows of slack around the
        # true minimum (64).
        assert np.all(np.abs(final - 64) <= 6)

    def test_gtft_holds_under_estimation_noise(self, params):
        game = MACGame(n_players=4, params=params)
        engine = EmpiricalRepeatedGame(
            game,
            [GenerousTitForTat(memory=2, tolerance=0.75)] * 4,
            [100] * 4,
            slots_per_stage=40_000,
            seed=1,
        )
        trace = engine.run(5)
        assert trace.final_windows.tolist() == [100.0] * 4

    def test_estimates_recorded_per_stage(self, params):
        game = MACGame(n_players=4, params=params)
        engine = EmpiricalRepeatedGame(
            game,
            [TitForTat()] * 4,
            [64] * 4,
            slots_per_stage=30_000,
            seed=2,
        )
        trace = engine.run(2)
        for stage in trace.stages:
            assert stage.estimated_windows.shape == (4,)
            assert stage.payoff_rates.shape == (4,)
        np.testing.assert_allclose(
            trace.stages[0].estimated_windows, 64, rtol=0.2
        )

    def test_validation(self, params):
        game = MACGame(n_players=4, params=params)
        with pytest.raises(GameDefinitionError):
            EmpiricalRepeatedGame(game, [TitForTat()] * 3, [64] * 4)
        with pytest.raises(GameDefinitionError):
            EmpiricalRepeatedGame(
                game, [TitForTat()] * 4, [64] * 4, slots_per_stage=0
            )
        engine = EmpiricalRepeatedGame(game, [TitForTat()] * 4, [64] * 4)
        with pytest.raises(GameDefinitionError):
            engine.run(0)


class TestEmpiricalTrace:
    def test_empty_trace_raises(self):
        with pytest.raises(GameDefinitionError, match="trace is empty"):
            EmpiricalTrace().final_windows

    def test_window_history_shape(self, params):
        game = MACGame(n_players=3, params=params)
        engine = EmpiricalRepeatedGame(
            game,
            [TitForTat()] * 3,
            [64, 64, 64],
            slots_per_stage=2_000,
            seed=4,
        )
        trace = engine.run(3)
        history = trace.window_history()
        assert history.shape == (3, 3)
        np.testing.assert_array_equal(history[0], [64, 64, 64])
        np.testing.assert_array_equal(history[-1], trace.final_windows)


class TestSilentNodes:
    def test_nan_estimates_assumed_polite(self, params):
        # Five slots is far below one backoff cycle at W=256, so every
        # node stays silent and every estimate is NaN.  Strategies must
        # see those players at cw_max (polite), not NaN: TFT then holds
        # its initial window instead of propagating NaN.
        game = MACGame(n_players=3, params=params)
        engine = EmpiricalRepeatedGame(
            game,
            [TitForTat()] * 3,
            [256] * 3,
            slots_per_stage=5,
            seed=0,
        )
        trace = engine.run(2)
        assert np.isnan(trace.stages[0].estimated_windows).all()
        assert np.isfinite(trace.stages[1].windows).all()
        np.testing.assert_array_equal(trace.stages[1].windows, [256.0] * 3)
