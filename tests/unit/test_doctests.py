"""Execute the runnable doctests embedded in public docstrings.

The examples in the API documentation must keep working; this module
runs them through :mod:`doctest` so a drifting API breaks the suite.
"""

from __future__ import annotations

import doctest

import pytest

import repro
import repro.detect.estimator
import repro.game.definition
import repro.game.repeated
import repro.multihop.mobility
import repro.sim.engine

MODULES = [
    repro,
    repro.detect.estimator,
    repro.game.definition,
    repro.game.repeated,
    repro.multihop.mobility,
    repro.sim.engine,
]


@pytest.mark.parametrize(
    "module", MODULES, ids=[m.__name__ for m in MODULES]
)
def test_module_doctests(module):
    results = doctest.testmod(module, verbose=False)
    assert results.attempted > 0, f"{module.__name__} lost its doctests"
    assert results.failed == 0
