"""Unit tests for the Section V equilibrium analysis."""

from __future__ import annotations

import numpy as np
import pytest
from scipy import optimize

from repro.bianchi.fixedpoint import solve_symmetric
from repro.errors import ConvergenceError, ParameterError
from repro.game.equilibrium import (
    analyze_equilibria,
    breakeven_window,
    efficient_window,
    is_symmetric_equilibrium,
    optimal_tau,
    q_function,
    window_for_tau,
)
from repro.game.utility import symmetric_utility_from_tau


class TestQFunction:
    def test_endpoints_match_lemma3(self, basic_times):
        # Q(0) > 0 and Q(1) = -(n-1) Tc < 0.
        for n in (2, 5, 20, 50):
            assert q_function(0.0, n, basic_times) > 0
            assert q_function(1.0, n, basic_times) == pytest.approx(
                -(n - 1) * basic_times.collision_us
            )

    def test_q_at_zero_is_sigma(self, basic_times):
        assert q_function(0.0, 10, basic_times) == pytest.approx(
            basic_times.idle_us
        )

    def test_strictly_decreasing_on_unit_interval(self, rts_times):
        taus = np.linspace(0, 1, 50)
        values = [q_function(t, 10, rts_times) for t in taus]
        assert all(a > b for a, b in zip(values, values[1:]))

    def test_rejects_bad_inputs(self, basic_times):
        with pytest.raises(ParameterError):
            q_function(1.5, 5, basic_times)
        with pytest.raises(ParameterError):
            q_function(0.5, 1, basic_times)


class TestOptimalTau:
    def test_root_of_q(self, basic_times):
        tau = optimal_tau(10, basic_times)
        assert q_function(tau, 10, basic_times) == pytest.approx(
            0.0, abs=1e-6
        )

    def test_is_the_utility_maximizer(self, params, basic_times):
        # The Q-root must maximise the cost-free symmetric utility.
        n = 10
        tau_star = optimal_tau(n, basic_times)
        direct = optimize.minimize_scalar(
            lambda t: -symmetric_utility_from_tau(
                t, n, params, basic_times, ignore_cost=True
            ),
            bounds=(1e-6, 0.5),
            method="bounded",
        )
        assert tau_star == pytest.approx(float(direct.x), abs=1e-5)

    def test_direct_method_agrees_without_cost(self, params, basic_times):
        via_q = optimal_tau(10, basic_times)
        via_direct = optimal_tau(
            10, basic_times, params=params, method="direct", ignore_cost=True
        )
        assert via_q == pytest.approx(via_direct, abs=1e-6)

    def test_direct_with_cost_is_more_conservative(self, params, basic_times):
        # Keeping the energy cost shifts the optimum to a smaller tau.
        free = optimal_tau(10, basic_times)
        costed = optimal_tau(
            10,
            basic_times,
            params=params,
            method="direct",
            ignore_cost=False,
        )
        assert costed < free

    def test_decreasing_in_population(self, basic_times):
        taus = [optimal_tau(n, basic_times) for n in (2, 5, 10, 20, 50)]
        assert all(a > b for a, b in zip(taus, taus[1:]))

    def test_small_tau_approximation(self, basic_times):
        # For large n, tau* ~= sqrt(2 sigma / (Tc n(n-1))).
        n = 50
        approx = np.sqrt(
            2
            * basic_times.idle_us
            / (basic_times.collision_us * n * (n - 1))
        )
        assert optimal_tau(n, basic_times) == pytest.approx(approx, rel=0.05)

    def test_direct_needs_params(self, basic_times):
        with pytest.raises(ParameterError):
            optimal_tau(10, basic_times, method="direct")

    def test_unknown_method(self, basic_times):
        with pytest.raises(ParameterError):
            optimal_tau(10, basic_times, method="bogus")


class TestWindowForTau:
    def test_inverts_symmetric_fixed_point(self, params):
        for window, n in [(30, 5), (120, 10), (500, 30)]:
            sol = solve_symmetric(window, n, params.max_backoff_stage)
            recovered = window_for_tau(sol.tau, n, params.max_backoff_stage)
            assert recovered == pytest.approx(window, rel=1e-9)

    def test_monotone_decreasing_in_tau(self, params):
        windows = [
            window_for_tau(t, 10, params.max_backoff_stage)
            for t in (0.005, 0.01, 0.05, 0.2)
        ]
        assert all(a > b for a, b in zip(windows, windows[1:]))

    def test_rejects_bad_tau(self, params):
        with pytest.raises(ParameterError):
            window_for_tau(0.0, 10, params.max_backoff_stage)
        with pytest.raises(ParameterError):
            window_for_tau(1.5, 10, params.max_backoff_stage)


class TestEfficientWindow:
    def test_paper_table2_values(self, params, basic_times):
        # Paper: 76 / 336 / 879. Our model (m=5, exact Q) is within a few
        # percent on the famously flat plateau.
        assert efficient_window(5, params, basic_times) == 78
        assert efficient_window(20, params, basic_times) == 335
        assert efficient_window(50, params, basic_times) == 848

    def test_paper_table3_values(self, params, rts_times):
        # Paper: 22 / 48 / 116. n=20 is exact; see EXPERIMENTS.md.
        assert efficient_window(5, params, rts_times) == 12
        assert efficient_window(20, params, rts_times) == 48
        assert efficient_window(50, params, rts_times) == 121

    def test_is_a_local_maximum(self, params, basic_times):
        n = 10
        star = efficient_window(n, params, basic_times)

        def utility(window):
            sol = solve_symmetric(window, n, params.max_backoff_stage)
            return symmetric_utility_from_tau(
                sol.tau, n, params, basic_times, ignore_cost=True
            )

        best = utility(star)
        assert best >= utility(star - 1)
        assert best >= utility(star + 1)

    def test_increasing_in_population(self, params, basic_times):
        values = [
            efficient_window(n, params, basic_times) for n in (3, 5, 10, 20)
        ]
        assert all(a < b for a, b in zip(values, values[1:]))

    def test_rts_much_smaller_than_basic(self, params, basic_times, rts_times):
        for n in (5, 20):
            assert (
                efficient_window(n, params, rts_times)
                < efficient_window(n, params, basic_times) / 4
            )

    def test_with_cost_shifts_right(self, params, basic_times):
        free = efficient_window(10, params, basic_times, ignore_cost=True)
        costed = efficient_window(10, params, basic_times, ignore_cost=False)
        assert costed >= free


class TestBreakevenWindow:
    def test_default_cost_always_positive(self, params, basic_times):
        # With e = 0.01 and m = 5 the payoff never goes negative, so the
        # break-even window collapses to the bottom of the space.
        assert breakeven_window(10, params, basic_times) == params.cw_min

    def test_high_cost_creates_negative_region(self, basic_times, params):
        expensive = params.with_updates(cost=0.2)
        w0 = breakeven_window(50, expensive, basic_times)
        assert w0 > expensive.cw_min

        def payoff(window):
            sol = solve_symmetric(window, 50, expensive.max_backoff_stage)
            return symmetric_utility_from_tau(
                sol.tau, 50, expensive, basic_times
            )

        assert payoff(w0) > 0
        assert payoff(w0 - 1) <= 0

    def test_impossible_cost_raises(self, basic_times, params):
        # cost >= gain is rejected upstream; just below, a crowded
        # network with a tiny strategy space cannot break even.
        hopeless = params.with_updates(cost=0.99, cw_max=2)
        with pytest.raises(ConvergenceError):
            breakeven_window(50, hopeless, basic_times)


class TestAnalyzeEquilibria:
    def test_bundle_consistency(self, params, basic_times):
        analysis = analyze_equilibria(10, params, basic_times)
        assert analysis.window_breakeven <= analysis.window_star
        assert analysis.n_equilibria == (
            analysis.window_star - analysis.window_breakeven + 1
        )
        assert list(analysis.ne_windows) == list(
            range(analysis.window_breakeven, analysis.window_star + 1)
        )
        assert analysis.utility_at_star > 0
        assert 0 < analysis.tau_star < 1
        assert analysis.window_star_continuous == pytest.approx(
            analysis.window_star, rel=0.15
        )

    def test_is_symmetric_equilibrium(self, params, basic_times):
        analysis = analyze_equilibria(5, params, basic_times)
        assert is_symmetric_equilibrium(
            analysis.window_star, 5, params, basic_times, analysis=analysis
        )
        assert is_symmetric_equilibrium(
            analysis.window_breakeven, 5, params, basic_times, analysis=analysis
        )
        assert not is_symmetric_equilibrium(
            analysis.window_star + 1, 5, params, basic_times, analysis=analysis
        )
