"""Unit tests for the Section V.D deviation analysis."""

from __future__ import annotations

import pytest

from repro.errors import ParameterError
from repro.game.deviation import analyze_deviation, optimal_deviation_window
from repro.game.equilibrium import efficient_window


@pytest.fixture(scope="module")
def w_star(small_game):
    return efficient_window(
        small_game.n_players, small_game.params, small_game.times
    )


class TestAnalyzeDeviation:
    def test_payoff_decomposition(self, small_game, w_star):
        analysis = analyze_deviation(
            small_game, w_star // 4, discount=0.5, reaction_stages=2
        )
        head = (1 - 0.5**2) / (1 - 0.5)
        tail = 0.5**2 / (1 - 0.5)
        assert analysis.payoff_deviate == pytest.approx(
            head * analysis.stage_payoff_before
            + tail * analysis.stage_payoff_after
        )
        assert analysis.payoff_conform == pytest.approx(
            analysis.stage_payoff_reference / (1 - 0.5)
        )

    def test_lemma4_relations_embedded(self, small_game, w_star):
        analysis = analyze_deviation(small_game, w_star // 4, discount=0.5)
        # Before the reaction the deviator beats the reference...
        assert analysis.stage_payoff_before > analysis.stage_payoff_reference
        # ...and after convergence everyone is below the reference.
        assert analysis.stage_payoff_after < analysis.stage_payoff_reference

    def test_short_sighted_deviation_pays(self, small_game, w_star):
        analysis = analyze_deviation(small_game, w_star // 4, discount=0.05)
        assert analysis.profitable
        assert analysis.gain > 0

    def test_long_sighted_deviation_does_not_pay(self, small_game, w_star):
        analysis = analyze_deviation(
            small_game, w_star // 4, discount=0.9999
        )
        assert not analysis.profitable

    def test_longer_reaction_makes_deviation_sweeter(self, small_game, w_star):
        quick = analyze_deviation(
            small_game, w_star // 4, discount=0.9, reaction_stages=1
        )
        slow = analyze_deviation(
            small_game, w_star // 4, discount=0.9, reaction_stages=5
        )
        assert slow.gain > quick.gain

    def test_degradation_in_unit_interval(self, small_game, w_star):
        analysis = analyze_deviation(small_game, w_star // 8, discount=0.5)
        assert 0 < analysis.network_degradation < 1

    def test_validation(self, small_game, w_star):
        with pytest.raises(ParameterError):
            analyze_deviation(small_game, 10, discount=1.0)
        with pytest.raises(ParameterError):
            analyze_deviation(small_game, 10, discount=0.5, reaction_stages=0)


class TestOptimalDeviation:
    def test_extremely_short_sighted_picks_aggressive_window(
        self, small_game, w_star
    ):
        best = optimal_deviation_window(
            small_game, discount=0.01, reference_window=w_star
        )
        assert best.deviation_window < w_star // 4
        assert best.profitable

    def test_long_sighted_picks_reference(self, small_game, w_star):
        best = optimal_deviation_window(
            small_game, discount=0.9999, reference_window=w_star
        )
        assert best.deviation_window == w_star
        assert best.gain == pytest.approx(0.0, abs=1e-6)

    def test_monotone_in_discount(self, small_game, w_star):
        windows = [
            optimal_deviation_window(
                small_game, discount=d, reference_window=w_star
            ).deviation_window
            for d in (0.05, 0.5, 0.9, 0.9999)
        ]
        assert all(a <= b for a, b in zip(windows, windows[1:]))

    def test_explicit_candidates_respected(self, small_game, w_star):
        best = optimal_deviation_window(
            small_game,
            discount=0.05,
            reference_window=w_star,
            candidates=[w_star // 2, w_star],
        )
        assert best.deviation_window in (w_star // 2, w_star)

    def test_empty_candidates_rejected(self, small_game, w_star):
        with pytest.raises(ParameterError):
            optimal_deviation_window(
                small_game,
                discount=0.5,
                reference_window=w_star,
                candidates=[],
            )
