"""Unit tests for the backoff state machine."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ParameterError, SimulationError
from repro.sim.node import BackoffNode


class TestConstruction:
    def test_initial_counter_in_stage_zero_window(self, rng):
        for _ in range(50):
            node = BackoffNode(window=8, max_stage=3, rng=rng)
            assert 0 <= node.counter < 8
            assert node.stage == 0

    def test_rejects_bad_window(self, rng):
        with pytest.raises(ParameterError):
            BackoffNode(window=0, max_stage=3, rng=rng)

    def test_rejects_bad_stage(self, rng):
        with pytest.raises(ParameterError):
            BackoffNode(window=8, max_stage=-1, rng=rng)


class TestTicking:
    def test_tick_decrements(self, rng):
        node = BackoffNode(window=64, max_stage=3, rng=rng)
        start = node.counter
        if start > 0:
            node.tick()
            assert node.counter == start - 1

    def test_multi_slot_tick(self, rng):
        node = BackoffNode(window=64, max_stage=3, rng=rng)
        node.counter = 10
        node.tick(7)
        assert node.counter == 3

    def test_overshoot_rejected(self, rng):
        node = BackoffNode(window=64, max_stage=3, rng=rng)
        node.counter = 3
        with pytest.raises(SimulationError):
            node.tick(4)

    def test_negative_tick_rejected(self, rng):
        node = BackoffNode(window=64, max_stage=3, rng=rng)
        with pytest.raises(SimulationError):
            node.tick(-1)

    def test_ready_at_zero(self, rng):
        node = BackoffNode(window=4, max_stage=3, rng=rng)
        node.counter = 0
        assert node.ready


class TestOutcomes:
    def test_success_resets_stage(self, rng):
        node = BackoffNode(window=8, max_stage=3, rng=rng)
        node.stage = 2
        node.counter = 0
        node.on_success()
        assert node.stage == 0
        assert 0 <= node.counter < 8

    def test_collision_doubles_window(self, rng):
        node = BackoffNode(window=8, max_stage=3, rng=rng)
        node.counter = 0
        node.on_collision()
        assert node.stage == 1
        assert 0 <= node.counter < 16

    def test_collision_caps_at_max_stage(self, rng):
        node = BackoffNode(window=8, max_stage=2, rng=rng)
        for _ in range(5):
            node.counter = 0
            node.on_collision()
        assert node.stage == 2
        node.counter = 0
        node.on_collision()
        assert node.stage == 2

    def test_outcomes_require_ready(self, rng):
        node = BackoffNode(window=8, max_stage=3, rng=rng)
        node.counter = 5
        with pytest.raises(SimulationError):
            node.on_success()
        with pytest.raises(SimulationError):
            node.on_collision()

    def test_draws_are_uniform(self):
        rng = np.random.default_rng(0)
        node = BackoffNode(window=4, max_stage=0, rng=rng)
        draws = []
        for _ in range(4000):
            node.counter = 0
            node.on_success()
            draws.append(node.counter)
        counts = np.bincount(draws, minlength=4)
        assert counts.min() > 800  # each of 4 values near 1000


class TestReconfiguration:
    def test_set_window_restarts_backoff(self, rng):
        node = BackoffNode(window=8, max_stage=3, rng=rng)
        node.stage = 3
        node.set_window(32)
        assert node.window == 32
        assert node.stage == 0
        assert 0 <= node.counter < 32

    def test_set_window_validates(self, rng):
        node = BackoffNode(window=8, max_stage=3, rng=rng)
        with pytest.raises(ParameterError):
            node.set_window(0)
