"""Unit tests for the single-collision-domain DCF simulator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.bianchi.fixedpoint import solve_heterogeneous, solve_symmetric
from repro.errors import ParameterError
from repro.phy.parameters import AccessMode
from repro.sim.engine import DcfSimulator


class TestConstruction:
    def test_rejects_empty_windows(self, params):
        with pytest.raises(ParameterError):
            DcfSimulator([], params)

    def test_rejects_sub_one_window(self, params):
        with pytest.raises(ParameterError):
            DcfSimulator([32, 0], params)

    def test_run_rejects_zero_slots(self, params):
        with pytest.raises(ParameterError):
            DcfSimulator([32, 32], params).run(0)


class TestDeterminism:
    def test_same_seed_same_result(self, params):
        a = DcfSimulator([32, 64, 128], params, seed=9).run(20_000)
        b = DcfSimulator([32, 64, 128], params, seed=9).run(20_000)
        np.testing.assert_array_equal(a.tau, b.tau)
        np.testing.assert_array_equal(a.payoff_rates, b.payoff_rates)

    def test_different_seeds_differ(self, params):
        a = DcfSimulator([32, 64, 128], params, seed=1).run(20_000)
        b = DcfSimulator([32, 64, 128], params, seed=2).run(20_000)
        assert not np.array_equal(a.tau, b.tau)


class TestCounterConsistency:
    def test_counters_cross_check(self, params):
        result = DcfSimulator([16, 64], params, seed=4).run(30_000)
        counters = result.counters
        counters.check()  # raises on inconsistency
        assert counters.total_slots >= 30_000
        assert counters.elapsed_us > 0

    def test_collision_slots_counted_once_per_event(self, params):
        # Two always-aggressive nodes: every slot is a collision between
        # exactly the two of them.
        aggressive = params.with_updates(max_backoff_stage=0)
        result = DcfSimulator([1, 1], aggressive, seed=4).run(1_000)
        counters = result.counters
        assert counters.collision_slots == counters.total_slots
        assert counters.per_node[0].attempts == counters.total_slots

    def test_single_node_always_succeeds(self, params):
        result = DcfSimulator([8], params, seed=4).run(5_000)
        assert result.collision[0] == 0.0  # repro: noqa=REPRO003
        assert result.counters.per_node[0].successes > 0


class TestModelAgreement:
    @pytest.mark.parametrize("window,n", [(32, 3), (78, 5), (128, 8)])
    def test_tau_matches_fixed_point(self, params, window, n):
        result = DcfSimulator([window] * n, params, seed=11).run(150_000)
        analytic = solve_symmetric(window, n, params.max_backoff_stage)
        assert result.tau.mean() == pytest.approx(analytic.tau, rel=0.05)
        assert result.collision.mean() == pytest.approx(
            analytic.collision, rel=0.1, abs=0.01
        )

    def test_heterogeneous_profile_matches_fixed_point(self, params):
        windows = [16, 64, 256]
        result = DcfSimulator(windows, params, seed=11).run(200_000)
        analytic = solve_heterogeneous(windows, params.max_backoff_stage)
        np.testing.assert_allclose(result.tau, analytic.tau, rtol=0.07)

    def test_elapsed_time_decomposes_by_slot_type(self, params):
        from repro.phy.timing import slot_times

        for mode in (AccessMode.BASIC, AccessMode.RTS_CTS):
            result = DcfSimulator([8] * 6, params, mode, seed=5).run(40_000)
            counters = result.counters
            times = slot_times(params, mode)
            expected = (
                counters.idle_slots * times.idle_us
                + counters.success_slots * times.success_us
                + counters.collision_slots * times.collision_us
            )
            assert counters.elapsed_us == pytest.approx(expected)

    def test_rts_mode_wastes_less_time_on_collisions(self, params):
        # Same seed -> same event sequence; only durations differ.  The
        # collision airtime share must drop sharply under RTS/CTS.
        basic = DcfSimulator(
            [8] * 6, params, AccessMode.BASIC, seed=5
        ).run(40_000)
        rts = DcfSimulator(
            [8] * 6, params, AccessMode.RTS_CTS, seed=5
        ).run(40_000)
        from repro.phy.timing import slot_times

        basic_waste = (
            basic.counters.collision_slots
            * slot_times(params, AccessMode.BASIC).collision_us
            / basic.counters.elapsed_us
        )
        rts_waste = (
            rts.counters.collision_slots
            * slot_times(params, AccessMode.RTS_CTS).collision_us
            / rts.counters.elapsed_us
        )
        assert rts_waste < basic_waste / 10

    def test_throughput_matches_analytic(self, params, basic_times):
        from repro.bianchi.throughput import normalized_throughput

        window, n = 64, 5
        result = DcfSimulator([window] * n, params, seed=13).run(150_000)
        analytic = solve_symmetric(window, n, params.max_backoff_stage)
        expected = normalized_throughput(
            [analytic.tau] * n, basic_times, params.payload_time_us
        )
        assert result.throughput == pytest.approx(expected, rel=0.03)


class TestReconfiguration:
    def test_set_windows_changes_behaviour(self, params):
        sim = DcfSimulator([16] * 4, params, seed=3)
        before = sim.run(40_000)
        sim.set_windows([256] * 4)
        after = sim.run(40_000)
        assert after.tau.mean() < before.tau.mean() / 3

    def test_set_windows_validates_length(self, params):
        sim = DcfSimulator([16] * 4, params, seed=3)
        with pytest.raises(ParameterError):
            sim.set_windows([16] * 3)
