"""Unit tests for the game's utility layer."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ParameterError
from repro.game.utility import (
    discounted_utility,
    stage_outcome,
    stage_utilities,
    symmetric_stage_utility,
    symmetric_utility_from_tau,
)


class TestStageOutcome:
    def test_symmetric_profile_symmetric_utilities(self, params, basic_times):
        outcome = stage_outcome([64] * 4, params, basic_times)
        np.testing.assert_allclose(
            outcome.utilities, outcome.utilities[0], rtol=1e-9
        )

    def test_matches_formula(self, params, basic_times):
        outcome = stage_outcome([32, 64, 128], params, basic_times)
        expected = (
            outcome.tau
            * ((1 - outcome.collision) * params.gain - params.cost)
            / outcome.expected_slot_us
        )
        np.testing.assert_allclose(outcome.utilities, expected, rtol=1e-12)

    def test_global_utility_is_sum(self, params, basic_times):
        outcome = stage_outcome([32, 64], params, basic_times)
        assert outcome.global_utility == pytest.approx(
            outcome.utilities.sum()
        )

    def test_throughput_positive_and_below_one(self, params, basic_times):
        outcome = stage_outcome([100] * 5, params, basic_times)
        assert 0 < outcome.throughput < 1

    def test_aggressive_profile_hurts_everyone(self, params, basic_times):
        polite = stage_outcome([100] * 5, params, basic_times)
        aggressive = stage_outcome([2] * 5, params, basic_times)
        assert aggressive.global_utility < polite.global_utility


class TestStageUtilities:
    def test_scales_rate_by_stage_duration(self, params, basic_times):
        profile = [64] * 3
        rates = stage_outcome(profile, params, basic_times).utilities
        payoffs = stage_utilities(profile, params, basic_times)
        np.testing.assert_allclose(
            payoffs, rates * params.stage_duration_us, rtol=1e-12
        )


class TestSymmetricUtility:
    def test_consistent_with_stage_outcome(self, params, basic_times):
        window, n = 78, 5
        via_outcome = stage_outcome([window] * n, params, basic_times)
        via_symmetric = symmetric_stage_utility(
            window, n, params, basic_times
        )
        assert via_symmetric == pytest.approx(
            float(via_outcome.utilities[0]), rel=1e-6
        )

    def test_ignore_cost_increases_utility(self, params, basic_times):
        with_cost = symmetric_stage_utility(50, 5, params, basic_times)
        without = symmetric_stage_utility(
            50, 5, params, basic_times, ignore_cost=True
        )
        assert without > with_cost

    def test_from_tau_rejects_bad_tau(self, params, basic_times, monkeypatch):
        # The tau validation is a gated contract; pin it on so the test
        # passes even when the ambient env exports REPRO_CHECKS=0.
        monkeypatch.delenv("REPRO_CHECKS", raising=False)
        with pytest.raises(ParameterError):
            symmetric_utility_from_tau(1.5, 5, params, basic_times)
        with pytest.raises(ParameterError):
            symmetric_utility_from_tau(-0.1, 5, params, basic_times)

    def test_from_tau_zero_is_zero(self, params, basic_times):
        assert (
            symmetric_utility_from_tau(0.0, 5, params, basic_times) == 0.0  # repro: noqa=REPRO003
        )

    def test_negative_utility_when_cost_dominates(self, params, basic_times):
        # At tau where everyone collides, (1-p)g < e.
        crowded = params.with_updates(cost=0.5)
        value = symmetric_utility_from_tau(
            0.5, 20, crowded, basic_times
        )
        assert value < 0


class TestDiscountedUtility:
    def test_empty_stream_is_zero(self):
        assert discounted_utility([], 0.9) == 0.0  # repro: noqa=REPRO003

    def test_single_payoff_undis_counted(self):
        assert discounted_utility([10.0], 0.9) == pytest.approx(10.0)

    def test_geometric_sum(self):
        delta = 0.5
        value = discounted_utility([1.0] * 20, delta)
        assert value == pytest.approx((1 - delta**20) / (1 - delta))

    def test_matches_manual_sum(self):
        payoffs = [3.0, -1.0, 2.5, 0.0, 7.0]
        delta = 0.8
        manual = sum(p * delta**k for k, p in enumerate(payoffs))
        assert discounted_utility(payoffs, delta) == pytest.approx(manual)

    @pytest.mark.parametrize("delta", [0.0, 1.0, -0.1, 1.1])
    def test_rejects_bad_discount(self, delta):
        with pytest.raises(ParameterError):
            discounted_utility([1.0], delta)
