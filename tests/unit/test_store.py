"""Unit tests for the content-addressed results store."""

from __future__ import annotations

import numpy as np
import pytest

from repro.contracts import check_digest
from repro.errors import ContractError, IntegrityError, StoreError
from repro.store import (
    ResultStore,
    canonical_json,
    compute_digest,
    digest_material,
)
from repro.store.store import Manifest
import repro.store.store as store_module


@pytest.fixture()
def store(tmp_path) -> ResultStore:
    return ResultStore(tmp_path / "store")


def _put(store, seed=1, experiment="convergence", payload=None, **extra):
    params = {"n_players": 3, "seed": seed, **extra}
    if payload is None:
        payload = {"seed": seed, "series": [1.0, 2.0, float(seed)]}
    return store.put(
        experiment, params, payload, rendered=f"run seed={seed}"
    )


class TestDigest:
    def test_deterministic_and_key_order_insensitive(self):
        a = compute_digest("table2", {"sizes": [5, 20], "seed": 3})
        b = compute_digest("table2", {"seed": 3, "sizes": [5, 20]})
        assert a == b
        check_digest(a)

    def test_numpy_and_python_scalars_agree(self):
        a = compute_digest("fig2", {"n_points": 40, "seed": 7})
        b = compute_digest(
            "fig2", {"n_points": np.int64(40), "seed": np.int64(7)}
        )
        assert a == b

    def test_different_params_different_digest(self):
        a = compute_digest("fig2", {"seed": 1})
        b = compute_digest("fig2", {"seed": 2})
        assert a != b

    def test_version_is_part_of_the_key(self):
        a = compute_digest("fig2", {"seed": 1}, version="1.0.0")
        b = compute_digest("fig2", {"seed": 1}, version="2.0.0")
        assert a != b

    def test_seed_material_defaults_to_seed_param(self):
        material = digest_material("fig2", {"seed": 9})
        assert material["seed"] == 9

    def test_canonical_json_is_sorted_and_compact(self):
        text = canonical_json({"b": 1, "a": [2, 3]})
        assert text == '{"a":[2,3],"b":1}'


class TestPutGet:
    def test_roundtrip(self, store):
        manifest = _put(store, seed=1)
        assert store.contains(manifest.digest)
        payload = store.load_result(manifest.digest)
        assert payload["series"] == [1.0, 2.0, 1.0]
        assert store.manifest(manifest.digest).rendered == "run seed=1"

    def test_manifest_provenance_fields(self, store):
        manifest = _put(store, seed=1)
        assert manifest.experiment_id == "convergence"
        assert manifest.numpy_version == np.__version__
        assert manifest.created_at  # ISO timestamp
        assert manifest.host
        check_digest(manifest.result_sha256, "result_sha256")

    def test_missing_digest_raises_store_error(self, store):
        with pytest.raises(StoreError):
            store.manifest("0" * 64)

    def test_malformed_digest_raises_contract_error(self, store):
        with pytest.raises(ContractError):
            store.contains("not-a-digest")

    def test_rejected_payload_types_do_not_corrupt(self, store):
        from repro.errors import ParameterError

        with pytest.raises(ParameterError):
            store.put("convergence", {"seed": 1}, object())
        assert store.find() == []


class TestIntegrity:
    def test_tampered_result_fails_verification(self, store):
        manifest = _put(store, seed=1)
        store.result_path(manifest.digest).write_text('{"forged": true}\n')
        with pytest.raises(IntegrityError):
            store.load_result(manifest.digest)

    def test_unverified_read_is_possible_but_explicit(self, store):
        manifest = _put(store, seed=1)
        store.result_path(manifest.digest).write_text('{"forged": true}\n')
        assert store.load_result(manifest.digest, verify=False) == {
            "forged": True
        }

    def test_truncated_manifest_raises_integrity_error(self, store):
        manifest = _put(store, seed=1)
        store.manifest_path(manifest.digest).write_text('{"digest": ')
        with pytest.raises(IntegrityError):
            store.manifest(manifest.digest)

    def test_manifest_digest_mismatch_detected(self, store):
        a = _put(store, seed=1)
        b = _put(store, seed=2)
        text = store.manifest_path(a.digest).read_text()
        store.manifest_path(b.digest).write_text(text)
        with pytest.raises(IntegrityError):
            store.manifest(b.digest)

    def test_manifest_from_dict_requires_core_fields(self):
        with pytest.raises(IntegrityError):
            Manifest.from_dict({"digest": "0" * 64})


class TestQueries:
    def test_find_filters_by_experiment_and_params(self, store):
        _put(store, seed=1)
        _put(store, seed=2)
        _put(store, seed=3, experiment="fig2")
        assert len(store.find()) == 3
        assert len(store.find("convergence")) == 2
        hits = store.find("convergence", where={"seed": 2})
        assert len(hits) == 1 and hits[0]["params"]["seed"] == 2

    def test_latest_prefers_newest(self, store, monkeypatch):
        stamps = iter(
            ["2026-08-01T00:00:00+00:00", "2026-08-02T00:00:00+00:00"]
        )
        monkeypatch.setattr(store_module, "_utc_now", lambda: next(stamps))
        _put(store, seed=1)
        newest = _put(store, seed=2)
        assert store.latest("convergence")["digest"] == newest.digest

    def test_resolve_prefix(self, store):
        manifest = _put(store, seed=1)
        assert store.resolve(manifest.digest[:10]) == manifest.digest
        with pytest.raises(StoreError):
            store.resolve("ffffffffffff")

    def test_diff_reports_exactly_the_changed_axis(self, store):
        a = _put(store, seed=1)
        b = _put(store, seed=2)
        diff = store.diff(a.digest, b.digest)
        assert diff.param_changes == {"seed": (1, 2)}
        assert "seed" in diff.render()
        assert not diff.identical
        # results differ only where the seed leaked into the payload
        assert set(diff.result_changes) == {"seed", "series.2"}

    def test_diff_identical_runs(self, store):
        a = _put(store, seed=1)
        diff = store.diff(a.digest, a.digest)
        assert diff.identical
        assert "identical" in diff.render()


class TestMaintenance:
    def test_reindex_rebuilds_from_manifests(self, store):
        _put(store, seed=1)
        _put(store, seed=2)
        store.index_path.unlink()
        assert store.reindex() == 2
        assert len(store.find()) == 2

    def test_corrupt_index_is_repaired_on_read(self, store):
        _put(store, seed=1)
        store.index_path.write_text("not json")
        assert len(store.find()) == 1

    def test_gc_keep_latest_per_experiment(self, store, monkeypatch):
        stamps = iter(
            f"2026-08-0{day}T00:00:00+00:00" for day in (1, 2, 3, 4)
        )
        monkeypatch.setattr(store_module, "_utc_now", lambda: next(stamps))
        old = _put(store, seed=1)
        new = _put(store, seed=2)
        other = _put(store, seed=3, experiment="fig2")
        removed = store.gc(keep_latest=1)
        assert removed == [old.digest]
        assert store.contains(new.digest) and store.contains(other.digest)

    def test_gc_before_timestamp(self, store, monkeypatch):
        stamps = iter(
            ["2026-01-01T00:00:00+00:00", "2026-08-01T00:00:00+00:00"]
        )
        monkeypatch.setattr(store_module, "_utc_now", lambda: next(stamps))
        old = _put(store, seed=1)
        new = _put(store, seed=2)
        removed = store.gc(before="2026-06-01")
        assert removed == [old.digest]
        assert store.contains(new.digest)

    def test_gc_drops_incomplete_objects(self, store):
        manifest = _put(store, seed=1)
        orphan = store.object_dir("ab" * 32)
        orphan.mkdir(parents=True)
        (orphan / "result.json").write_text("{}\n")  # no manifest
        removed = store.gc()
        assert removed == ["ab" * 32]
        assert store.contains(manifest.digest)

    def test_remove_is_idempotent(self, store):
        manifest = _put(store, seed=1)
        assert store.remove(manifest.digest)
        assert not store.remove(manifest.digest)
        assert store.find() == []


class TestCheckDigestContract:
    @pytest.mark.parametrize(
        "bad",
        ["", "zz" * 32, "A" * 64, "0" * 63, "0" * 65, 12345, None],
    )
    def test_rejects_non_digests(self, bad):
        with pytest.raises(ContractError):
            check_digest(bad)

    def test_accepts_sha256_hex(self):
        assert check_digest("0123456789abcdef" * 4) == "0123456789abcdef" * 4


class TestIntegrityErrorNamesFile:
    """IntegrityError messages must name the offending file on disk."""

    def test_invalid_json_manifest_names_manifest_path(self, store):
        manifest = _put(store, seed=1)
        path = store.manifest_path(manifest.digest)
        path.write_text("{not json")
        with pytest.raises(IntegrityError, match="manifest at .*manifest.json"):
            store.manifest(manifest.digest)

    def test_field_stripped_manifest_names_manifest_path(self, store):
        import json as json_module

        manifest = _put(store, seed=1)
        path = store.manifest_path(manifest.digest)
        data = json_module.loads(path.read_text())
        del data["result_sha256"]
        path.write_text(json_module.dumps(data))
        with pytest.raises(IntegrityError) as excinfo:
            store.manifest(manifest.digest)
        assert str(path) in str(excinfo.value)
        assert "result_sha256" in str(excinfo.value)

    def test_tampered_result_names_result_path(self, store):
        manifest = _put(store, seed=1)
        path = store.result_path(manifest.digest)
        path.write_text('{"forged": true}\n')
        with pytest.raises(IntegrityError) as excinfo:
            store.verify(manifest.digest)
        assert str(path) in str(excinfo.value)

    def test_missing_result_names_result_path(self, store):
        manifest = _put(store, seed=1)
        path = store.result_path(manifest.digest)
        path.unlink()
        with pytest.raises(IntegrityError) as excinfo:
            store.verify(manifest.digest)
        assert str(path) in str(excinfo.value)

    def test_corrupt_profile_names_profile_path(self, store):
        manifest = _put(store, seed=1)
        path = store.profile_path(manifest.digest)
        path.write_text("[1, 2")
        with pytest.raises(IntegrityError) as excinfo:
            store.load_profile(manifest.digest)
        assert str(path) in str(excinfo.value)


class TestProfiles:
    def test_put_and_load_profile(self, store):
        from repro import obs

        recorder = obs.MemoryRecorder()
        with obs.use_recorder(recorder):
            obs.inc("bianchi.solves", 2, kind="heterogeneous")
        profile = obs.build_profile(recorder.events, meta={"experiment_id": "x"})
        params = {"n_players": 3, "seed": 1}
        manifest = store.put(
            "convergence",
            params,
            {"seed": 1},
            rendered="r",
            profile=profile,
        )
        assert store.has_profile(manifest.digest)
        loaded = store.load_profile(manifest.digest)
        assert loaded["digest"] == profile["digest"]
        assert loaded["counters"] == {"bianchi.solves|kind=heterogeneous": 2}

    def test_put_without_profile_has_none(self, store):
        manifest = _put(store, seed=1)
        assert not store.has_profile(manifest.digest)
        with pytest.raises(StoreError, match="no run profile"):
            store.load_profile(manifest.digest)

    def test_non_object_profile_rejected_on_read(self, store):
        manifest = _put(store, seed=1)
        store.profile_path(manifest.digest).write_text("[1, 2]")
        with pytest.raises(IntegrityError, match="JSON object"):
            store.load_profile(manifest.digest)

    def test_remove_deletes_profile_too(self, store):
        manifest = _put(store, seed=1)
        store.profile_path(manifest.digest).write_text("{}")
        store.remove(manifest.digest)
        assert not store.has_profile(manifest.digest)
