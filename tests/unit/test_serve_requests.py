"""Unit tests for the serving layer's request model and wire encoding."""

from __future__ import annotations

import json
import math

import pytest

from repro.errors import ServeError
from repro.serve import REQUEST_KINDS, encode_json, parse_request
from repro.store import compute_digest


class TestParseRequest:
    def test_kinds_enumerated(self):
        assert REQUEST_KINDS == (
            "best_response",
            "curve",
            "deviation_table",
            "equilibrium",
            "fixed_point",
            "mean_field",
        )

    def test_equilibrium_defaults_filled(self):
        request = parse_request(
            {"kind": "equilibrium", "params": {"n_nodes": 5}}
        )
        assert request.kind == "equilibrium"
        assert request.params == {
            "n_nodes": 5,
            "mode": "basic",
            "preset": "default",
            "ignore_cost": True,
        }
        assert request.experiment_id == "serve.equilibrium"

    def test_digest_matches_store_recipe(self):
        request = parse_request(
            {"kind": "equilibrium", "params": {"n_nodes": 5}}
        )
        assert request.digest == compute_digest(
            "serve.equilibrium", request.params
        )

    def test_equivalent_documents_share_a_digest(self):
        implicit = parse_request(
            {"kind": "equilibrium", "params": {"n_nodes": 5}}
        )
        explicit = parse_request(
            {
                "kind": "equilibrium",
                "params": {
                    "ignore_cost": True,
                    "preset": "default",
                    "mode": "basic",
                    "n_nodes": 5,
                },
            }
        )
        assert implicit.digest == explicit.digest

    def test_distinct_params_distinct_digests(self):
        a = parse_request({"kind": "equilibrium", "params": {"n_nodes": 5}})
        b = parse_request({"kind": "equilibrium", "params": {"n_nodes": 6}})
        assert a.digest != b.digest

    def test_unknown_kind_rejected(self):
        with pytest.raises(ServeError, match="unknown request kind"):
            parse_request({"kind": "oracle", "params": {}})

    @pytest.mark.parametrize("kind", [{"oops": 1}, ["mean_field"], 42, None])
    def test_non_string_kind_rejected(self, kind):
        # Unhashable kinds must raise ServeError (wire 400), never leak
        # a TypeError out of the dict lookup and drop the connection.
        with pytest.raises(ServeError, match="unknown request kind"):
            parse_request({"kind": kind, "params": {}})

    def test_missing_required_param_rejected(self):
        with pytest.raises(ServeError, match="requires param 'n_nodes'"):
            parse_request({"kind": "equilibrium", "params": {}})

    def test_unknown_param_rejected(self):
        with pytest.raises(ServeError, match="unknown param"):
            parse_request(
                {"kind": "equilibrium", "params": {"n_nodes": 5, "jobs": 4}}
            )

    def test_non_mapping_document_rejected(self):
        with pytest.raises(ServeError, match="JSON object"):
            parse_request([1, 2, 3])

    @pytest.mark.parametrize(
        "params",
        [
            {"n_nodes": 1},
            {"n_nodes": "five"},
            {"n_nodes": 5, "mode": "turbo"},
            {"n_nodes": 5, "preset": "802.11ax"},
        ],
    )
    def test_domain_validation(self, params):
        with pytest.raises(ServeError):
            parse_request({"kind": "equilibrium", "params": params})

    def test_discount_domain(self):
        with pytest.raises(ServeError, match="discount"):
            parse_request(
                {
                    "kind": "best_response",
                    "params": {"n_nodes": 5, "discount": 1.0},
                }
            )

    def test_fixed_point_windows_validated(self):
        request = parse_request(
            {"kind": "fixed_point", "params": {"windows": [32, 64]}}
        )
        assert request.params["windows"] == [32.0, 64.0]
        assert request.params["max_stage"] == 5
        with pytest.raises(ServeError, match="windows"):
            parse_request({"kind": "fixed_point", "params": {"windows": []}})

    def test_mean_field_params_normalised(self):
        request = parse_request(
            {
                "kind": "mean_field",
                "params": {
                    "type_windows": [32, 64],
                    "type_counts": [900, 100],
                },
            }
        )
        assert request.params == {
            "type_windows": [32.0, 64.0],
            "type_counts": [900.0, 100.0],
            "max_stage": 5,
        }
        assert request.experiment_id == "serve.mean_field"

    @pytest.mark.parametrize(
        "params",
        [
            {"type_windows": [32.0]},
            {"type_windows": [], "type_counts": []},
            {"type_windows": [32.0], "type_counts": []},
            {"type_windows": [32.0, 64.0], "type_counts": [5.0]},
            {"type_windows": [32.0], "type_counts": [0.0]},
            {"type_windows": [32.0], "type_counts": [-3.0]},
            {"type_windows": [32.0], "type_counts": [True]},
            {"type_windows": [32.0], "type_counts": ["many"]},
            {"type_windows": [32.0], "type_counts": [5.0], "max_stage": 0},
        ],
    )
    def test_mean_field_domain_validation(self, params):
        with pytest.raises(ServeError):
            parse_request({"kind": "mean_field", "params": params})


class TestWireEncoding:
    """REPRO003 at the protocol boundary: no NaN/Infinity on the wire."""

    def test_non_finite_floats_become_null(self):
        raw = encode_json(
            {"nan": math.nan, "inf": math.inf, "ninf": -math.inf, "ok": 1.5}
        )
        assert b"NaN" not in raw
        assert b"Infinity" not in raw
        decoded = json.loads(raw)
        assert decoded == {"nan": None, "inf": None, "ninf": None, "ok": 1.5}

    def test_nested_payloads_are_cleaned(self):
        raw = encode_json({"rows": [[1.0, math.nan], [math.inf, 2.0]]})
        assert json.loads(raw) == {"rows": [[1.0, None], [None, 2.0]]}

    def test_compact_utf8(self):
        raw = encode_json({"a": 1})
        assert raw == b'{"a": 1}'
