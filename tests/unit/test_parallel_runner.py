"""Tests for the parallel experiment runner and its determinism contract.

The headline property (pinned here, claimed in the module docstrings and
the CLI help) is that ``jobs`` is a pure speed knob: for a fixed root
seed the sweep artefacts are bit-identical whatever the worker count.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cli import PARALLEL_EXPERIMENTS, build_parser
from repro.errors import ParameterError
from repro.experiments import figure2, table2
from repro.experiments.parallel import parallel_map, resolve_jobs, spawn_seeds
from repro.phy.parameters import AccessMode


def _square(x):
    """Module-level worker so the pool can pickle it."""
    return x * x


class TestResolveJobs:
    def test_none_means_serial(self):
        assert resolve_jobs(None) == 1

    def test_positive_passthrough(self):
        assert resolve_jobs(1) == 1
        assert resolve_jobs(4) == 4

    def test_zero_means_cpu_count(self):
        assert resolve_jobs(0) >= 1

    def test_negative_rejected(self):
        with pytest.raises(ParameterError):
            resolve_jobs(-1)


class TestSpawnSeeds:
    def test_count_and_type(self):
        children = spawn_seeds(42, 3)
        assert len(children) == 3
        assert all(
            isinstance(c, np.random.SeedSequence) for c in children
        )

    def test_deterministic_streams(self):
        first = [
            np.random.default_rng(c).integers(0, 1 << 30, 4)
            for c in spawn_seeds(42, 3)
        ]
        second = [
            np.random.default_rng(c).integers(0, 1 << 30, 4)
            for c in spawn_seeds(42, 3)
        ]
        for a, b in zip(first, second):
            np.testing.assert_array_equal(a, b)

    def test_children_are_distinct(self):
        a, b = spawn_seeds(7, 2)
        draws_a = np.random.default_rng(a).integers(0, 1 << 30, 8)
        draws_b = np.random.default_rng(b).integers(0, 1 << 30, 8)
        assert not np.array_equal(draws_a, draws_b)

    def test_seed_sequence_root_accepted(self):
        root = np.random.SeedSequence(5)
        assert len(spawn_seeds(root, 2)) == 2

    def test_negative_count_rejected(self):
        with pytest.raises(ParameterError):
            spawn_seeds(0, -1)


class TestParallelMap:
    def test_serial_path(self):
        assert parallel_map(_square, [1, 2, 3]) == [1, 4, 9]

    def test_empty_tasks(self):
        assert parallel_map(_square, [], jobs=4) == []

    def test_pool_preserves_order(self):
        tasks = list(range(10))
        assert parallel_map(_square, tasks, jobs=2) == [
            t * t for t in tasks
        ]

    def test_pool_equals_serial(self):
        tasks = list(range(7))
        assert parallel_map(_square, tasks, jobs=3) == parallel_map(
            _square, tasks
        )


class TestJobsInvariance:
    """Bit-identical artefacts for a fixed seed, any worker count."""

    def test_table2_rows_identical_across_jobs(self, params):
        kwargs = dict(
            params=params,
            sizes=(3, 4),
            slots_per_point=6_000,
            seed=0,
        )
        serial = table2.run_mode(AccessMode.BASIC, **kwargs)
        pooled = table2.run_mode(AccessMode.BASIC, jobs=2, **kwargs)
        assert serial.rows == pooled.rows

    def test_figure2_curves_identical_across_jobs(self, params):
        kwargs = dict(params=params, sizes=(3, 5), n_points=6)
        serial = figure2.run_mode(AccessMode.BASIC, **kwargs)
        pooled = figure2.run_mode(AccessMode.BASIC, jobs=2, **kwargs)
        np.testing.assert_array_equal(serial.windows, pooled.windows)
        for n in serial.curves:
            np.testing.assert_array_equal(
                serial.curves[n], pooled.curves[n]
            )


class TestCliJobsFlag:
    def test_run_accepts_jobs(self):
        args = build_parser().parse_args(["run", "table2", "--jobs", "3"])
        assert args.jobs == 3

    def test_run_all_accepts_jobs(self):
        args = build_parser().parse_args(["run-all", "--jobs", "0"])
        assert args.jobs == 0

    def test_jobs_defaults_to_none(self):
        args = build_parser().parse_args(["run", "table2"])
        assert args.jobs is None

    def test_parallel_experiment_set_matches_registry(self):
        from repro.experiments import EXPERIMENTS

        assert PARALLEL_EXPERIMENTS <= set(EXPERIMENTS)
