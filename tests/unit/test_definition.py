"""Unit tests for :class:`repro.game.definition.MACGame`."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import GameDefinitionError
from repro.game.definition import MACGame
from repro.phy.parameters import AccessMode


class TestConstruction:
    def test_needs_two_players(self, params):
        with pytest.raises(GameDefinitionError):
            MACGame(n_players=1, params=params)

    def test_default_mode_is_basic(self, params):
        game = MACGame(n_players=3, params=params)
        assert game.mode is AccessMode.BASIC

    def test_discount_comes_from_params(self, small_game, params):
        assert small_game.discount_factor == params.discount_factor

    def test_strategy_space_from_params(self, params):
        game = MACGame(
            n_players=3, params=params.with_updates(cw_min=2, cw_max=9)
        )
        assert list(game.strategy_space) == list(range(2, 10))

    def test_times_match_mode(self, params, basic_times, rts_times):
        basic = MACGame(n_players=3, params=params, mode=AccessMode.BASIC)
        rts = MACGame(n_players=3, params=params, mode=AccessMode.RTS_CTS)
        assert basic.times.success_us == basic_times.success_us
        assert rts.times.collision_us == rts_times.collision_us


class TestProfileValidation:
    def test_accepts_valid_profile(self, small_game):
        arr = small_game.validate_profile([10, 20, 30, 40])
        assert arr.shape == (4,)

    def test_rejects_wrong_length(self, small_game):
        with pytest.raises(GameDefinitionError):
            small_game.validate_profile([10, 20])

    def test_rejects_out_of_space(self, small_game):
        hi = small_game.params.cw_max
        with pytest.raises(GameDefinitionError):
            small_game.validate_profile([10, 20, 30, hi + 1])
        with pytest.raises(GameDefinitionError):
            small_game.validate_profile([0, 20, 30, 40])


class TestPayoffs:
    def test_stage_payoffs_shape(self, small_game):
        payoffs = small_game.stage_payoffs([64] * 4)
        assert payoffs.shape == (4,)

    def test_symmetric_payoff_matches_stage(self, small_game):
        window = 80
        via_stage = small_game.stage_payoffs([window] * 4)[0]
        via_symmetric = small_game.symmetric_stage_payoff(window)
        assert via_symmetric == pytest.approx(float(via_stage), rel=1e-6)

    def test_global_payoff_is_n_times_individual(self, small_game):
        window = 100
        assert small_game.global_payoff(window) == pytest.approx(
            4 * small_game.symmetric_utility(window)
        )

    def test_unequal_windows_unequal_payoffs(self, small_game):
        payoffs = small_game.stage_payoffs([16, 64, 256, 1024])
        assert len(np.unique(np.round(payoffs, 12))) == 4
