"""Unit tests for the spatial multi-hop simulator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ParameterError
from repro.phy.parameters import AccessMode
from repro.sim.spatial import SpatialSimulator


def line_positions(n: int, spacing: float) -> np.ndarray:
    return np.column_stack([np.arange(n) * spacing, np.zeros(n)])


class TestConstruction:
    def test_adjacency_from_range(self, params):
        positions = line_positions(3, 100.0)
        sim = SpatialSimulator(positions, 150.0, [32] * 3, params)
        expected = np.array(
            [
                [False, True, False],
                [True, False, True],
                [False, True, False],
            ]
        )
        np.testing.assert_array_equal(sim.adjacency, expected)
        np.testing.assert_array_equal(sim.neighbor_counts(), [1, 2, 1])

    def test_rejects_bad_shapes(self, params):
        with pytest.raises(ParameterError):
            SpatialSimulator(np.zeros((1, 2)), 100.0, [32], params)
        with pytest.raises(ParameterError):
            SpatialSimulator(np.zeros((3, 3)), 100.0, [32] * 3, params)

    def test_rejects_bad_range(self, params):
        with pytest.raises(ParameterError):
            SpatialSimulator(line_positions(2, 10), 0.0, [32, 32], params)

    def test_rejects_window_mismatch(self, params):
        with pytest.raises(ParameterError):
            SpatialSimulator(line_positions(3, 10), 50.0, [32, 32], params)

    def test_phase_lengths_positive(self, params):
        sim = SpatialSimulator(
            line_positions(2, 10), 50.0, [32, 32], params
        )
        assert sim.rts_slots >= 1
        assert sim.data_slots >= 1


class TestIsolatedPair:
    def test_two_connected_nodes_exchange_traffic(self, params):
        sim = SpatialSimulator(
            line_positions(2, 10), 50.0, [16, 16], params, seed=1
        )
        result = sim.run(20_000)
        assert result.attempts.sum() > 0
        assert result.successes.sum() > 0
        # No hidden nodes exist in a 2-clique.
        assert result.hidden_losses.sum() == 0

    def test_isolated_node_never_transmits(self, params):
        positions = np.array([[0.0, 0.0], [10.0, 0.0], [1000.0, 0.0]])
        sim = SpatialSimulator(positions, 50.0, [16] * 3, params, seed=1)
        result = sim.run(10_000)
        assert result.attempts[2] == 0
        assert result.payoff_rates[2] == 0.0  # repro: noqa=REPRO003


class TestHiddenTerminals:
    def test_classic_hidden_pair_loses_at_receiver(self, params):
        # 0 -- 1 -- 2: nodes 0 and 2 cannot hear each other but both talk
        # to 1, the textbook hidden-terminal layout.
        positions = line_positions(3, 100.0)
        sim = SpatialSimulator(
            positions, 150.0, [4, 4, 4], params, seed=7
        )
        result = sim.run(60_000)
        hidden = result.hidden_losses[0] + result.hidden_losses[2]
        assert hidden > 0

    def test_clique_has_no_hidden_losses(self, params):
        # Everyone hears everyone: losses must be in-range only.
        positions = line_positions(4, 10.0)
        sim = SpatialSimulator(positions, 500.0, [4] * 4, params, seed=7)
        result = sim.run(40_000)
        assert result.hidden_losses.sum() == 0
        assert result.inrange_losses.sum() > 0

    def test_degradation_estimates_bounded(self, params):
        positions = line_positions(5, 100.0)
        sim = SpatialSimulator(positions, 150.0, [16] * 5, params, seed=3)
        result = sim.run(40_000)
        d = result.hidden_degradation()
        p = result.collision_probability()
        assert np.all(d >= 0) and np.all(d <= 1)
        assert np.all(p >= 0) and np.all(p <= 1)


class TestAccounting:
    def test_attempts_partition_into_outcomes(self, params):
        positions = line_positions(4, 100.0)
        sim = SpatialSimulator(positions, 150.0, [8] * 4, params, seed=5)
        result = sim.run(30_000)
        # Attempts still in flight at the horizon may not be resolved;
        # allow a tiny slack.
        resolved = (
            result.successes + result.inrange_losses + result.hidden_losses
        )
        assert np.all(result.attempts - resolved <= 1)
        assert np.all(resolved <= result.attempts)

    def test_elapsed_time_is_slots_times_sigma(self, params):
        sim = SpatialSimulator(
            line_positions(2, 10), 50.0, [16, 16], params, seed=1
        )
        result = sim.run(12_345)
        assert result.elapsed_us == pytest.approx(
            12_345 * params.slot_time_us
        )

    def test_payoff_rates_formula(self, params):
        sim = SpatialSimulator(
            line_positions(2, 10), 50.0, [16, 16], params, seed=1
        )
        result = sim.run(20_000)
        expected = (
            result.successes * params.gain - result.attempts * params.cost
        ) / result.elapsed_us
        np.testing.assert_allclose(result.payoff_rates, expected)

    def test_determinism(self, params):
        positions = line_positions(4, 100.0)
        a = SpatialSimulator(
            positions, 150.0, [8] * 4, params, seed=5
        ).run(15_000)
        b = SpatialSimulator(
            positions, 150.0, [8] * 4, params, seed=5
        ).run(15_000)
        np.testing.assert_array_equal(a.successes, b.successes)
        np.testing.assert_array_equal(a.attempts, b.attempts)


class TestReconfiguration:
    def test_set_windows_slows_network(self, params):
        # The data exchange occupies ~190 slots, so attempt counts are
        # airtime-limited until the window dwarfs the exchange length;
        # contrast a tiny window with a very large one.
        positions = line_positions(4, 100.0)
        sim = SpatialSimulator(positions, 150.0, [8] * 4, params, seed=5)
        busy = sim.run(20_000).attempts.sum()
        sim.set_windows([4096] * 4)
        calm = sim.run(20_000).attempts.sum()
        assert calm < busy / 2

    def test_set_windows_validates(self, params):
        sim = SpatialSimulator(
            line_positions(2, 10), 50.0, [16, 16], params, seed=1
        )
        with pytest.raises(ParameterError):
            sim.set_windows([16])
        with pytest.raises(ParameterError):
            sim.set_windows([16, 0])

    def test_basic_mode_supported(self, params):
        sim = SpatialSimulator(
            line_positions(3, 100.0),
            150.0,
            [16] * 3,
            params,
            AccessMode.BASIC,
            seed=2,
        )
        result = sim.run(20_000)
        assert result.attempts.sum() > 0
