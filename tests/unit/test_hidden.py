"""Unit tests for hidden-node sets and degradation estimates."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ParameterError, TopologyError
from repro.multihop.hidden import analytic_hidden_degradation, hidden_sets
from repro.multihop.topology import GeometricTopology


def line(n, spacing=100.0, tx_range=150.0):
    positions = np.column_stack(
        [np.arange(n) * spacing, np.zeros(n)]
    )
    return GeometricTopology(
        positions=positions, tx_range=tx_range, width=5000.0, height=100.0
    )


class TestHiddenSets:
    def test_classic_three_node_chain(self):
        # 0 -- 1 -- 2: for sender 0 with receiver 1, node 2 is hidden.
        topo = line(3)
        sets = hidden_sets(topo, 0)
        np.testing.assert_array_equal(sets[1], [2])

    def test_clique_has_empty_hidden_sets(self):
        topo = line(3, spacing=10.0, tx_range=500.0)
        for sender in range(3):
            sets = hidden_sets(topo, sender)
            for hidden in sets.values():
                assert hidden.size == 0

    def test_middle_sender_sees_no_hidden_nodes_in_chain_of_three(self):
        topo = line(3)
        sets = hidden_sets(topo, 1)
        # Receivers 0 and 2: their other neighbour is the sender itself.
        assert sets[0].size == 0
        assert sets[2].size == 0

    def test_longer_chain_hidden_depth(self):
        topo = line(5)
        sets = hidden_sets(topo, 2)
        # Receiver 1's neighbours are {0, 2}; 0 is hidden from sender 2.
        np.testing.assert_array_equal(sets[1], [0])
        np.testing.assert_array_equal(sets[3], [4])

    def test_isolated_sender_rejected(self):
        positions = np.array([[0.0, 0.0], [10.0, 0.0], [2000.0, 0.0]])
        topo = GeometricTopology(
            positions=positions, tx_range=50.0, width=5000.0, height=100.0
        )
        with pytest.raises(TopologyError):
            hidden_sets(topo, 2)


class TestAnalyticDegradation:
    def test_no_hidden_nodes_means_no_degradation(self):
        topo = line(3, spacing=10.0, tx_range=500.0)
        p_hn = analytic_hidden_degradation(topo, 0, [0.1, 0.1, 0.1])
        assert p_hn == pytest.approx(1.0)

    def test_formula_for_single_hidden_node(self):
        topo = line(3)
        tau = [0.1, 0.1, 0.2]
        # Sender 0, receiver 1, hidden {2}: p_hn = (1 - 0.2)^V.
        p_hn = analytic_hidden_degradation(
            topo, 0, tau, vulnerability_slots=2.0, receiver=1
        )
        assert p_hn == pytest.approx(0.8**2)

    def test_averages_over_receivers(self):
        topo = line(4)
        tau = [0.1, 0.1, 0.3, 0.2]
        # Sender 1: receivers 0 (hidden set empty... 0's neighbours are
        # {1}) and 2 (hidden {3}).
        expected = np.mean([1.0, (1 - 0.2) ** 2])
        assert analytic_hidden_degradation(topo, 1, tau) == pytest.approx(
            expected
        )

    def test_more_aggressive_hidden_nodes_degrade_more(self):
        topo = line(3)
        mild = analytic_hidden_degradation(topo, 0, [0.1, 0.1, 0.05])
        harsh = analytic_hidden_degradation(topo, 0, [0.1, 0.1, 0.5])
        assert harsh < mild

    def test_longer_vulnerability_degrades_more(self):
        topo = line(3)
        tau = [0.1, 0.1, 0.2]
        short = analytic_hidden_degradation(
            topo, 0, tau, vulnerability_slots=1.0
        )
        long = analytic_hidden_degradation(
            topo, 0, tau, vulnerability_slots=8.0
        )
        assert long < short

    def test_validation(self):
        topo = line(3)
        with pytest.raises(ParameterError):
            analytic_hidden_degradation(topo, 0, [0.1, 0.1])  # wrong length
        with pytest.raises(ParameterError):
            analytic_hidden_degradation(topo, 0, [0.1, 0.1, 1.0])
        with pytest.raises(ParameterError):
            analytic_hidden_degradation(
                topo, 0, [0.1, 0.1, 0.1], vulnerability_slots=0.0
            )
        with pytest.raises(TopologyError):
            analytic_hidden_degradation(
                topo, 0, [0.1, 0.1, 0.1], receiver=2
            )
