"""Unit tests for the JSON export of experiment results."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.errors import ParameterError
from repro.experiments.export import result_to_dict, to_json, write_json
from repro.experiments import run_experiment
from repro.phy.parameters import AccessMode


class TestResultToDict:
    def test_scalars_pass_through(self):
        assert result_to_dict(3) == 3
        assert result_to_dict(2.5) == 2.5  # repro: noqa=REPRO003
        assert result_to_dict("x") == "x"
        assert result_to_dict(True) is True
        assert result_to_dict(None) is None

    def test_numpy_types_converted(self):
        assert result_to_dict(np.int64(3)) == 3
        assert result_to_dict(np.float64(2.5)) == 2.5  # repro: noqa=REPRO003
        assert result_to_dict(np.bool_(True)) is True
        assert result_to_dict(np.array([1, 2])) == [1, 2]
        assert result_to_dict(np.array([[1.5]])) == [[1.5]]

    def test_nonfinite_floats_become_null(self):
        assert result_to_dict(float("nan")) is None
        assert result_to_dict(float("inf")) is None

    def test_nonfinite_numpy_scalars_become_null(self):
        assert result_to_dict(np.float64("nan")) is None
        assert result_to_dict(np.float64("-inf")) is None
        assert result_to_dict(np.array([1.0, np.nan, np.inf])) == [
            1.0,
            None,
            None,
        ]

    def test_enum_converted(self):
        assert result_to_dict(AccessMode.BASIC) == "basic"

    def test_mapping_keys_stringified(self):
        assert result_to_dict({5: [1, 2]}) == {"5": [1, 2]}

    def test_range_converted(self):
        assert result_to_dict(range(3)) == [0, 1, 2]

    def test_dataclass_recursion(self):
        from dataclasses import dataclass

        @dataclass(frozen=True)
        class Inner:
            values: np.ndarray

        @dataclass(frozen=True)
        class Outer:
            name: str
            inner: Inner

        outer = Outer(name="x", inner=Inner(values=np.array([1.0])))
        assert result_to_dict(outer) == {
            "name": "x",
            "inner": {"values": [1.0]},
        }

    def test_unknown_type_rejected(self):
        with pytest.raises(ParameterError):
            result_to_dict(object())


class TestEndToEnd:
    def test_experiment_results_serialise(self):
        for experiment_id, kwargs in [
            ("table1", {}),
            ("convergence", {"n_players": 4, "n_stages": 4}),
            ("malicious", {"n_players": 4}),
            ("bestresponse", {"n_players": 3, "n_stages": 3}),
        ]:
            result = run_experiment(experiment_id, **kwargs)
            payload = json.loads(to_json(result))
            assert isinstance(payload, dict)
            assert payload  # non-empty object

    def test_write_json_roundtrip(self, tmp_path):
        result = run_experiment("table1")
        path = write_json(result, tmp_path / "table1.json")
        payload = json.loads(path.read_text())
        assert payload["parameters"]["Packet size"] == "8184 bits"


class TestStandardsCompliance:
    def test_to_json_never_emits_nan_infinity_tokens(self):
        text = to_json(
            {
                "nan": float("nan"),
                "inf": np.float64("inf"),
                "arr": np.array([np.nan, 1.5]),
            }
        )
        assert "NaN" not in text and "Infinity" not in text
        payload = json.loads(text)  # strict parsers accept the output
        assert payload == {"nan": None, "inf": None, "arr": [None, 1.5]}


class TestWriteJsonAtomicity:
    def test_creates_missing_parent_directories(self, tmp_path):
        target = tmp_path / "a" / "b" / "c" / "result.json"
        path = write_json({"x": 1}, target)
        assert path == target
        assert json.loads(target.read_text()) == {"x": 1}

    def test_no_temp_file_left_behind(self, tmp_path):
        write_json({"x": 1}, tmp_path / "out.json")
        assert [p.name for p in tmp_path.iterdir()] == ["out.json"]

    def test_failed_serialisation_leaves_existing_file_intact(self, tmp_path):
        target = tmp_path / "out.json"
        write_json({"x": 1}, target)
        with pytest.raises(ParameterError):
            write_json({"bad": object()}, target)
        assert json.loads(target.read_text()) == {"x": 1}
        assert [p.name for p in tmp_path.iterdir()] == ["out.json"]
