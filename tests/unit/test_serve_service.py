"""Unit tests for the async solve service: cache, coalescing, batching.

Each test drives :class:`~repro.serve.service.EquilibriumService` inside
``asyncio.run`` with injectable solvers: a threading.Event-gated solver
to hold a solve open while concurrent requests pile on, a crashing
solver for the error path, and counting wrappers to assert exactly how
many times the compute layer ran.
"""

from __future__ import annotations

import asyncio
import threading
from typing import Any, Dict, List

import pytest

from repro import obs
from repro.errors import GameDefinitionError, ServeError
from repro.serve import EquilibriumService, parse_request
from repro.serve.solvers import (
    solve_fixed_point_batch,
    solve_mean_field_request_batch,
    solve_request,
)
from repro.store import ResultStore


@pytest.fixture()
def store(tmp_path) -> ResultStore:
    return ResultStore(tmp_path / "store")


EQ5 = {"kind": "equilibrium", "params": {"n_nodes": 5}}


class CountingSolver:
    """Thread-safe call counter around the real (or a fake) solver."""

    def __init__(self, inner=solve_request):
        self.calls = 0
        self._lock = threading.Lock()
        self._inner = inner

    def __call__(self, request):
        with self._lock:
            self.calls += 1
        return self._inner(request)


class GatedSolver(CountingSolver):
    """Blocks inside the worker thread until ``release`` is called."""

    def __init__(self, inner=solve_request):
        super().__init__(inner)
        self._gate = threading.Event()
        self.started = threading.Event()

    def release(self) -> None:
        self._gate.set()

    def __call__(self, request):
        self.started.set()
        if not self._gate.wait(timeout=30.0):  # pragma: no cover - hang guard
            raise RuntimeError("gate never released")
        return super().__call__(request)


async def _close(service: EquilibriumService) -> None:
    await service.close()


class TestCache:
    def test_second_call_is_a_store_hit(self, store):
        async def scenario():
            service = EquilibriumService(store)
            first = await service.solve_document(EQ5)
            second = await service.solve_document(EQ5)
            await _close(service)
            return first, second

        first, second = asyncio.run(scenario())
        assert first["cached"] is False
        assert second["cached"] is True
        assert first["result"] == second["result"]
        assert first["digest"] == second["digest"]
        assert store.contains(first["digest"])

    def test_cache_disabled_always_solves(self, store):
        solver = CountingSolver()

        async def scenario():
            service = EquilibriumService(store, cache=False, solver=solver)
            await service.solve_document(EQ5)
            await service.solve_document(EQ5)
            await _close(service)

        asyncio.run(scenario())
        assert solver.calls == 2
        assert not store.contains(parse_request(EQ5).digest)

    def test_stored_profile_digest_is_deterministic(self, tmp_path):
        def profile_digest(root) -> str:
            async def scenario():
                service = EquilibriumService(ResultStore(root))
                response = await service.solve_document(EQ5)
                await _close(service)
                return response["digest"]

            digest = asyncio.run(scenario())
            profile = ResultStore(root).load_profile(digest)
            return profile["digest"]

        first = profile_digest(tmp_path / "a")
        second = profile_digest(tmp_path / "b")
        assert first == second


class TestCoalescing:
    def test_identical_concurrent_requests_share_one_solve(self, store):
        solver = GatedSolver()

        async def scenario():
            service = EquilibriumService(store, solver=solver)
            loop = asyncio.get_running_loop()
            waiters = [
                loop.create_task(service.solve_document(EQ5))
                for _ in range(5)
            ]
            await loop.run_in_executor(None, solver.started.wait)
            await asyncio.sleep(0.05)  # let every waiter attach
            solver.release()
            responses = await asyncio.gather(*waiters)
            await _close(service)
            return responses

        responses = asyncio.run(scenario())
        assert solver.calls == 1
        assert sum(1 for r in responses if r["coalesced"]) == 4
        results = [r["result"] for r in responses]
        assert all(result == results[0] for result in results)

    def test_waiter_cancellation_does_not_cancel_the_solve(self, store):
        solver = GatedSolver()

        async def scenario():
            service = EquilibriumService(store, solver=solver)
            loop = asyncio.get_running_loop()
            doomed = loop.create_task(service.solve_document(EQ5))
            survivor = loop.create_task(service.solve_document(EQ5))
            await loop.run_in_executor(None, solver.started.wait)
            await asyncio.sleep(0.02)
            doomed.cancel()
            with pytest.raises(asyncio.CancelledError):
                await doomed
            solver.release()
            response = await asyncio.wait_for(survivor, timeout=30.0)
            await _close(service)
            return response

        response = asyncio.run(scenario())
        assert solver.calls == 1
        assert response["result"]["window_star"] > 0

    def test_worker_crash_errors_every_waiter_without_hanging(self, store):
        def crashing(request):
            raise RuntimeError("worker segfaulted, figuratively")

        async def scenario():
            service = EquilibriumService(store, solver=crashing)
            waiters = [
                asyncio.get_running_loop().create_task(
                    service.solve_document(EQ5)
                )
                for _ in range(4)
            ]
            outcomes = await asyncio.wait_for(
                asyncio.gather(*waiters, return_exceptions=True),
                timeout=30.0,
            )
            inflight = service.inflight
            await _close(service)
            return outcomes, inflight

        outcomes, inflight = asyncio.run(scenario())
        assert len(outcomes) == 4
        for outcome in outcomes:
            assert isinstance(outcome, ServeError)
            assert "figuratively" in str(outcome)
        assert inflight == 0
        assert not store.contains(parse_request(EQ5).digest)

    def test_repro_errors_pass_through_unwrapped(self, store):
        async def scenario():
            service = EquilibriumService(store)
            try:
                # The reference window passes request validation but
                # leaves the game's strategy space; the solver's own
                # GameDefinitionError must reach the waiter unwrapped
                # (only non-repro exceptions become ServeError).
                await service.solve_document(
                    {
                        "kind": "best_response",
                        "params": {
                            "n_nodes": 5,
                            "discount": 0.9,
                            "reference_window": 10_000,
                        },
                    }
                )
            finally:
                await _close(service)

        with pytest.raises(GameDefinitionError):
            asyncio.run(scenario())

    def test_request_between_solve_and_commit_coalesces(self, store):
        """The in-flight entry must outlive the solve until the commit."""
        commit_gate = threading.Event()
        commit_entered = threading.Event()

        async def scenario():
            service = EquilibriumService(store)
            original_commit = service._commit

            def gated_commit(request, result, events, wall):
                commit_entered.set()
                if not commit_gate.wait(timeout=30.0):  # pragma: no cover
                    raise RuntimeError("commit gate never released")
                original_commit(request, result, events, wall)

            service._commit = gated_commit
            loop = asyncio.get_running_loop()
            first = loop.create_task(service.solve_document(EQ5))
            await loop.run_in_executor(None, commit_entered.wait)
            # Solve is done, commit is in flight: a new identical
            # request must coalesce, not re-solve or miss the cache.
            late = loop.create_task(service.solve_document(EQ5))
            await asyncio.sleep(0.02)
            commit_gate.set()
            responses = await asyncio.gather(first, late)
            await _close(service)
            return responses

        first, late = asyncio.run(scenario())
        assert first["coalesced"] is False
        assert late["coalesced"] is True
        assert late["result"] == first["result"]


class TestMicroBatching:
    def test_concurrent_fixed_points_fold_into_one_batch(self, store):
        batch_sizes: List[int] = []

        def counting_batch(windows, max_stage):
            batch_sizes.append(len(windows))
            return solve_fixed_point_batch(windows, max_stage)

        documents = [
            {
                "kind": "fixed_point",
                "params": {"windows": [32.0 + i, 64.0], "max_stage": 5},
            }
            for i in range(6)
        ]

        async def scenario():
            service = EquilibriumService(
                store, batch_solver=counting_batch, batch_window_s=0.05
            )
            responses = await asyncio.gather(
                *(service.solve_document(d) for d in documents)
            )
            await _close(service)
            return responses

        responses = asyncio.run(scenario())
        assert batch_sizes == [6]
        for document, response in zip(documents, responses):
            solo = solve_fixed_point_batch(
                [document["params"]["windows"]], 5
            )[0]
            assert response["result"]["tau"] == pytest.approx(solo["tau"])

    def test_mixed_shapes_split_into_per_shape_batches(self, store):
        batch_shapes: List[Any] = []

        def recording_batch(windows, max_stage):
            batch_shapes.append((len(windows), len(windows[0]), max_stage))
            return solve_fixed_point_batch(windows, max_stage)

        documents = [
            {"kind": "fixed_point", "params": {"windows": [32.0, 64.0]}},
            {"kind": "fixed_point", "params": {"windows": [33.0, 64.0]}},
            {
                "kind": "fixed_point",
                "params": {"windows": [32.0, 64.0, 128.0]},
            },
        ]

        async def scenario():
            service = EquilibriumService(
                store, batch_solver=recording_batch, batch_window_s=0.05
            )
            await asyncio.gather(
                *(service.solve_document(d) for d in documents)
            )
            await _close(service)

        asyncio.run(scenario())
        assert sorted(batch_shapes) == [(1, 3, 5), (2, 2, 5)]

    def test_batch_solver_failure_reaches_every_waiter(self, store):
        def broken_batch(windows, max_stage):
            raise RuntimeError("batch kernel crashed")

        documents = [
            {"kind": "fixed_point", "params": {"windows": [32.0 + i, 64.0]}}
            for i in range(3)
        ]

        async def scenario():
            service = EquilibriumService(
                store, batch_solver=broken_batch, batch_window_s=0.02
            )
            outcomes = await asyncio.wait_for(
                asyncio.gather(
                    *(service.solve_document(d) for d in documents),
                    return_exceptions=True,
                ),
                timeout=30.0,
            )
            await _close(service)
            return outcomes

        outcomes = asyncio.run(scenario())
        assert len(outcomes) == 3
        assert all(isinstance(o, ServeError) for o in outcomes)


class TestObservability:
    def test_lifecycle_counters_reach_the_ambient_recorder(self, store):
        recorder = obs.MemoryRecorder()

        async def scenario():
            service = EquilibriumService(store)
            await service.solve_document(EQ5)
            await service.solve_document(EQ5)
            await asyncio.gather(
                service.solve_document(
                    {"kind": "equilibrium", "params": {"n_nodes": 7}}
                ),
                service.solve_document(
                    {"kind": "equilibrium", "params": {"n_nodes": 7}}
                ),
            )
            await _close(service)

        with obs.use_recorder(recorder):
            asyncio.run(scenario())

        names: Dict[str, int] = {}
        for event in recorder.events:
            if event["type"] == "counter":
                key = event["name"]
                if event.get("labels", {}).get("outcome"):
                    key = f"{key}.{event['labels']['outcome']}"
                names[key] = names.get(key, 0) + event["value"]
        assert names.get("serve.requests") == 4
        assert names.get("serve.cache.miss") == 2
        assert names.get("serve.cache.hit") == 1
        assert names.get("serve.coalesced") == 1
        assert names.get("serve.solves") == 2


class TestMeanFieldBatching:
    def test_concurrent_mean_fields_fold_into_one_batch(self, store):
        batch_sizes: List[int] = []

        def counting_mf_batch(type_windows, type_counts, max_stage):
            batch_sizes.append(len(type_windows))
            return solve_mean_field_request_batch(
                type_windows, type_counts, max_stage
            )

        documents = [
            {
                "kind": "mean_field",
                "params": {
                    "type_windows": [32.0 + i, 256.0],
                    "type_counts": [1000.0, 2000.0],
                },
            }
            for i in range(5)
        ]

        async def scenario():
            service = EquilibriumService(
                store,
                mean_field_batch_solver=counting_mf_batch,
                batch_window_s=0.05,
            )
            responses = await asyncio.gather(
                *(service.solve_document(d) for d in documents)
            )
            await _close(service)
            return responses

        responses = asyncio.run(scenario())
        assert batch_sizes == [5]
        for document, response in zip(documents, responses):
            solo = solve_mean_field_request_batch(
                [document["params"]["type_windows"]],
                [document["params"]["type_counts"]],
                5,
            )[0]
            assert response["result"]["tau"] == pytest.approx(solo["tau"])
            assert response["result"]["population"] == 3000.0  # repro: noqa=REPRO003

    def test_mean_field_and_fixed_point_groups_stay_separate(self, store):
        kinds_run: List[str] = []

        def fp_batch(windows, max_stage):
            kinds_run.append("fixed_point")
            return solve_fixed_point_batch(windows, max_stage)

        def mf_batch(type_windows, type_counts, max_stage):
            kinds_run.append("mean_field")
            return solve_mean_field_request_batch(
                type_windows, type_counts, max_stage
            )

        documents = [
            {"kind": "fixed_point", "params": {"windows": [32.0, 64.0]}},
            {
                "kind": "mean_field",
                "params": {
                    # Same width and max_stage as the fixed_point - only
                    # the kind separates the groups.
                    "type_windows": [32.0, 64.0],
                    "type_counts": [10.0, 10.0],
                },
            },
        ]

        async def scenario():
            service = EquilibriumService(
                store,
                batch_solver=fp_batch,
                mean_field_batch_solver=mf_batch,
                batch_window_s=0.05,
            )
            responses = await asyncio.gather(
                *(service.solve_document(d) for d in documents)
            )
            await _close(service)
            return responses

        responses = asyncio.run(scenario())
        assert sorted(kinds_run) == ["fixed_point", "mean_field"]
        assert responses[0]["kind"] == "fixed_point"
        assert responses[1]["kind"] == "mean_field"

    def test_mean_field_result_is_cached_by_digest(self, store):
        document = {
            "kind": "mean_field",
            "params": {
                "type_windows": [64.0, 1024.0],
                "type_counts": [100000.0, 900000.0],
            },
        }

        async def scenario():
            service = EquilibriumService(store, batch_window_s=0.0)
            first = await service.solve_document(document)
            second = await service.solve_document(document)
            await _close(service)
            return first, second

        first, second = asyncio.run(scenario())
        assert first["cached"] is False
        assert second["cached"] is True
        assert second["result"] == first["result"]
        assert second["digest"] == first["digest"]
