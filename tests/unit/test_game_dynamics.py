"""Unit tests for replicator dynamics over CW-type distributions.

The load-bearing claims: under myopic ("stage") fitness the population
collapses to the most aggressive window present; under TFT-enforced
("tft") fitness it converges into the Theorem 2 NE family
``[W_c0, W_c*]`` on the paper's Table II parameter set (n = 20,
W_c* = 335, basic access).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ParameterError
from repro.game.dynamics import (
    ReplicatorTrajectory,
    converges_to_ne,
    replicator_step,
    run_replicator,
)
from repro.game.equilibrium import analyze_equilibria
from repro.phy.parameters import AccessMode, PhyParameters
from repro.phy.timing import slot_times


@pytest.fixture(scope="module")
def setup():
    params = PhyParameters()
    times = slot_times(params, AccessMode.BASIC)
    return params, times


class TestReplicatorStep:
    def test_preserves_simplex(self):
        x = np.array([0.2, 0.3, 0.5])
        u = np.array([1.0, -2.0, 0.5])
        x_next = replicator_step(x, u)
        assert abs(float(x_next.sum()) - 1.0) < 1e-12
        assert np.all(x_next >= 0.0)

    def test_higher_fitness_gains_share(self):
        x = np.array([0.5, 0.5])
        u = np.array([1.0, 0.0])
        x_next = replicator_step(x, u)
        assert x_next[0] > 0.5 > x_next[1]

    def test_translation_invariance(self):
        x = np.array([0.3, 0.7])
        u = np.array([0.1, -0.4])
        np.testing.assert_allclose(
            replicator_step(x, u), replicator_step(x, u + 123.0)
        )

    def test_extinct_types_stay_extinct(self):
        x = np.array([0.0, 0.4, 0.6])
        u = np.array([100.0, 0.0, 0.0])
        x_next = replicator_step(x, u)
        assert x_next[0] == 0.0  # repro: noqa=REPRO003

    def test_rejects_bad_inputs(self):
        with pytest.raises(ParameterError):
            replicator_step(np.array([0.5, 0.5]), np.array([1.0]))
        with pytest.raises(ParameterError):
            replicator_step(
                np.array([0.5, 0.5]),
                np.array([0.0, 0.0]),
                learning_rate=0.0,
            )
        with pytest.raises(ParameterError):
            replicator_step(np.array([0.0, 0.0]), np.array([1.0, 1.0]))


class TestStageFitness:
    def test_collapses_to_most_aggressive_type(self, setup):
        params, times = setup
        traj = run_replicator(
            np.array([16.0, 64.0, 335.0]),
            20,
            params,
            times,
            fitness_mode="stage",
        )
        assert isinstance(traj, ReplicatorTrajectory)
        assert traj.converged
        assert traj.dominant_window == 16.0  # repro: noqa=REPRO003
        assert traj.final_shares[0] > 0.99


class TestTFTFitness:
    def test_converges_into_theorem2_family_table2(self, setup):
        # Table II, basic access, n = 20: W_c* = 335.  A grid
        # straddling the NE family must concentrate on W_c* itself.
        params, times = setup
        analysis = analyze_equilibria(20, params, times)
        assert analysis.window_star == 335
        grid = np.array([16.0, 64.0, 335.0, 1024.0])
        traj = run_replicator(
            grid, 20, params, times, fitness_mode="tft"
        )
        assert traj.converged
        assert traj.dominant_window == 335.0  # repro: noqa=REPRO003
        assert converges_to_ne(traj, params, times, analysis=analysis)

    def test_ne_check_rejects_mass_outside_the_family(self, setup):
        # A state concentrated above W_c* is outside the Theorem 2
        # family; the checker must say so for the same analysis that
        # accepts the TFT rest point.
        params, times = setup
        analysis = analyze_equilibria(20, params, times)
        grid = np.array([16.0, 335.0, 1024.0])
        outside = ReplicatorTrajectory(
            type_windows=grid,
            population=20.0,
            fitness_mode="stage",
            shares=np.array([[1 / 3] * 3, [0.0, 0.005, 0.995]]),
            fitness=np.zeros((1, 3)),
            iterations=1,
            converged=True,
            dominant_window=1024.0,
        )
        assert not converges_to_ne(
            outside, params, times, analysis=analysis
        )


class TestTrajectoryBookkeeping:
    def test_shapes_and_simplex_rows(self, setup):
        params, times = setup
        traj = run_replicator(
            np.array([32.0, 128.0]),
            10,
            params,
            times,
            fitness_mode="stage",
            steps=25,
            tol=0.0,
        )
        assert traj.iterations == 25
        assert not traj.converged
        assert traj.shares.shape == (26, 2)
        assert traj.fitness.shape == (25, 2)
        np.testing.assert_allclose(
            traj.shares.sum(axis=1), np.ones(26), atol=1e-12
        )

    def test_custom_initial_shares(self, setup):
        params, times = setup
        traj = run_replicator(
            np.array([32.0, 128.0]),
            10,
            params,
            times,
            initial_shares=[0.9, 0.1],
            steps=1,
            tol=0.0,
        )
        np.testing.assert_allclose(traj.shares[0], [0.9, 0.1])

    def test_rejects_bad_parameters(self, setup):
        params, times = setup
        grid = np.array([32.0, 128.0])
        with pytest.raises(ParameterError):
            run_replicator(grid, 1, params, times)
        with pytest.raises(ParameterError):
            run_replicator(grid, 10, params, times, fitness_mode="nope")
        with pytest.raises(ParameterError):
            run_replicator(grid, 10, params, times, steps=0)
        with pytest.raises(ParameterError):
            run_replicator(
                grid, 10, params, times, initial_shares=[0.9, 0.3]
            )
        with pytest.raises(ParameterError):
            run_replicator(np.zeros((0,)), 10, params, times)

    def test_deterministic(self, setup):
        params, times = setup
        kwargs = dict(fitness_mode="tft", steps=40, tol=0.0)
        a = run_replicator(
            np.array([32.0, 335.0]), 20, params, times, **kwargs
        )
        b = run_replicator(
            np.array([32.0, 335.0]), 20, params, times, **kwargs
        )
        np.testing.assert_array_equal(a.shares, b.shares)
        np.testing.assert_array_equal(a.fitness, b.fitness)
