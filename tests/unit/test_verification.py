"""Unit tests for the Theorem 2 numerical verification."""

from __future__ import annotations

import pytest

from repro.errors import ParameterError
from repro.game.equilibrium import analyze_equilibria
from repro.game.verification import (
    is_stage_equilibrium,
    stage_deviation_gain,
    tft_deviation_gain,
    verify_theorem2,
)


@pytest.fixture(scope="module")
def analysis(small_game):
    return analyze_equilibria(
        small_game.n_players, small_game.params, small_game.times
    )


class TestStageGame:
    def test_undercutting_pays_in_the_stage_game(self, small_game, analysis):
        star = analysis.window_star
        assert stage_deviation_gain(small_game, star, star // 2) > 0

    def test_overshooting_loses_in_the_stage_game(self, small_game, analysis):
        star = analysis.window_star
        assert stage_deviation_gain(small_game, star, star * 2) < 0

    def test_interior_profiles_are_not_stage_equilibria(
        self, small_game, analysis
    ):
        # The reason the paper needs the repeated game: no interior
        # symmetric profile survives one-shot scrutiny.
        star = analysis.window_star
        for window in (star, max(4, star // 2)):
            assert not is_stage_equilibrium(small_game, window)

    def test_bottom_corner_is_a_degenerate_stage_equilibrium(
        self, small_game
    ):
        # At W = cw_min there is nothing to undercut with and raising
        # loses (Lemma 4), so the corner is a (bad) stage NE.
        assert is_stage_equilibrium(
            small_game, small_game.params.cw_min
        )


class TestTftPunishedGame:
    def test_long_sighted_deviations_never_pay(self, small_game, analysis):
        star = analysis.window_star
        for deviation in (star // 4, star // 2, star - 1, star + 1, star * 2):
            if deviation == star:
                continue
            gain = tft_deviation_gain(small_game, star, deviation)
            assert gain < 0

    def test_short_sighted_deviations_do_pay(self, small_game, analysis):
        star = analysis.window_star
        gain = tft_deviation_gain(
            small_game, star, max(2, star // 8), discount=0.05
        )
        assert gain > 0

    def test_slower_reaction_helps_the_deviator(self, small_game, analysis):
        star = analysis.window_star
        quick = tft_deviation_gain(
            small_game, star, star // 4, discount=0.999, reaction_stages=1
        )
        slow = tft_deviation_gain(
            small_game, star, star // 4, discount=0.999, reaction_stages=10
        )
        assert slow > quick

    def test_validation(self, small_game, analysis):
        with pytest.raises(ParameterError):
            tft_deviation_gain(small_game, 64, 32, discount=1.0)
        with pytest.raises(ParameterError):
            tft_deviation_gain(small_game, 64, 32, reaction_stages=0)


class TestVerifyTheorem2:
    def test_family_verifies_for_long_sighted_players(
        self, small_game, analysis
    ):
        report = verify_theorem2(small_game, analysis=analysis)
        assert report.verified
        assert report.worst_gain <= 0

    def test_family_subsampling_respects_bounds(self, small_game, analysis):
        report = verify_theorem2(
            small_game, analysis=analysis, max_windows=4
        )
        assert len(report.checked_windows) <= 4
        assert report.checked_windows[0] == analysis.window_breakeven
        assert report.checked_windows[-1] == analysis.window_star

    def test_fails_for_short_sighted_players(self, small_game, analysis):
        # With delta small the family is NOT an equilibrium set - the
        # Cagalj regime again.
        report = verify_theorem2(
            small_game, analysis=analysis, discount=0.05
        )
        assert not report.verified
        assert report.worst_gain > 0

    def test_stage_equilibria_only_at_the_corner(self, small_game, analysis):
        report = verify_theorem2(small_game, analysis=analysis)
        assert set(report.stage_equilibria) <= {
            small_game.params.cw_min
        }
