"""Tests for SARIF 2.1.0 output (repro.lint.sarif)."""

from __future__ import annotations

import json

from repro.lint.analyzer import Violation
from repro.lint.sarif import (
    SARIF_VERSION,
    build_sarif,
    render_sarif,
    validate_sarif,
)


def make_violations():
    return [
        Violation(
            path="src/repro/sim/engine.py",
            line=10,
            col=5,
            rule="REPRO001",
            message="np.random.default_rng() without a seed argument",
        ),
        Violation(
            path="src/repro/campaign/engine.py",
            line=42,
            col=1,
            rule="REPRO101",
            message="impure call reachable from cache-entering root",
        ),
    ]


class TestBuildSarif:
    def test_valid_against_structural_schema(self):
        log = build_sarif(make_violations())
        assert validate_sarif(log) == []
        assert log["version"] == SARIF_VERSION

    def test_empty_run_is_valid(self):
        log = build_sarif([])
        assert validate_sarif(log) == []
        assert log["runs"][0]["results"] == []

    def test_rule_descriptors_and_indices(self):
        log = build_sarif(
            make_violations(),
            rule_summaries={"REPRO001": "unseeded default_rng"},
        )
        driver = log["runs"][0]["tool"]["driver"]
        ids = [rule["id"] for rule in driver["rules"]]
        assert ids == ["REPRO001", "REPRO101"]
        assert (
            driver["rules"][0]["shortDescription"]["text"]
            == "unseeded default_rng"
        )
        for result in log["runs"][0]["results"]:
            assert ids[result["ruleIndex"]] == result["ruleId"]

    def test_result_regions_are_one_based(self):
        violation = Violation(
            path="x.py", line=0, col=0, rule="REPRO001", message="m"
        )
        log = build_sarif([violation])
        region = log["runs"][0]["results"][0]["locations"][0][
            "physicalLocation"
        ]["region"]
        assert region["startLine"] == 1
        assert region["startColumn"] == 1

    def test_partial_fingerprints_present_and_stable(self):
        log = build_sarif(make_violations())
        fingerprints = [
            result["partialFingerprints"]["reproLintFingerprint/v1"]
            for result in log["runs"][0]["results"]
        ]
        assert all(isinstance(fp, str) and fp for fp in fingerprints)
        # Line-shift invariance: same (rule, path, message), new lines.
        shifted = [
            Violation(
                path=v.path,
                line=v.line + 7,
                col=v.col,
                rule=v.rule,
                message=v.message,
            )
            for v in make_violations()
        ]
        shifted_log = build_sarif(shifted)
        shifted_fps = [
            result["partialFingerprints"]["reproLintFingerprint/v1"]
            for result in shifted_log["runs"][0]["results"]
        ]
        assert shifted_fps == fingerprints

    def test_base_dir_relativizes_uris(self, tmp_path):
        target = tmp_path / "pkg" / "mod.py"
        target.parent.mkdir()
        target.write_text("x = 1\n")
        violation = Violation(
            path=str(target), line=1, col=1, rule="REPRO001", message="m"
        )
        log = build_sarif([violation], base_dir=tmp_path)
        uri = log["runs"][0]["results"][0]["locations"][0][
            "physicalLocation"
        ]["artifactLocation"]["uri"]
        assert uri == "pkg/mod.py"

    def test_path_outside_base_dir_kept(self, tmp_path):
        violation = Violation(
            path="/elsewhere/mod.py",
            line=1,
            col=1,
            rule="REPRO001",
            message="m",
        )
        log = build_sarif([violation], base_dir=tmp_path)
        uri = log["runs"][0]["results"][0]["locations"][0][
            "physicalLocation"
        ]["artifactLocation"]["uri"]
        assert uri == "/elsewhere/mod.py"

    def test_render_round_trips_through_json(self):
        text = render_sarif(make_violations())
        assert text.endswith("\n")
        assert validate_sarif(json.loads(text)) == []


class TestValidateSarif:
    def test_rejects_non_object(self):
        assert validate_sarif([]) != []

    def test_rejects_wrong_version(self):
        log = build_sarif(make_violations())
        log["version"] = "2.0.0"
        assert any("version" in e for e in validate_sarif(log))

    def test_rejects_missing_driver_name(self):
        log = build_sarif(make_violations())
        del log["runs"][0]["tool"]["driver"]["name"]
        assert any("driver.name" in e for e in validate_sarif(log))

    def test_rejects_unknown_rule_id(self):
        log = build_sarif(make_violations())
        log["runs"][0]["results"][0]["ruleId"] = "REPRO999"
        assert any("ruleId" in e for e in validate_sarif(log))

    def test_rejects_out_of_range_rule_index(self):
        log = build_sarif(make_violations())
        log["runs"][0]["results"][0]["ruleIndex"] = 99
        assert any("ruleIndex" in e for e in validate_sarif(log))

    def test_rejects_bad_level(self):
        log = build_sarif(make_violations())
        log["runs"][0]["results"][0]["level"] = "fatal"
        assert any("level" in e for e in validate_sarif(log))

    def test_rejects_zero_based_region(self):
        log = build_sarif(make_violations())
        location = log["runs"][0]["results"][0]["locations"][0]
        location["physicalLocation"]["region"]["startLine"] = 0
        assert any("startLine" in e for e in validate_sarif(log))

    def test_rejects_missing_message_text(self):
        log = build_sarif(make_violations())
        log["runs"][0]["results"][0]["message"] = {}
        assert any("message.text" in e for e in validate_sarif(log))

    def test_rejects_non_string_fingerprints(self):
        log = build_sarif(make_violations())
        log["runs"][0]["results"][0]["partialFingerprints"] = {"k": 7}
        assert any("partialFingerprints" in e for e in validate_sarif(log))
