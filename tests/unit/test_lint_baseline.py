"""Tests for the lint baseline ratchet (repro.lint.baseline)."""

from __future__ import annotations

import json

import pytest

from repro.errors import LintError
from repro.lint.analyzer import Violation
from repro.lint.baseline import (
    compare_to_baseline,
    fingerprint_violations,
    load_baseline,
    save_baseline,
)


def violation(path="src/mod.py", line=1, col=1, rule="REPRO001", message="m"):
    return Violation(path=path, line=line, col=col, rule=rule, message=message)


class TestFingerprints:
    def test_line_and_column_independent(self):
        before = fingerprint_violations([violation(line=3, col=2)])
        after = fingerprint_violations([violation(line=42, col=9)])
        assert before == after

    def test_rule_path_message_all_contribute(self):
        base = fingerprint_violations([violation()])[0]
        assert fingerprint_violations([violation(rule="REPRO002")])[0] != base
        assert fingerprint_violations([violation(path="other.py")])[0] != base
        assert fingerprint_violations([violation(message="n")])[0] != base

    def test_duplicate_triples_get_occurrence_counters(self):
        duplicates = [violation(line=1), violation(line=5)]
        fingerprints = fingerprint_violations(duplicates)
        assert len(set(fingerprints)) == 2

    def test_occurrence_counters_follow_line_order(self):
        # The same duplicates presented in reverse input order must get
        # the same fingerprint *per line*, so baselines don't churn when
        # the input ordering changes.
        forward = fingerprint_violations([violation(line=1), violation(line=5)])
        backward = fingerprint_violations(
            [violation(line=5), violation(line=1)]
        )
        assert forward == [backward[1], backward[0]]

    def test_aligned_with_input_order(self):
        first = violation(path="a.py", message="alpha")
        second = violation(path="b.py", message="beta")
        fingerprints = fingerprint_violations([second, first])
        assert fingerprints == [
            fingerprint_violations([second])[0],
            fingerprint_violations([first])[0],
        ]


class TestSaveLoad:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "baseline.json"
        violations = [violation(), violation(rule="REPRO003", message="x")]
        count = save_baseline(path, violations)
        assert count == 2
        assert sorted(load_baseline(path)) == sorted(
            fingerprint_violations(violations)
        )

    def test_entries_are_human_readable(self, tmp_path):
        path = tmp_path / "baseline.json"
        save_baseline(path, [violation(message="keep me reviewable")])
        payload = json.loads(path.read_text())
        assert payload["entries"][0]["message"] == "keep me reviewable"
        assert payload["entries"][0]["rule"] == "REPRO001"

    def test_missing_file_is_empty(self, tmp_path):
        assert load_baseline(tmp_path / "absent.json") == []

    def test_malformed_json_raises_lint_error(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text("{not json")
        with pytest.raises(LintError):
            load_baseline(path)

    def test_wrong_shape_raises_lint_error(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps({"fingerprints": "nope"}))
        with pytest.raises(LintError):
            load_baseline(path)
        path.write_text(json.dumps([1, 2, 3]))
        with pytest.raises(LintError):
            load_baseline(path)


class TestRatchet:
    def test_new_legacy_and_stale_partition(self, tmp_path):
        legacy = violation(message="old debt")
        gone = violation(message="since fixed")
        baseline = fingerprint_violations([legacy, gone])
        fresh = violation(message="brand new")
        comparison = compare_to_baseline([legacy, fresh], baseline)
        assert comparison.new == (fresh,)
        assert comparison.legacy == (legacy,)
        assert comparison.stale == (fingerprint_violations([gone])[0],)

    def test_each_fingerprint_absorbs_one_occurrence(self):
        first = violation(line=1)
        second = violation(line=5)
        third = violation(line=9)
        baseline = fingerprint_violations([first, second])
        comparison = compare_to_baseline([first, second, third], baseline)
        assert comparison.legacy == (first, second)
        assert comparison.new == (third,)

    def test_empty_baseline_everything_is_new(self):
        violations = [violation(), violation(rule="REPRO002")]
        comparison = compare_to_baseline(violations, [])
        assert comparison.new == tuple(violations)
        assert comparison.legacy == ()
        assert comparison.stale == ()

    def test_clean_run_reports_all_stale(self):
        baseline = fingerprint_violations([violation()])
        comparison = compare_to_baseline([], baseline)
        assert comparison.new == ()
        assert comparison.stale == tuple(baseline)

    def test_line_shift_does_not_break_ratchet(self):
        tracked = violation(line=10)
        baseline = fingerprint_violations([tracked])
        shifted = violation(line=200)
        comparison = compare_to_baseline([shifted], baseline)
        assert comparison.new == ()
        assert comparison.legacy == (shifted,)
