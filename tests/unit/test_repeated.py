"""Unit tests for the repeated-game engine."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import GameDefinitionError
from repro.game.repeated import RepeatedGameEngine
from repro.game.strategies import (
    ConstantStrategy,
    GenerousTitForTat,
    ShortSightedStrategy,
    TitForTat,
)


class TestConstruction:
    def test_strategy_count_must_match(self, small_game):
        with pytest.raises(GameDefinitionError):
            RepeatedGameEngine(small_game, [TitForTat()] * 3, [64] * 4)

    def test_initial_profile_validated(self, small_game):
        with pytest.raises(GameDefinitionError):
            RepeatedGameEngine(small_game, [TitForTat()] * 4, [64] * 3)

    def test_negative_noise_rejected(self, small_game):
        with pytest.raises(GameDefinitionError):
            RepeatedGameEngine(
                small_game,
                [TitForTat()] * 4,
                [64] * 4,
                observation_noise=-1,
            )


class TestTftDynamics:
    def test_converges_to_minimum_in_one_reaction(self, small_game):
        engine = RepeatedGameEngine(
            small_game, [TitForTat()] * 4, [64, 100, 200, 80]
        )
        trace = engine.run(4)
        assert trace.final_windows.tolist() == [64.0] * 4
        assert trace.converged_at == 1
        assert trace.has_common_window()

    def test_converged_profile_is_absorbing(self, small_game):
        engine = RepeatedGameEngine(
            small_game, [TitForTat()] * 4, [50] * 4
        )
        trace = engine.run(5)
        history = trace.window_history()
        assert np.all(history == 50)
        assert trace.converged_at == 0

    def test_deviator_floods_network(self, small_game):
        strategies = [ShortSightedStrategy(10)] + [TitForTat()] * 3
        engine = RepeatedGameEngine(small_game, strategies, [64] * 4)
        trace = engine.run(4)
        # Stage 1: deviator moves; stage 2: TFT follows.
        assert trace.records[1].windows.tolist() == [10.0, 64.0, 64.0, 64.0]
        assert trace.records[2].windows.tolist() == [10.0] * 4

    def test_stop_when_converged_truncates(self, small_game):
        engine = RepeatedGameEngine(
            small_game, [TitForTat()] * 4, [64, 100, 200, 80]
        )
        trace = engine.run(50, stop_when_converged=True)
        assert trace.n_stages < 50
        assert trace.has_common_window()


class TestPayoffAccounting:
    def test_stage_payoffs_match_game(self, small_game):
        engine = RepeatedGameEngine(
            small_game, [ConstantStrategy(64)] * 4, [64] * 4
        )
        trace = engine.run(2)
        expected = small_game.stage_payoffs([64] * 4)
        np.testing.assert_allclose(
            trace.records[0].stage_payoffs, expected, rtol=1e-12
        )

    def test_discounted_payoffs_geometric(self, small_game):
        engine = RepeatedGameEngine(
            small_game, [ConstantStrategy(64)] * 4, [64] * 4
        )
        horizon = 6
        trace = engine.run(horizon)
        delta = 0.5
        per_stage = trace.records[0].stage_payoffs[0]
        expected = per_stage * (1 - delta**horizon) / (1 - delta)
        assert trace.discounted_payoffs(delta)[0] == pytest.approx(expected)

    def test_cache_reuses_stage_solutions(self, small_game):
        engine = RepeatedGameEngine(
            small_game, [ConstantStrategy(64)] * 4, [64] * 4
        )
        engine.run(10)
        assert len(engine._stage_cache) == 1


class TestObservationNoise:
    def test_own_window_always_exact(self, small_game, rng):
        engine = RepeatedGameEngine(
            small_game,
            [TitForTat()] * 4,
            [64] * 4,
            observation_noise=10,
            rng=rng,
        )
        trace = engine.run(3)
        for record in trace.records:
            views = record.observed_windows
            assert views.shape == (4, 4)
            np.testing.assert_array_equal(
                np.diagonal(views), record.windows
            )

    def test_noise_bounded(self, small_game, rng):
        engine = RepeatedGameEngine(
            small_game,
            [ConstantStrategy(64)] * 4,
            [64] * 4,
            observation_noise=5,
            rng=rng,
        )
        trace = engine.run(4)
        for record in trace.records:
            assert np.all(np.abs(record.observed_windows - 64) <= 5)

    def test_gtft_stable_under_noise_where_tft_drifts(self, small_game):
        # The tolerant strategy should hold the common window; plain TFT
        # chases the noisy minimum downward.
        start = [64] * 4
        gtft = RepeatedGameEngine(
            small_game,
            [GenerousTitForTat(memory=3, tolerance=0.75)] * 4,
            start,
            observation_noise=5,
            rng=np.random.default_rng(3),
        )
        gtft_trace = gtft.run(10)
        assert gtft_trace.final_windows.tolist() == [64.0] * 4

        tft = RepeatedGameEngine(
            small_game,
            [TitForTat()] * 4,
            start,
            observation_noise=5,
            rng=np.random.default_rng(3),
        )
        tft_trace = tft.run(10)
        assert tft_trace.final_windows.min() < 64


class TestTraceApi:
    def test_empty_trace_final_windows_raises(self, small_game):
        from repro.game.repeated import GameTrace

        with pytest.raises(GameDefinitionError):
            GameTrace().final_windows

    def test_run_rejects_zero_stages(self, small_game):
        engine = RepeatedGameEngine(
            small_game, [TitForTat()] * 4, [64] * 4
        )
        with pytest.raises(GameDefinitionError):
            engine.run(0)

    def test_histories_have_consistent_shapes(self, small_game):
        engine = RepeatedGameEngine(
            small_game, [TitForTat()] * 4, [64, 70, 80, 90]
        )
        trace = engine.run(5)
        assert trace.window_history().shape == (5, 4)
        assert trace.payoff_history().shape == (5, 4)
