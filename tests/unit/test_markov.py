"""Unit tests for the per-node backoff Markov chain."""

from __future__ import annotations

import numpy as np
import pytest

from repro.bianchi.markov import (
    BackoffChain,
    stationary_distribution,
    transmission_probability,
)
from repro.errors import ParameterError


class TestTransmissionProbability:
    def test_matches_bianchi_closed_form(self):
        # tau = 2(1-2p) / ((1-2p)(W+1) + pW(1-(2p)^m)) away from p=1/2.
        for window, p, m in [(32, 0.1, 5), (64, 0.3, 3), (128, 0.45, 6)]:
            expected = (
                2 * (1 - 2 * p)
                / ((1 - 2 * p) * (window + 1) + p * window * (1 - (2 * p) ** m))
            )
            assert transmission_probability(window, p, m) == pytest.approx(
                expected, rel=1e-12
            )

    def test_no_collisions_gives_two_over_w_plus_one(self):
        assert transmission_probability(32, 0.0, 5) == pytest.approx(2 / 33)

    def test_continuous_at_one_half(self):
        # The closed form has a removable singularity at p = 1/2.
        below = transmission_probability(32, 0.5 - 1e-9, 5)
        at = transmission_probability(32, 0.5, 5)
        above = transmission_probability(32, 0.5 + 1e-9, 5)
        assert below == pytest.approx(at, rel=1e-6)
        assert above == pytest.approx(at, rel=1e-6)

    def test_decreasing_in_window(self):
        taus = [transmission_probability(w, 0.2, 5) for w in (8, 16, 64, 256)]
        assert all(a > b for a, b in zip(taus, taus[1:]))

    def test_decreasing_in_collision_probability(self):
        taus = [
            transmission_probability(32, p, 5) for p in (0.0, 0.2, 0.5, 0.8)
        ]
        assert all(a > b for a, b in zip(taus, taus[1:]))

    def test_window_one_no_backoff_stage_transmits_always(self):
        assert transmission_probability(1, 0.0, 0) == pytest.approx(1.0)

    def test_bounds(self):
        assert 0 < transmission_probability(1024, 0.99, 6) < 1

    def test_rejects_bad_window(self):
        with pytest.raises(ParameterError):
            transmission_probability(0, 0.1, 5)

    def test_rejects_bad_probability(self):
        with pytest.raises(ParameterError):
            transmission_probability(32, 1.0, 5)
        with pytest.raises(ParameterError):
            transmission_probability(32, -0.1, 5)

    def test_rejects_negative_stage(self):
        with pytest.raises(ParameterError):
            transmission_probability(32, 0.1, -1)


class TestBackoffChain:
    def test_stage_window_doubles_then_caps(self):
        chain = BackoffChain(window=16, collision_probability=0.2, max_stage=3)
        assert [chain.stage_window(j) for j in range(6)] == [
            16,
            32,
            64,
            128,
            128,
            128,
        ]

    def test_stage_window_rejects_negative(self):
        chain = BackoffChain(window=16, collision_probability=0.2, max_stage=3)
        with pytest.raises(ParameterError):
            chain.stage_window(-1)

    def test_stage_probabilities_sum_to_tau(self):
        chain = BackoffChain(window=32, collision_probability=0.25, max_stage=5)
        assert chain.stage_probabilities().sum() == pytest.approx(
            chain.transmission_probability(), rel=1e-10
        )

    def test_stage_probabilities_geometric(self):
        p = 0.3
        chain = BackoffChain(window=32, collision_probability=p, max_stage=4)
        probs = chain.stage_probabilities()
        for j in range(3):
            assert probs[j + 1] / probs[j] == pytest.approx(p)
        # Final stage absorbs the tail: q(m,0) = p^m/(1-p) q00.
        assert probs[4] / probs[3] == pytest.approx(p / (1 - p))

    def test_no_collisions_all_mass_on_stage_zero(self):
        chain = BackoffChain(window=32, collision_probability=0.0, max_stage=5)
        probs = chain.stage_probabilities()
        assert probs[0] > 0
        assert np.all(probs[1:] == 0)

    def test_mean_attempts_per_packet(self):
        chain = BackoffChain(window=32, collision_probability=0.5, max_stage=5)
        assert chain.mean_attempts_per_packet() == pytest.approx(2.0)


class TestStationaryDistribution:
    def test_sums_to_one(self):
        chain = BackoffChain(window=8, collision_probability=0.3, max_stage=3)
        dist = stationary_distribution(chain)
        assert sum(dist.values()) == pytest.approx(1.0, abs=1e-10)

    def test_state_space_size(self):
        chain = BackoffChain(window=4, collision_probability=0.2, max_stage=2)
        dist = stationary_distribution(chain)
        # 4 + 8 + 16 states.
        assert len(dist) == 28

    def test_counter_marginal_decreases_linearly(self):
        chain = BackoffChain(window=8, collision_probability=0.3, max_stage=2)
        dist = stationary_distribution(chain)
        # Within a stage, q(j, k) = q(j, 0)(Wj - k)/Wj.
        q0 = dist[(0, 0)]
        for k in range(8):
            assert dist[(0, k)] == pytest.approx(q0 * (8 - k) / 8)

    def test_transmission_states_sum_to_tau(self):
        chain = BackoffChain(window=8, collision_probability=0.3, max_stage=3)
        dist = stationary_distribution(chain)
        tau = sum(v for (j, k), v in dist.items() if k == 0)
        assert tau == pytest.approx(chain.transmission_probability(), rel=1e-10)

    def test_requires_integer_window(self):
        chain = BackoffChain(window=8.5, collision_probability=0.3, max_stage=3)
        with pytest.raises(ParameterError):
            stationary_distribution(chain)

    def test_verified_against_explicit_chain_simulation(self, rng):
        # Monte-Carlo check of the closed forms: simulate the chain's
        # transitions directly and compare attempt-stage frequencies.
        window, p, m = 4, 0.35, 2
        chain = BackoffChain(window=window, collision_probability=p, max_stage=m)
        stage, counter = 0, int(rng.integers(0, window))
        attempts_per_stage = np.zeros(m + 1)
        n_slots = 400_000
        for _ in range(n_slots):
            if counter == 0:
                attempts_per_stage[stage] += 1
                if rng.random() < p:
                    stage = min(stage + 1, m)
                else:
                    stage = 0
                counter = int(rng.integers(0, window * 2**stage))
            else:
                counter -= 1
        empirical = attempts_per_stage / n_slots
        expected = chain.stage_probabilities()
        np.testing.assert_allclose(empirical, expected, rtol=0.05, atol=5e-4)
