"""Unit tests for the simulator's promiscuous-observer hook."""

from __future__ import annotations

import numpy as np
import pytest

from repro.detect.estimator import WindowObserver
from repro.sim.engine import DcfSimulator


class TestObserverHook:
    def test_observer_counts_match_simulator_counters(self, params):
        windows = [32, 64, 128]
        observer = WindowObserver(
            n_nodes=3, max_stage=params.max_backoff_stage
        )
        simulator = DcfSimulator(windows, params, seed=6)
        result = simulator.run(60_000, observer=observer)

        counters = result.counters
        assert observer.total_slots == counters.total_slots
        np.testing.assert_array_equal(
            observer.attempts,
            [node.attempts for node in counters.per_node],
        )
        np.testing.assert_array_equal(
            observer.collisions,
            [node.collisions for node in counters.per_node],
        )

    def test_streamed_estimates_recover_windows(self, params):
        windows = [32, 64, 128]
        observer = WindowObserver(
            n_nodes=3, max_stage=params.max_backoff_stage
        )
        DcfSimulator(windows, params, seed=6).run(
            150_000, observer=observer
        )
        np.testing.assert_allclose(
            observer.estimates(), windows, rtol=0.12
        )

    def test_streamed_and_batch_estimates_agree(self, params):
        windows = [40, 80]
        observer = WindowObserver(
            n_nodes=2, max_stage=params.max_backoff_stage
        )
        result = DcfSimulator(windows, params, seed=7).run(
            80_000, observer=observer
        )
        from repro.detect.estimator import estimate_windows

        np.testing.assert_allclose(
            observer.estimates(),
            estimate_windows(result, params.max_backoff_stage),
            rtol=1e-9,
        )

    def test_run_without_observer_unchanged(self, params):
        # The hook must not perturb the simulation itself.
        plain = DcfSimulator([32, 64], params, seed=8).run(30_000)
        observer = WindowObserver(
            n_nodes=2, max_stage=params.max_backoff_stage
        )
        observed = DcfSimulator([32, 64], params, seed=8).run(
            30_000, observer=observer
        )
        np.testing.assert_array_equal(plain.tau, observed.tau)
        np.testing.assert_array_equal(
            plain.payoff_rates, observed.payoff_rates
        )
