"""Unit tests for per-node local single-hop games."""

from __future__ import annotations

import numpy as np
import pytest

from repro.game.equilibrium import efficient_window
from repro.multihop.localgame import local_efficient_windows
from repro.multihop.topology import GeometricTopology
from repro.phy.parameters import AccessMode
from repro.phy.timing import slot_times


def topology_from(positions, tx_range=150.0):
    return GeometricTopology(
        positions=np.asarray(positions, dtype=float),
        tx_range=tx_range,
        width=5000.0,
        height=5000.0,
    )


class TestLocalWindows:
    def test_windows_match_local_sizes(self, params):
        # Line of 4: degrees 1,2,2,1 -> local sizes 2,3,3,2.
        topo = topology_from([[0, 0], [100, 0], [200, 0], [300, 0]])
        result = local_efficient_windows(topo, params)
        times = slot_times(params, AccessMode.RTS_CTS)
        expected_2 = efficient_window(2, params, times)
        expected_3 = efficient_window(3, params, times)
        np.testing.assert_array_equal(
            result.windows, [expected_2, expected_3, expected_3, expected_2]
        )
        np.testing.assert_array_equal(result.local_sizes, [2, 3, 3, 2])

    def test_minimum_over_contending_nodes(self, params):
        topo = topology_from([[0, 0], [100, 0], [200, 0], [300, 0]])
        result = local_efficient_windows(topo, params)
        assert result.minimum == result.windows.min()
        assert result.windows[result.argmin] == result.minimum

    def test_denser_neighbourhood_larger_window(self, params):
        # A star: the hub contends with everyone, the leaves only with
        # the hub.
        star = topology_from(
            [[500, 500], [600, 500], [400, 500], [500, 600], [500, 400]]
        )
        result = local_efficient_windows(star, params)
        hub, leaf = result.windows[0], result.windows[1]
        assert hub > leaf

    def test_isolated_node_gets_largest_window(self, params):
        positions = [[0, 0], [100, 0], [4000, 4000]]
        topo = topology_from(positions)
        result = local_efficient_windows(topo, params)
        # Node 2 is isolated: filled with the max so it never drags the
        # TFT minimum down.
        assert result.windows[2] == result.windows[:2].max()
        assert result.minimum == result.windows[:2].min()

    def test_basic_mode_gives_bigger_windows(self, params):
        topo = topology_from([[0, 0], [100, 0], [200, 0]])
        rts = local_efficient_windows(topo, params, AccessMode.RTS_CTS)
        basic = local_efficient_windows(topo, params, AccessMode.BASIC)
        assert np.all(basic.windows > rts.windows)

    def test_cache_consistency_across_equal_degrees(self, params):
        # All nodes of equal degree must share a window (cache or not).
        ring = topology_from(
            [
                [0, 0],
                [100, 0],
                [200, 0],
                [200, 100],
                [100, 100],
                [0, 100],
            ],
            tx_range=120.0,
        )
        result = local_efficient_windows(ring, params)
        degrees = ring.degrees()
        for degree in np.unique(degrees):
            values = result.windows[degrees == degree]
            assert len(set(values.tolist())) == 1
