"""Tests for the whole-program REPRO1xx rules (purity, RNG provenance,
exception contract, backend parity) and the real-tree certification."""

from __future__ import annotations

import shutil
import textwrap
from pathlib import Path

import pytest

from repro.errors import LintError
from repro.lint.analyzer import check_project
from repro.lint.project_rules import (
    PROJECT_RULE_REGISTRY,
    all_project_rule_codes,
    build_project_rules,
    register_project_rule,
)

FIXTURES = Path(__file__).resolve().parent.parent / "lint_fixtures"
WHOLEPROGRAM = FIXTURES / "wholeprogram"
SRC = Path(__file__).resolve().parent.parent.parent / "src"


def deep_check(root, **kwargs):
    violations, graph = check_project([root], **kwargs)
    return violations, graph


def write_tree(root: Path, files: dict) -> Path:
    for name, source in files.items():
        target = root / name
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(textwrap.dedent(source), encoding="utf-8")
    return root


@pytest.fixture(scope="module")
def fixture_report():
    violations, graph = check_project([WHOLEPROGRAM])
    return violations, graph


class TestPurityRule:
    def test_injected_time_read_fails_with_call_chain(self, fixture_report):
        violations, _ = fixture_report
        purity = [v for v in violations if v.rule == "REPRO101"]
        assert purity, "time.time() in a cached runner must be flagged"
        finding = purity[0]
        assert finding.path.endswith("cached_runner.py")
        assert "reads the wall clock" in finding.message
        assert "time.time()" in finding.message
        assert (
            "cached_runner.run -> cached_runner._sweep -> "
            "cached_runner._stamp" in finding.message
        )

    def test_chain_is_shortest_path(self, tmp_path):
        # Two routes to the impure callee; the report must take the
        # direct one, not the detour.
        write_tree(
            tmp_path,
            {
                "mod.py": """
                    import time

                    ANALYSIS_ROOTS = ("mod.run",)

                    def _stamp():
                        return time.time()

                    def _detour():
                        return _stamp()

                    def run():
                        _detour()
                        return _stamp()
                """,
            },
        )
        violations, _ = deep_check(tmp_path, select=["REPRO101"])
        assert len(violations) == 1
        assert "mod.run -> mod._stamp" in violations[0].message
        assert "_detour" not in violations[0].message

    def test_sanctioned_boundary_not_traversed(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "mod.py": """
                    import time

                    ANALYSIS_ROOTS = ("mod.run",)

                    def blessed():
                        return time.time()

                    def run():
                        return blessed()
                """,
            },
        )
        flagged, _ = deep_check(tmp_path, select=["REPRO101"])
        assert len(flagged) == 1
        clean, _ = deep_check(
            tmp_path,
            select=["REPRO101"],
            extra_boundaries=frozenset({"mod.blessed"}),
        )
        assert clean == []

    def test_global_mutation_reachable_from_root(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "mod.py": """
                    ANALYSIS_ROOTS = ("mod.run",)

                    _MEMO = {}

                    def _lookup(key):
                        _MEMO[key] = True
                        return _MEMO[key]

                    def run(key):
                        return _lookup(key)
                """,
            },
        )
        violations, _ = deep_check(tmp_path, select=["REPRO101"])
        assert len(violations) == 1
        assert "mutates module-level state" in violations[0].message

    def test_unreachable_impurity_not_flagged(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "mod.py": """
                    import time

                    ANALYSIS_ROOTS = ("mod.run",)

                    def untouched():
                        return time.time()

                    def run(x):
                        return x * 2
                """,
            },
        )
        violations, _ = deep_check(tmp_path, select=["REPRO101"])
        assert violations == []


class TestRngProvenanceRule:
    def test_bare_default_rng_two_hops_from_draw(self, fixture_report):
        violations, _ = fixture_report
        taint = [v for v in violations if v.rule == "REPRO102"]
        assert len(taint) == 1
        finding = taint[0]
        assert finding.path.endswith("tainted_rng.py")
        assert ".integers()" in finding.message
        assert "tainted_rng.make_generator" in finding.message
        assert "tainted_rng.sample_windows" in finding.message

    def test_resolve_rng_and_spawned_paths_clean(self, fixture_report):
        violations, _ = fixture_report
        assert not any(
            v.path.endswith("clean_rng.py") for v in violations
        ), "seed-provenanced fixture must produce zero findings"

    def test_taint_through_argument_positions(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "mod.py": """
                    import numpy as np

                    def draw(count, rng):
                        return rng.random(count)

                    def run(count):
                        rng = np.random.default_rng()
                        return draw(count, rng)
                """,
            },
        )
        violations, _ = deep_check(
            tmp_path, select=["REPRO102"], respect_noqa=False
        )
        assert len(violations) == 1
        assert "mod.draw" in violations[0].message

    def test_seeded_default_rng_is_provenanced(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "mod.py": """
                    import numpy as np

                    def run(seed, count):
                        rng = np.random.default_rng(seed)
                        return rng.random(count)
                """,
            },
        )
        violations, _ = deep_check(tmp_path, select=["REPRO102"])
        assert violations == []


class TestExceptionContractRule:
    def test_public_api_builtin_raise_flagged(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "repro/__init__.py": "",
                "repro/errors.py": """
                    class ReproError(Exception):
                        pass
                """,
                "repro/api.py": """
                    def load(path):
                        raise ValueError("bad path")
                """,
            },
        )
        violations, _ = deep_check(tmp_path, select=["REPRO103"])
        assert len(violations) == 1
        assert "raises builtin ValueError" in violations[0].message

    def test_repro_errors_hierarchy_allowed(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "repro/__init__.py": "",
                "repro/errors.py": """
                    class ReproError(Exception):
                        pass

                    class StoreError(ReproError):
                        pass
                """,
                "repro/api.py": """
                    from repro.errors import StoreError

                    def load(path):
                        raise StoreError("bad path")

                    def todo():
                        raise NotImplementedError

                    def _internal(path):
                        raise ValueError("private: out of contract")
                """,
            },
        )
        violations, _ = deep_check(tmp_path, select=["REPRO103"])
        assert violations == []


class TestBackendParityRule:
    def _backend_tree(self, tmp_path):
        target = tmp_path / "repro" / "backends"
        target.parent.mkdir(parents=True)
        (tmp_path / "repro" / "__init__.py").write_text("")
        shutil.copytree(SRC / "repro" / "backends", target)
        return tmp_path

    def test_real_backends_pass(self, tmp_path):
        tree = self._backend_tree(tmp_path)
        violations, _ = deep_check(tree, select=["REPRO104"])
        assert violations == []

    def test_mutated_python_constant_flagged(self, tmp_path):
        tree = self._backend_tree(tmp_path)
        kernels = tree / "repro" / "backends" / "calendar_kernels.py"
        kernels.write_text(
            kernels.read_text().replace(
                "0x9E3779B97F4A7C15", "0x9E3779B97F4A7C17"
            )
        )
        violations, _ = deep_check(tree, select=["REPRO104"])
        assert any(
            "splitmix64" in v.message
            and v.path.endswith("calendar_kernels.py")
            for v in violations
        )

    def test_mutated_c_constant_flagged(self, tmp_path):
        tree = self._backend_tree(tmp_path)
        cnative = tree / "repro" / "backends" / "cnative_backend.py"
        cnative.write_text(
            cnative.read_text().replace(
                "9007199254740992.0", "9007199254740994.0"
            )
        )
        violations, _ = deep_check(tree, select=["REPRO104"])
        assert any(
            "2**-53" in v.message and v.path.endswith("cnative_backend.py")
            for v in violations
        )

    def test_numba_redefining_kernel_flagged(self, tmp_path):
        tree = self._backend_tree(tmp_path)
        numba_mod = tree / "repro" / "backends" / "numba_backend.py"
        numba_mod.write_text(
            numba_mod.read_text()
            + "\n\ndef sim_chunk_kernel(*args):\n    return None\n"
        )
        violations, _ = deep_check(tree, select=["REPRO104"])
        assert any("redefines sim_chunk_kernel" in v.message for v in violations)

    def test_backends_absent_is_silent(self, tmp_path):
        write_tree(tmp_path, {"mod.py": "def f():\n    return 1\n"})
        violations, _ = deep_check(tmp_path, select=["REPRO104"])
        assert violations == []


class TestRealTreeCertification:
    """The acceptance bar: the shipped tree certifies clean with zero
    suppressions."""

    @pytest.fixture(scope="class")
    def real_report(self):
        violations, graph = check_project([SRC], respect_noqa=False)
        return violations, graph

    def test_purity_certified_for_all_roots(self, real_report):
        violations, graph = real_report
        assert [v for v in violations if v.rule == "REPRO101"] == []
        roots = set(graph.roots)
        registry = graph.modules["repro.experiments.registry"]
        assert len(registry.registry_runners) >= 12
        assert set(registry.registry_runners) <= roots
        assert "repro.backends.calendar_kernels.sim_chunk_kernel" in roots
        assert "repro.backends.calendar_kernels.fixed_point_kernel" in roots

    def test_rng_provenance_clean_without_noqa(self, real_report):
        violations, _ = real_report
        assert [v for v in violations if v.rule == "REPRO102"] == []

    def test_exception_contract_clean(self, real_report):
        violations, _ = real_report
        assert [v for v in violations if v.rule == "REPRO103"] == []

    def test_backend_parity_clean(self, real_report):
        violations, _ = real_report
        assert [v for v in violations if v.rule == "REPRO104"] == []

    def test_all_declared_roots_resolve(self, real_report):
        _, graph = real_report
        assert graph.unresolved_roots() == ()


class TestRegistry:
    def test_catalogue(self):
        assert all_project_rule_codes() == [
            "REPRO101",
            "REPRO102",
            "REPRO103",
            "REPRO104",
        ]

    def test_select_and_ignore(self):
        rules = build_project_rules(select=frozenset({"REPRO101"}))
        assert [r.code for r in rules] == ["REPRO101"]
        rules = build_project_rules(ignore=frozenset({"REPRO104"}))
        assert [r.code for r in rules] == ["REPRO101", "REPRO102", "REPRO103"]

    def test_bad_code_rejected(self):
        with pytest.raises(LintError):

            @register_project_rule
            class Bad:
                code = "REPRO999"

    def test_duplicate_code_rejected(self):
        existing = PROJECT_RULE_REGISTRY["REPRO101"]
        with pytest.raises(LintError):
            register_project_rule(existing)


class TestParallelJobs:
    def test_parallel_lint_matches_serial(self):
        from repro.lint.analyzer import check_paths

        serial, files_serial = check_paths([FIXTURES])
        parallel, files_parallel = check_paths([FIXTURES], jobs=4)
        assert files_parallel == files_serial
        assert parallel == serial

    def test_single_file_stays_serial(self, tmp_path):
        from repro.lint.analyzer import check_paths

        target = tmp_path / "mod.py"
        target.write_text(
            "import numpy as np\nrng = np.random.default_rng()\n"
        )
        violations, files_checked = check_paths([target], jobs=8)
        assert files_checked == 1
        assert [v.rule for v in violations] == ["REPRO001"]


class TestDeepNoqa:
    def test_noqa_on_call_site_suppresses_deep_finding(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "mod.py": """
                    import time

                    ANALYSIS_ROOTS = ("mod.run",)

                    def run():
                        return time.time()  # repro: noqa=REPRO101
                """,
            },
        )
        suppressed, _ = deep_check(tmp_path, select=["REPRO101"])
        assert suppressed == []
        kept, _ = deep_check(
            tmp_path, select=["REPRO101"], respect_noqa=False
        )
        assert len(kept) == 1
