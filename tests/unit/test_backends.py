"""Unit tests for the pluggable compute-backend layer."""

from __future__ import annotations

import numpy as np
import pytest

from repro import backends
from repro.backends import (
    ComputeBackend,
    available_backends,
    backend_names,
    default_backend_name,
    get_backend,
    get_namespace,
    register_backend,
    resolve_backend,
    set_default_backend,
    use_backend,
)
from repro.bianchi.batched import solve_heterogeneous_batch
from repro.campaign.spec import spec_from_dict
from repro.errors import BackendError, CampaignError
from repro.experiments.parallel import parallel_map
from repro.phy.parameters import AccessMode, default_parameters
from repro.sim.vectorized import run_batch

CALENDAR_NAMES = [
    name for name in ("python", "cnative", "numba")
    if name in available_backends()
]
ACCELERATED = [name for name in CALENDAR_NAMES if name != "python"]


@pytest.fixture(scope="module")
def params():
    return default_parameters()


@pytest.fixture(autouse=True)
def _clean_default():
    """Never leak a default-backend override between tests."""
    set_default_backend(None)
    yield
    set_default_backend(None)


class _Unavailable(ComputeBackend):
    name = "test-unavailable"

    def available(self) -> bool:
        return False

    def availability_note(self) -> str:
        return "synthetic test backend, never available"


@pytest.fixture
def unavailable_backend():
    register_backend(_Unavailable())
    yield "test-unavailable"
    backends._REGISTRY.pop("test-unavailable", None)


# ------------------------------------------------------------------ registry
class TestRegistry:
    def test_builtin_backends_registered(self):
        names = backend_names()
        for expected in ("numpy", "numba", "cnative", "python"):
            assert expected in names

    def test_numpy_and_python_always_available(self):
        names = available_backends()
        assert "numpy" in names
        assert "python" in names

    def test_unknown_name_raises_listing_registered(self):
        with pytest.raises(BackendError, match="registered:"):
            get_backend("definitely-not-a-backend")

    def test_reference_flags(self):
        numpy_backend = get_backend("numpy")
        assert numpy_backend.matches_numpy is True
        assert numpy_backend.deterministic is True
        for name in CALENDAR_NAMES:
            assert get_backend(name).matches_numpy is False
            assert get_backend(name).deterministic is True


# ---------------------------------------------------------------- precedence
class TestSelection:
    def test_builtin_default(self, monkeypatch):
        monkeypatch.delenv(backends.ENV_BACKEND, raising=False)
        assert default_backend_name() == "numpy"

    def test_env_overrides_builtin(self, monkeypatch):
        monkeypatch.setenv(backends.ENV_BACKEND, "python")
        assert default_backend_name() == "python"
        assert resolve_backend().name == "python"

    def test_set_default_overrides_env(self, monkeypatch):
        monkeypatch.setenv(backends.ENV_BACKEND, "python")
        set_default_backend("numpy")
        assert default_backend_name() == "numpy"

    def test_explicit_name_overrides_default(self):
        set_default_backend("python")
        assert resolve_backend("numpy").name == "numpy"

    def test_use_backend_restores(self):
        assert default_backend_name() == "numpy"
        with use_backend("python"):
            assert default_backend_name() == "python"
        assert default_backend_name() == "numpy"

    def test_set_default_validates_immediately(self):
        with pytest.raises(BackendError):
            set_default_backend("nope")

    def test_unavailable_falls_back_with_warning(self, unavailable_backend):
        with pytest.warns(RuntimeWarning, match="unavailable"):
            backend = resolve_backend(unavailable_backend)
        assert backend.name == "numpy"

    def test_fallback_false_raises(self, unavailable_backend):
        with pytest.raises(BackendError, match="unavailable"):
            resolve_backend(unavailable_backend, fallback=False)


# ------------------------------------------------------------------ numpy ref
class TestNumpyReference:
    def test_explicit_numpy_backend_bit_identical_to_default(self, params):
        base = run_batch(
            [[16, 32, 64]] * 2, params, AccessMode.BASIC,
            n_slots=3_000, seed=42,
        )
        explicit = run_batch(
            [[16, 32, 64]] * 2, params, AccessMode.BASIC,
            n_slots=3_000, seed=42, backend="numpy",
        )
        assert base.backend == explicit.backend == "numpy"
        np.testing.assert_array_equal(base.attempts, explicit.attempts)
        np.testing.assert_array_equal(base.successes, explicit.successes)
        np.testing.assert_array_equal(base.tau, explicit.tau)

    def test_backend_instance_accepted(self, params):
        result = run_batch(
            [32] * 4, params, AccessMode.BASIC,
            n_slots=1_000, seed=1, backend=get_backend("numpy"),
        )
        assert result.backend == "numpy"


# ------------------------------------------------------- calendar equivalence
class TestCalendarBackends:
    @pytest.mark.parametrize("name", ACCELERATED)
    def test_bit_identical_to_python_backend(self, params, name):
        kwargs = dict(n_slots=4_000, seed=17)
        anchor = run_batch(
            [[16, 32, 64, 128]] * 2, params, AccessMode.BASIC,
            backend="python", **kwargs,
        )
        candidate = run_batch(
            [[16, 32, 64, 128]] * 2, params, AccessMode.BASIC,
            backend=name, **kwargs,
        )
        np.testing.assert_array_equal(anchor.attempts, candidate.attempts)
        np.testing.assert_array_equal(anchor.successes, candidate.successes)
        np.testing.assert_array_equal(anchor.tau, candidate.tau)

    @pytest.mark.parametrize("name", CALENDAR_NAMES)
    def test_chunking_does_not_change_results(self, params, name):
        single = run_batch(
            [[32] * 6] * 2, params, AccessMode.BASIC,
            n_slots=5_000, seed=23, backend=name,
        )
        chunked = run_batch(
            [[32] * 6] * 2, params, AccessMode.BASIC,
            n_slots=5_000, seed=23, backend=name, stats_interval=700,
        )
        np.testing.assert_array_equal(single.attempts, chunked.attempts)
        np.testing.assert_array_equal(single.tau, chunked.tau)

    def test_python_backend_statistically_matches_numpy(self, params):
        n_slots = 40_000
        reference = run_batch(
            [[32] * 8] * 2, params, AccessMode.BASIC,
            n_slots=n_slots, seed=5,
        )
        candidate = run_batch(
            [[32] * 8] * 2, params, AccessMode.BASIC,
            n_slots=n_slots, seed=5, backend="python",
        )
        ref_tau = float(reference.tau.mean())
        cand_tau = float(candidate.tau.mean())
        assert abs(cand_tau - ref_tau) / ref_tau < 0.1
        assert (
            abs(float(candidate.throughput.mean())
                - float(reference.throughput.mean()))
            < 0.05
        )


# ---------------------------------------------------------------- fixed point
class TestFixedPointBackends:
    @pytest.mark.parametrize(
        "name",
        [n for n in CALENDAR_NAMES
         if get_backend(n).supports_fixed_point],
    )
    def test_tau_within_1e9_of_numpy(self, name):
        rng = np.random.default_rng(3)
        windows = rng.integers(8, 256, size=(20, 15)).astype(float)
        reference = solve_heterogeneous_batch(windows, 5, backend="numpy")
        candidate = solve_heterogeneous_batch(windows, 5, backend=name)
        assert np.max(np.abs(candidate.tau - reference.tau)) <= 1e-9

    def test_numpy_path_unchanged_without_native_solver(self):
        windows = np.full((3, 4), 32.0)
        solution = solve_heterogeneous_batch(windows, 5, backend="numpy")
        assert solution.tau.shape == (3, 4)
        assert bool(np.all(solution.residual <= 1e-8))


# -------------------------------------------------------------- orchestration
def _report_backend(_task):
    return default_backend_name()


class TestPlumbing:
    def test_parallel_map_pins_backend(self):
        assert parallel_map(_report_backend, [0, 1], backend="python") == [
            "python", "python",
        ]

    def test_parallel_map_leaves_default_alone(self):
        assert parallel_map(_report_backend, [0]) == ["numpy"]

    def test_campaign_spec_accepts_registered_backend(self):
        spec = spec_from_dict(
            {"experiment": "table2", "backend": "python"}, name="s"
        )
        assert spec.backend == "python"

    def test_campaign_spec_rejects_unknown_backend(self):
        with pytest.raises(CampaignError, match="unknown compute backend"):
            spec_from_dict(
                {"experiment": "table2", "backend": "nope"}, name="s"
            )

    def test_campaign_spec_rejects_non_string_backend(self):
        with pytest.raises(CampaignError, match="backend"):
            spec_from_dict({"experiment": "table2", "backend": 3}, name="s")

    def test_get_namespace_defaults_to_numpy(self):
        assert get_namespace(np.zeros(3), None) is np

    def test_result_records_backend_name(self, params):
        result = run_batch(
            [32] * 3, params, AccessMode.BASIC,
            n_slots=500, seed=1, backend="python",
        )
        assert result.backend == "python"


# ------------------------------------------------------------------------ CLI
class TestCli:
    def test_backends_subcommand_lists_registry(self, capsys):
        from repro.cli import main

        assert main(["backends"]) == 0
        out = capsys.readouterr().out
        assert "numpy" in out
        assert "python" in out

    def test_backend_flag_installs_default(self, capsys):
        from repro.cli import main

        try:
            assert main(["backends", "--backend", "python"]) == 0
            out = capsys.readouterr().out
            assert "python" in out
        finally:
            set_default_backend(None)

    def test_unknown_backend_flag_fails_cleanly(self, capsys):
        from repro.cli import main

        assert main(["backends", "--backend", "nope"]) == 1
        assert "unknown compute backend" in capsys.readouterr().err
