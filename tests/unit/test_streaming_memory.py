"""Memory regression guard for the streaming statistics path.

The point of ``stats_interval`` is that interval estimates are folded
into Welford accumulators as the run advances, so *no array with a
slots axis is ever materialised*: memory stays ``O(batch x n)`` no
matter how many virtual slots the run covers.  This test pins that with
a ``tracemalloc`` bound on a ``10^5``-slot, ``n = 500`` run - any
regression that materialises even the smallest slots-axis artifact (a
``(batch, n_slots)`` float array) blows the bound by an order of
magnitude, and a ``(batch, n, slots)`` tensor by five.
"""

from __future__ import annotations

import tracemalloc

import pytest

from repro.backends import available_backends, get_backend
from repro.phy.parameters import AccessMode, default_parameters
from repro.sim.vectorized import run_batch

BATCH = 2
N_NODES = 500
N_SLOTS = 100_000
STATS_INTERVAL = 10_000
STATE_ARRAYS = 8  # stage/counter/attempts/successes/... + rng lanes

#: Allowed peak = 10x the O(batch x n) kernel state plus a fixed
#: allowance for transient (batch, n) interval estimates, accumulator
#: temporaries and tracemalloc's own bookkeeping.
STATE_BYTES = BATCH * N_NODES * 8 * STATE_ARRAYS
ALLOWANCE_BYTES = 512_000
SLOTS_AXIS_BYTES = BATCH * N_SLOTS * 8  # smallest possible slots-axis array


def _fast_backend():
    for name in ("cnative", "numba"):
        if name in available_backends():
            return get_backend(name)
    pytest.skip(
        "no calendar-queue backend available (needs a C compiler or "
        "numba); the numpy path is too slow to trace at this size"
    )


def test_streaming_run_allocates_no_slots_axis_array():
    backend = _fast_backend()
    params = default_parameters()
    windows = [[64] * N_NODES] * BATCH
    # Warm up outside the trace: .so build / JIT and module-level caches
    # must not be billed to the streaming path.
    run_batch(
        windows, params, AccessMode.BASIC,
        n_slots=100, seed=1, backend=backend, stats_interval=50,
    )

    tracemalloc.start()
    try:
        result = run_batch(
            windows, params, AccessMode.BASIC,
            n_slots=N_SLOTS, seed=2, backend=backend,
            stats_interval=STATS_INTERVAL,
        )
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()

    assert result.streaming is not None
    assert result.streaming.n_intervals == N_SLOTS // STATS_INTERVAL

    bound = 10 * STATE_BYTES + ALLOWANCE_BYTES
    assert peak <= bound, (
        f"streaming run peaked at {peak:,} B tracked heap, over the "
        f"O(batch x n) bound of {bound:,} B - something is materialising "
        "per-slot state"
    )
    assert peak < SLOTS_AXIS_BYTES, (
        f"peak {peak:,} B exceeds the smallest slots-axis array "
        f"({SLOTS_AXIS_BYTES:,} B); the streaming path must never "
        "allocate one"
    )
