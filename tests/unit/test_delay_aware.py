"""Unit tests for the delay-aware (Section VIII) game extension."""

from __future__ import annotations

import pytest

from repro.errors import ParameterError
from repro.game.delay_aware import (
    delay_aware_efficient_window,
    delay_aware_utility,
    delay_tradeoff_curve,
)
from repro.game.definition import MACGame
from repro.game.equilibrium import efficient_window
from repro.phy.parameters import default_parameters


@pytest.fixture(scope="module")
def game():
    return MACGame(n_players=10, params=default_parameters())


@pytest.fixture(scope="module")
def star(game):
    return efficient_window(game.n_players, game.params, game.times)


class TestUtility:
    def test_lambda_zero_recovers_paper_utility(self, game):
        for window in (32, 100, 200):
            assert delay_aware_utility(
                game, window, delay_weight=0.0
            ) == pytest.approx(game.symmetric_utility(window))

    def test_penalty_vanishes_at_reference(self, game, star):
        # At the reference window the penalty term is zero by
        # construction, for any lambda.
        base = game.symmetric_utility(star)
        for weight in (0.5, 2.0, 10.0):
            assert delay_aware_utility(
                game, star, delay_weight=weight, reference_window=star
            ) == pytest.approx(base)

    def test_high_jitter_windows_penalised(self, game, star):
        window = star * 8  # deep in the linear-jitter regime
        plain = delay_aware_utility(game, window, delay_weight=0.0)
        priced = delay_aware_utility(
            game, window, delay_weight=2.0, reference_window=star
        )
        assert priced < plain

    def test_negative_weight_rejected(self, game):
        with pytest.raises(ParameterError):
            delay_aware_utility(game, 64, delay_weight=-0.1)


class TestEquilibrium:
    def test_lambda_zero_matches_plain_optimum(self, game, star):
        analysis = delay_aware_efficient_window(game, delay_weight=0.0)
        # Integer scan vs plateau: payoffs must agree to < 0.1%.
        assert game.symmetric_utility(
            analysis.window_star
        ) == pytest.approx(game.symmetric_utility(star), rel=1e-3)

    def test_optimum_stays_in_plateau_band(self, game, star):
        # The jitter minimum sits between W_c* and ~2 W_c*; any lambda
        # lands in that band.
        for weight in (0.5, 2.0, 8.0):
            analysis = delay_aware_efficient_window(
                game, delay_weight=weight
            )
            assert star - 5 <= analysis.window_star <= 2 * star + 5

    def test_throughput_cost_is_small(self, game, star):
        # The robustness finding: pricing jitter costs < 1% throughput.
        analysis = delay_aware_efficient_window(game, delay_weight=2.0)
        assert analysis.throughput_utility >= game.symmetric_utility(
            star
        ) * 0.99


class TestTradeoffCurve:
    def test_monotone_in_lambda(self, game):
        curve = delay_tradeoff_curve(game, [0.0, 0.5, 2.0])
        windows = [curve[w].window_star for w in (0.0, 0.5, 2.0)]
        assert windows[0] <= windows[1] <= windows[2]
        jitters = [curve[w].jitter_us for w in (0.0, 0.5, 2.0)]
        assert jitters[0] >= jitters[1] >= jitters[2] - 1e-9

    def test_rejects_empty_weights(self, game):
        with pytest.raises(ParameterError):
            delay_tradeoff_curve(game, [])
