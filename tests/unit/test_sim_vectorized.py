"""Equivalence and contract tests for the vectorized DCF kernel.

The kernel (:mod:`repro.sim.vectorized`) must be statistically
indistinguishable from both the reference object-per-node engine
(:class:`repro.sim.engine.DcfSimulator`) and the :mod:`repro.bianchi`
fixed-point predictions.  Tolerances are sized for CI stability: with the
slot budgets used here the Monte-Carlo standard error on ``tau`` is a few
percent, so the bounds below sit at 3-5 sigma.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bianchi import solve_heterogeneous, solve_symmetric
from repro.errors import ParameterError
from repro.phy.parameters import AccessMode
from repro.phy.timing import slot_times
from repro.sim.adaptive import measure_per_node_optimum
from repro.sim.engine import DcfSimulator, SimulationResult
from repro.sim.vectorized import BatchResult, run_batch, simulate

MODES = [AccessMode.BASIC, AccessMode.RTS_CTS]
# (n, W) pairs spanning small to dense networks; windows sit near each
# size's contention sweet spot so payoffs are solidly non-zero.
SYMMETRIC_CASES = [(2, 32), (5, 64), (20, 128)]


def _pooled_estimates(result: BatchResult):
    """Pool a batch of identical replicas into scalar estimators."""
    total_slots = float(result.total_slots.sum())
    attempts = result.attempts.sum(dtype=float)
    successes = result.successes.sum(dtype=float)
    tau = attempts / (total_slots * result.n_nodes)
    collision = 1.0 - successes / attempts
    return tau, collision


def _analytic_payoff_rate(window, n_nodes, params, mode):
    """Fixed-point prediction of the per-node payoff rate (per us)."""
    solution = solve_symmetric(window, n_nodes, params.max_backoff_stage)
    tau, p = solution.tau, solution.collision
    times = slot_times(params, mode)
    p_idle = (1.0 - tau) ** n_nodes
    p_succ = n_nodes * tau * (1.0 - tau) ** (n_nodes - 1)
    p_coll = 1.0 - p_idle - p_succ
    mean_slot_us = (
        p_idle * times.idle_us
        + p_succ * times.success_us
        + p_coll * times.collision_us
    )
    per_slot = tau * ((1.0 - p) * params.gain - params.cost)
    return per_slot / mean_slot_us


class TestValidation:
    def test_rejects_empty_windows(self, params):
        with pytest.raises(ParameterError):
            run_batch(np.empty((0,)), params, n_slots=100)

    def test_rejects_3d_windows(self, params):
        with pytest.raises(ParameterError):
            run_batch(np.ones((2, 2, 2)), params, n_slots=100)

    def test_rejects_fractional_windows(self, params):
        with pytest.raises(ParameterError):
            run_batch([16.5, 32.0], params, n_slots=100)

    def test_rejects_nonpositive_windows(self, params):
        with pytest.raises(ParameterError):
            run_batch([16, 0], params, n_slots=100)

    def test_rejects_nonpositive_slots(self, params):
        with pytest.raises(ParameterError):
            run_batch([16, 16], params, n_slots=0)

    def test_simulate_rejects_unknown_engine(self, params):
        with pytest.raises(ParameterError):
            simulate([16, 16], params, n_slots=100, engine="magic")


class TestBatchContract:
    def test_shapes_and_counter_identities(self, params):
        windows = np.array([[16, 32, 64], [8, 8, 8]])
        result = run_batch(
            windows, params, AccessMode.BASIC, n_slots=5_000, seed=3
        )
        assert result.batch_size == 2
        assert result.n_nodes == 3
        assert result.attempts.shape == (2, 3)
        assert result.tau.shape == (2, 3)
        assert result.elapsed_us.shape == (2,)
        # Every replica simulated exactly the requested virtual slots.
        np.testing.assert_array_equal(result.total_slots, 5_000)
        np.testing.assert_array_equal(
            result.collisions, result.attempts - result.successes
        )
        # Slot-type counts decompose the elapsed time exactly.
        times = slot_times(params, AccessMode.BASIC)
        np.testing.assert_allclose(
            result.elapsed_us,
            result.idle_slots * times.idle_us
            + result.success_slots * times.success_us
            + result.collision_slots * times.collision_us,
        )

    def test_replica_counters_pass_reference_checks(self, params):
        result = run_batch(
            [[16, 16], [64, 64]], params, n_slots=2_000, seed=9
        )
        for index in range(result.batch_size):
            counters = result.replica_counters(index)
            assert counters.idle_slots >= 0
            assert counters.elapsed_us > 0

    def test_single_profile_promoted_to_batch_of_one(self, params):
        result = run_batch([32, 32, 32], params, n_slots=1_000, seed=0)
        assert result.batch_size == 1
        assert result.n_nodes == 3


class TestDeterminism:
    def test_same_seed_bit_identical(self, params):
        a = run_batch([[32] * 5] * 3, params, n_slots=4_000, seed=77)
        b = run_batch([[32] * 5] * 3, params, n_slots=4_000, seed=77)
        np.testing.assert_array_equal(a.attempts, b.attempts)
        np.testing.assert_array_equal(a.successes, b.successes)
        np.testing.assert_array_equal(a.idle_slots, b.idle_slots)

    def test_seed_sequence_matches_equivalent_entropy(self, params):
        seq = np.random.SeedSequence(123)
        a = run_batch([32, 32], params, n_slots=2_000, seed=seq)
        b = run_batch(
            [32, 32], params, n_slots=2_000, seed=np.random.SeedSequence(123)
        )
        np.testing.assert_array_equal(a.attempts, b.attempts)

    def test_different_seeds_differ(self, params):
        a = run_batch([[32] * 5], params, n_slots=4_000, seed=1)
        b = run_batch([[32] * 5], params, n_slots=4_000, seed=2)
        assert not np.array_equal(a.attempts, b.attempts)


class TestFixedPointEquivalence:
    @pytest.mark.parametrize("mode", MODES, ids=lambda m: m.name.lower())
    @pytest.mark.parametrize(("n_nodes", "window"), SYMMETRIC_CASES)
    def test_tau_and_collision_match_bianchi(
        self, params, n_nodes, window, mode
    ):
        solution = solve_symmetric(
            window, n_nodes, params.max_backoff_stage
        )
        batch = np.full((4, n_nodes), window)
        result = run_batch(batch, params, mode, n_slots=30_000, seed=42)
        tau, collision = _pooled_estimates(result)
        assert tau == pytest.approx(solution.tau, rel=0.08)
        assert collision == pytest.approx(solution.collision, abs=0.03)

    @pytest.mark.parametrize("mode", MODES, ids=lambda m: m.name.lower())
    @pytest.mark.parametrize(("n_nodes", "window"), SYMMETRIC_CASES)
    def test_payoff_rate_matches_bianchi(
        self, params, n_nodes, window, mode
    ):
        predicted = _analytic_payoff_rate(window, n_nodes, params, mode)
        batch = np.full((4, n_nodes), window)
        result = run_batch(batch, params, mode, n_slots=30_000, seed=7)
        measured = float(result.payoff_rates.mean())
        scale = max(abs(predicted), 1e-6)
        assert abs(measured - predicted) / scale < 0.15

    def test_heterogeneous_tau_matches_fixed_point(self, params):
        windows = [16, 32, 64, 128, 256]
        solution = solve_heterogeneous(windows, params.max_backoff_stage)
        batch = np.tile(windows, (6, 1))
        result = run_batch(
            batch, params, AccessMode.BASIC, n_slots=40_000, seed=11
        )
        total = float(result.total_slots.sum()) / result.batch_size
        pooled_tau = result.attempts.mean(axis=0) / total
        np.testing.assert_allclose(pooled_tau, solution.tau, rtol=0.12)


class TestReferenceEquivalence:
    @pytest.mark.parametrize("mode", MODES, ids=lambda m: m.name.lower())
    def test_estimates_match_reference_engine(self, params, mode):
        n_nodes, window, n_slots = 5, 64, 40_000
        reference = DcfSimulator(
            [window] * n_nodes, params, mode, seed=101
        ).run(n_slots)
        result = run_batch(
            [[window] * n_nodes], params, mode, n_slots=n_slots, seed=202
        )
        assert float(result.tau.mean()) == pytest.approx(
            float(np.mean(reference.tau)), rel=0.1
        )
        assert float(result.collision.mean()) == pytest.approx(
            float(np.mean(reference.collision)), abs=0.03
        )
        assert float(result.payoff_rates.mean()) == pytest.approx(
            float(np.mean(reference.payoff_rates)), rel=0.15
        )
        assert float(result.throughput[0]) == pytest.approx(
            float(reference.throughput), rel=0.1
        )


class TestSimulateDispatch:
    def test_reference_engine_is_bit_identical_to_simulator(self, params):
        direct = DcfSimulator([32] * 4, params, seed=5).run(3_000)
        via = simulate(
            [32] * 4, params, n_slots=3_000, seed=5, engine="reference"
        )
        np.testing.assert_array_equal(via.tau, direct.tau)
        assert via.counters.elapsed_us == direct.counters.elapsed_us

    def test_vectorized_returns_simulation_result(self, params):
        result = simulate([32] * 4, params, n_slots=3_000, seed=5)
        assert isinstance(result, SimulationResult)
        assert result.windows.shape == (4,)
        assert result.counters.idle_slots >= 0
        assert np.all(result.tau > 0)

    def test_observer_forces_reference_engine(self, params):
        class Recorder:
            def __init__(self):
                self.busy = 0
                self.idle = 0

            def record_idle(self, slots):
                self.idle += slots

            def record_transmission(self, transmitters, success):
                self.busy += 1

        recorder = Recorder()
        simulate(
            [16, 16], params, n_slots=2_000, seed=1, observer=recorder
        )
        assert recorder.busy > 0
        assert recorder.idle + recorder.busy == 2_000


class TestAdaptiveEngines:
    def test_vectorized_and_reference_land_on_same_plateau(self, params):
        grid = [48, 56, 64, 72, 80, 88]
        kwargs = dict(grid=grid, slots_per_point=30_000, seed=0)
        fast = measure_per_node_optimum(
            5, params, AccessMode.BASIC, engine="vectorized", **kwargs
        )
        slow = measure_per_node_optimum(
            5, params, AccessMode.BASIC, engine="reference", **kwargs
        )
        assert fast.payoffs.shape == slow.payoffs.shape
        # Plateau flatness means argmaxes scatter; the means must agree
        # to within the grid span.
        span = max(grid) - min(grid)
        assert abs(fast.mean - slow.mean) <= span

    def test_rejects_unknown_engine(self, params):
        with pytest.raises(ParameterError):
            measure_per_node_optimum(5, params, engine="magic")

    def test_rejects_nonpositive_replicas(self, params):
        with pytest.raises(ParameterError):
            measure_per_node_optimum(5, params, replicas_per_point=0)
