"""Unit tests for the Lemma 1 / Lemma 4 verifiers."""

from __future__ import annotations

import pytest

from repro.errors import ParameterError
from repro.game.lemmas import check_lemma1, check_lemma2, check_lemma4


class TestLemma1:
    @pytest.mark.parametrize(
        "profile,i,j",
        [
            ([200, 50, 100, 100], 0, 1),
            ([300, 20, 64, 64], 0, 1),
            ([64, 32, 500, 80], 2, 1),
        ],
    )
    def test_ordering_holds(self, small_game, profile, i, j):
        check = check_lemma1(small_game, profile, i, j)
        assert check.holds
        assert check.p_i > check.p_j
        assert check.tau_i < check.tau_j
        assert check.utility_i < check.utility_j

    def test_holds_in_rts_mode(self, rts_game):
        check = check_lemma1(rts_game, [100, 10, 40, 40, 40], 0, 1)
        assert check.holds

    def test_requires_strict_order(self, small_game):
        with pytest.raises(ParameterError):
            check_lemma1(small_game, [64, 64, 64, 64], 0, 1)

    def test_requires_correct_direction(self, small_game):
        with pytest.raises(ParameterError):
            check_lemma1(small_game, [32, 64, 64, 64], 0, 1)


class TestLemma2:
    @pytest.mark.parametrize(
        "others",
        [
            [0.02, 0.02, 0.02],
            [0.1, 0.1, 0.1],
            [0.01, 0.05, 0.3],
            [0.0, 0.0, 0.0],
        ],
    )
    def test_concavity_holds(self, small_game, others):
        check = check_lemma2(small_game, others)
        assert check.holds

    def test_concavity_holds_in_rts_mode(self, rts_game):
        check = check_lemma2(rts_game, [0.05] * 4)
        assert check.holds

    def test_concavity_with_cost_term_too(self, small_game):
        # The lemma is stated under g >> e; with the paper's tiny e the
        # sampled function remains concave as well.
        check = check_lemma2(small_game, [0.05] * 3, ignore_cost=False)
        assert check.holds

    def test_utility_grid_shape(self, small_game):
        check = check_lemma2(small_game, [0.02] * 3, n_points=50)
        assert check.tau_grid.shape == (50,)
        assert check.utilities.shape == (50,)

    def test_validation(self, small_game):
        with pytest.raises(ParameterError):
            check_lemma2(small_game, [0.1, 0.1])  # wrong length
        with pytest.raises(ParameterError):
            check_lemma2(small_game, [0.1, 0.1, 1.0])
        with pytest.raises(ParameterError):
            check_lemma2(small_game, [0.1] * 3, n_points=3)


class TestLemma4:
    def test_upward_deviation_ordering(self, small_game):
        # Deviator raises its window: it earns least, conformists most.
        check = check_lemma4(small_game, window_common=64, window_deviant=256)
        assert check.holds
        assert (
            check.utility_deviant
            < check.utility_symmetric
            < check.utility_conformist
        )

    def test_downward_deviation_ordering(self, small_game):
        # Deviator lowers its window: it earns most, conformists least.
        check = check_lemma4(small_game, window_common=64, window_deviant=8)
        assert check.holds
        assert (
            check.utility_conformist
            < check.utility_symmetric
            < check.utility_deviant
        )

    def test_small_deviation_still_ordered(self, small_game):
        check = check_lemma4(small_game, window_common=64, window_deviant=63)
        assert check.holds

    def test_holds_in_rts_mode(self, rts_game):
        up = check_lemma4(rts_game, window_common=48, window_deviant=96)
        down = check_lemma4(rts_game, window_common=48, window_deviant=12)
        assert up.holds
        assert down.holds

    def test_rejects_no_deviation(self, small_game):
        with pytest.raises(ParameterError):
            check_lemma4(small_game, window_common=64, window_deviant=64)
