"""Unit tests for the Section V.B NE refinement."""

from __future__ import annotations

import pytest

from repro.errors import ParameterError
from repro.game.equilibrium import analyze_equilibria
from repro.game.refinement import refine_equilibria


@pytest.fixture(scope="module")
def report(small_game):
    analysis = analyze_equilibria(
        small_game.n_players, small_game.params, small_game.times
    )
    return refine_equilibria(small_game, analysis=analysis)


class TestRefinement:
    def test_efficient_window_matches_analysis(self, report):
        assert report.efficient_window == report.analysis.window_star

    def test_family_covers_theorem2_range(self, report):
        analysis = report.analysis
        assert set(report.utilities) == set(
            range(analysis.window_breakeven, analysis.window_star + 1)
        )

    def test_every_ne_is_fair(self, report):
        for window in report.utilities:
            assert report.is_fair(window)

    def test_only_efficient_ne_maximizes_social_welfare(self, report):
        efficient = report.efficient_window
        assert report.maximizes_social_welfare(efficient)
        for window in report.utilities:
            if window != efficient:
                assert not report.maximizes_social_welfare(window)

    def test_only_efficient_ne_is_pareto_optimal(self, report):
        efficient = report.efficient_window
        assert report.is_pareto_optimal(efficient)
        for window in report.utilities:
            if window != efficient:
                assert not report.is_pareto_optimal(window)

    def test_social_welfare_is_n_times_utility(self, report, small_game):
        for window, utility in report.utilities.items():
            assert report.social_welfare[window] == pytest.approx(
                small_game.n_players * utility
            )

    def test_utility_monotone_up_to_star(self, report):
        windows = sorted(report.utilities)
        values = [report.utilities[w] for w in windows]
        assert all(a <= b + 1e-18 for a, b in zip(values, values[1:]))

    def test_nonmember_window_rejected(self, report):
        with pytest.raises(ParameterError):
            report.is_pareto_optimal(report.analysis.window_star + 1)
        with pytest.raises(ParameterError):
            report.is_fair(0)

    def test_family_size_guard(self, small_game):
        with pytest.raises(ParameterError):
            refine_equilibria(small_game, max_family_size=2)
