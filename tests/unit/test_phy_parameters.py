"""Unit tests for :mod:`repro.phy.parameters`."""

from __future__ import annotations

import pytest

from repro.errors import ParameterError
from repro.phy.parameters import AccessMode, PhyParameters, default_parameters


class TestDefaults:
    def test_default_matches_paper_table1(self):
        params = default_parameters()
        assert params.payload_bits == 8184.0  # repro: noqa=REPRO003
        assert params.mac_header_bits == 272.0  # repro: noqa=REPRO003
        assert params.phy_header_bits == 128.0  # repro: noqa=REPRO003
        assert params.ack_bits == 112.0  # repro: noqa=REPRO003
        assert params.rts_bits == 160.0  # repro: noqa=REPRO003
        assert params.cts_bits == 112.0  # repro: noqa=REPRO003
        assert params.channel_bit_rate == 1e6  # repro: noqa=REPRO003
        assert params.slot_time_us == 50.0  # repro: noqa=REPRO003
        assert params.sifs_us == 28.0  # repro: noqa=REPRO003
        assert params.difs_us == 128.0  # repro: noqa=REPRO003
        assert params.gain == 1.0  # repro: noqa=REPRO003
        assert params.cost == 0.01  # repro: noqa=REPRO003
        assert params.stage_duration_us == 10e6  # repro: noqa=REPRO003
        assert params.discount_factor == 0.9999  # repro: noqa=REPRO003

    def test_defaults_are_frozen(self):
        params = default_parameters()
        with pytest.raises(AttributeError):
            params.gain = 2.0  # type: ignore[misc]

    def test_two_defaults_are_equal(self):
        assert default_parameters() == default_parameters()


class TestDerivedTimes:
    def test_header_time_at_1mbps_is_bits(self):
        params = default_parameters()
        assert params.header_time_us == pytest.approx(400.0)

    def test_payload_time_at_1mbps(self):
        params = default_parameters()
        assert params.payload_time_us == pytest.approx(8184.0)

    def test_control_frames_include_phy_header(self):
        params = default_parameters()
        assert params.ack_time_us == pytest.approx(240.0)
        assert params.rts_time_us == pytest.approx(288.0)
        assert params.cts_time_us == pytest.approx(240.0)

    def test_faster_channel_shrinks_airtime(self):
        fast = default_parameters().with_updates(channel_bit_rate=2e6)
        assert fast.payload_time_us == pytest.approx(8184.0 / 2)
        # Slot/SIFS/DIFS are PHY constants, not bit times.
        assert fast.slot_time_us == 50.0  # repro: noqa=REPRO003


class TestValidation:
    @pytest.mark.parametrize(
        "field",
        [
            "payload_bits",
            "mac_header_bits",
            "phy_header_bits",
            "ack_bits",
            "channel_bit_rate",
            "slot_time_us",
            "sifs_us",
            "difs_us",
            "stage_duration_us",
        ],
    )
    def test_positive_fields_reject_zero(self, field):
        with pytest.raises(ParameterError):
            default_parameters().with_updates(**{field: 0.0})

    def test_negative_cost_rejected(self):
        with pytest.raises(ParameterError):
            default_parameters().with_updates(cost=-0.1)

    def test_zero_cost_allowed(self):
        params = default_parameters().with_updates(cost=0.0)
        assert params.cost == 0.0  # repro: noqa=REPRO003

    def test_cost_must_stay_below_gain(self):
        with pytest.raises(ParameterError):
            default_parameters().with_updates(gain=1.0, cost=1.0)

    @pytest.mark.parametrize("delta", [0.0, 1.0, -0.5, 1.5])
    def test_discount_factor_must_be_interior(self, delta):
        with pytest.raises(ParameterError):
            default_parameters().with_updates(discount_factor=delta)

    def test_negative_max_stage_rejected(self):
        with pytest.raises(ParameterError):
            default_parameters().with_updates(max_backoff_stage=-1)

    def test_zero_max_stage_allowed(self):
        params = default_parameters().with_updates(max_backoff_stage=0)
        assert params.max_backoff_stage == 0

    def test_cw_bounds_must_be_ordered(self):
        with pytest.raises(ParameterError):
            default_parameters().with_updates(cw_min=100, cw_max=10)

    def test_cw_min_at_least_one(self):
        with pytest.raises(ParameterError):
            default_parameters().with_updates(cw_min=0)


class TestStrategySpace:
    def test_strategy_space_is_inclusive_range(self):
        params = default_parameters().with_updates(cw_min=3, cw_max=7)
        assert list(params.strategy_space()) == [3, 4, 5, 6, 7]

    def test_with_updates_returns_new_object(self):
        base = default_parameters()
        other = base.with_updates(gain=2.0)
        assert other.gain == 2.0  # repro: noqa=REPRO003
        assert base.gain == 1.0  # repro: noqa=REPRO003
        assert other is not base


class TestTableRendering:
    def test_as_table_has_all_paper_rows(self):
        table = default_parameters().as_table()
        for label in (
            "Packet size",
            "MAC header",
            "PHY header",
            "ACK",
            "RTS",
            "CTS",
            "Channel bit rate",
            "sigma",
            "SIFS",
            "DIFS",
            "g",
            "e",
            "T",
            "delta",
        ):
            assert label in table

    def test_as_table_values_render_numbers(self):
        table = default_parameters().as_table()
        assert table["Packet size"] == "8184 bits"
        assert table["Channel bit rate"] == "1 Mbits/s"
        assert table["delta"] == "0.9999"


class TestAccessMode:
    def test_modes_are_distinct(self):
        assert AccessMode.BASIC is not AccessMode.RTS_CTS

    def test_str_value(self):
        assert str(AccessMode.BASIC) == "basic"
        assert str(AccessMode.RTS_CTS) == "rts_cts"
