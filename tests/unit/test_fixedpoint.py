"""Unit tests for the coupled fixed-point solvers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.bianchi.fixedpoint import (
    _collision_probabilities,
    solve_heterogeneous,
    solve_symmetric,
)
from repro.bianchi.markov import transmission_probability
from repro.errors import ParameterError


class TestCollisionCoupling:
    def test_two_nodes(self):
        tau = np.array([0.1, 0.3])
        p = _collision_probabilities(tau)
        assert p[0] == pytest.approx(0.3)
        assert p[1] == pytest.approx(0.1)

    def test_leave_one_out_product(self):
        tau = np.array([0.05, 0.1, 0.2, 0.4])
        p = _collision_probabilities(tau)
        for i in range(4):
            others = np.delete(tau, i)
            assert p[i] == pytest.approx(1 - np.prod(1 - others), rel=1e-12)

    def test_handles_tau_one(self):
        tau = np.array([1.0, 0.2])
        p = _collision_probabilities(tau)
        assert p[0] == pytest.approx(0.2)
        assert p[1] == pytest.approx(1.0)


class TestSymmetric:
    def test_satisfies_both_equations(self, params):
        for window, n in [(32, 5), (78, 5), (335, 20), (16, 50)]:
            sol = solve_symmetric(window, n, params.max_backoff_stage)
            assert sol.collision == pytest.approx(
                1 - (1 - sol.tau) ** (n - 1), rel=1e-9
            )
            assert sol.tau == pytest.approx(
                transmission_probability(
                    window, sol.collision, params.max_backoff_stage
                ),
                rel=1e-9,
            )

    def test_single_node_never_collides(self, params):
        sol = solve_symmetric(32, 1, params.max_backoff_stage)
        assert sol.collision == 0.0  # repro: noqa=REPRO003
        assert sol.tau == pytest.approx(2 / 33)

    def test_tau_decreasing_in_window(self, params):
        taus = [
            solve_symmetric(w, 10, params.max_backoff_stage).tau
            for w in (4, 16, 64, 256, 1024)
        ]
        assert all(a > b for a, b in zip(taus, taus[1:]))

    def test_collision_increasing_in_population(self, params):
        ps = [
            solve_symmetric(64, n, params.max_backoff_stage).collision
            for n in (2, 5, 10, 20, 50)
        ]
        assert all(a < b for a, b in zip(ps, ps[1:]))

    def test_residual_reported_small(self, params):
        sol = solve_symmetric(100, 10, params.max_backoff_stage)
        assert sol.residual < 1e-9

    def test_rejects_bad_inputs(self, params):
        with pytest.raises(ParameterError):
            solve_symmetric(0, 5, params.max_backoff_stage)
        with pytest.raises(ParameterError):
            solve_symmetric(32, 0, params.max_backoff_stage)


class TestHeterogeneous:
    def test_symmetric_profile_recovers_symmetric_solution(self, params):
        n, window = 6, 48
        hetero = solve_heterogeneous([window] * n, params.max_backoff_stage)
        sym = solve_symmetric(window, n, params.max_backoff_stage)
        np.testing.assert_allclose(hetero.tau, sym.tau, rtol=1e-6)
        np.testing.assert_allclose(hetero.collision, sym.collision, rtol=1e-6)

    def test_solution_satisfies_equations(self, params):
        windows = [16, 32, 64, 128, 256]
        sol = solve_heterogeneous(windows, params.max_backoff_stage)
        for i, window in enumerate(windows):
            others = np.delete(sol.tau, i)
            assert sol.collision[i] == pytest.approx(
                1 - np.prod(1 - others), rel=1e-8
            )
            assert sol.tau[i] == pytest.approx(
                transmission_probability(
                    window, sol.collision[i], params.max_backoff_stage
                ),
                rel=1e-8,
            )

    def test_lemma1_orderings(self, params):
        # Larger window -> smaller tau, larger p (Lemma 1's first half).
        windows = [10, 100, 1000]
        sol = solve_heterogeneous(windows, params.max_backoff_stage)
        assert sol.tau[0] > sol.tau[1] > sol.tau[2]
        assert sol.collision[0] < sol.collision[1] < sol.collision[2]

    def test_single_node(self, params):
        sol = solve_heterogeneous([32], params.max_backoff_stage)
        assert sol.collision[0] == 0.0  # repro: noqa=REPRO003
        assert sol.n_nodes == 1

    def test_warm_start_converges_to_same_point(self, params):
        windows = [20, 40, 80]
        cold = solve_heterogeneous(windows, params.max_backoff_stage)
        warm = solve_heterogeneous(
            windows,
            params.max_backoff_stage,
            initial_tau=[0.5, 0.5, 0.5],
        )
        np.testing.assert_allclose(cold.tau, warm.tau, rtol=1e-6)

    def test_extreme_heterogeneity(self, params):
        sol = solve_heterogeneous([1, 4096], params.max_backoff_stage)
        assert 0 < sol.tau[1] < sol.tau[0] < 1
        assert sol.residual < 1e-8

    def test_many_aggressive_nodes(self, params):
        sol = solve_heterogeneous([2] * 30, params.max_backoff_stage)
        assert np.all(sol.collision > 0.5)
        assert sol.residual < 1e-8

    def test_rejects_empty(self, params):
        with pytest.raises(ParameterError):
            solve_heterogeneous([], params.max_backoff_stage)

    def test_rejects_sub_one_window(self, params):
        with pytest.raises(ParameterError):
            solve_heterogeneous([32, 0.5], params.max_backoff_stage)

    def test_rejects_mismatched_warm_start(self, params):
        with pytest.raises(ParameterError):
            solve_heterogeneous(
                [32, 64], params.max_backoff_stage, initial_tau=[0.1]
            )
