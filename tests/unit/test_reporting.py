"""Unit tests for the text-report renderers."""

from __future__ import annotations

import pytest

from repro.errors import ParameterError
from repro.experiments.reporting import format_series, format_table


class TestFormatTable:
    def test_basic_rendering(self):
        text = format_table(
            ["n", "W"], [[5, 78], [20, 335]], title="NE points"
        )
        lines = text.splitlines()
        assert lines[0] == "NE points"
        assert "n" in lines[1] and "W" in lines[1]
        assert set(lines[2]) <= {"-", " "}
        assert "78" in lines[3]
        assert "335" in lines[4]

    def test_columns_aligned(self):
        text = format_table(["a", "bbbb"], [["x", 1], ["yyyy", 22]])
        lines = text.splitlines()
        widths = {len(line) for line in lines}
        assert len(widths) == 1  # every row padded to the same width

    def test_float_formatting(self):
        text = format_table(["v"], [[0.123456], [12345.678], [0.00001]])
        assert "0.1235" in text
        assert "1.235e+04" in text
        assert "1e-05" in text

    def test_zero_renders_plainly(self):
        assert "0" in format_table(["v"], [[0.0]])

    def test_no_rows_still_renders_header(self):
        text = format_table(["a", "b"], [])
        assert "a" in text and "b" in text

    def test_rejects_empty_headers(self):
        with pytest.raises(ParameterError):
            format_table([], [[1]])

    def test_rejects_ragged_rows(self):
        with pytest.raises(ParameterError):
            format_table(["a", "b"], [[1]])

    def test_rejects_unsupported_cells(self):
        with pytest.raises(ParameterError):
            format_table(["a"], [[object()]])


class TestFormatSeries:
    def test_aligned_series(self):
        text = format_series(
            [1, 2, 3],
            {"u": [0.1, 0.2, 0.3], "v": [9, 8, 7]},
            x_label="W",
        )
        lines = text.splitlines()
        assert lines[0].startswith("W")
        assert "u" in lines[0] and "v" in lines[0]
        assert len(lines) == 2 + 3

    def test_title_included(self):
        text = format_series([1], {"s": [2]}, title="Figure")
        assert text.splitlines()[0] == "Figure"

    def test_rejects_length_mismatch(self):
        with pytest.raises(ParameterError):
            format_series([1, 2], {"s": [1]})
