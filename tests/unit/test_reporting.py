"""Unit tests for the text-report renderers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ParameterError
from repro.experiments.reporting import format_series, format_table


class TestFormatTable:
    def test_basic_rendering(self):
        text = format_table(
            ["n", "W"], [[5, 78], [20, 335]], title="NE points"
        )
        lines = text.splitlines()
        assert lines[0] == "NE points"
        assert "n" in lines[1] and "W" in lines[1]
        assert set(lines[2]) <= {"-", " "}
        assert "78" in lines[3]
        assert "335" in lines[4]

    def test_columns_aligned(self):
        text = format_table(["a", "bbbb"], [["x", 1], ["yyyy", 22]])
        lines = text.splitlines()
        widths = {len(line) for line in lines}
        assert len(widths) == 1  # every row padded to the same width

    def test_float_formatting(self):
        text = format_table(["v"], [[0.123456], [12345.678], [0.00001]])
        assert "0.1235" in text
        assert "1.235e+04" in text
        assert "1e-05" in text

    def test_zero_renders_plainly(self):
        assert "0" in format_table(["v"], [[0.0]])

    def test_no_rows_still_renders_header(self):
        text = format_table(["a", "b"], [])
        assert "a" in text and "b" in text

    def test_rejects_empty_headers(self):
        with pytest.raises(ParameterError):
            format_table([], [[1]])

    def test_rejects_ragged_rows(self):
        with pytest.raises(ParameterError):
            format_table(["a", "b"], [[1]])

    def test_rejects_unsupported_cells(self):
        with pytest.raises(ParameterError):
            format_table(["a"], [[object()]])


class TestCellEdgeCases:
    def test_numpy_scalar_cells(self):
        text = format_table(
            ["n", "tau"], [[np.int64(7), np.float64(0.25)]]
        )
        assert "7" in text and "0.25" in text

    def test_numpy_float32_cell(self):
        assert "0.5" in format_table(["v"], [[np.float32(0.5)]])

    def test_bool_cells_render_as_ints(self):
        # bool is an int subclass; the rendered form is the digit.
        lines = format_table(["flag"], [[True], [False]]).splitlines()
        assert lines[2].strip() == "1"
        assert lines[3].strip() == "0"

    def test_negative_floats_keep_sign(self):
        text = format_table(["v"], [[-0.123456], [-12345.678]])
        assert "-0.1235" in text
        assert "-1.235e+04" in text

    def test_nonfinite_floats_render_verbatim(self):
        text = format_table(
            ["v"], [[float("nan")], [float("inf")], [float("-inf")]]
        )
        assert "nan" in text
        assert "-inf" in text

    def test_rejects_none_cell(self):
        with pytest.raises(ParameterError, match="NoneType"):
            format_table(["a"], [[None]])


class TestFormatSeries:
    def test_aligned_series(self):
        text = format_series(
            [1, 2, 3],
            {"u": [0.1, 0.2, 0.3], "v": [9, 8, 7]},
            x_label="W",
        )
        lines = text.splitlines()
        assert lines[0].startswith("W")
        assert "u" in lines[0] and "v" in lines[0]
        assert len(lines) == 2 + 3

    def test_title_included(self):
        text = format_series([1], {"s": [2]}, title="Figure")
        assert text.splitlines()[0] == "Figure"

    def test_rejects_length_mismatch(self):
        with pytest.raises(ParameterError):
            format_series([1, 2], {"s": [1]})

    def test_empty_series_mapping_renders_x_column(self):
        lines = format_series([1.0, 2.0], {}, x_label="W").splitlines()
        assert lines[0].strip() == "W"
        assert len(lines) == 2 + 2

    def test_empty_x_renders_header_only(self):
        lines = format_series([], {"s": []}).splitlines()
        assert len(lines) == 2

    def test_numpy_array_inputs(self):
        text = format_series(
            np.array([1.0, 2.0]), {"s": np.array([0.5, 0.25])}
        )
        assert "0.25" in text
