"""Unit tests for the mean-field type-distribution solver.

The load-bearing property: for integer type counts the mean-field
solution IS the per-node heterogeneous fixed point - tau per type must
match `solve_heterogeneous_batch` on the expanded population to <= 1e-9
(the ISSUE 9 acceptance anchor), and the O(K) channel statistics must
match the O(n) `stage_outcome` utilities.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bianchi.batched import solve_heterogeneous_batch
from repro.bianchi.meanfield import (
    MeanFieldSolution,
    expand_types,
    mean_field_statistics,
    solve_mean_field,
    solve_mean_field_batch,
    type_collision_probabilities,
)
from repro.errors import ConvergenceError, ParameterError
from repro.game.utility import stage_outcome
from repro.phy.parameters import AccessMode, PhyParameters
from repro.phy.timing import slot_times

MAX_STAGE = 5


def _expand_tau(tau_types: np.ndarray, counts: np.ndarray) -> np.ndarray:
    return np.repeat(tau_types, counts.astype(np.int64))


class TestShapes:
    def test_batch_solution_shapes(self):
        windows = np.array([[32.0, 64.0], [16.0, 256.0]])
        counts = np.array([[5.0, 5.0], [3.0, 7.0]])
        batch = solve_mean_field_batch(windows, counts, MAX_STAGE)
        assert isinstance(batch, MeanFieldSolution)
        assert batch.n_instances == 2
        assert batch.n_types == 2
        assert batch.tau.shape == (2, 2)
        assert batch.collision.shape == (2, 2)
        assert batch.residual.shape == (2,)
        assert batch.iterations.shape == (2,)
        assert batch.newton.shape == (2,)
        np.testing.assert_allclose(batch.population, [10.0, 10.0])

    def test_1d_input_promoted_to_single_instance(self):
        batch = solve_mean_field([32.0, 64.0], [4.0, 6.0], MAX_STAGE)
        assert batch.tau.shape == (1, 2)
        assert batch.n_instances == 1

    def test_rejects_mismatched_shapes(self):
        with pytest.raises(ParameterError):
            solve_mean_field_batch([[32.0, 64.0]], [[5.0]], MAX_STAGE)

    def test_rejects_nonpositive_counts(self):
        with pytest.raises(ParameterError):
            solve_mean_field([32.0, 64.0], [0.0, 5.0], MAX_STAGE)
        with pytest.raises(ParameterError):
            solve_mean_field([32.0, 64.0], [-1.0, 5.0], MAX_STAGE)

    def test_fractional_counts_accepted(self):
        batch = solve_mean_field([32.0, 64.0], [0.25, 19.75], MAX_STAGE)
        assert np.all(batch.collision[0] >= 0.0)
        assert float(batch.residual[0]) <= 1e-8

    def test_rejects_invalid_windows(self):
        with pytest.raises(Exception):
            solve_mean_field([0.5, 64.0], [5.0, 5.0], MAX_STAGE)


class TestExactAgreement:
    """Integer counts: mean-field == exact per-node fixed point."""

    @pytest.mark.parametrize(
        "windows, counts",
        [
            ([32.0], [10]),
            ([32.0, 64.0], [5, 5]),
            ([16.0, 64.0, 512.0], [3, 12, 5]),
            ([8.0, 32.0, 128.0, 1024.0], [1, 9, 6, 4]),
        ],
    )
    def test_tau_matches_expanded_exact_solve(self, windows, counts):
        w = np.asarray(windows, dtype=float)
        n = np.asarray(counts, dtype=np.int64)
        mf = solve_mean_field(w, n.astype(float), MAX_STAGE)
        exact = solve_heterogeneous_batch(
            expand_types(w, n)[None, :], MAX_STAGE
        )
        np.testing.assert_allclose(
            _expand_tau(mf.tau[0], n), exact.tau[0], rtol=0, atol=1e-9
        )
        np.testing.assert_allclose(
            _expand_tau(mf.collision[0], n),
            exact.collision[0],
            rtol=0,
            atol=1e-9,
        )

    def test_duplicate_types_agree_with_merged_type(self):
        merged = solve_mean_field([32.0, 64.0], [10.0, 5.0], MAX_STAGE)
        split = solve_mean_field(
            [32.0, 32.0, 64.0], [4.0, 6.0, 5.0], MAX_STAGE
        )
        np.testing.assert_allclose(
            split.tau[0][:2],
            [merged.tau[0][0]] * 2,
            rtol=0,
            atol=1e-11,
        )
        np.testing.assert_allclose(
            split.tau[0][2], merged.tau[0][1], rtol=0, atol=1e-11
        )

    def test_symmetric_population_matches_symmetric_solver(self):
        from repro.bianchi.fixedpoint import solve_symmetric

        mf = solve_mean_field([32.0], [20.0], MAX_STAGE)
        sym = solve_symmetric(32.0, 20, MAX_STAGE)
        assert abs(mf.tau[0][0] - sym.tau) <= 1e-10

    def test_million_node_population_converges(self):
        windows = np.array(
            [[16.0, 32.0, 64.0, 128.0, 256.0, 512.0, 1024.0, 48.0]]
        )
        counts = np.full((1, 8), 125_000.0)
        mf = solve_mean_field_batch(windows, counts, MAX_STAGE)
        assert float(mf.population[0]) == 1_000_000.0  # repro: noqa=REPRO003
        assert float(mf.residual[0]) <= 1e-8
        # Congestion this heavy drives collision probabilities near 1.
        assert np.all(mf.collision[0] > 0.99)


class TestCoupling:
    def test_leave_one_out_against_direct_product(self):
        tau = np.array([0.02, 0.05, 0.002])
        counts = np.array([3.0, 2.0, 4.0])
        p = type_collision_probabilities(tau, counts)
        for k in range(3):
            loo = counts.copy()
            loo[k] -= 1.0
            expected = 1.0 - np.prod((1.0 - tau) ** loo)
            assert abs(p[k] - expected) < 1e-14

    def test_empty_types_rejected(self):
        with pytest.raises(ParameterError):
            type_collision_probabilities(
                np.zeros((1, 0)), np.zeros((1, 0))
            )


class TestSinglePopulation:
    def test_lone_node_never_collides(self):
        mf = solve_mean_field([32.0], [1.0], MAX_STAGE)
        assert mf.collision[0][0] == 0.0  # repro: noqa=REPRO003
        assert abs(mf.tau[0][0] - 2.0 / (1.0 + 32.0)) < 1e-12


class TestExpandTypes:
    def test_expansion_order_and_length(self):
        vec = expand_types(np.array([32.0, 64.0]), np.array([2, 3]))
        np.testing.assert_allclose(
            vec, [32.0, 32.0, 64.0, 64.0, 64.0]
        )

    def test_rejects_fractional_counts(self):
        with pytest.raises(ParameterError):
            expand_types(np.array([32.0]), np.array([2.5]))

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(ParameterError):
            expand_types(np.array([32.0, 64.0]), np.array([2]))


class TestStatistics:
    def test_matches_exact_stage_outcome(self):
        params = PhyParameters()
        times = slot_times(params, AccessMode.BASIC)
        w = np.array([32.0, 64.0, 512.0])
        n = np.array([5, 3, 2])
        stats = mean_field_statistics(
            w, n.astype(float), params.max_backoff_stage, params, times
        )
        exact = stage_outcome(expand_types(w, n), params, times)
        np.testing.assert_allclose(
            _expand_tau(stats.type_utilities, n),
            exact.utilities,
            rtol=0,
            atol=1e-12,
        )

    def test_probabilities_are_consistent(self):
        params = PhyParameters()
        times = slot_times(params, AccessMode.BASIC)
        stats = mean_field_statistics(
            [32.0, 64.0],
            [10.0, 10.0],
            params.max_backoff_stage,
            params,
            times,
        )
        assert 0.0 < stats.p_idle < 1.0
        assert abs(stats.p_idle + stats.p_transmission - 1.0) < 1e-12
        assert 0.0 < stats.p_success_slot < stats.p_transmission
        assert 0.0 < stats.throughput < 1.0
        assert stats.expected_slot_us > 0.0

    def test_ignore_cost_raises_utilities(self):
        params = PhyParameters()
        times = slot_times(params, AccessMode.BASIC)
        with_cost = mean_field_statistics(
            [32.0], [10.0], params.max_backoff_stage, params, times
        )
        without = mean_field_statistics(
            [32.0],
            [10.0],
            params.max_backoff_stage,
            params,
            times,
            ignore_cost=True,
        )
        assert without.type_utilities[0] > with_cost.type_utilities[0]


class TestConvergenceControls:
    def test_newton_fallback_reaches_fixed_point(self):
        # A starvation-tight budget forces the Newton path; the answer
        # must still match the converged Anderson solve.
        free = solve_mean_field([32.0, 256.0], [8.0, 12.0], MAX_STAGE)
        forced = solve_mean_field_batch(
            [[32.0, 256.0]],
            [[8.0, 12.0]],
            MAX_STAGE,
            max_iterations=2,
        )
        assert bool(forced.newton[0])
        np.testing.assert_allclose(
            forced.tau, free.tau, rtol=0, atol=1e-9
        )

    def test_warm_start_converges_faster(self):
        cold = solve_mean_field([32.0, 64.0], [10.0, 10.0], MAX_STAGE)
        warm = solve_mean_field_batch(
            [[32.0, 64.0]],
            [[10.0, 10.0]],
            MAX_STAGE,
            initial_tau=cold.tau[0],
        )
        assert int(warm.iterations[0]) <= int(cold.iterations[0])
        np.testing.assert_allclose(
            warm.tau, cold.tau, rtol=0, atol=1e-10
        )
