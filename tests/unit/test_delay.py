"""Unit tests for the access-delay analysis."""

from __future__ import annotations

import numpy as np
import pytest

from repro.bianchi.delay import (
    access_delay_jitter,
    expected_access_delay,
    mean_backoff_slots,
)
from repro.errors import ParameterError


class TestMeanBackoffSlots:
    def test_no_collisions_is_half_window(self):
        # Single attempt, stage 0: E[countdown] = (W - 1)/2.
        assert mean_backoff_slots(33, 0.0, 5) == pytest.approx(16.0)

    def test_matches_series_definition(self):
        window, p, m = 16, 0.3, 3
        expected = sum(
            p**j * (window * 2 ** min(j, m) - 1) / 2 for j in range(200)
        )
        assert mean_backoff_slots(window, p, m) == pytest.approx(
            expected, rel=1e-9
        )

    def test_increasing_in_collision_probability(self):
        values = [mean_backoff_slots(32, p, 5) for p in (0.0, 0.2, 0.5, 0.8)]
        assert all(a < b for a, b in zip(values, values[1:]))

    def test_increasing_in_window(self):
        values = [mean_backoff_slots(w, 0.2, 5) for w in (8, 32, 128)]
        assert all(a < b for a, b in zip(values, values[1:]))

    def test_validation(self):
        with pytest.raises(ParameterError):
            mean_backoff_slots(0, 0.1, 5)
        with pytest.raises(ParameterError):
            mean_backoff_slots(8, 1.0, 5)
        with pytest.raises(ParameterError):
            mean_backoff_slots(8, 0.1, -1)


class TestExpectedAccessDelay:
    def test_single_node_pure_countdown(self, params, basic_times):
        delay = expected_access_delay(33, 1, params, basic_times)
        # No peers: countdown slots are idle slots, one attempt, no
        # collisions.
        assert delay.mean_attempts == pytest.approx(1.0)
        assert delay.countdown_slot_us == pytest.approx(
            basic_times.idle_us
        )
        assert delay.delay_us == pytest.approx(
            16.0 * basic_times.idle_us + basic_times.success_us
        )

    def test_delay_unimodal_with_minimum_near_ne(self, params, basic_times):
        # The key saturated-regime fact: mean access delay bottoms out on
        # the same plateau as W_c* (=166 for n=10).
        from repro.game.equilibrium import efficient_window

        star = efficient_window(10, params, basic_times)
        windows = [8, 32, star, 8 * star, 24 * star]
        delays = [
            expected_access_delay(w, 10, params, basic_times).delay_us
            for w in windows
        ]
        star_delay = delays[2]
        assert star_delay < delays[0]  # better than aggressive
        assert star_delay < delays[-1]  # better than hyper-polite
        assert star_delay <= min(delays) * 1.02  # on the bottom plateau

    def test_more_nodes_more_delay(self, params, basic_times):
        delays = [
            expected_access_delay(128, n, params, basic_times).delay_us
            for n in (2, 5, 10, 20)
        ]
        assert all(a < b for a, b in zip(delays, delays[1:]))

    def test_validation(self, params, basic_times):
        with pytest.raises(ParameterError):
            expected_access_delay(64, 0, params, basic_times)

    def test_matches_simulator(self, params, basic_times):
        # Cross-check against measured per-packet service time: total
        # elapsed time over delivered packets ~ E[access delay] per
        # node times n (each node's packets are served sequentially).
        from repro.sim import DcfSimulator

        window, n = 100, 5
        result = DcfSimulator([window] * n, params, seed=8).run(200_000)
        delivered = result.counters.per_node[0].successes
        measured_per_packet = result.counters.elapsed_us / delivered
        predicted = expected_access_delay(
            window, n, params, basic_times
        ).delay_us
        assert predicted == pytest.approx(measured_per_packet, rel=0.1)


class TestJitter:
    def test_positive_everywhere(self, params, basic_times):
        for window in (4, 64, 512, 4096):
            assert access_delay_jitter(window, 10, params, basic_times) > 0

    def test_grows_linearly_for_huge_windows(self, params, basic_times):
        small = access_delay_jitter(1024, 5, params, basic_times)
        large = access_delay_jitter(4096, 5, params, basic_times)
        # Far above the plateau the uniform countdown dominates:
        # quadrupling W multiplies the spread several-fold (slightly
        # under 4x because the per-slot busy price also falls with W).
        assert 2.0 < large / small < 5.5

    def test_single_node_matches_uniform_std(self, params, basic_times):
        # One node, no collisions: jitter = sigma * std of U{0..W-1}.
        window = 65
        expected = basic_times.idle_us * np.sqrt((window**2 - 1) / 12.0)
        assert access_delay_jitter(
            window, 1, params, basic_times
        ) == pytest.approx(expected, rel=1e-9)

    def test_validation(self, params, basic_times):
        with pytest.raises(ParameterError):
            access_delay_jitter(64, 0, params, basic_times)
