"""Unit tests for the streaming (Welford) statistics layer."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ParameterError, SimulationError
from repro.phy.parameters import AccessMode, default_parameters
from repro.phy.timing import slot_times
from repro.sim.streaming import (
    StreamingStats,
    WelfordAccumulator,
    interval_estimates,
)
from repro.sim.vectorized import run_batch


@pytest.fixture(scope="module")
def params():
    return default_parameters()


class TestWelfordAccumulator:
    def test_matches_batch_moments(self):
        rng = np.random.default_rng(11)
        samples = rng.uniform(size=(13, 4, 3))
        acc = WelfordAccumulator()
        for sample in samples:
            acc.update(sample)
        assert acc.count == 13
        np.testing.assert_allclose(acc.mean, samples.mean(axis=0))
        np.testing.assert_allclose(
            acc.variance(), samples.var(axis=0, ddof=1)
        )
        np.testing.assert_allclose(
            acc.std(), samples.std(axis=0, ddof=1)
        )

    def test_single_sample_has_zero_variance(self):
        acc = WelfordAccumulator()
        acc.update(np.array([1.0, 2.0]))
        np.testing.assert_array_equal(acc.variance(), [0.0, 0.0])

    def test_empty_accumulator_raises(self):
        with pytest.raises(SimulationError):
            WelfordAccumulator().variance()

    def test_numerical_stability_at_large_offset(self):
        # The naive sum-of-squares formula loses everything at this
        # offset; Welford must not.
        rng = np.random.default_rng(5)
        samples = 1e9 + rng.normal(scale=1e-3, size=(64, 2))
        acc = WelfordAccumulator()
        for sample in samples:
            acc.update(sample)
        # numpy's two-pass variance is the yardstick; Welford's one-pass
        # result stays within ~1e-5 relative at this offset, where the
        # naive sum-of-squares formula would be pure cancellation noise.
        np.testing.assert_allclose(
            acc.variance(), samples.var(axis=0, ddof=1), rtol=1e-3
        )


class TestIntervalEstimates:
    def test_definitions(self, params):
        times = slot_times(params, AccessMode.BASIC)
        delta_attempts = np.array([[30.0, 10.0]])
        delta_successes = np.array([[24.0, 6.0]])
        delta_busy = np.array([36.0])
        delta_slots = np.array([1000.0])
        tau, collision, throughput = interval_estimates(
            np,
            delta_attempts,
            delta_successes,
            delta_busy,
            delta_slots,
            times.idle_us,
            times.success_us,
            times.collision_us,
            params.payload_time_us,
        )
        np.testing.assert_allclose(tau, [[0.03, 0.01]])
        np.testing.assert_allclose(collision, [[0.2, 0.4]])
        success_slots = 30.0
        collision_slots = 6.0
        elapsed = (
            (1000.0 - 36.0) * times.idle_us
            + success_slots * times.success_us
            + collision_slots * times.collision_us
        )
        np.testing.assert_allclose(
            throughput, [success_slots * params.payload_time_us / elapsed]
        )

    def test_zero_attempts_give_zero_collision(self, params):
        times = slot_times(params, AccessMode.BASIC)
        tau, collision, _ = interval_estimates(
            np,
            np.zeros((1, 3)),
            np.zeros((1, 3)),
            np.zeros(1),
            np.array([500.0]),
            times.idle_us,
            times.success_us,
            times.collision_us,
            params.payload_time_us,
        )
        np.testing.assert_array_equal(tau, np.zeros((1, 3)))
        np.testing.assert_array_equal(collision, np.zeros((1, 3)))


class TestRunBatchStreaming:
    def test_streaming_mean_matches_final_estimates(self, params):
        # Equal-length intervals: the Welford mean of the interval tau
        # estimates is algebraically the whole-run tau.
        n_slots, interval = 20_000, 1_000
        result = run_batch(
            [[32] * 5] * 3, params, AccessMode.BASIC,
            n_slots=n_slots, seed=9, stats_interval=interval,
        )
        stats = result.streaming
        assert stats is not None
        assert stats.interval_slots == interval
        assert stats.n_intervals == n_slots // interval
        np.testing.assert_allclose(stats.tau.mean, result.tau, atol=1e-12)
        assert float(np.all(stats.tau.variance() >= 0.0))

    def test_streaming_none_without_interval(self, params):
        result = run_batch(
            [32] * 4, params, AccessMode.BASIC, n_slots=2_000, seed=3
        )
        assert result.streaming is None

    def test_ragged_final_interval(self, params):
        result = run_batch(
            [32] * 4, params, AccessMode.BASIC,
            n_slots=2_500, seed=3, stats_interval=1_000,
        )
        assert result.streaming is not None
        assert result.streaming.n_intervals == 3

    def test_invalid_interval_rejected(self, params):
        with pytest.raises(ParameterError):
            run_batch(
                [32] * 4, params, AccessMode.BASIC,
                n_slots=2_000, seed=3, stats_interval=0,
            )

    def test_streaming_stats_fold_counts(self):
        stats = StreamingStats(interval_slots=100)
        for _ in range(4):
            stats.fold(
                np.full((2, 3), 0.1), np.full((2, 3), 0.2), np.full(2, 0.5)
            )
        assert stats.n_intervals == 4
        assert stats.collision.count == 4
        assert stats.throughput.count == 4
