"""Unit tests for store locking, writer journals and the claim protocol.

The hammer test at the bottom runs two *real* writer processes against
one store directory: interleaved ``put``/``gc`` traffic must leave a
store whose index matches its objects exactly (the guarantee the
advisory lock exists to provide).
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.errors import StoreError
from repro.store import (
    ResultStore,
    StoreLock,
    WriterJournal,
    compute_digest,
    default_writer_id,
)

REPO_SRC = str(Path(__file__).resolve().parents[2] / "src")


def _digest(i: int) -> str:
    return compute_digest("convergence", {"seed": i})


class TestStoreLock:
    def test_exclusive_between_instances(self, tmp_path):
        path = tmp_path / ".lock"
        first = StoreLock(path, timeout_s=0.05)
        second = StoreLock(path, timeout_s=0.05)
        with first:
            assert first.held
            with pytest.raises(StoreError, match="could not acquire"):
                second.acquire()
        assert not path.exists()
        with second:
            assert second.held

    def test_reentrant_per_instance(self, tmp_path):
        lock = StoreLock(tmp_path / ".lock")
        with lock:
            with lock:
                assert lock.held
            assert lock.held
        assert not lock.held

    def test_release_without_acquire_rejected(self, tmp_path):
        with pytest.raises(StoreError, match="without being held"):
            StoreLock(tmp_path / ".lock").release()

    def test_stale_lock_is_stolen(self, tmp_path):
        path = tmp_path / ".lock"
        path.write_text(json.dumps({"pid": 0, "host": "ghost"}))
        stale_mtime = time.time() - 3600.0
        os.utime(path, (stale_mtime, stale_mtime))
        lock = StoreLock(path, timeout_s=1.0, stale_after_s=10.0)
        with lock:
            assert lock.held
        assert not path.exists()

    def test_fresh_foreign_lock_is_respected(self, tmp_path):
        path = tmp_path / ".lock"
        path.write_text(json.dumps({"pid": 0, "host": "other"}))
        lock = StoreLock(path, timeout_s=0.05, stale_after_s=3600.0)
        with pytest.raises(StoreError, match="held by"):
            lock.acquire()
        assert path.exists()

    def test_invalid_parameters_rejected(self, tmp_path):
        with pytest.raises(StoreError):
            StoreLock(tmp_path / ".lock", timeout_s=-1)
        with pytest.raises(StoreError):
            StoreLock(tmp_path / ".lock", poll_interval_s=0)
        with pytest.raises(StoreError):
            StoreLock(tmp_path / ".lock", stale_after_s=0)


class TestWriterJournal:
    def test_claim_is_exclusive_and_idempotent(self, tmp_path):
        digest = _digest(1)
        alice = WriterJournal(tmp_path, "alice")
        bob = WriterJournal(tmp_path, "bob")
        assert alice.claim(digest)
        assert alice.claim(digest)  # re-claim by the owner is free
        assert not bob.claim(digest)
        owner = bob.claim_owner(digest)
        assert owner is not None and owner.writer == "alice"
        alice.release(digest)
        assert bob.claim(digest)

    def test_release_of_foreign_claim_is_a_noop(self, tmp_path):
        digest = _digest(2)
        alice = WriterJournal(tmp_path, "alice")
        bob = WriterJournal(tmp_path, "bob")
        assert alice.claim(digest)
        bob.release(digest)
        owner = bob.claim_owner(digest)
        assert owner is not None and owner.writer == "alice"

    def test_stale_claim_is_stolen(self, tmp_path):
        digest = _digest(3)
        ghost = WriterJournal(tmp_path, "ghost")
        assert ghost.claim(digest)
        path = ghost.claim_path(digest)
        stale = time.time() - 7200.0
        os.utime(path, (stale, stale))
        taker = WriterJournal(tmp_path, "taker", stale_after_s=60.0)
        assert taker.claim(digest)
        owner = taker.claim_owner(digest)
        assert owner is not None and owner.writer == "taker"

    def test_journal_records_and_reads_back(self, tmp_path):
        journal = WriterJournal(tmp_path, "w0")
        journal.record(_digest(1), campaign="sweep", task_index=0)
        journal.record(
            _digest(2), campaign="sweep", task_index=1, wall_time_s=0.5
        )
        entries = journal.entries()
        assert [e["task_index"] for e in entries] == [0, 1]
        assert all(e["writer"] == "w0" for e in entries)
        assert journal.writers() == ["w0"]

    def test_torn_final_line_is_skipped(self, tmp_path):
        journal = WriterJournal(tmp_path, "w0")
        journal.record(_digest(1), campaign="sweep", task_index=0)
        with journal.journal_path.open("a") as handle:
            handle.write('{"digest": "tru')  # crash mid-append
        assert len(journal.entries()) == 1

    def test_all_entries_is_writer_major(self, tmp_path):
        a = WriterJournal(tmp_path, "a")
        b = WriterJournal(tmp_path, "b")
        b.record(_digest(1), campaign="s")
        a.record(_digest(2), campaign="s")
        writers = [e["writer"] for e in a.all_entries()]
        assert writers == ["a", "b"]

    def test_bad_writer_ids_rejected(self, tmp_path):
        for bad in ("", "a/b", "a\\b", "a\nb"):
            with pytest.raises(StoreError, match="writer id"):
                WriterJournal(tmp_path, bad)

    def test_default_writer_id_is_host_scoped(self):
        assert str(os.getpid()) in default_writer_id()


_HAMMER = """
import sys
from repro.store import ResultStore

root, start, count = sys.argv[1], int(sys.argv[2]), int(sys.argv[3])
store = ResultStore(root)
for i in range(start, start + count):
    store.put("convergence", {"seed": i}, {"value": i})
    if i % 7 == 0:
        # Interleave a gc pass: retention must not corrupt the index
        # while the sibling process is mid-put.
        store.gc(keep_latest=10_000)
print(len(store.find()))
"""


class TestTwoProcessHammer:
    def test_concurrent_writers_leave_a_consistent_store(self, tmp_path):
        root = tmp_path / "store"
        count = 25
        env = dict(os.environ, PYTHONPATH=REPO_SRC)
        workers = [
            subprocess.Popen(
                [sys.executable, "-c", _HAMMER, str(root), str(start), str(count)],
                env=env,
                stdout=subprocess.PIPE,
                stderr=subprocess.PIPE,
                text=True,
            )
            for start in (0, count)
        ]
        for worker in workers:
            _out, err = worker.communicate(timeout=240)
            assert worker.returncode == 0, err
        store = ResultStore(root)
        entries = store.find()
        assert len(entries) == 2 * count
        # Every indexed digest verifies, and a rebuilt index agrees
        # exactly with the incremental one - nothing lost, nothing
        # duplicated, nothing torn.
        for entry in entries:
            store.verify(entry["digest"])
        indexed = {entry["digest"] for entry in entries}
        store.reindex()
        assert {entry["digest"] for entry in store.find()} == indexed
