"""Tests for the runtime contract layer (``repro.contracts``).

Covers the three check helpers on scalars and arrays, the ``@contract``
decorator, the ``REPRO_CHECKS=0`` kill switch, the ``ContractError``
hierarchy, and the wiring into the model layers (fixed point, utility,
equilibrium, vectorized kernel).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.contracts import (
    ENV_FLAG,
    check_interval,
    check_probability,
    check_window,
    checks_enabled,
    contract,
    in_interval,
    probability,
    window,
)
from repro.errors import ContractError, ParameterError, ReproError


class TestCheckProbability:
    @pytest.mark.parametrize("value", [0.0, 1.0, 0.37, 1.0 + 1e-12])
    def test_accepts_valid_scalars(self, value):
        assert check_probability(value, "tau") is value

    def test_accepts_arrays_and_returns_them_unchanged(self):
        tau = np.array([0.0, 0.5, 1.0])
        assert check_probability(tau, "tau") is tau

    @pytest.mark.parametrize("value", [-0.01, 1.01, np.nan, np.inf, -np.inf])
    def test_rejects_invalid_scalars(self, value):
        with pytest.raises(ContractError):
            check_probability(value, "tau")

    def test_rejects_array_with_one_bad_entry(self):
        with pytest.raises(ContractError, match="collision"):
            check_probability(np.array([0.2, 1.2, 0.4]), "collision")

    def test_tolerance_is_configurable(self):
        check_probability(1.0 + 1e-7, "tau", tol=1e-6)
        with pytest.raises(ContractError):
            check_probability(1.0 + 1e-7, "tau", tol=0.0)


class TestCheckWindow:
    def test_accepts_scalars_and_arrays(self):
        assert check_window(32, "W") == 32
        w = np.array([1.0, 78.0, 1024.0])
        assert check_window(w, "W") is w

    @pytest.mark.parametrize("value", [0.5, 0, -3, np.nan, np.inf])
    def test_rejects_sub_minimum_and_non_finite(self, value):
        with pytest.raises(ContractError):
            check_window(value, "W")

    def test_custom_minimum(self):
        check_window(16, "W", minimum=16)
        with pytest.raises(ContractError):
            check_window(15, "W", minimum=16)


class TestCheckInterval:
    def test_accepts_inside_and_tolerance(self):
        assert check_interval(5.0, 1.0, 10.0, "W") == 5.0  # repro: noqa=REPRO003
        check_interval(10.5, 1.0, 10.0, "W", tol=0.5)

    def test_rejects_outside(self):
        with pytest.raises(ContractError, match="efficient window"):
            check_interval(11.0, 1.0, 10.0, "efficient window")

    def test_rejects_empty_interval(self):
        with pytest.raises(ContractError):
            check_interval(5.0, 10.0, 1.0, "W")


@pytest.fixture(autouse=True)
def _checks_on(monkeypatch):
    """Run every test with contracts enabled, whatever the ambient env.

    TestKillSwitch tests override this per-test via their own
    monkeypatch.setenv calls.
    """
    monkeypatch.delenv(ENV_FLAG, raising=False)


class TestContractDecorator:
    def test_validates_named_argument(self):
        @contract(tau=probability(tol=0.0))
        def success(tau: float) -> float:
            return 1.0 - tau

        assert success(0.25) == 0.75  # repro: noqa=REPRO003
        with pytest.raises(ContractError):
            success(1.5)

    def test_validates_defaults_and_keywords(self):
        @contract(w=window(minimum=2.0))
        def f(x: int, w: float = 1.0) -> float:
            return x * w

        with pytest.raises(ContractError):
            f(3)  # the default itself violates the contract
        assert f(3, w=2.0) == 6.0  # repro: noqa=REPRO003

    def test_validates_result(self):
        @contract(result=in_interval(0.0, 1.0))
        def bad() -> float:
            return 2.0

        with pytest.raises(ContractError, match="result"):
            bad()

    def test_unknown_parameter_rejected_at_decoration_time(self):
        with pytest.raises(ContractError, match="unknown"):

            @contract(nope=probability())
            def f(x: float) -> float:
                return x

    def test_metadata_preserved(self):
        @contract(tau=probability())
        def documented(tau: float) -> float:
            """Docstring survives wrapping."""
            return tau

        assert documented.__name__ == "documented"
        assert "survives" in documented.__doc__


class TestKillSwitch:
    def test_enabled_by_default(self, monkeypatch):
        monkeypatch.delenv(ENV_FLAG, raising=False)
        assert checks_enabled()
        monkeypatch.setenv(ENV_FLAG, "1")
        assert checks_enabled()

    def test_zero_disables(self, monkeypatch):
        monkeypatch.setenv(ENV_FLAG, "0")
        assert not checks_enabled()

    def test_decorator_short_circuits_when_disabled(self, monkeypatch):
        @contract(tau=probability(tol=0.0))
        def success(tau: float) -> float:
            return 1.0 - tau

        monkeypatch.setenv(ENV_FLAG, "0")
        # The violating argument passes straight through to the body.
        assert success(1.5) == -0.5  # repro: noqa=REPRO003

    def test_direct_helpers_stay_on_when_disabled(self, monkeypatch):
        # Boundary validation is not gated: only decorator/hot-path
        # call sites consult checks_enabled().
        monkeypatch.setenv(ENV_FLAG, "0")
        with pytest.raises(ContractError):
            check_probability(1.5, "tau")


class TestErrorHierarchy:
    def test_contract_error_is_parameter_error(self):
        # Existing boundary tests catch ParameterError; swapping manual
        # raises for contract helpers must not break them.
        assert issubclass(ContractError, ParameterError)
        assert issubclass(ContractError, ReproError)

    def test_message_names_the_quantity(self):
        with pytest.raises(ContractError, match="tau.*lie in"):
            check_probability(-1.0, "tau")


class TestModelWiring:
    """The contracts actually guard the layers ISSUE.md names."""

    def test_fixedpoint_rejects_bad_window_via_contract(self):
        from repro.bianchi.fixedpoint import solve_heterogeneous, solve_symmetric

        with pytest.raises(ContractError):
            solve_heterogeneous([0.0, 32.0], 5)
        with pytest.raises(ContractError):
            solve_symmetric(0.5, 5, 5)

    def test_utility_rejects_bad_tau_via_contract(self):
        from repro.game.utility import symmetric_utility_from_tau
        from repro.phy import AccessMode, default_parameters
        from repro.phy.timing import slot_times

        params = default_parameters()
        times = slot_times(params, AccessMode.BASIC)
        with pytest.raises(ContractError):
            symmetric_utility_from_tau(1.5, 5, params, times)

    def test_vectorized_kernel_rejects_bad_window(self):
        from repro.phy import default_parameters
        from repro.sim.vectorized import run_batch

        with pytest.raises(ContractError):
            run_batch([[0, 32]], default_parameters(), n_slots=100, seed=1)

    def test_vectorized_kernel_passes_contracts_on_honest_run(self):
        from repro.phy import default_parameters
        from repro.sim.vectorized import run_batch

        result = run_batch(
            [[32, 32, 32]], default_parameters(), n_slots=2_000, seed=7
        )
        # The gated post-run block validated these before returning.
        assert np.all((result.tau >= 0.0) & (result.tau <= 1.0))
        assert np.all((result.collision >= 0.0) & (result.collision <= 1.0))
