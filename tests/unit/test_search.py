"""Unit tests for the Section V.C search protocol."""

from __future__ import annotations

import pytest

from repro.errors import ProtocolError
from repro.game.equilibrium import efficient_window
from repro.game.search import run_search_protocol


@pytest.fixture(scope="module")
def optimum(small_game):
    return efficient_window(
        small_game.n_players, small_game.params, small_game.times
    )


class TestAnalyticSearch:
    def test_finds_optimum_from_below(self, small_game, optimum):
        outcome = run_search_protocol(small_game, optimum - 15)
        # The symmetric utility includes the cost term while W_c* is the
        # cost-free optimum; on the flat plateau they differ by at most a
        # couple of windows.
        found_u = small_game.symmetric_utility(outcome.window)
        best_u = small_game.symmetric_utility(optimum)
        assert found_u >= best_u * 0.999

    def test_finds_optimum_from_above(self, small_game, optimum):
        outcome = run_search_protocol(small_game, optimum + 15)
        assert outcome.window <= optimum + 15
        found_u = small_game.symmetric_utility(outcome.window)
        assert found_u >= small_game.symmetric_utility(optimum) * 0.999

    def test_left_search_triggers_when_start_is_past_peak(
        self, small_game, optimum
    ):
        outcome = run_search_protocol(small_game, optimum + 30)
        kinds = [m.kind for m in outcome.messages]
        assert kinds[0] == "start"
        assert kinds[-1] == "result"
        # The found window lies below the start: left-search walked down.
        assert outcome.window < optimum + 30

    def test_exact_peak_start_stays(self, small_game):
        # With a concave measurement peaked at some window, starting
        # there must return it.
        peak = 100

        def measure(window: int) -> float:
            return -abs(window - peak)

        outcome = run_search_protocol(small_game, peak, measure=measure)
        assert outcome.window == peak

    def test_synthetic_unimodal_found_from_both_sides(self, small_game):
        peak = 57

        def measure(window: int) -> float:
            return -((window - peak) ** 2)

        for start in (30, 57, 90):
            outcome = run_search_protocol(small_game, start, measure=measure)
            assert outcome.window == peak

    def test_larger_step_quantizes_answer(self, small_game):
        peak = 57

        def measure(window: int) -> float:
            return -((window - peak) ** 2)

        outcome = run_search_protocol(
            small_game, 37, measure=measure, step=10
        )
        assert outcome.window == 57  # 37 -> 47 -> 57 -> (67 worse)
        assert all(
            (w - 37) % 10 == 0 for w, _ in outcome.measurements
        )


class TestProtocolTrace:
    def test_messages_bracket_measurements(self, small_game):
        outcome = run_search_protocol(
            small_game, 60, measure=lambda w: -abs(w - 63)
        )
        assert outcome.messages[0].kind == "start"
        assert outcome.messages[0].window == 60
        assert outcome.messages[-1].kind == "result"
        assert outcome.messages[-1].window == outcome.window
        ready = [m for m in outcome.messages if m.kind == "ready"]
        # One Ready per probe after the initial measurement.
        assert len(ready) == outcome.n_measurements - 1

    def test_measurement_log_in_order(self, small_game):
        outcome = run_search_protocol(
            small_game, 60, measure=lambda w: -abs(w - 63)
        )
        probed = [w for w, _ in outcome.measurements]
        assert probed[0] == 60
        assert probed[1:] == [61, 62, 63, 64]


class TestValidation:
    def test_start_outside_space_rejected(self, small_game):
        with pytest.raises(ProtocolError):
            run_search_protocol(
                small_game, small_game.params.cw_max + 1
            )

    def test_bad_step_rejected(self, small_game):
        with pytest.raises(ProtocolError):
            run_search_protocol(small_game, 50, step=0)

    def test_max_steps_guard(self, small_game):
        # A monotone increasing measurement walks right forever.
        with pytest.raises(ProtocolError):
            run_search_protocol(
                small_game, 2, measure=lambda w: float(w), max_steps=5
            )

    def test_search_stops_at_space_edge(self, small_game):
        # Monotone measurement with a generous step budget: the search
        # stops at cw_max instead of overrunning.
        outcome = run_search_protocol(
            small_game,
            small_game.params.cw_max - 3,
            measure=lambda w: float(w),
        )
        assert outcome.window == small_game.params.cw_max
