"""Additional unit tests for the figure experiment modules."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ParameterError
from repro.experiments import figure2, figure3
from repro.experiments.figure2 import _log_grid
from repro.phy.parameters import AccessMode


class TestLogGrid:
    def test_endpoints_included(self):
        grid = _log_grid(2, 1000, 20)
        assert grid[0] == 2
        assert grid[-1] == 1000

    def test_strictly_increasing_integers(self):
        grid = _log_grid(2, 500, 30)
        assert grid.dtype.kind == "i"
        assert np.all(np.diff(grid) > 0)

    def test_geometric_spacing(self):
        grid = _log_grid(2, 2048, 12)
        ratios = grid[1:] / grid[:-1]
        # Roughly constant multiplicative steps (coarse check).
        assert ratios.max() / ratios.min() < 4

    def test_validation(self):
        with pytest.raises(ParameterError):
            _log_grid(0, 10, 5)
        with pytest.raises(ParameterError):
            _log_grid(10, 10, 5)


class TestCustomGrid:
    def test_explicit_grid_respected(self, params):
        result = figure2.run_mode(
            AccessMode.BASIC,
            params=params,
            sizes=(3,),
            grid=[10, 50, 100, 78],
        )
        np.testing.assert_array_equal(result.windows, [10, 50, 78, 100])

    def test_duplicate_grid_points_deduplicated(self, params):
        result = figure2.run_mode(
            AccessMode.BASIC,
            params=params,
            sizes=(3,),
            grid=[50, 50, 100],
        )
        np.testing.assert_array_equal(result.windows, [50, 100])


class TestRenderedFigure:
    @pytest.fixture(scope="class")
    def curves(self, params):
        return figure3.run(params=params, sizes=(3, 6), n_points=12)

    def test_render_has_chart_and_table(self, curves):
        text = curves.render()
        assert "Global payoff versus CW value" in text
        assert "o = U/C (n=3)" in text
        assert "x = U/C (n=6)" in text
        # The aligned numeric table follows the chart.
        assert "U/C (n=3)" in text.splitlines()[-len(curves.windows) - 2]

    def test_optima_recorded_per_size(self, curves):
        assert set(curves.optima) == {3, 6}
        assert curves.optima[3] < curves.optima[6]

    def test_peak_window_in_grid(self, curves):
        for n in (3, 6):
            assert curves.peak_window(n) in curves.windows
