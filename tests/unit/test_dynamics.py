"""Unit tests for the mobility dynamics of multi-hop TFT."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ParameterError
from repro.multihop.dynamics import MobilityDynamics


@pytest.fixture(scope="module")
def trace(params):
    dynamics = MobilityDynamics(
        params, n_nodes=40, rng=np.random.default_rng(5)
    )
    return dynamics.run(5, epoch_seconds=120.0)


class TestMobilityDynamics:
    def test_epoch_count(self, trace):
        assert len(trace.records) == 5

    def test_sticky_windows_never_increase(self, trace):
        sticky = trace.sticky_windows()
        assert all(a >= b for a, b in zip(sticky, sticky[1:]))

    def test_sticky_is_historical_minimum(self, trace):
        minima = trace.snapshot_minima()
        sticky = trace.sticky_windows()
        for epoch in range(len(sticky)):
            assert sticky[epoch] == min(minima[: epoch + 1])

    def test_reopening_tracks_each_snapshot(self, trace):
        assert trace.reopening_windows() == trace.snapshot_minima()

    def test_sticky_never_above_reopening(self, trace):
        for sticky, reopening in zip(
            trace.sticky_windows(), trace.reopening_windows()
        ):
            assert sticky <= reopening

    def test_first_epoch_policies_agree(self, trace):
        first = trace.records[0]
        assert first.sticky_window == first.reopening_window

    def test_run_validates_epochs(self, params):
        dynamics = MobilityDynamics(
            params, n_nodes=10, rng=np.random.default_rng(1)
        )
        with pytest.raises(ParameterError):
            dynamics.run(0)
