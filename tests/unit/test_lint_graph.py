"""Unit tests for the whole-program call graph (repro.lint.graph)."""

from __future__ import annotations

import pickle
import textwrap
from pathlib import Path

from repro.lint.graph import (
    GRAPH_SCHEMA_VERSION,
    build_graph,
    graph_cache_key,
    load_or_build,
)

FIXTURES = Path(__file__).resolve().parent.parent / "lint_fixtures"
WHOLEPROGRAM = FIXTURES / "wholeprogram"


def write_tree(root: Path, files: dict) -> Path:
    for name, source in files.items():
        target = root / name
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(textwrap.dedent(source), encoding="utf-8")
    return root


class TestGraphConstruction:
    def test_functions_and_modules_collected(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "pkg/__init__.py": "",
                "pkg/mod.py": """
                    def helper():
                        return 1

                    class Thing:
                        def method(self):
                            return helper()
                """,
            },
        )
        graph = build_graph([tmp_path])
        assert "pkg.mod" in graph.modules
        assert "pkg.mod.helper" in graph.functions
        assert "pkg.mod.Thing.method" in graph.functions

    def test_same_module_call_edge_resolves(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "solo.py": """
                    def inner():
                        return 1

                    def outer():
                        return inner()
                """,
            },
        )
        graph = build_graph([tmp_path])
        calls = graph.callees("solo.outer")
        assert any(c.resolved and c.callee == "solo.inner" for c in calls)

    def test_cross_module_call_edge_resolves(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "pkg/__init__.py": "",
                "pkg/a.py": """
                    def work():
                        return 1
                """,
                "pkg/b.py": """
                    from pkg.a import work

                    def caller():
                        return work()
                """,
            },
        )
        graph = build_graph([tmp_path])
        calls = graph.callees("pkg.b.caller")
        assert any(c.resolved and c.callee == "pkg.a.work" for c in calls)

    def test_package_reexport_resolves(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "pkg/__init__.py": "from pkg.impl import work\n",
                "pkg/impl.py": """
                    def work():
                        return 1
                """,
                "pkg/user.py": """
                    from pkg import work

                    def caller():
                        return work()
                """,
            },
        )
        graph = build_graph([tmp_path])
        calls = graph.callees("pkg.user.caller")
        assert any(c.resolved and c.callee == "pkg.impl.work" for c in calls)

    def test_function_reference_argument_creates_edge(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "hof.py": """
                    def dispatch(fn, items):
                        return [fn(item) for item in items]

                    def worker(item):
                        return item + 1

                    def driver(items):
                        return dispatch(worker, items)
                """,
            },
        )
        graph = build_graph([tmp_path])
        calls = graph.callees("hof.driver")
        assert any(c.resolved and c.callee == "hof.worker" for c in calls)

    def test_parameter_name_is_not_a_function_reference(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "shadow.py": """
                    def worker(item):
                        return item

                    def driver(worker):
                        return len(worker)
                """,
            },
        )
        graph = build_graph([tmp_path])
        calls = graph.callees("shadow.driver")
        assert not any(c.callee == "shadow.worker" for c in calls)


class TestEffectExtraction:
    def _effects(self, tmp_path, body):
        write_tree(tmp_path, {"mod.py": body})
        graph = build_graph([tmp_path])
        return {
            (effect.kind, effect.detail)
            for info in graph.functions.values()
            for effect in info.effects
        }

    def test_time_read(self, tmp_path):
        effects = self._effects(
            tmp_path,
            """
            import time

            def f():
                return time.time()
            """,
        )
        assert ("time", "time.time()") in effects

    def test_env_read_and_write(self, tmp_path):
        effects = self._effects(
            tmp_path,
            """
            import os

            def f():
                value = os.environ["HOME"]
                os.environ["X"] = "1"
                return value
            """,
        )
        kinds = {kind for kind, _ in effects}
        assert "env" in kinds

    def test_global_statement_flagged(self, tmp_path):
        effects = self._effects(
            tmp_path,
            """
            _CACHE = None

            def f(value):
                global _CACHE
                _CACHE = value
            """,
        )
        assert ("global-write", "global _CACHE") in effects

    def test_module_level_mutation_flagged(self, tmp_path):
        effects = self._effects(
            tmp_path,
            """
            _CACHE = {}

            def f(key, value):
                _CACHE[key] = value
            """,
        )
        assert any(kind == "global-write" for kind, _ in effects)

    def test_mutating_method_on_module_global(self, tmp_path):
        effects = self._effects(
            tmp_path,
            """
            _SEEN = []

            def f(item):
                _SEEN.append(item)
            """,
        )
        assert any(kind == "global-write" for kind, _ in effects)

    def test_local_shadow_not_flagged(self, tmp_path):
        effects = self._effects(
            tmp_path,
            """
            _CACHE = {}

            def f(key, value):
                _CACHE = {}
                _CACHE[key] = value
                return _CACHE
            """,
        )
        assert not any(kind == "global-write" for kind, _ in effects)

    def test_io_calls(self, tmp_path):
        effects = self._effects(
            tmp_path,
            """
            from pathlib import Path

            def f(path):
                data = open(path).read()
                Path(path).write_text(data)
                return data
            """,
        )
        io_details = {d for kind, d in effects if kind == "io"}
        assert "open()" in io_details
        assert ".write_text()" in io_details

    def test_pure_function_has_no_effects(self, tmp_path):
        effects = self._effects(
            tmp_path,
            """
            def f(values):
                total = 0
                for value in values:
                    total += value
                return total
            """,
        )
        assert effects == set()


class TestRoots:
    def test_registry_runners_become_roots(self):
        graph = build_graph([WHOLEPROGRAM])
        assert "cached_runner.run" in graph.roots

    def test_declared_analysis_roots(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "mod.py": """
                    ANALYSIS_ROOTS = ("mod.kernel",)

                    def kernel(x):
                        return x * 2
                """,
            },
        )
        graph = build_graph([tmp_path])
        assert graph.roots == ("mod.kernel",)

    def test_unresolved_roots_surface(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "mod.py": """
                    ANALYSIS_ROOTS = ("mod.gone",)

                    def kernel(x):
                        return x
                """,
            },
        )
        graph = build_graph([tmp_path])
        assert graph.unresolved_roots() == ("mod.gone",)

    def test_real_tree_roots_cover_all_registered_runners(self):
        graph = build_graph([Path("src")])
        roots = set(graph.roots)
        # Every Experiment(...) registration contributes its runner.
        registry = graph.modules["repro.experiments.registry"]
        assert registry.registry_runners
        assert set(registry.registry_runners) <= roots
        # The declared backend kernels are certified too.
        assert "repro.backends.calendar_kernels.sim_chunk_kernel" in roots
        assert "repro.backends.calendar_kernels.fixed_point_kernel" in roots
        # Config drift guard: every declared root resolves.
        assert graph.unresolved_roots() == ()

    def test_exception_classes_transitive(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "errors.py": """
                    class ReproError(Exception):
                        pass

                    class StoreError(ReproError):
                        pass

                    class IntegrityError(StoreError):
                        pass

                    class Unrelated(Exception):
                        pass
                """,
            },
        )
        graph = build_graph([tmp_path])
        approved = graph.exception_classes()
        assert "errors.StoreError" in approved
        assert "errors.IntegrityError" in approved
        assert "errors.Unrelated" not in approved


class TestGraphCache:
    def test_load_or_build_round_trip(self, tmp_path):
        tree = tmp_path / "tree"
        write_tree(
            tree,
            {"mod.py": "def f():\n    return 1\n"},
        )
        cache = tmp_path / "cache"
        first = load_or_build([tree], cache_dir=cache)
        assert list(cache.glob("graph-*.pkl"))
        second = load_or_build([tree], cache_dir=cache)
        assert sorted(second.functions) == sorted(first.functions)

    def test_cache_key_changes_with_source(self, tmp_path):
        tree = tmp_path / "tree"
        write_tree(tree, {"mod.py": "def f():\n    return 1\n"})
        key_before = graph_cache_key([tree])
        (tree / "mod.py").write_text("def f():\n    return 2\n")
        assert graph_cache_key([tree]) != key_before

    def test_corrupt_cache_rebuilds_silently(self, tmp_path):
        tree = tmp_path / "tree"
        write_tree(tree, {"mod.py": "def f():\n    return 1\n"})
        cache = tmp_path / "cache"
        load_or_build([tree], cache_dir=cache)
        for entry in cache.glob("graph-*.pkl"):
            entry.write_bytes(b"not a pickle")
        graph = load_or_build([tree], cache_dir=cache)
        assert "mod.f" in graph.functions

    def test_stale_schema_rebuilds(self, tmp_path):
        tree = tmp_path / "tree"
        write_tree(tree, {"mod.py": "def f():\n    return 1\n"})
        cache = tmp_path / "cache"
        graph = load_or_build([tree], cache_dir=cache)
        graph.schema_version = GRAPH_SCHEMA_VERSION - 1
        for entry in cache.glob("graph-*.pkl"):
            entry.write_bytes(pickle.dumps(graph))
        rebuilt = load_or_build([tree], cache_dir=cache)
        assert rebuilt.schema_version == GRAPH_SCHEMA_VERSION
