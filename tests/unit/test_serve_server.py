"""End-to-end tests of the HTTP protocol layer over real TCP sockets.

Each test boots a :class:`~repro.serve.protocol.ServeServer` on an
ephemeral loopback port inside the event loop and talks to it with the
blocking :class:`~repro.serve.client.ServeClient` from an executor
thread - the same split a real deployment has.
"""

from __future__ import annotations

import asyncio
import json
from typing import Any, Callable

import pytest

from repro.errors import ServeError
from repro.serve import EquilibriumService, ServeClient, ServeServer
from repro.store import ResultStore


def run_against_server(tmp_path, work: Callable[[ServeClient], Any]) -> Any:
    """Boot a server, run blocking client ``work`` in a thread, tear down."""

    async def scenario():
        service = EquilibriumService(ResultStore(tmp_path / "store"))
        server = ServeServer(service, host="127.0.0.1", port=0)
        await server.start()
        port = server.port

        def blocking():
            with ServeClient("127.0.0.1", port, timeout_s=60.0) as client:
                return work(client)

        try:
            return await asyncio.get_running_loop().run_in_executor(
                None, blocking
            )
        finally:
            await server.close()

    return asyncio.run(scenario())


class TestEndpoints:
    def test_health_and_stats(self, tmp_path):
        def work(client):
            return client.health(), client.stats()

        health, stats = run_against_server(tmp_path, work)
        assert health == {"ok": True}
        assert stats["requests"] == 0
        assert set(stats) >= {"cache_hits", "coalesced", "solves"}

    def test_solve_roundtrip_cold_then_warm(self, tmp_path):
        def work(client):
            cold = client.solve("equilibrium", {"n_nodes": 5})
            warm = client.solve("equilibrium", {"n_nodes": 5})
            return cold, warm

        cold, warm = run_against_server(tmp_path, work)
        assert cold["cached"] is False
        assert warm["cached"] is True
        assert cold["result"]["window_star"] == warm["result"]["window_star"]
        assert cold["result"]["n_equilibria"] >= 1

    def test_list_payload_with_inline_error(self, tmp_path):
        def work(client):
            return client.solve_many(
                [
                    {"kind": "equilibrium", "params": {"n_nodes": 5}},
                    {"kind": "bogus", "params": {}},
                    {"kind": "fixed_point", "params": {"windows": [32, 64]}},
                ]
            )

        good, bad, fp = run_against_server(tmp_path, work)
        assert good["result"]["window_star"] > 0
        assert bad["type"] == "ServeError"
        assert "unknown request kind" in bad["error"]
        assert len(fp["result"]["tau"]) == 2

    def test_malformed_requests_rejected(self, tmp_path):
        def work(client):
            outcomes = {}
            with pytest.raises(ServeError, match="400"):
                client.solve("equilibrium", {"n_nodes": 5, "bogus": 1})
            with pytest.raises(ServeError, match="404"):
                client._request("GET", "/v2/everything")
            with pytest.raises(ServeError, match="400"):
                client._request("POST", "/v1/solve", payload=None)
            outcomes["after"] = client.health()
            return outcomes

        outcomes = run_against_server(tmp_path, work)
        # The keep-alive connection survives rejected requests.
        assert outcomes["after"] == {"ok": True}

    def test_mean_field_error_paths_are_clean_400s(self, tmp_path):
        """Bad mean-field payloads reject without poisoning the socket."""

        def work(client):
            outcomes = {}
            with pytest.raises(ServeError, match="400"):
                client.solve(
                    "mean_field",
                    {"type_windows": [32.0, 64.0], "type_counts": [3, -2]},
                )
            with pytest.raises(ServeError, match="400"):
                client.solve(
                    "mean_field", {"type_windows": [], "type_counts": []}
                )
            with pytest.raises(ServeError, match="400"):
                client.solve(
                    "mean_field",
                    {"type_windows": [32.0, 64.0], "type_counts": [5]},
                )
            with pytest.raises(ServeError, match="400"):
                client.solve(
                    "mean_field",
                    {
                        "type_windows": [32.0],
                        "type_counts": ["many"],
                    },
                )
            with pytest.raises(ServeError, match="400"):
                client.solve(
                    "mean_field",
                    {
                        "type_windows": [32.0],
                        "type_counts": [5],
                        "max_stage": 0,
                    },
                )
            outcomes["after"] = client.health()
            # The same connection still solves a valid request.
            outcomes["solve"] = client.solve(
                "mean_field",
                {"type_windows": [32.0, 256.0], "type_counts": [4, 2]},
            )
            return outcomes

        outcomes = run_against_server(tmp_path, work)
        assert outcomes["after"] == {"ok": True}
        result = outcomes["solve"]["result"]
        taus = result["tau"]
        assert len(taus) == 2
        # The smaller window is the more aggressive type.
        assert taus[0] > taus[1]

    def test_raw_wire_bytes_are_standard_json(self, tmp_path):
        """No NaN/Infinity tokens can appear in a response body."""

        async def scenario():
            service = EquilibriumService(ResultStore(tmp_path / "store"))
            server = ServeServer(service, host="127.0.0.1", port=0)
            await server.start()
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", server.port
            )
            body = json.dumps(
                {"kind": "curve", "params": {"n_nodes": 5, "windows": [1]}}
            ).encode()
            writer.write(
                b"POST /v1/solve HTTP/1.1\r\n"
                b"Content-Length: " + str(len(body)).encode() + b"\r\n"
                b"Connection: close\r\n\r\n" + body
            )
            await writer.drain()
            raw = await reader.read()
            writer.close()
            await server.close()
            return raw

        raw = asyncio.run(scenario())
        head, _, payload = raw.partition(b"\r\n\r\n")
        assert b" 200 " in head.split(b"\r\n")[0]
        assert b"NaN" not in payload
        assert b"Infinity" not in payload
        json.loads(payload)  # parses under strict JSON rules
