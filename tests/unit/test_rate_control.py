"""Unit tests for the selfish rate-control game."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import GameDefinitionError, ParameterError
from repro.game.equilibrium import efficient_window
from repro.game.rate_control import (
    RateControlGame,
    RateOption,
    default_rate_options,
)
from repro.phy.parameters import AccessMode
from repro.phy.timing import slot_times


@pytest.fixture(scope="module")
def game(params):
    star = efficient_window(
        10, params, slot_times(params, AccessMode.BASIC)
    )
    return RateControlGame(10, params, star)


class TestRateOption:
    def test_validation(self):
        with pytest.raises(ParameterError):
            RateOption(0.0, 0.9)
        with pytest.raises(ParameterError):
            RateOption(1e6, 0.0)
        with pytest.raises(ParameterError):
            RateOption(1e6, 1.5)

    def test_default_ladder_monotone(self):
        options = default_rate_options()
        rates = [o.bit_rate for o in options]
        qualities = [o.delivery_probability for o in options]
        assert rates == sorted(rates)
        assert qualities == sorted(qualities, reverse=True)


class TestSlotPricing:
    def test_faster_rates_shorten_slots(self, game):
        n_options = len(game.options)
        slowest = game.expected_slot_us([0] * 10)
        fastest = game.expected_slot_us([n_options - 1] * 10)
        assert fastest < slowest

    def test_one_slow_node_inflates_everyones_slots(self, game):
        fast = len(game.options) - 1
        all_fast = game.expected_slot_us([fast] * 10)
        one_slow = game.expected_slot_us([0] + [fast] * 9)
        assert one_slow > all_fast

    def test_performance_anomaly_in_utilities(self, game):
        # The slow node drags *other* players' utilities down - the
        # classic 802.11 anomaly, emerging from the shared slot time.
        fast = len(game.options) - 1
        baseline = game.utilities([fast] * 10)
        degraded = game.utilities([0] + [fast] * 9)
        assert degraded[1] < baseline[1]


class TestBestResponse:
    def test_returns_valid_index(self, game):
        profile = [1] * 10
        response = game.best_response(0, profile)
        assert 0 <= response < len(game.options)

    def test_best_response_is_maximal(self, game):
        profile = [2] * 10
        response = game.best_response(0, profile)
        chosen = game.utilities(
            [response] + profile[1:]
        )[0]
        for candidate in range(len(game.options)):
            trial = [candidate] + profile[1:]
            assert chosen >= game.utilities(trial)[0] - 1e-18

    def test_player_bounds_checked(self, game):
        with pytest.raises(GameDefinitionError):
            game.best_response(10, [0] * 10)


class TestEquilibrium:
    def test_solve_finds_pure_nash(self, game):
        equilibrium = game.solve()
        assert game.is_nash(equilibrium.nash_profile)

    def test_nash_is_symmetric_here(self, game):
        equilibrium = game.solve()
        assert len(set(equilibrium.nash_profile)) == 1

    def test_selfish_rate_no_faster_than_social(self, game):
        # The reliability gain is private, the airtime cost shared:
        # selfish choices sit at or below the social rate.
        equilibrium = game.solve()
        assert equilibrium.nash_profile[0] <= equilibrium.social_profile[0]

    def test_inefficient_equilibrium_with_default_ladder(self, game):
        # With the default link budget the NE is strictly slower than
        # the social optimum: price of anarchy > 1 (the paper's related
        # work [Tan & Guttag 2005] in our framework).
        equilibrium = game.solve()
        assert equilibrium.price_of_anarchy > 1.001

    def test_multiple_equilibria_ordered_by_start(self, game):
        # The game is a coordination game in the shared slot time, so
        # best-response dynamics can settle on different pure NEs from
        # different corners - both must be genuine equilibria, with the
        # bottom start never overtaking the top one.
        from_top = game.solve(
            initial_profile=[len(game.options) - 1] * 10
        )
        from_bottom = game.solve(initial_profile=[0] * 10)
        assert game.is_nash(from_top.nash_profile)
        assert game.is_nash(from_bottom.nash_profile)
        assert from_bottom.nash_profile[0] <= from_top.nash_profile[0]

    def test_degenerate_tension_free_ladder_is_efficient(self, params):
        # If rate does not cost reliability, everyone picks the fastest
        # rate and the NE is socially optimal.
        options = [
            RateOption(1e6, 0.99, "slow"),
            RateOption(11e6, 0.99, "fast"),
        ]
        game = RateControlGame(5, params, 128, options=options)
        equilibrium = game.solve()
        assert set(equilibrium.nash_profile) == {1}
        assert equilibrium.price_of_anarchy == pytest.approx(1.0)


class TestConstruction:
    def test_validation(self, params):
        with pytest.raises(GameDefinitionError):
            RateControlGame(1, params, 128)
        with pytest.raises(GameDefinitionError):
            RateControlGame(5, params, 0)
        with pytest.raises(GameDefinitionError):
            RateControlGame(
                5, params, 128, options=[RateOption(1e6, 0.9)]
            )
        with pytest.raises(GameDefinitionError):
            RateControlGame(5, params, 128, energy_per_us=-1.0)

    def test_profile_validation(self, game):
        with pytest.raises(GameDefinitionError):
            game.utilities([0] * 9)
        with pytest.raises(GameDefinitionError):
            game.utilities([0] * 9 + [99])

    def test_rts_mode_prices_collisions_flat(self, params):
        game = RateControlGame(
            5, params, 48, mode=AccessMode.RTS_CTS
        )
        fast = len(game.options) - 1
        # Collision airtime is rate-independent under RTS/CTS, so the
        # slow-node externality is smaller than in basic mode.
        basic = RateControlGame(5, params, 48, mode=AccessMode.BASIC)

        def externality(g):
            all_fast = g.expected_slot_us([fast] * 5)
            one_slow = g.expected_slot_us([0] + [fast] * 4)
            return one_slow - all_fast

        assert externality(game) <= externality(basic)
