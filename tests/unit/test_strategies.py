"""Unit tests for the stage-game strategies."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import StrategyError
from repro.game.strategies import (
    BestResponseStrategy,
    ConstantStrategy,
    GenerousTitForTat,
    MaliciousStrategy,
    ShortSightedStrategy,
    TitForTat,
)


def history(*profiles):
    return [np.asarray(p, dtype=float) for p in profiles]


class TestTitForTat:
    def test_matches_previous_minimum(self, small_game):
        tft = TitForTat()
        assert tft.next_window(0, history([64, 32, 128, 90]), small_game) == 32

    def test_uses_only_last_stage(self, small_game):
        tft = TitForTat()
        h = history([10, 10, 10, 10], [64, 32, 128, 90])
        assert tft.next_window(0, h, small_game) == 32

    def test_requires_history(self, small_game):
        with pytest.raises(StrategyError):
            TitForTat().next_window(0, [], small_game)

    def test_clamps_to_strategy_space(self, params):
        from repro.game.definition import MACGame

        game = MACGame(
            n_players=4, params=params.with_updates(cw_min=16, cw_max=64)
        )
        tft = TitForTat()
        # Observed minimum below cw_min (e.g. noisy observation).
        assert tft.next_window(0, history([16, 16, 16, 16]), game) == 16


class TestGenerousTitForTat:
    def test_tolerates_small_undercut(self, small_game):
        gtft = GenerousTitForTat(memory=2, tolerance=0.8)
        # Other players at 60 vs own 64: 60 >= 0.8*64, no reaction.
        h = history([64, 60, 64, 64], [64, 60, 64, 64])
        assert gtft.next_window(0, h, small_game) == 64

    def test_reacts_to_large_undercut(self, small_game):
        gtft = GenerousTitForTat(memory=2, tolerance=0.8)
        h = history([64, 30, 64, 64], [64, 30, 64, 64])
        assert gtft.next_window(0, h, small_game) == 30

    def test_memory_averages_out_transients(self, small_game):
        gtft = GenerousTitForTat(memory=3, tolerance=0.8)
        # One noisy low reading among three high ones: mean stays above
        # the tolerance threshold.
        h = history(
            [64, 64, 64, 64], [64, 40, 64, 64], [64, 64, 64, 64]
        )
        assert gtft.next_window(0, h, small_game) == 64

    def test_uses_available_history_when_short(self, small_game):
        gtft = GenerousTitForTat(memory=5, tolerance=0.9)
        assert (
            gtft.next_window(0, history([64, 20, 64, 64]), small_game) == 20
        )

    def test_rejects_bad_parameters(self):
        with pytest.raises(StrategyError):
            GenerousTitForTat(memory=0)
        with pytest.raises(StrategyError):
            GenerousTitForTat(tolerance=0.0)
        with pytest.raises(StrategyError):
            GenerousTitForTat(tolerance=1.5)


class TestConstantFamily:
    def test_constant_ignores_history(self, small_game):
        const = ConstantStrategy(77)
        assert const.next_window(2, history([1, 2, 3, 4]), small_game) == 77
        assert const.next_window(2, [], small_game) == 77

    def test_short_sighted_is_constant(self, small_game):
        assert (
            ShortSightedStrategy(9).next_window(0, [], small_game) == 9
        )

    def test_malicious_default_is_tiny(self, small_game):
        assert MaliciousStrategy().next_window(0, [], small_game) == 2

    def test_rejects_bad_window(self):
        with pytest.raises(StrategyError):
            ConstantStrategy(0)


class TestBestResponse:
    def test_explicit_candidates_pick_stage_optimum(self, small_game):
        # Against polite opponents, undercutting maximises stage payoff
        # (Lemma 4), so the smallest candidate wins.
        strategy = BestResponseStrategy(candidates=[8, 64, 256])
        choice = strategy.next_window(
            0, history([200, 200, 200, 200]), small_game
        )
        assert choice == 8

    def test_choice_is_best_among_candidates(self, small_game):
        candidates = [16, 64, 200, 800]
        strategy = BestResponseStrategy(candidates=candidates)
        last = [100, 150, 150, 150]
        choice = strategy.next_window(0, history(last), small_game)
        payoffs = {}
        for candidate in candidates:
            profile = list(last)
            profile[0] = candidate
            payoffs[candidate] = float(
                small_game.stage(profile).utilities[0]
            )
        assert payoffs[choice] == max(payoffs.values())

    def test_default_grid_is_geometric_and_bounded(self, small_game):
        strategy = BestResponseStrategy()
        grid = strategy._grid(small_game)
        assert grid[0] >= small_game.params.cw_min
        assert grid[-1] == small_game.params.cw_max
        assert all(a < b for a, b in zip(grid, grid[1:]))

    def test_requires_history(self, small_game):
        with pytest.raises(StrategyError):
            BestResponseStrategy(candidates=[8]).next_window(
                0, [], small_game
            )
