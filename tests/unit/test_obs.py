"""Unit tests for the observability layer and its CLI surface."""

from __future__ import annotations

import io
import json

import numpy as np
import pytest

from repro import obs
from repro.cli import main
from repro.errors import ParameterError, StoreError
from repro.experiments import run_experiment
from repro.store import ResultStore


# ----------------------------------------------------------------------
# Recorder plumbing
# ----------------------------------------------------------------------
def test_null_recorder_is_default_and_disabled() -> None:
    assert obs.get_recorder().enabled is False
    assert obs.enabled() is False
    # Instrumentation is a no-op without a recorder.
    obs.inc("x")
    obs.gauge_set("y", 1.0)
    obs.observe("z", 2)
    with obs.span("nothing"):
        pass
    assert obs.current_span_id() is None


def test_use_recorder_restores_previous() -> None:
    first = obs.MemoryRecorder()
    second = obs.MemoryRecorder()
    with obs.use_recorder(first):
        assert obs.get_recorder() is first
        with obs.use_recorder(second):
            assert obs.get_recorder() is second
        assert obs.get_recorder() is first
    assert obs.enabled() is False


def test_use_recorder_restores_on_exception() -> None:
    with pytest.raises(RuntimeError):
        with obs.use_recorder(obs.MemoryRecorder()):
            raise RuntimeError("boom")
    assert obs.enabled() is False


def test_jsonl_recorder_streams_lines() -> None:
    handle = io.StringIO()
    with obs.use_recorder(obs.JsonlRecorder(handle)):
        obs.inc("hits", 2, outcome="hit")
        with obs.span("work", step=1):
            pass
    lines = [json.loads(line) for line in handle.getvalue().splitlines()]
    assert [event["type"] for event in lines] == [
        "counter",
        "span_start",
        "span_end",
    ]
    assert lines[0]["value"] == 2


def test_ingest_remaps_span_ids_and_reparents() -> None:
    parent = obs.MemoryRecorder()
    with obs.use_recorder(parent):
        with obs.span("outer"):
            outer_id = obs.current_span_id()
            worker = obs.MemoryRecorder()
            with obs.use_recorder(worker):
                with obs.span("inner"):
                    with obs.span("leaf"):
                        pass
            parent.ingest(worker.events, parent_id=outer_id)
    obs.validate_span_events(parent.events)
    starts = {
        e["name"]: e for e in parent.events if e["type"] == "span_start"
    }
    assert starts["inner"]["parent_id"] == starts["outer"]["span_id"]
    assert starts["leaf"]["parent_id"] == starts["inner"]["span_id"]
    ids = [e["span_id"] for e in parent.events if e["type"] == "span_start"]
    assert len(ids) == len(set(ids))


# ----------------------------------------------------------------------
# Spans and attributes
# ----------------------------------------------------------------------
def test_span_records_attrs_and_duration() -> None:
    recorder = obs.MemoryRecorder()
    with obs.use_recorder(recorder):
        with obs.span("solve", instance=np.int64(3), w=np.float64(1.5)):
            pass
    start, end = recorder.events
    assert start["attrs"] == {"instance": 3, "w": 1.5}
    assert end["status"] == "ok"
    assert end["duration_s"] >= 0.0


def test_span_error_status_and_reraise() -> None:
    recorder = obs.MemoryRecorder()
    with obs.use_recorder(recorder):
        with pytest.raises(ValueError, match="bad"):
            with obs.span("solve"):
                raise ValueError("bad")
    end = recorder.events[-1]
    assert end["status"] == "error"
    assert "ValueError" in end["error"]


def test_jsonable_handles_numpy_and_nonfinite() -> None:
    from repro.obs.span import jsonable

    # Exact on purpose: jsonable must pass the value through bit-for-bit.
    assert jsonable(np.float64(2.5)) == 2.5  # repro: noqa=REPRO003
    assert jsonable(np.array([1, 2])) == [1, 2]
    assert jsonable(float("nan")) is None
    assert jsonable(float("inf")) is None
    assert jsonable({"a": (1, 2)}) == {"a": [1, 2]}
    assert isinstance(jsonable(object()), str)


def test_validate_span_events_rejects_malformed() -> None:
    good_start = {"type": "span_start", "span_id": 1, "parent_id": None, "name": "a"}
    good_end = {"type": "span_end", "span_id": 1, "parent_id": None, "name": "a"}
    with pytest.raises(ParameterError, match="still open"):
        obs.validate_span_events([good_start])
    with pytest.raises(ParameterError, match="no span open"):
        obs.validate_span_events([good_end])
    with pytest.raises(ParameterError, match="does not match"):
        obs.validate_span_events(
            [good_start, {**good_end, "name": "b"}]
        )
    with pytest.raises(ParameterError, match="duplicate"):
        obs.validate_span_events(
            [good_start, good_end, good_start, good_end]
        )


# ----------------------------------------------------------------------
# Profiles
# ----------------------------------------------------------------------
def _sample_events():
    recorder = obs.MemoryRecorder()
    with obs.use_recorder(recorder):
        with obs.span("solve"):
            obs.inc("bianchi.solves", 3, kind="heterogeneous")
            obs.observe_many("bianchi.iterations", [5, 9, 17], kind="heterogeneous")
            obs.gauge_set("sim.slots_per_sec", 1e6)
    return recorder.events


def test_build_profile_sections() -> None:
    profile = obs.build_profile(_sample_events(), meta={"experiment_id": "x"})
    assert profile["counters"] == {
        "bianchi.solves|kind=heterogeneous": 3
    }
    hist = profile["histograms"]["bianchi.iterations|kind=heterogeneous"]
    assert hist["count"] == 3
    assert hist["sum"] == 31
    assert hist["min"] == 5 and hist["max"] == 17
    assert hist["buckets"] == {"le_8": 1, "le_16": 1, "le_32": 1}
    assert profile["spans"]["solve"]["count"] == 1
    assert profile["meta"]["experiment_id"] == "x"
    assert profile["digest"] == obs.profile_digest(profile)


def test_profile_digest_excludes_timings_and_gauges() -> None:
    events = _sample_events()
    profile_a = obs.build_profile(events, meta={"run": 1})
    # Mutate every wall-clock field and the gauges; digest must not move.
    patched = []
    for event in events:
        event = dict(event)
        if event["type"] == "span_end":
            event["duration_s"] = 123.0
            event["t_mono"] = 9e9
        if event["type"] == "gauge":
            event["value"] = -1.0
        patched.append(event)
    profile_b = obs.build_profile(patched, meta={"run": 2})
    assert profile_a["digest"] == profile_b["digest"]
    assert obs.diff_profiles(profile_a, profile_b).identical


def test_profile_diff_reports_counter_change() -> None:
    base = _sample_events()
    extra = base + [
        {
            "type": "counter",
            "name": "bianchi.fallbacks",
            "labels": {"method": "newton"},
            "value": 1,
        }
    ]
    diff = obs.diff_profiles(obs.build_profile(base), obs.build_profile(extra))
    assert not diff.identical
    assert "bianchi.fallbacks|method=newton" in diff.counter_changes
    assert "bianchi.fallbacks" in diff.render()


def test_unknown_events_are_dropped_not_fatal() -> None:
    profile = obs.build_profile([{"type": "mystery"}, {"no": "type"}])
    assert profile["meta"]["dropped_events"] == 2


def test_summarize_profile_mentions_all_sections() -> None:
    text = obs.summarize_profile(obs.build_profile(_sample_events()))
    assert "bianchi.solves|kind=heterogeneous" in text
    assert "bianchi.iterations" in text
    assert "excluded from digest" in text
    assert "solve" in text


# ----------------------------------------------------------------------
# Instrumented pipeline: determinism across worker counts
# ----------------------------------------------------------------------
def _profiled_run(jobs: int) -> dict:
    recorder = obs.MemoryRecorder()
    with obs.use_recorder(recorder):
        run_experiment(
            "table2", sizes=(5, 10), slots_per_point=4000, seed=0, jobs=jobs
        )
    obs.validate_span_events(recorder.events)
    return obs.build_profile(recorder.events)


def test_profile_digest_identical_across_jobs() -> None:
    serial = _profiled_run(1)
    pooled = _profiled_run(2)
    assert serial["digest"] == pooled["digest"], obs.diff_profiles(
        serial, pooled
    ).render()
    # The deterministic sections are byte-identical, not just same-hash.
    for section in ("counters", "histograms"):
        assert serial[section] == pooled[section]


def test_solver_and_sim_counters_present() -> None:
    profile = _profiled_run(1)
    counters = profile["counters"]
    assert any(key.startswith("bianchi.solves") for key in counters)
    assert any(key.startswith("sim.slots|") for key in counters)
    assert counters["parallel.tasks"] > 0
    assert any(
        key.startswith("bianchi.iterations") for key in profile["histograms"]
    )
    assert profile["spans"]["experiment"]["count"] == 1


# ----------------------------------------------------------------------
# Store + CLI integration
# ----------------------------------------------------------------------
def test_run_stores_profile_and_obs_cli(tmp_path, capsys) -> None:
    store_dir = str(tmp_path / "store")
    assert main(["run", "fig2", "--quick", "--store", store_dir]) == 0
    capsys.readouterr()

    store = ResultStore(store_dir)
    entry = store.latest("fig2")
    assert entry is not None
    digest = entry["digest"]
    assert store.has_profile(digest)
    profile = store.load_profile(digest)
    assert profile["meta"]["experiment_id"] == "fig2"

    assert main(["obs", "summary", "--store", store_dir]) == 0
    summary = capsys.readouterr().out
    assert profile["digest"] in summary

    assert (
        main(["obs", "diff", digest, digest, "--store", store_dir]) == 0
    )
    assert "identical" in capsys.readouterr().out

    out_file = tmp_path / "profile.json"
    assert (
        main(
            ["obs", "export", digest, "-o", str(out_file), "--store", store_dir]
        )
        == 0
    )
    capsys.readouterr()
    assert json.loads(out_file.read_text())["digest"] == profile["digest"]

    # A path reference works wherever a digest does.
    assert main(["obs", "summary", str(out_file), "--store", store_dir]) == 0
    assert profile["digest"] in capsys.readouterr().out


def test_obs_cli_errors_cleanly_on_empty_store(tmp_path, capsys) -> None:
    code = main(["obs", "summary", "--store", str(tmp_path / "empty")])
    assert code == 1
    assert "no run profiles" in capsys.readouterr().err


def test_repro_obs_env_disables_recorder(tmp_path, monkeypatch, capsys) -> None:
    monkeypatch.setenv("REPRO_OBS", "0")
    store_dir = str(tmp_path / "store")
    assert main(["run", "fig2", "--quick", "--store", store_dir]) == 0
    capsys.readouterr()
    store = ResultStore(store_dir)
    entry = store.latest("fig2")
    assert entry is not None
    assert not store.has_profile(entry["digest"])
    with pytest.raises(StoreError, match="no run profile"):
        store.load_profile(entry["digest"])
