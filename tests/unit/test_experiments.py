"""Unit tests for individual experiment modules (small configurations)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ParameterError
from repro.experiments import (
    convergence,
    figure2,
    figure3,
    malicious,
    shortsighted,
    table1,
    table2,
)
from repro.experiments.malicious import collapse_demo
from repro.phy.parameters import AccessMode


class TestTable1:
    def test_derived_times_present(self):
        result = table1.run()
        assert result.derived["Ts (basic)"] == pytest.approx(8980.0)
        assert result.derived["Tc' (RTS/CTS)"] == pytest.approx(416.0)

    def test_render_contains_both_tables(self):
        text = table1.run().render()
        assert "Table I" in text
        assert "Derived slot occupancy times" in text


class TestNETables:
    def test_small_run_row_structure(self, params):
        result = table2.run_mode(
            AccessMode.BASIC,
            params=params,
            sizes=(3,),
            slots_per_point=20_000,
        )
        assert len(result.rows) == 1
        row = result.rows[0]
        assert row.n_nodes == 3
        assert row.analytic_window > 1
        assert row.simulated_mean > 0
        assert row.simulated_variance >= 0

    def test_simulated_mean_on_plateau(self, params):
        result = table2.run_mode(
            AccessMode.BASIC,
            params=params,
            sizes=(5,),
            slots_per_point=80_000,
        )
        row = result.rows[0]
        assert row.simulated_mean == pytest.approx(
            row.analytic_window, rel=0.4
        )

    def test_render_layout(self, params):
        result = table2.run_mode(
            AccessMode.BASIC,
            params=params,
            sizes=(3,),
            slots_per_point=10_000,
        )
        text = result.render()
        assert "Table II" in text
        assert "Wc*" in text


class TestFigures:
    @pytest.fixture(scope="class")
    def curves(self, params):
        return figure2.run_mode(
            AccessMode.BASIC, params=params, sizes=(3, 6), n_points=18
        )

    def test_curves_unimodal(self, curves):
        for n, values in curves.curves.items():
            peak = int(np.argmax(values))
            rising = values[: peak + 1]
            falling = values[peak:]
            assert np.all(np.diff(rising) >= -1e-15)
            assert np.all(np.diff(falling) <= 1e-15)

    def test_peak_near_analytic_optimum(self, curves):
        for n in curves.curves:
            peak = curves.peak_window(n)
            star = curves.optima[n]
            # The plateau is flat; payoff at the peak and at W* must be
            # nearly identical even if the argmaxes differ.
            peak_value = curves.curves[n].max()
            star_index = int(np.flatnonzero(curves.windows == star)[0])
            assert curves.curves[n][star_index] >= peak_value * 0.999

    def test_grid_contains_each_optimum(self, curves):
        for star in curves.optima.values():
            assert star in curves.windows

    def test_normalisation_dimensionless(self, curves):
        # U/C = n u sigma / g stays within (0, 1) for sane profiles.
        for values in curves.curves.values():
            assert np.all(values > 0)
            assert np.all(values < 1)

    def test_figure3_flatter_than_figure2(self, params):
        basic = figure2.run_mode(
            AccessMode.BASIC, params=params, sizes=(5,), n_points=15
        )
        rts = figure3.run(params=params, sizes=(5,), n_points=15)
        # Relative drop from the peak to the smallest window probed is
        # much gentler under RTS/CTS (cheap collisions).
        def drop(curves):
            values = curves.curves[5]
            return (values.max() - values[0]) / values.max()

        assert drop(rts) < drop(basic) / 2

    def test_rejects_bad_grid(self, params):
        with pytest.raises(ParameterError):
            figure2.run_mode(
                AccessMode.BASIC, params=params, sizes=(3,), grid=[0, 5]
            )


class TestShortsighted:
    @pytest.fixture(scope="class")
    def result(self, params):
        return shortsighted.run(
            params=params,
            n_players=5,
            discounts=(0.05, 0.9, 0.9999),
        )

    def test_short_sighted_rows_aggressive(self, result):
        by_discount = {row.discount: row for row in result.rows}
        assert by_discount[0.05].best_window < result.reference_window // 4
        assert by_discount[0.05].gain > 0

    def test_long_sighted_row_conforms(self, result):
        row = {r.discount: r for r in result.rows}[0.9999]
        assert row.best_window == result.reference_window
        assert row.degradation == pytest.approx(0.0, abs=1e-9)

    def test_render(self, result):
        assert "Section V.D" in result.render()

    def test_rejects_empty_discounts(self, params):
        with pytest.raises(ParameterError):
            shortsighted.run(params=params, discounts=())


class TestMalicious:
    def test_degradation_monotone_in_window(self, params):
        result = malicious.run(params=params, n_players=5)
        payoffs = [row.global_payoff for row in result.rows]
        assert all(a < b for a, b in zip(payoffs, payoffs[1:]))

    def test_all_attacks_below_optimum(self, params):
        result = malicious.run(params=params, n_players=5)
        for row in result.rows:
            assert row.global_payoff < result.reference_payoff

    def test_collapse_demo_paralyses_at_w1(self):
        result = collapse_demo()
        by_window = {row.attack_window: row for row in result.rows}
        assert by_window[1].collapsed
        assert not result.rows[-1].collapsed

    def test_rejects_empty_attacks(self, params):
        with pytest.raises(ParameterError):
            malicious.run(params=params, attack_windows=[])


class TestConvergenceExperiment:
    def test_three_scenarios(self, params):
        result = convergence.run(params=params, n_players=4, n_stages=8)
        labels = [run.label for run in result.runs]
        assert len(labels) == 3
        tft, gtft, deviator = result.runs
        assert tft.common and tft.converged_at == 1
        assert gtft.common  # tolerance holds the line under noise
        assert deviator.common
        assert min(deviator.final_windows) < min(deviator.initial_windows)

    def test_render(self, params):
        text = convergence.run(params=params, n_players=4).render()
        assert "TFT" in text
