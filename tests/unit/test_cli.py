"""Unit tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import QUICK_OVERRIDES, build_parser, main
from repro.experiments import EXPERIMENTS


class TestParser:
    def test_list_command(self):
        args = build_parser().parse_args(["list"])
        assert args.command == "list"

    def test_run_requires_known_id(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "bogus"])

    def test_run_accepts_quick(self):
        args = build_parser().parse_args(["run", "table1", "--quick"])
        assert args.experiment_id == "table1"
        assert args.quick

    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestExecution:
    def test_list_prints_every_experiment(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for experiment_id in EXPERIMENTS:
            assert experiment_id in out

    def test_run_table1(self, capsys):
        assert main(["run", "table1"]) == 0
        out = capsys.readouterr().out
        assert "Table I" in out
        assert "Packet size" in out

    def test_run_convergence(self, capsys):
        assert main(["run", "convergence"]) == 0
        out = capsys.readouterr().out
        assert "TFT" in out

    def test_quick_overrides_are_known_ids(self):
        assert set(QUICK_OVERRIDES) <= set(EXPERIMENTS)
