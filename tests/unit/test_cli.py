"""Unit tests for the command-line interface."""

from __future__ import annotations

import json

import pytest

from repro.cli import EXIT_INTERRUPTED, QUICK_OVERRIDES, build_parser, main
from repro.experiments import EXPERIMENTS
from repro.store import ResultStore


class TestParser:
    def test_list_command(self):
        args = build_parser().parse_args(["list"])
        assert args.command == "list"

    def test_run_requires_known_id(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "bogus"])

    def test_run_accepts_quick(self):
        args = build_parser().parse_args(["run", "table1", "--quick"])
        assert args.experiment_id == "table1"
        assert args.quick

    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestExecution:
    def test_list_prints_every_experiment(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for experiment_id in EXPERIMENTS:
            assert experiment_id in out

    def test_run_table1(self, capsys):
        assert main(["run", "table1"]) == 0
        out = capsys.readouterr().out
        assert "Table I" in out
        assert "Packet size" in out

    def test_run_convergence(self, capsys):
        assert main(["run", "convergence"]) == 0
        out = capsys.readouterr().out
        assert "TFT" in out

    def test_quick_overrides_are_known_ids(self):
        assert set(QUICK_OVERRIDES) <= set(EXPERIMENTS)


class TestStoreRouting:
    def test_second_run_is_served_from_the_store(self, capsys):
        assert main(["run", "table1"]) == 0
        first = capsys.readouterr().out
        assert "cached" not in first
        assert main(["run", "table1"]) == 0
        second = capsys.readouterr().out
        assert "cached" in second
        assert "Packet size" in second  # same artefact, from disk

    def test_no_cache_escape_hatch(self, capsys):
        assert main(["run", "table1"]) == 0
        capsys.readouterr()
        assert main(["run", "table1", "--no-cache"]) == 0
        assert "cached" not in capsys.readouterr().out

    def test_explicit_store_dir(self, tmp_path, capsys):
        target = tmp_path / "elsewhere"
        assert main(["run", "table1", "--store", str(target)]) == 0
        capsys.readouterr()
        assert len(ResultStore(target).find("table1")) == 1


class TestStoreCommands:
    def _seed_store(self, capsys):
        assert main(["run", "table1"]) == 0
        capsys.readouterr()
        return ResultStore.default()

    def test_ls_show_roundtrip(self, capsys):
        store = self._seed_store(capsys)
        assert main(["store", "ls"]) == 0
        out = capsys.readouterr().out
        assert "table1" in out
        digest = store.latest("table1")["digest"]
        assert main(["store", "show", digest[:12]]) == 0
        out = capsys.readouterr().out
        assert digest in out and "Packet size" in out

    def test_ls_empty_store(self, capsys):
        assert main(["store", "ls"]) == 0
        assert "empty" in capsys.readouterr().out

    def test_show_unknown_digest_fails_cleanly(self, capsys):
        assert main(["store", "show", "ffffffff"]) == 1
        assert "error:" in capsys.readouterr().err

    def test_gc_reports_removals(self, capsys):
        self._seed_store(capsys)
        assert main(["store", "gc", "--keep", "0"]) == 0
        assert "removed 1" in capsys.readouterr().out


class TestCampaignCommands:
    def _spec_path(self, tmp_path):
        spec = {
            "experiment": "convergence",
            "params": {"n_players": 3, "n_stages": 2},
            "grid": {"seed": [1, 2]},
            "jobs": 1,
        }
        path = tmp_path / "tiny.json"
        path.write_text(json.dumps(spec))
        return path

    def test_run_then_status_all_cached(self, tmp_path, capsys):
        path = self._spec_path(tmp_path)
        assert main(["campaign", "run", str(path)]) == 0
        out = capsys.readouterr().out
        assert "2 tasks" in out and "2 executed" in out
        assert main(["campaign", "status", str(path)]) == 0
        out = capsys.readouterr().out
        assert "2 cached" in out and "0 pending" in out
        assert main(["campaign", "run", str(path)]) == 0
        out = capsys.readouterr().out
        assert "0 executed" in out

    def test_bad_spec_fails_cleanly(self, tmp_path, capsys):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"experiment": "nope"}))
        assert main(["campaign", "run", str(path)]) == 1
        assert "error:" in capsys.readouterr().err

    def test_interrupted_exit_code_is_130(self):
        assert EXIT_INTERRUPTED == 130


class TestDetectCommands:
    def test_screen_parses_with_defaults(self):
        args = build_parser().parse_args(["detect", "screen"])
        assert args.command == "detect"
        assert args.detect_command == "screen"
        assert args.nodes == 100_000
        assert args.shards == 1

    def test_screen_runs_on_a_small_population(self, capsys):
        assert (
            main(
                [
                    "detect", "screen",
                    "--nodes", "400",
                    "--slots", "20000",
                    "--chunk-slots", "2000",
                    "--seed", "3",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "population:     400 nodes" in out
        assert "flagged:" in out

    def test_screen_writes_json_report(self, tmp_path, capsys):
        report = tmp_path / "screen.json"
        assert (
            main(
                [
                    "detect", "screen",
                    "--nodes", "300",
                    "--slots", "10000",
                    "--chunk-slots", "1000",
                    "--output", str(report),
                ]
            )
            == 0
        )
        document = json.loads(report.read_text())
        assert document["n_nodes"] == 300
        assert len(document["flagged"]) == 300

    def test_screen_reads_measured_tau_file(self, tmp_path, capsys):
        tau_file = tmp_path / "tau.json"
        tau_file.write_text(json.dumps([0.001] * 50))
        assert (
            main(
                [
                    "detect", "screen",
                    "--tau-file", str(tau_file),
                    "--slots", "5000",
                    "--chunk-slots", "1000",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "population:     50 nodes" in out

    def test_screen_missing_tau_file_fails_cleanly(self, capsys):
        assert (
            main(["detect", "screen", "--tau-file", "/nonexistent.json"]) == 1
        )
        assert "error:" in capsys.readouterr().err

    def test_meanfield_quick_overrides_registered(self):
        assert "meanfield" in QUICK_OVERRIDES
