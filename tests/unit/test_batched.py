"""Unit tests for the batched fixed-point solver (`repro.bianchi.batched`).

Shapes, per-instance convergence bookkeeping, the Newton fallback, the
`method` reporting on the scalar wrapper, and the vectorized
`transmission_probability` / `collision_probabilities` primitives.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bianchi.batched import (
    BatchedFixedPoint,
    SymmetricGridSolution,
    collision_probabilities,
    solve_heterogeneous_batch,
    solve_symmetric_grid,
)
from repro.bianchi.fixedpoint import (
    solve_heterogeneous,
    solve_heterogeneous_reference,
    solve_symmetric,
)
from repro.bianchi.markov import transmission_probability
from repro.errors import ParameterError

MAX_STAGE = 5


class TestShapes:
    def test_batch_solution_shapes(self):
        windows = np.array(
            [[32.0, 32.0, 64.0], [16.0, 128.0, 256.0]], dtype=float
        )
        batch = solve_heterogeneous_batch(windows, MAX_STAGE)
        assert isinstance(batch, BatchedFixedPoint)
        assert batch.n_instances == 2
        assert batch.n_nodes == 3
        assert batch.tau.shape == (2, 3)
        assert batch.collision.shape == (2, 3)
        assert batch.residual.shape == (2,)
        assert batch.iterations.shape == (2,)
        assert batch.newton.shape == (2,)

    def test_1d_input_promoted_to_single_instance(self):
        batch = solve_heterogeneous_batch(
            np.array([32.0, 64.0]), MAX_STAGE
        )
        assert batch.tau.shape == (1, 2)

    def test_grid_solution_shapes(self):
        grid = solve_symmetric_grid(
            np.array([16.0, 32.0, 64.0, 128.0]), 10, MAX_STAGE
        )
        assert isinstance(grid, SymmetricGridSolution)
        assert grid.tau.shape == (4,)
        assert grid.collision.shape == (4,)
        assert grid.residual.shape == (4,)
        assert grid.iterations.shape == (4,)
        assert grid.n_nodes == 10

    def test_validation_errors(self):
        with pytest.raises(ParameterError):
            solve_heterogeneous_batch(np.zeros((2, 2, 2)), MAX_STAGE)
        with pytest.raises(ParameterError):
            solve_heterogeneous_batch(np.empty((0, 3)), MAX_STAGE)
        with pytest.raises(ParameterError):
            solve_symmetric_grid(np.array([[16.0]]), 5, MAX_STAGE)
        with pytest.raises(ParameterError):
            solve_symmetric_grid(np.array([]), 5, MAX_STAGE)
        with pytest.raises(ParameterError):
            solve_symmetric_grid(np.array([16.0]), 0, MAX_STAGE)


class TestConvergenceBookkeeping:
    def test_iteration_counts_are_per_instance(self):
        # An easy instance and a hard (congested) one converge at
        # different sweeps; the mask bookkeeping must keep them apart.
        easy = [1024.0] * 4
        hard = [2.0] * 4
        batch = solve_heterogeneous_batch(
            np.array([easy, hard]), MAX_STAGE
        )
        alone_easy = solve_heterogeneous_batch(
            np.array([easy]), MAX_STAGE
        )
        alone_hard = solve_heterogeneous_batch(
            np.array([hard]), MAX_STAGE
        )
        assert int(batch.iterations[0]) == int(alone_easy.iterations[0])
        assert int(batch.iterations[1]) == int(alone_hard.iterations[0])
        assert int(batch.iterations[0]) != int(batch.iterations[1])

    def test_symmetric_grid_iterations_match_scalar(self):
        windows = np.array([32.0, 335.0, 1024.0])
        grid = solve_symmetric_grid(windows, 20, MAX_STAGE)
        for index, window in enumerate(windows):
            scalar = solve_symmetric(float(window), 20, MAX_STAGE)
            assert int(grid.iterations[index]) == scalar.iterations
            assert float(grid.tau[index]) == pytest.approx(
                scalar.tau, abs=0.0
            )

    def test_residuals_are_small(self):
        batch = solve_heterogeneous_batch(
            np.array([[2.0, 16.0, 1024.0]]), MAX_STAGE
        )
        assert float(batch.residual[0]) < 1e-8


class TestNewtonFallback:
    def test_starved_anderson_falls_back_to_newton(self):
        windows = np.array([[4.0, 8.0, 512.0]])
        starved = solve_heterogeneous_batch(
            windows, MAX_STAGE, max_iterations=2
        )
        assert bool(starved.newton[0])
        reference = solve_heterogeneous_reference(
            [4.0, 8.0, 512.0], MAX_STAGE
        )
        assert float(np.max(np.abs(starved.tau[0] - reference.tau))) <= 1e-9

    def test_normal_run_does_not_need_newton(self):
        batch = solve_heterogeneous_batch(
            np.array([[16.0, 32.0, 64.0]]), MAX_STAGE
        )
        assert not bool(batch.newton[0])


class TestMethodReporting:
    def test_scalar_wrapper_reports_anderson(self):
        sol = solve_heterogeneous([16.0, 32.0], MAX_STAGE)
        assert sol.method == "anderson"
        assert sol.iterations >= 1

    def test_single_node_reports_closed_form(self):
        sol = solve_heterogeneous([32.0], MAX_STAGE)
        assert sol.method == "closed-form"
        assert sol.iterations == 0

    def test_newton_fallback_reported(self):
        sol = solve_heterogeneous(
            [4.0, 8.0, 512.0], MAX_STAGE, max_iterations=2
        )
        assert sol.method == "newton"

    def test_reference_solver_reports_damped(self):
        sol = solve_heterogeneous_reference([16.0, 32.0], MAX_STAGE)
        assert sol.method == "damped"
        assert sol.iterations >= 1


class TestCollisionProbabilities:
    def test_matches_naive_leave_one_out(self):
        rng = np.random.default_rng(2007)
        tau = rng.uniform(0.01, 0.5, size=(3, 6))
        p = collision_probabilities(tau)
        for b in range(3):
            for i in range(6):
                expected = 1.0 - np.prod(np.delete(1.0 - tau[b], i))
                assert float(p[b, i]) == pytest.approx(expected, abs=1e-12)

    def test_degenerate_certain_transmitter(self):
        # One tau == 1 drives everyone ELSE's collision probability to
        # (the clamp of) 1 without poisoning that node's own entry.
        tau = np.array([[1.0, 0.2, 0.3]])
        p = collision_probabilities(tau)
        assert float(p[0, 1]) == pytest.approx(1.0, abs=1e-12)
        assert float(p[0, 2]) == pytest.approx(1.0, abs=1e-12)
        expected_self = 1.0 - 0.8 * 0.7
        assert float(p[0, 0]) == pytest.approx(expected_self, abs=1e-12)

    def test_all_zero_tau(self):
        p = collision_probabilities(np.zeros((2, 4)))
        np.testing.assert_array_equal(p, np.zeros((2, 4)))


class TestVectorizedTransmissionProbability:
    def test_scalar_and_array_paths_agree(self):
        windows = np.array([2.0, 16.0, 335.0, 1024.0])
        collisions = np.array([0.0, 0.1, 0.5, 0.999])
        vectorized = transmission_probability(windows, collisions, MAX_STAGE)
        for index in range(windows.size):
            scalar = transmission_probability(
                float(windows[index]), float(collisions[index]), MAX_STAGE
            )
            assert float(vectorized[index]) == pytest.approx(scalar, abs=0.0)

    def test_scalar_path_returns_float(self):
        out = transmission_probability(32.0, 0.25, MAX_STAGE)
        assert isinstance(out, float)

    def test_broadcasting_shapes(self):
        windows = np.full((2, 3), 32.0)
        collisions = np.full((2, 3), 0.25)
        out = transmission_probability(windows, collisions, MAX_STAGE)
        assert out.shape == (2, 3)
