"""Unit tests for the multi-hop game G' (Theorem 3)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ParameterError
from repro.multihop.game import MultihopGame
from repro.multihop.topology import GeometricTopology, random_topology


def chain(n, spacing=100.0, tx_range=150.0):
    positions = np.column_stack([np.arange(n) * spacing, np.zeros(n)])
    return GeometricTopology(
        positions=positions, tx_range=tx_range, width=10_000.0, height=100.0
    )


@pytest.fixture(scope="module")
def random_game(params):
    topo = random_topology(
        25, rng=np.random.default_rng(17), require_connected=True
    )
    return MultihopGame(topo, params)


@pytest.fixture(scope="module")
def random_equilibrium(random_game):
    return random_game.solve()


class TestSolve:
    def test_converges_to_minimum_local_window(self, random_equilibrium):
        eq = random_equilibrium
        assert eq.converged_window == eq.local.windows.min()

    def test_flood_reaches_every_node(self, random_equilibrium):
        final = random_equilibrium.window_history[-1]
        assert np.all(final == random_equilibrium.converged_window)

    def test_convergence_bounded_by_diameter(self, random_game, random_equilibrium):
        import networkx as nx

        diameter = nx.diameter(random_game.topology.graph)
        assert random_equilibrium.convergence_stages <= diameter + 1

    def test_history_monotone_nonincreasing(self, random_equilibrium):
        history = random_equilibrium.window_history
        assert np.all(history[1:] <= history[:-1])

    def test_chain_flood_takes_distance_stages(self, params):
        # On a 6-chain the minimum sits at one end-adjacent node; the
        # flood must walk the chain.
        topo = chain(6)
        game = MultihopGame(topo, params)
        eq = game.solve()
        assert eq.convergence_stages >= 2
        assert np.all(eq.window_history[-1] == eq.converged_window)


class TestLocalUtility:
    def test_isolated_node_zero_utility(self, params):
        positions = np.array([[0.0, 0.0], [100.0, 0.0], [9000.0, 0.0]])
        topo = GeometricTopology(
            positions=positions, tx_range=150.0, width=10_000.0, height=100.0
        )
        game = MultihopGame(topo, params)
        assert game.local_utility(2, 32) == 0.0  # repro: noqa=REPRO003
        assert game.local_utility(0, 32) > 0.0

    def test_peaks_at_local_efficient_window(self, params):
        topo = chain(5)
        game = MultihopGame(topo, params)
        eq = game.solve()
        node = 2  # middle, local size 3
        w_i = int(eq.local.windows[node])
        at_peak = game.local_utility(node, w_i)
        # On the flat plateau nearby windows are close but not higher.
        assert game.local_utility(node, max(2, w_i // 2)) <= at_peak + 1e-18
        assert game.local_utility(node, w_i * 3) <= at_peak + 1e-18

    def test_utility_cached(self, params):
        topo = chain(4)
        game = MultihopGame(topo, params)
        first = game.local_utility(1, 40)
        second = game.local_utility(1, 40)
        assert first == second
        assert (1, 40) in game._utility_cache

    def test_global_payoff_sums_nodes(self, params):
        topo = chain(4)
        game = MultihopGame(topo, params)
        total = game.global_payoff(30)
        manual = sum(game.local_utility(i, 30) for i in range(4))
        assert total == pytest.approx(manual)

    def test_hidden_factor_reduces_utility(self, params):
        topo = chain(5)
        plain = MultihopGame(topo, params, hidden_factor="none")
        hidden = MultihopGame(topo, params, hidden_factor="analytic")
        # Node 0 talks to node 1, which has a hidden neighbour (node 2).
        assert hidden.local_utility(0, 30) < plain.local_utility(0, 30)

    def test_invalid_hidden_factor(self, params):
        with pytest.raises(ParameterError):
            MultihopGame(chain(3), params, hidden_factor="bogus")


class TestTheorem3:
    def test_no_profitable_deviation_at_ne(self, random_game, random_equilibrium):
        assert random_game.check_no_profitable_deviation(random_equilibrium)

    def test_deviation_check_detects_bad_point(self, params):
        # At a window far above everyone's local optimum, lowering pays,
        # so the same check on a fake 'equilibrium' must fail.
        from dataclasses import replace

        topo = chain(5)
        game = MultihopGame(topo, params)
        eq = game.solve()
        inflated = replace(
            eq, converged_window=int(eq.local.windows.max() * 6)
        )
        assert not game.check_no_profitable_deviation(inflated)


class TestQuasiOptimality:
    def test_report_fields(self, random_game, random_equilibrium):
        report = random_game.quasi_optimality(random_equilibrium)
        assert report.converged_window == random_equilibrium.converged_window
        assert 0 < report.worst_node_fraction <= 1.0 + 1e-12
        assert 0 < report.global_fraction <= 1.0 + 1e-12
        assert report.global_curve.shape == report.grid.shape

    def test_quasi_optimal_in_paper_band(self, random_game, random_equilibrium):
        report = random_game.quasi_optimality(random_equilibrium)
        # Paper: >= 96% per node and within 3% globally; allow slack for
        # other topologies.
        assert report.worst_node_fraction > 0.85
        assert report.global_fraction > 0.9

    def test_grid_must_contain_ne(self, random_game, random_equilibrium):
        with pytest.raises(ParameterError):
            random_game.quasi_optimality(
                random_equilibrium,
                grid=[random_equilibrium.converged_window + 1],
            )
