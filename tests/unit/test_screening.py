"""Unit tests for the population-scale misbehavior screening pipeline.

Pins the three contracts ISSUE 9 asks of `repro.detect.screening`:
detection quality on a self-consistent population (every selfish node
caught, calibrated false-positive control), shard-merge exactness (the
result is invariant in `observer_shards`), and the O(n) memory bound -
screening never materialises an array with a slots axis (tracemalloc,
like the streaming-stats guard).
"""

from __future__ import annotations

import tracemalloc

import numpy as np
import pytest

from repro.bianchi.meanfield import solve_mean_field
from repro.detect.screening import (
    ScreeningResult,
    screen_population,
    synthetic_population_tau,
)
from repro.errors import InsufficientDataError, ParameterError

MAX_STAGE = 5
WINDOW = 1024.0


@pytest.fixture(scope="module")
def population():
    n = 20_000
    tau0 = float(solve_mean_field([WINDOW], [float(n)], MAX_STAGE).tau[0][0])
    tau = synthetic_population_tau(
        tau0, n, selfish_fraction=0.01, selfish_boost=4.0, rng=7
    )
    return n, tau0, tau


class TestDetectionQuality:
    def test_catches_all_selfish_without_false_positives(self, population):
        n, tau0, tau = population
        result = screen_population(
            tau, tau0, WINDOW, MAX_STAGE,
            slots=500_000, chunk_slots=50_000, rng=11,
        )
        assert isinstance(result, ScreeningResult)
        truth = tau > tau0
        assert np.all(result.flagged[truth])
        assert not np.any(result.flagged[~truth])
        assert result.flagged_fraction == pytest.approx(0.01)
        np.testing.assert_array_equal(
            result.flagged_nodes, np.flatnonzero(truth)
        )

    def test_both_detectors_fire_on_selfish_nodes(self, population):
        n, tau0, tau = population
        result = screen_population(
            tau, tau0, WINDOW, MAX_STAGE,
            slots=500_000, chunk_slots=50_000, rng=11,
        )
        truth = tau > tau0
        assert np.all(result.rate_flagged[truth])
        assert np.all(result.undercut_flagged[truth])
        # Window estimates concentrate near the truth on each side.
        finite = np.isfinite(result.window_hat)
        compliant = finite & ~truth
        assert abs(
            float(np.median(result.window_hat[compliant])) - WINDOW
        ) < 0.2 * WINDOW
        assert float(np.median(result.window_hat[truth])) < 0.5 * WINDOW

    def test_all_compliant_population_is_clean(self):
        n = 5_000
        tau0 = float(
            solve_mean_field([WINDOW], [float(n)], MAX_STAGE).tau[0][0]
        )
        tau = np.full(n, tau0)
        result = screen_population(
            tau, tau0, WINDOW, MAX_STAGE,
            slots=400_000, chunk_slots=40_000, rng=3,
        )
        assert not result.flagged.any()


class TestShardInvariance:
    @pytest.mark.parametrize("shards", [2, 3, 7])
    def test_estimates_identical_across_shard_counts(self, shards):
        tau = synthetic_population_tau(0.01, 500, rng=1)
        kwargs = dict(slots=40_000, chunk_slots=2_000, rng=5)
        single = screen_population(tau, 0.01, 64.0, MAX_STAGE, **kwargs)
        sharded = screen_population(
            tau, 0.01, 64.0, MAX_STAGE,
            observer_shards=shards, **kwargs,
        )
        assert sharded.observer_shards == shards
        np.testing.assert_allclose(
            single.tau_hat, sharded.tau_hat, rtol=0, atol=1e-15
        )
        np.testing.assert_array_equal(single.flagged, sharded.flagged)
        np.testing.assert_array_equal(
            single.z_scores, sharded.z_scores
        )


class TestInsufficientData:
    def test_zero_slots_raises_typed_error(self):
        with pytest.raises(InsufficientDataError):
            screen_population(
                [0.01, 0.02], 0.01, 64.0, MAX_STAGE, slots=0
            )
        with pytest.raises(InsufficientDataError):
            screen_population(
                [0.01, 0.02], 0.01, 64.0, MAX_STAGE, chunk_slots=0
            )

    def test_nearly_silent_nodes_masked_not_nan(self):
        # A node attempting ~once per 10^5 slots observed for only 10^3
        # slots yields almost no attempts - it must land in the
        # insufficient mask with finite z and inf window, not nan.
        tau = np.array([1e-5, 0.05])
        result = screen_population(
            tau, 0.05, 64.0, MAX_STAGE,
            slots=1_000, chunk_slots=100, rng=2,
        )
        assert bool(result.insufficient[0])
        assert not bool(result.flagged[0])
        assert np.isinf(result.window_hat[0])
        assert np.all(np.isfinite(result.z_scores))
        assert not np.any(np.isnan(result.tau_hat))


class TestStarvedObservations:
    """Edge cases where shards or nodes see (almost) no data."""

    def test_more_shards_than_chunks_merges_empty_accumulators(self):
        # 4 chunks spread over 9 shards leaves 5 shards with no data at
        # all; the merge must not divide by a zero count or emit nan.
        tau = synthetic_population_tau(0.02, 50, rng=4)
        result = screen_population(
            tau, 0.02, 64.0, MAX_STAGE,
            slots=4_000, chunk_slots=1_000, observer_shards=9, rng=6,
        )
        assert result.n_chunks == 4
        assert result.observer_shards == 9
        assert not np.any(np.isnan(result.tau_hat))
        assert not np.any(np.isnan(result.tau_std))
        assert not np.any(np.isnan(result.z_scores))

    def test_single_node_population(self):
        result = screen_population(
            [0.05], 0.01, 64.0, MAX_STAGE,
            slots=20_000, chunk_slots=2_000, rng=8,
        )
        assert result.n_nodes == 1
        assert result.tau_hat.shape == (1,)
        # A lone node attempting 5x the reference must be caught.
        assert bool(result.flagged[0])
        assert np.isfinite(result.window_hat[0])

    def test_single_node_single_chunk(self):
        # One chunk gives zero across-chunk variance; the statistics
        # must stay finite and the totals-based z test still applies.
        result = screen_population(
            [0.05], 0.05, 64.0, MAX_STAGE,
            slots=1_000, chunk_slots=1_000, rng=9,
        )
        assert result.n_chunks == 1
        assert np.isfinite(result.tau_std[0])
        assert not bool(result.flagged[0])

    def test_fully_starved_population_is_insufficient_everywhere(self):
        # So few slots that no node reaches the attempt floor: the
        # whole population lands in the insufficient mask, nothing is
        # flagged, and every window estimate is +inf.
        tau = np.full(5, 1e-4)
        result = screen_population(
            tau, 1e-4, 4096.0, MAX_STAGE,
            slots=100, chunk_slots=10, rng=10,
        )
        assert np.all(result.insufficient)
        assert not np.any(result.flagged)
        assert np.all(np.isinf(result.window_hat))
        assert np.all(result.z_scores == 0)

    def test_ragged_final_chunk_counts_all_slots(self):
        tau = synthetic_population_tau(0.02, 20, rng=12)
        result = screen_population(
            tau, 0.02, 64.0, MAX_STAGE,
            slots=2_500, chunk_slots=1_000, rng=13,
        )
        assert result.slots_observed == 2_500
        assert result.n_chunks == 3


class TestValidation:
    def test_rejects_bad_parameters(self):
        good = dict(slots=100, chunk_slots=10)
        with pytest.raises(ParameterError):
            screen_population([], 0.01, 64.0, MAX_STAGE, **good)
        with pytest.raises(ParameterError):
            screen_population([0.0], 0.01, 64.0, MAX_STAGE, **good)
        with pytest.raises(ParameterError):
            screen_population([0.01], 1.5, 64.0, MAX_STAGE, **good)
        with pytest.raises(ParameterError):
            screen_population([0.01], 0.01, 0.5, MAX_STAGE, **good)
        with pytest.raises(ParameterError):
            screen_population(
                [0.01], 0.01, 64.0, MAX_STAGE,
                undercut_tolerance=0.0, **good,
            )
        with pytest.raises(ParameterError):
            screen_population(
                [0.01], 0.01, 64.0, MAX_STAGE, z_threshold=-1.0, **good
            )
        with pytest.raises(ParameterError):
            screen_population(
                [0.01], 0.01, 64.0, MAX_STAGE,
                observer_shards=0, **good,
            )
        with pytest.raises(ParameterError):
            screen_population(
                [0.01], 0.01, 64.0, MAX_STAGE,
                collision_probability=1.5, **good,
            )

    def test_synthetic_population_validation(self):
        with pytest.raises(ParameterError):
            synthetic_population_tau(0.0, 10)
        with pytest.raises(ParameterError):
            synthetic_population_tau(0.01, 0)
        with pytest.raises(ParameterError):
            synthetic_population_tau(0.01, 10, selfish_fraction=1.5)
        with pytest.raises(ParameterError):
            synthetic_population_tau(0.01, 10, selfish_boost=0.5)

    def test_synthetic_population_is_seeded_deterministic(self):
        a = synthetic_population_tau(
            0.01, 1000, selfish_fraction=0.1, rng=9
        )
        b = synthetic_population_tau(
            0.01, 1000, selfish_fraction=0.1, rng=9
        )
        np.testing.assert_array_equal(a, b)
        assert (a > 0.01).sum() == 100


class TestMemoryBound:
    N_NODES = 200_000
    SLOTS = 400_000
    CHUNK = 10_000  # 40 chunks: memory must not scale with this count

    #: The pipeline holds a handful of (n,) float64/int64 arrays (truth
    #: rates, coupling, totals, per-shard Welford moments, the result
    #: fields).  3 MB of slack absorbs interpreter noise; a slots-axis
    #: array at this size would be 3.2 GB and even a (slots,) vector
    #: 3.2 MB *per chunk retained*.
    ARRAYS_ALLOWED = 24
    ALLOWANCE = 3_000_000

    def test_screening_memory_is_o_n(self):
        tau = synthetic_population_tau(
            1e-4, self.N_NODES, selfish_fraction=0.001, rng=13
        )
        # Warm up numpy's binomial path outside the trace.
        screen_population(
            tau[:100], 1e-4, WINDOW, MAX_STAGE,
            slots=200, chunk_slots=100, rng=1,
        )
        tracemalloc.start()
        try:
            result = screen_population(
                tau, 1e-4, WINDOW, MAX_STAGE,
                slots=self.SLOTS, chunk_slots=self.CHUNK,
                observer_shards=2, rng=17,
            )
            _, peak = tracemalloc.get_traced_memory()
        finally:
            tracemalloc.stop()
        assert result.n_chunks == self.SLOTS // self.CHUNK
        bound = self.N_NODES * 8 * self.ARRAYS_ALLOWED + self.ALLOWANCE
        assert peak <= bound, (
            f"screening peaked at {peak:,} B over the O(n) bound of "
            f"{bound:,} B - something is accumulating per-chunk state"
        )
