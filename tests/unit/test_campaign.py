"""Unit tests for the declarative campaign engine."""

from __future__ import annotations

import json
import sys

import pytest

from repro.campaign import (
    CampaignSpec,
    campaign_status,
    expand_tasks,
    load_spec,
    run_campaign,
    spec_from_dict,
)
from repro.campaign import engine as engine_module
from repro.errors import CampaignError, ParameterError
from repro.store import ResultStore

TINY = {
    "name": "tiny",
    "experiment": "convergence",
    "params": {"n_players": 3, "n_stages": 2},
    "grid": {"seed": [1, 2]},
    "jobs": 1,
}


@pytest.fixture()
def store(tmp_path) -> ResultStore:
    return ResultStore(tmp_path / "store")


class TestSpecValidation:
    def test_minimal_spec(self):
        spec = spec_from_dict({"experiment": "table1"})
        assert spec.experiment_id == "table1"
        assert spec.n_tasks == 1

    def test_unknown_experiment_rejected(self):
        with pytest.raises(ParameterError):
            spec_from_dict({"experiment": "table9"})

    def test_unknown_top_level_keys_rejected(self):
        with pytest.raises(CampaignError):
            spec_from_dict({"experiment": "table1", "grids": {}})

    def test_empty_axis_rejected(self):
        with pytest.raises(CampaignError):
            spec_from_dict({"experiment": "table1", "grid": {"seed": []}})

    def test_zip_length_mismatch_rejected(self):
        with pytest.raises(CampaignError):
            spec_from_dict(
                {
                    "experiment": "table1",
                    "zip": {"a": [1, 2], "b": [1, 2, 3]},
                }
            )

    def test_overlapping_sections_rejected(self):
        with pytest.raises(CampaignError):
            spec_from_dict(
                {
                    "experiment": "table1",
                    "params": {"seed": 1},
                    "grid": {"seed": [1, 2]},
                }
            )

    def test_bad_seed_policy_rejected(self):
        with pytest.raises(CampaignError):
            spec_from_dict(
                {"experiment": "table1", "seeds": {"policy": "entropy"}}
            )

    def test_seed_axis_conflict_rejected(self):
        with pytest.raises(CampaignError):
            spec_from_dict(
                {
                    "experiment": "table1",
                    "grid": {"seed": [1]},
                    "seeds": {"parameter": "seed"},
                }
            )

    def test_negative_jobs_rejected(self):
        with pytest.raises(CampaignError):
            spec_from_dict({"experiment": "table1", "jobs": -1})


class TestLoadSpec:
    def test_json_spec(self, tmp_path):
        path = tmp_path / "tiny.json"
        path.write_text(json.dumps(TINY))
        spec = load_spec(path)
        assert spec.name == "tiny"
        assert spec.grid == {"seed": [1, 2]}

    @pytest.mark.skipif(
        sys.version_info < (3, 11), reason="tomllib needs Python 3.11"
    )
    def test_toml_spec(self, tmp_path):
        path = tmp_path / "sweep.toml"
        path.write_text(
            'experiment = "convergence"\n'
            "jobs = 1\n"
            "[params]\n"
            "n_players = 3\n"
            "[grid]\n"
            "seed = [1, 2]\n"
        )
        spec = load_spec(path)
        assert spec.name == "sweep"  # file stem default
        assert spec.base_params == {"n_players": 3}

    def test_missing_file_and_bad_suffix(self, tmp_path):
        with pytest.raises(CampaignError):
            load_spec(tmp_path / "absent.json")
        path = tmp_path / "spec.yaml"
        path.write_text("experiment: table1")
        with pytest.raises(CampaignError):
            load_spec(path)

    def test_invalid_json_reported(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        with pytest.raises(CampaignError):
            load_spec(path)


class TestExpansion:
    def test_grid_times_zip_ordering(self):
        spec = spec_from_dict(
            {
                "experiment": "table1",
                "grid": {"a": [1, 2], "b": [10, 20]},
                "zip": {"c": [100, 200]},
            }
        )
        tasks = expand_tasks(spec)
        assert spec.n_tasks == len(tasks) == 8
        assert [t.params for t in tasks[:3]] == [
            {"a": 1, "b": 10, "c": 100},
            {"a": 1, "b": 10, "c": 200},
            {"a": 1, "b": 20, "c": 100},
        ]
        assert [t.index for t in tasks] == list(range(8))

    def test_expansion_is_deterministic(self):
        spec = spec_from_dict(TINY)
        first = [t.digest for t in expand_tasks(spec)]
        second = [t.digest for t in expand_tasks(spec)]
        assert first == second

    @pytest.mark.parametrize(
        "policy,expected",
        [
            ("fixed", [7, 7, 7]),
            ("sequential", [7, 8, 9]),
        ],
    )
    def test_seed_policies(self, policy, expected):
        spec = spec_from_dict(
            {
                "experiment": "table1",
                "grid": {"x": [1, 2, 3]},
                "seeds": {"parameter": "seed", "base": 7, "policy": policy},
            }
        )
        assert [t.params["seed"] for t in expand_tasks(spec)] == expected

    def test_spawn_policy_is_deterministic_and_distinct(self):
        spec = spec_from_dict(
            {
                "experiment": "table1",
                "grid": {"x": [1, 2, 3]},
                "seeds": {"parameter": "seed", "base": 7, "policy": "spawn"},
            }
        )
        seeds_a = [t.params["seed"] for t in expand_tasks(spec)]
        seeds_b = [t.params["seed"] for t in expand_tasks(spec)]
        assert seeds_a == seeds_b
        assert len(set(seeds_a)) == 3


class TestExecution:
    def test_second_run_is_served_entirely_from_store(self, store):
        spec = spec_from_dict(TINY)
        first = run_campaign(spec, store=store)
        assert first.executed == 2 and first.cached == 0 and first.complete
        second = run_campaign(spec, store=store)
        assert second.executed == 0 and second.cached == 2
        # bit-identical artefacts: the stored payload hashes are stable
        digests = [t.digest for t in expand_tasks(spec)]
        shas = [store.verify(d).result_sha256 for d in digests]
        fresh_store = ResultStore(store.root.parent / "fresh")
        run_campaign(spec, store=fresh_store)
        assert [
            fresh_store.verify(d).result_sha256 for d in digests
        ] == shas

    def test_force_reexecutes_despite_cache(self, store):
        spec = spec_from_dict(TINY)
        run_campaign(spec, store=store)
        forced = run_campaign(spec, store=store, force=True)
        assert forced.executed == 2 and forced.cached == 0

    def test_status_without_execution(self, store):
        spec = spec_from_dict(TINY)
        before = campaign_status(spec, store=store)
        assert before.pending == 2 and before.executed == 0
        assert store.find() == []  # status must not run anything
        run_campaign(spec, store=store)
        after = campaign_status(spec, store=store)
        assert after.pending == 0 and after.cached == 2

    def test_interrupt_mid_sweep_resumes_exactly(self, store, monkeypatch):
        spec = spec_from_dict(TINY)
        real_execute = engine_module._execute_task
        calls = []

        def flaky(task):
            if calls:  # second task: simulate SIGINT mid-sweep
                raise KeyboardInterrupt
            calls.append(task)
            return real_execute(task)

        monkeypatch.setattr(engine_module, "_execute_task", flaky)
        interrupted = run_campaign(spec, store=store)
        assert interrupted.interrupted
        assert interrupted.executed == 1 and interrupted.pending == 1
        monkeypatch.setattr(engine_module, "_execute_task", real_execute)
        resumed = run_campaign(spec, store=store)
        # the completed prefix is not recomputed
        assert resumed.cached == 1 and resumed.executed == 1
        assert resumed.complete

    def test_report_render_mentions_every_task(self, store):
        spec = spec_from_dict(TINY)
        report = run_campaign(spec, store=store)
        text = report.render()
        for task in expand_tasks(spec):
            assert task.digest[:12] in text


class TestCorruptCacheResume:
    """A corrupt stored object must be re-executed, not trusted."""

    def test_tampered_payload_demoted_to_pending_and_healed(self, store):
        spec = spec_from_dict(TINY)
        run_campaign(spec, store=store)
        victim = expand_tasks(spec)[0]
        store.result_path(victim.digest).write_text('{"forged": true}\n')

        status = campaign_status(spec, store=store)
        assert status.pending == 1 and status.cached == 1

        healed = run_campaign(spec, store=store)
        assert healed.executed == 1 and healed.cached == 1
        # the re-execution restored a verifiable object
        store.verify(victim.digest)

    def test_field_stripped_manifest_demoted_and_healed(self, store):
        spec = spec_from_dict(TINY)
        run_campaign(spec, store=store)
        victim = expand_tasks(spec)[1]
        path = store.manifest_path(victim.digest)
        data = json.loads(path.read_text())
        del data["result_sha256"]
        path.write_text(json.dumps(data))

        healed = run_campaign(spec, store=store)
        assert healed.executed == 1 and healed.cached == 1
        store.verify(victim.digest)

    def test_invalid_json_manifest_demoted_and_healed(self, store):
        spec = spec_from_dict(TINY)
        run_campaign(spec, store=store)
        victim = expand_tasks(spec)[0]
        store.manifest_path(victim.digest).write_text("{not json")

        healed = run_campaign(spec, store=store)
        assert healed.executed == 1 and healed.cached == 1
        store.verify(victim.digest)


class TestCampaignProfiles:
    def test_every_executed_task_gets_a_profile(self, store):
        from repro import obs

        spec = spec_from_dict(TINY)
        run_campaign(spec, store=store)
        for task in expand_tasks(spec):
            profile = store.load_profile(task.digest)
            assert profile["meta"]["experiment_id"] == "convergence"
            assert profile["meta"]["campaign"] == "tiny"
            assert profile["meta"]["task_index"] == task.index
            assert profile["digest"] == obs.profile_digest(profile)

    def test_cache_hit_miss_counters_recorded(self, store):
        from repro import obs

        spec = spec_from_dict(TINY)
        recorder = obs.MemoryRecorder()
        with obs.use_recorder(recorder):
            run_campaign(spec, store=store)   # 2 misses
            run_campaign(spec, store=store)   # 2 hits
        counters = obs.build_profile(recorder.events)["counters"]
        assert counters["store.cache|outcome=miss"] == 2
        assert counters["store.cache|outcome=hit"] == 2
