"""Tests for the determinism/invariant linter (``repro.lint``).

Rule-level behavior is pinned against inline snippets; the end-to-end
paths (file discovery, registry lookup, noqa, CLI exit codes and JSON
output) run against the fixture tree in ``tests/lint_fixtures``, which is
excluded from repository-wide lint runs precisely so it can contain
deliberate violations.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.lint import (
    RULE_REGISTRY,
    all_rule_codes,
    build_rules,
    check_paths,
    check_source,
)
from repro.lint.analyzer import (
    DEFAULT_EXCLUDED_DIRS,
    registered_experiment_modules,
)
from repro.lint.cli import main

FIXTURES = Path(__file__).resolve().parent.parent / "lint_fixtures"


def codes(violations):
    return [v.rule for v in violations]


# ----------------------------------------------------------------- REPRO001
class TestUnseededRng:
    def test_flags_default_rng_without_seed(self):
        found = check_source("import numpy as np\nr = np.random.default_rng()\n")
        assert codes(found) == ["REPRO001"]
        assert found[0].line == 2

    def test_flags_explicit_none_seed(self):
        source = (
            "from numpy.random import default_rng\n"
            "a = default_rng(None)\n"
            "b = default_rng(seed=None)\n"
        )
        assert codes(check_source(source)) == ["REPRO001", "REPRO001"]

    def test_flags_global_state_calls(self):
        source = (
            "import numpy as np\n"
            "np.random.seed(1)\n"
            "x = np.random.uniform(size=3)\n"
        )
        assert codes(check_source(source)) == ["REPRO001", "REPRO001"]

    def test_accepts_seeded_generator(self):
        source = (
            "import numpy as np\n"
            "r = np.random.default_rng(2007)\n"
            "s = np.random.default_rng(np.random.SeedSequence(7))\n"
        )
        assert check_source(source) == []

    def test_import_alias_is_resolved(self):
        found = check_source(
            "import numpy.random as npr\nr = npr.default_rng()\n"
        )
        assert codes(found) == ["REPRO001"]


# ----------------------------------------------------------------- REPRO002
class TestRngFallback:
    def test_flags_or_fallback(self):
        source = (
            "import numpy as np\n"
            "def sample(n, rng=None):\n"
            "    g = rng or np.random.default_rng()\n"
            "    return g.uniform(size=n)\n"
        )
        found = check_source(source)
        assert sorted(codes(found)) == ["REPRO001", "REPRO002"]

    def test_flags_seed_branch_fallback(self):
        source = (
            "import numpy as np\n"
            "def sim(seed=None):\n"
            "    if seed is None:\n"
            "        g = np.random.default_rng()\n"
            "    else:\n"
            "        g = np.random.default_rng(seed)\n"
            "    return g\n"
        )
        assert "REPRO002" in codes(check_source(source))

    def test_accepts_deterministic_fallback(self):
        source = (
            "import numpy as np\n"
            "def sample(n, rng=None):\n"
            "    g = rng if rng is not None else np.random.default_rng(7)\n"
            "    return g.uniform(size=n)\n"
        )
        assert check_source(source) == []

    def test_ignores_functions_without_rng_parameter(self):
        source = (
            "import numpy as np\n"
            "def scratch():\n"
            "    return np.random.default_rng()\n"
        )
        # Still REPRO001 (unseeded), but not a fallback violation.
        assert codes(check_source(source)) == ["REPRO001"]


# ----------------------------------------------------------------- REPRO003
class TestFloatEquality:
    def test_flags_float_literal_comparison(self):
        assert codes(check_source("ok = x == 0.25\n")) == ["REPRO003"]
        assert codes(check_source("ok = x != -1.5\n")) == ["REPRO003"]

    def test_flags_probability_named_operands(self):
        assert codes(check_source("same = tau_a == tau_b\n")) == ["REPRO003"]
        assert codes(
            check_source("hit = outcome.utility == target\n")
        ) == ["REPRO003"]

    def test_accepts_int_literal_comparison(self):
        assert check_source("done = count == 3\n") == []

    def test_accepts_isclose_comparisons(self):
        source = (
            "import math\n"
            "import numpy as np\n"
            "a = math.isclose(tau, 0.25)\n"
            "b = np.allclose(tau_estimates, reference)\n"
        )
        assert check_source(source) == []

    def test_accepts_unhinted_name_comparison(self):
        assert check_source("same = left == right\n") == []

    def test_batched_solver_module_is_exempt(self):
        # The Anderson step's exact-zero divide guards are deliberate;
        # the module is on the rule's exemption list.
        source = "safe = den == 0.0\nusable = den != 0.0\n"
        assert check_source(source, "src/repro/bianchi/batched.py") == []
        assert check_source(
            source, "src\\repro\\bianchi\\batched.py"
        ) == []

    def test_exemption_does_not_leak_to_other_paths(self):
        source = "safe = den == 0.0\n"
        assert codes(
            check_source(source, "src/repro/bianchi/fixedpoint.py")
        ) == ["REPRO003"]
        assert codes(check_source(source, "batched.py")) == ["REPRO003"]


# ----------------------------------------------------------------- REPRO004
class TestMutableDefault:
    @pytest.mark.parametrize(
        "default", ["[]", "{}", "set()", "dict()", "np.zeros(3)", "[x for x in y]"]
    )
    def test_flags_mutable_defaults(self, default):
        source = f"import numpy as np\ndef f(a, b={default}):\n    return b\n"
        assert codes(check_source(source)) == ["REPRO004"]

    def test_flags_keyword_only_and_lambda_defaults(self):
        assert codes(
            check_source("def f(*, acc=[]):\n    return acc\n")
        ) == ["REPRO004"]
        assert codes(check_source("g = lambda acc=[]: acc\n")) == ["REPRO004"]

    def test_accepts_immutable_defaults(self):
        source = "def f(a=1, b=(), c='x', d=None, e=frozenset()):\n    return a\n"
        assert check_source(source) == []


# ----------------------------------------------------------------- REPRO005
class TestUnregisteredExperiment:
    def test_registry_parse(self):
        registry = (FIXTURES / "experiments" / "registry.py").read_text()
        assert registered_experiment_modules(registry) == frozenset({"good_exp"})

    def test_real_registry_covers_real_experiments(self):
        root = Path(__file__).resolve().parents[2]
        violations, _ = check_paths([root / "src" / "repro" / "experiments"])
        assert [v for v in violations if v.rule == "REPRO005"] == []

    def test_orphan_flagged_registered_not(self):
        violations, _ = check_paths([FIXTURES / "experiments"])
        flagged = [v for v in violations if v.rule == "REPRO005"]
        assert [Path(v.path).name for v in flagged] == ["orphan.py"]

    def test_skipped_without_registry(self):
        source = "def run(seed=0):\n    return {}\n"
        # No registry context -> rule must stay silent rather than guess.
        assert check_source(source, "experiments/orphan.py") == []


# ----------------------------------------------------------------- REPRO006
class TestNumpyInXpKernel:
    def test_flags_direct_numpy_call(self):
        source = (
            "import numpy as np\n"
            "def kernel(xp, a):\n"
            "    return np.sum(a)\n"
        )
        found = check_source(source)
        assert codes(found) == ["REPRO006"]
        assert found[0].line == 3

    def test_resolves_import_spelling(self):
        source = (
            "from numpy import where\n"
            "def kernel(xp, a, b):\n"
            "    return where(a, a, b)\n"
        )
        assert codes(check_source(source)) == ["REPRO006"]

    def test_accepts_xp_generic_body(self):
        source = (
            "def kernel(xp, a):\n"
            "    one = xp.ones_like(a)\n"
            "    return xp.where(a > one, a, one)\n"
        )
        assert check_source(source) == []

    def test_ignores_functions_without_xp(self):
        source = (
            "import numpy as np\n"
            "def helper(a):\n"
            "    return np.sum(a)\n"
        )
        assert check_source(source) == []

    def test_keyword_only_xp_counts(self):
        source = (
            "import numpy as np\n"
            "def kernel(a, *, xp):\n"
            "    return np.maximum(a, 0)\n"
        )
        assert codes(check_source(source)) == ["REPRO006"]

    def test_math_calls_are_fine(self):
        source = (
            "import math\n"
            "def kernel(xp, a):\n"
            "    return a * math.log1p(0.5)\n"
        )
        assert check_source(source) == []

    def test_fixture_file(self):
        violations, _ = check_paths([FIXTURES / "bad_xp_kernel.py"])
        assert codes(violations) == ["REPRO006", "REPRO006"]

    def test_production_kernels_are_xp_clean(self):
        root = Path(__file__).resolve().parents[2]
        violations, _ = check_paths([root / "src" / "repro" / "sim"])
        assert [v for v in violations if v.rule == "REPRO006"] == []


# --------------------------------------------------------------- suppression
class TestNoqa:
    def test_code_specific_and_bare_noqa(self):
        path = FIXTURES / "suppressed.py"
        violations, _ = check_paths([path])
        assert violations == []

    def test_no_noqa_reveals_suppressed(self):
        violations, _ = check_paths([FIXTURES / "suppressed.py"], respect_noqa=False)
        assert sorted(codes(violations)) == ["REPRO001", "REPRO003", "REPRO004"]

    def test_noqa_for_other_code_does_not_suppress(self):
        source = "import numpy as np\nr = np.random.default_rng()  # repro: noqa=REPRO004\n"
        assert codes(check_source(source)) == ["REPRO001"]


# ------------------------------------------------------------------ registry
class TestRuleRegistry:
    def test_catalogue(self):
        assert all_rule_codes() == [
            "REPRO001",
            "REPRO002",
            "REPRO003",
            "REPRO004",
            "REPRO005",
            "REPRO006",
        ]

    def test_select_and_ignore(self):
        selected = build_rules(select=["REPRO003"])
        assert [r.code for r in selected] == ["REPRO003"]
        remaining = build_rules(ignore=["REPRO003", "REPRO005"])
        assert [r.code for r in remaining] == [
            "REPRO001", "REPRO002", "REPRO004", "REPRO006",
        ]

    def test_unknown_code_rejected(self):
        with pytest.raises(ValueError):
            build_rules(select=["REPRO999"])

    def test_every_rule_has_a_summary(self):
        for code, rule_cls in RULE_REGISTRY.items():
            assert rule_cls.summary, code


# ----------------------------------------------------------------- discovery
class TestDiscoveryAndSyntax:
    def test_fixture_dir_is_excluded_from_tree_runs(self):
        assert "lint_fixtures" in DEFAULT_EXCLUDED_DIRS

    def test_syntax_error_reported_not_raised(self):
        found = check_source("def broken(:\n", "oops.py")
        assert codes(found) == ["REPRO900"]

    def test_fixture_sweep_totals(self):
        violations, files_checked = check_paths([FIXTURES])
        assert files_checked == 14
        by_rule = {}
        for violation in violations:
            by_rule[violation.rule] = by_rule.get(violation.rule, 0) + 1
        assert by_rule == {
            "REPRO001": 9,
            "REPRO002": 2,
            "REPRO003": 3,
            "REPRO004": 3,
            "REPRO005": 1,
            "REPRO006": 2,
        }


# ----------------------------------------------------------------------- CLI
class TestCli:
    def test_exit_zero_on_clean_tree(self, capsys):
        assert main([str(FIXTURES / "clean_module.py")]) == 0
        assert "clean: 1 file checked" in capsys.readouterr().out

    def test_exit_one_on_violations(self, capsys):
        assert main([str(FIXTURES / "bad_rng.py")]) == 1
        out = capsys.readouterr().out
        assert "REPRO001" in out

    def test_exit_two_on_missing_path(self, capsys):
        assert main(["definitely/not/a/path"]) == 2

    def test_exit_two_on_unknown_rule(self, capsys):
        assert main(["--select", "REPRO999", str(FIXTURES)]) == 2

    def test_json_output(self, capsys):
        assert main(["--format", "json", str(FIXTURES / "bad_float_eq.py")]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["files_checked"] == 1
        assert payload["counts"] == {"REPRO003": 3}
        first = payload["violations"][0]
        assert set(first) == {"path", "line", "col", "rule", "message"}

    def test_select_filters_rules(self, capsys):
        assert main(["--select", "REPRO004", str(FIXTURES / "bad_rng.py")]) == 0

    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for code in all_rule_codes():
            assert code in out
