"""Unit tests for the simulator counters and estimators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.sim.metrics import ChannelCounters, NodeCounters


class TestNodeCounters:
    def test_check_passes_when_consistent(self):
        node = NodeCounters(attempts=10, successes=7, collisions=3)
        node.check()

    def test_check_fails_when_inconsistent(self):
        node = NodeCounters(attempts=10, successes=7, collisions=2)
        with pytest.raises(SimulationError):
            node.check()

    def test_collision_probability(self):
        node = NodeCounters(attempts=10, successes=7, collisions=3)
        assert node.collision_probability() == pytest.approx(0.3)

    def test_collision_probability_no_attempts(self):
        assert NodeCounters().collision_probability() == 0.0  # repro: noqa=REPRO003

    def test_payoff_rate_formula(self):
        node = NodeCounters(attempts=10, successes=7, collisions=3)
        # (n_s g - n_e e) / t_m
        assert node.payoff_rate(2.0, 0.5, 100.0) == pytest.approx(
            (7 * 2.0 - 10 * 0.5) / 100.0
        )

    def test_payoff_rate_needs_positive_time(self):
        with pytest.raises(SimulationError):
            NodeCounters().payoff_rate(1.0, 0.1, 0.0)


class TestChannelCounters:
    def _counters(self):
        return ChannelCounters(
            idle_slots=70,
            success_slots=20,
            collision_slots=10,
            elapsed_us=1000.0,
            per_node=[
                NodeCounters(attempts=15, successes=12, collisions=3),
                NodeCounters(attempts=12, successes=8, collisions=4),
            ],
        )

    def test_total_slots(self):
        assert self._counters().total_slots == 100

    def test_tau_estimates(self):
        np.testing.assert_allclose(
            self._counters().tau_estimates(), [0.15, 0.12]
        )

    def test_collision_estimates(self):
        np.testing.assert_allclose(
            self._counters().collision_estimates(), [0.2, 1 / 3]
        )

    def test_payoff_rates(self):
        rates = self._counters().payoff_rates(1.0, 0.01)
        np.testing.assert_allclose(
            rates,
            [(12 - 0.15) / 1000.0, (8 - 0.12) / 1000.0],
        )

    def test_throughput(self):
        assert self._counters().throughput(10.0) == pytest.approx(
            20 * 10.0 / 1000.0
        )

    def test_check_cross_validates_successes(self):
        counters = self._counters()
        counters.check()
        counters.success_slots = 19
        with pytest.raises(SimulationError):
            counters.check()

    def test_tau_requires_slots(self):
        empty = ChannelCounters(per_node=[NodeCounters()])
        with pytest.raises(SimulationError):
            empty.tau_estimates()

    def test_throughput_requires_time(self):
        empty = ChannelCounters(per_node=[NodeCounters()])
        with pytest.raises(SimulationError):
            empty.throughput(10.0)
