"""Unit tests for the alternative PHY parameter presets."""

from __future__ import annotations

import pytest

from repro.game.equilibrium import efficient_window
from repro.phy.parameters import (
    AccessMode,
    default_parameters,
    parameters_80211b,
)
from repro.phy.timing import slot_times


class TestPreset80211b:
    def test_standard_phy_constants(self):
        preset = parameters_80211b()
        assert preset.channel_bit_rate == 11e6  # repro: noqa=REPRO003
        assert preset.slot_time_us == 20.0  # repro: noqa=REPRO003
        assert preset.sifs_us == 10.0  # repro: noqa=REPRO003
        assert preset.difs_us == 50.0  # repro: noqa=REPRO003

    def test_frame_airtimes_shrink_with_rate(self):
        fast = parameters_80211b()
        slow = default_parameters()
        assert fast.payload_time_us == pytest.approx(
            slow.payload_time_us / 11
        )
        assert fast.header_time_us < slow.header_time_us

    def test_equilibrium_machinery_generalises(self):
        # The whole Section V pipeline runs unchanged on the preset and
        # keeps the structural properties (monotone in n, RTS smaller).
        preset = parameters_80211b()
        basic = slot_times(preset, AccessMode.BASIC)
        rts = slot_times(preset, AccessMode.RTS_CTS)
        w5 = efficient_window(5, preset, basic)
        w20 = efficient_window(20, preset, basic)
        assert 1 < w5 < w20
        assert efficient_window(20, preset, rts) < w20

    def test_cheaper_collisions_mean_smaller_windows(self):
        # Tc shrinks 11x (payload at 11 Mb/s) while sigma shrinks 2.5x,
        # so W* ~ n sqrt(2 Tc / sigma) drops relative to Table I.
        table1 = default_parameters()
        preset = parameters_80211b()
        w_table1 = efficient_window(
            20, table1, slot_times(table1, AccessMode.BASIC)
        )
        w_preset = efficient_window(
            20, preset, slot_times(preset, AccessMode.BASIC)
        )
        assert w_preset < w_table1 / 1.5
