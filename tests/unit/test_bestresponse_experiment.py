"""Unit tests for the myopic best-response collapse experiment."""

from __future__ import annotations

import pytest

from repro.experiments import bestresponse


@pytest.fixture(scope="module")
def result(params):
    return bestresponse.run(params=params, n_players=4, n_stages=4)


class TestCollapse:
    def test_starts_at_efficient_ne(self, result):
        assert result.myopic_windows[0] == result.initial_window

    def test_myopic_population_undercuts(self, result):
        assert result.myopic_windows[1] < result.initial_window

    def test_race_to_the_bottom_is_absorbing(self, result):
        # Once at the bottom, best responses stay there.
        assert result.myopic_windows[-1] == result.myopic_windows[-2]

    def test_welfare_strictly_below_tft(self, result):
        assert result.myopic_welfare[-1] < result.tft_welfare[-1]
        assert result.welfare_loss > 0

    def test_tft_population_is_stable(self, result):
        assert len(set(round(w, 9) for w in result.tft_welfare)) == 1

    def test_render_mentions_both_dynamics(self, result):
        text = result.render()
        assert "myopic" in text
        assert "TFT" in text
        assert "welfare loss" in text
