"""Unit tests for the fairness metrics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.bianchi.fairness import jain_index, throughput_shares
from repro.bianchi.fixedpoint import solve_heterogeneous
from repro.errors import ParameterError


class TestJainIndex:
    def test_perfect_equality(self):
        assert jain_index([3.0, 3.0, 3.0]) == pytest.approx(1.0)

    def test_monopoly_floor(self):
        assert jain_index([1.0, 0.0, 0.0, 0.0]) == pytest.approx(0.25)

    def test_scale_invariance(self):
        x = [1.0, 2.0, 5.0]
        assert jain_index(x) == pytest.approx(
            jain_index([10 * v for v in x])
        )

    def test_known_value(self):
        # J([1, 3]) = 16 / (2 * 10) = 0.8.
        assert jain_index([1.0, 3.0]) == pytest.approx(0.8)

    def test_bounds(self):
        rng = np.random.default_rng(0)
        for _ in range(20):
            x = rng.uniform(0.01, 10.0, size=rng.integers(2, 8))
            value = jain_index(x)
            assert 1.0 / x.size <= value <= 1.0 + 1e-12

    def test_validation(self):
        with pytest.raises(ParameterError):
            jain_index([])
        with pytest.raises(ParameterError):
            jain_index([1.0, -0.1])
        with pytest.raises(ParameterError):
            jain_index([0.0, 0.0])


class TestThroughputShares:
    def test_symmetric_taus_equal_shares(self, basic_times):
        shares = throughput_shares([0.05] * 4, basic_times)
        np.testing.assert_allclose(shares, 0.25)

    def test_shares_sum_to_one(self, basic_times):
        shares = throughput_shares([0.01, 0.05, 0.2], basic_times)
        assert shares.sum() == pytest.approx(1.0)

    def test_aggressive_node_takes_more(self, basic_times):
        shares = throughput_shares([0.2, 0.05], basic_times)
        assert shares[0] > shares[1]

    def test_silent_network_rejected(self, basic_times):
        with pytest.raises(ParameterError):
            throughput_shares([0.0, 0.0], basic_times)

    def test_tft_convergence_restores_fairness(self, params, basic_times):
        # Heterogeneous windows are unfair; the TFT-converged common
        # window is perfectly fair.
        hetero = solve_heterogeneous([16, 64, 256, 1024], params.max_backoff_stage)
        unfair = jain_index(throughput_shares(hetero.tau, basic_times))
        common = solve_heterogeneous([16] * 4, params.max_backoff_stage)
        fair = jain_index(throughput_shares(common.tau, basic_times))
        assert unfair < 0.8
        assert fair == pytest.approx(1.0)
