"""Unit tests for the ASCII figure renderer."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ParameterError
from repro.experiments.plotting import ascii_plot


class TestAsciiPlot:
    def test_basic_structure(self):
        x = [1, 2, 4, 8, 16]
        text = ascii_plot(
            x, {"u": [0.0, 1.0, 2.0, 1.0, 0.0]}, title="Shape"
        )
        lines = text.splitlines()
        assert lines[0] == "Shape"
        assert lines[1].endswith("-" * 72)
        assert "o = u" in lines[-1]

    def test_peak_row_holds_the_maximum(self):
        x = list(range(10))
        values = [0, 1, 2, 3, 9, 3, 2, 1, 0, 0]
        text = ascii_plot(x, {"s": values}, height=8)
        lines = text.splitlines()
        plot_rows = [line for line in lines if line.startswith(" " * 11 + "|")]
        # The first plot row (maximum y) contains exactly one marker.
        assert plot_rows[0].count("o") == 1

    def test_two_series_get_distinct_markers(self):
        x = [1, 2, 3]
        text = ascii_plot(x, {"a": [1, 2, 3], "b": [3, 2, 1]})
        assert "o = a" in text
        assert "x = b" in text
        body = "\n".join(
            line for line in text.splitlines() if line.startswith(" " * 11)
        )
        assert "o" in body and "x" in body

    def test_axis_labels_show_range(self):
        text = ascii_plot([5, 50], {"s": [1.0, 2.0]}, x_label="W")
        assert "5" in text
        assert "50" in text
        assert "W" in text

    def test_flat_series_rendered(self):
        text = ascii_plot([1, 2, 3], {"s": [4.0, 4.0, 4.0]})
        assert text  # no division-by-zero on a flat series

    def test_validation(self):
        with pytest.raises(ParameterError):
            ascii_plot([1], {"s": [1.0]})
        with pytest.raises(ParameterError):
            ascii_plot([2, 1], {"s": [1.0, 2.0]})
        with pytest.raises(ParameterError):
            ascii_plot([1, 2], {})
        with pytest.raises(ParameterError):
            ascii_plot([1, 2], {"s": [1.0]})
        with pytest.raises(ParameterError):
            ascii_plot([1, 2], {"s": [1.0, 2.0]}, width=5)
        many = {f"s{i}": [1.0, 2.0] for i in range(9)}
        with pytest.raises(ParameterError):
            ascii_plot([1, 2], many)
