"""Certification-driver tests, including the injected-bug self-test.

The self-test is the suite's tripwire: a deliberately wrong constant is
injected through the test-only perturbation hook of
:mod:`repro.verify.encodings`, and the verifier must (a) notice, (b)
produce a concrete counterexample point, and (c) round-trip that point
through the scenario pipeline into a replayable regression file.
"""

from __future__ import annotations

import pytest

from repro.errors import VerificationError
from repro.verify.boxes import get_box
from repro.verify.certify import (
    CHECKER_NAMES,
    Certificate,
    certify_claim,
    run_certification,
)
from repro.verify.claims import CLAIMS, CheckBudget, claims_for
from repro.verify.encodings import perturbed
from repro.verify.scenarios import (
    load_scenario,
    replay_scenario,
    scenarios_from_certificate,
    write_scenario,
)

BUDGET = CheckBudget(max_boxes=20000)
SMALL_BOXES = ("tableII-small", "tableIII-small", "multihop-small")


class TestClaimRegistry:
    def test_all_claims_registered(self):
        assert set(CLAIMS) == {"bianchi", "lemma3", "theorem2", "theorem3"}

    def test_claims_for_all_and_explicit(self):
        assert [c.name for c in claims_for("all")] == sorted(CLAIMS)
        assert [c.name for c in claims_for(["theorem2"])] == ["theorem2"]

    def test_claims_for_unknown_rejected(self):
        with pytest.raises(VerificationError, match="unknown"):
            claims_for(["theorem9"])


class TestCertifyClaim:
    def test_unknown_claim_rejected(self):
        with pytest.raises(VerificationError, match="unknown claim"):
            certify_claim("theorem9", get_box("tableII-small"))

    def test_unknown_checker_rejected(self):
        with pytest.raises(VerificationError, match="unknown checker"):
            certify_claim(
                "theorem2", get_box("tableII-small"), checkers=("fuzzer",)
            )

    @pytest.mark.parametrize("box_name", SMALL_BOXES)
    @pytest.mark.parametrize("claim", sorted(CLAIMS))
    def test_small_boxes_certify(self, claim, box_name):
        """Every shipped claim certifies on every -small preset box."""
        certificate = certify_claim(
            claim,
            get_box(box_name),
            checkers=("interval", "numeric"),
            budget=BUDGET,
        )
        assert certificate.status == "certified", certificate.to_dict()
        assert certificate.counterexamples == []

    def test_smt_only_without_z3_is_skipped_or_certified(self):
        """--checkers smt must degrade cleanly whether or not z3 exists."""
        certificate = certify_claim(
            "lemma3", get_box("tableII-small"), checkers=("smt",)
        )
        assert certificate.status in ("skipped", "certified")

    def test_certificate_serialises(self):
        certificate = certify_claim(
            "bianchi",
            get_box("tableII-small"),
            checkers=("interval", "numeric"),
            budget=BUDGET,
        )
        document = certificate.to_dict()
        assert document["status"] == certificate.status
        assert document["claim"] == "bianchi"
        assert isinstance(document["outcomes"], list)
        assert document["counterexamples"] == []

    def test_run_certification_covers_selection(self):
        certificates = run_certification(
            ["lemma3", "bianchi"],
            get_box("tableII-small"),
            checkers=("numeric",),
            budget=BUDGET,
        )
        assert sorted(c.claim for c in certificates) == ["bianchi", "lemma3"]
        # numeric alone never gives a whole-box proof.
        assert all(c.status == "checked" for c in certificates)


class TestInjectedBug:
    """A seeded fault must surface as a replayable counterexample."""

    def _bugged_certificate(self) -> Certificate:
        with perturbed(cost=1e-3):
            return certify_claim(
                "theorem2",
                get_box("tableII-small"),
                checkers=("interval", "numeric"),
                budget=BUDGET,
            )

    def test_injected_cost_bug_is_caught(self):
        certificate = self._bugged_certificate()
        assert certificate.status == "counterexample"
        assert certificate.counterexamples
        point = certificate.counterexamples[0]["point"]
        assert point, "counterexample must carry a concrete point"

    def test_counterexample_round_trips_through_scenarios(self, tmp_path):
        certificate = self._bugged_certificate()
        scenarios = scenarios_from_certificate(certificate)
        assert scenarios, "every counterexample must become a scenario"
        path = write_scenario(scenarios[0], tmp_path)
        assert path.exists()
        loaded = load_scenario(path)
        assert loaded["claim"] == "theorem2"
        # The pins were taken from the *clean* production stack, so the
        # replay must pass once the injected bug is gone.
        report = replay_scenario(loaded)
        assert report.ok, report.failures

    def test_clean_rerun_certifies_again(self):
        """The perturbation is scoped: after the context, all is well."""
        certificate = certify_claim(
            "theorem2",
            get_box("tableII-small"),
            checkers=("interval", "numeric"),
            budget=BUDGET,
        )
        assert certificate.status == "certified"


class TestCheckerNames:
    def test_execution_order_is_stable(self):
        assert CHECKER_NAMES == ("interval", "smt", "numeric")
