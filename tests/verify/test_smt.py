"""Tests of the gated SMT layer.

The z3 dependency is optional, so the suite must pass both with and
without it installed: the degrade path (skipped outcomes, helpful
errors) is tested unconditionally, the live-solver paths only when z3
imports.
"""

from __future__ import annotations

import pytest

from repro.errors import VerificationError
from repro.verify.smt import (
    SmtOutcome,
    SmtSpec,
    bounded_real,
    load_z3,
    rational,
    run_query,
    z3_available,
)

needs_z3 = pytest.mark.skipif(not z3_available(), reason="z3 not installed")
without_z3 = pytest.mark.skipif(
    z3_available(), reason="degrade path needs z3 absent"
)


def _trivial_spec() -> SmtSpec:
    def build(z3, solver):
        x = bounded_real(z3, solver, "x", 0.0, 1.0)
        solver.add(x * x > rational(z3, 2.0))
        return {"x": x}

    return SmtSpec(label="x^2 > 2 on [0, 1]", build=build)


class TestDegradePath:
    @without_z3
    def test_load_z3_names_the_extra(self):
        with pytest.raises(VerificationError, match="verify"):
            load_z3()

    @without_z3
    def test_run_query_skips_without_solver(self):
        outcome = run_query(_trivial_spec())
        assert outcome.verdict == "skipped"
        assert "z3" in outcome.detail
        assert outcome.model is None

    def test_outcome_defaults(self):
        outcome = SmtOutcome(label="x", verdict="unsat")
        assert outcome.model is None
        assert outcome.stats == {}


class TestLiveSolver:
    @needs_z3
    def test_unsat_certifies(self):
        outcome = run_query(_trivial_spec())
        assert outcome.verdict == "unsat"

    @needs_z3
    def test_sat_extracts_float_model(self):
        def build(z3, solver):
            x = bounded_real(z3, solver, "x", 0.0, 2.0)
            solver.add(x * x > rational(z3, 2.0))
            return {"x": x}

        outcome = run_query(SmtSpec(label="x^2 > 2 on [0, 2]", build=build))
        assert outcome.verdict == "sat"
        assert outcome.model is not None
        value = outcome.model["x"]
        assert isinstance(value, float)
        assert value * value > 2.0 - 1e-9

    @needs_z3
    def test_rational_is_exact(self):
        z3 = load_z3()
        term = rational(z3, 0.1)
        # 0.1 is stored as its exact IEEE-754 value, not the decimal.
        assert term.as_fraction() == __import__("fractions").Fraction(0.1)

    @needs_z3
    def test_degenerate_range_collapses_to_constant(self):
        z3 = load_z3()
        solver = z3.Solver()
        constant = bounded_real(z3, solver, "c", 3.0, 3.0)
        assert len(solver.assertions()) == 0
        assert constant.as_fraction() == 3
