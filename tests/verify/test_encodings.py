"""Encoder-vs-production differential tests.

The encodings of :mod:`repro.verify.encodings` must agree with the
numeric stack they re-state (``repro.bianchi`` / ``repro.game``) to
floating-point noise at ordinary float operands - the whole
three-checker design rests on that equivalence.
"""

from __future__ import annotations

import math

import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.bianchi.fixedpoint import solve_symmetric
from repro.bianchi.markov import transmission_probability
from repro.game.equilibrium import q_function
from repro.game.utility import symmetric_utility_from_tau
from repro.phy.parameters import AccessMode, default_parameters
from repro.phy.timing import slot_times
from repro.verify.encodings import (
    collision_from_tau,
    coupling_residual,
    geometric_series,
    perturbation,
    perturbed,
    q_stationarity,
    slot_length,
    success_margin,
    utility_cross_difference,
    utility_numerator,
)

taus = st.floats(min_value=1e-4, max_value=0.7)
nodes = st.integers(min_value=2, max_value=60)
windows = st.integers(min_value=2, max_value=4096)
stages = st.sampled_from([0, 1, 3, 5, 7])


class TestGeometricSeries:
    @given(st.floats(min_value=-0.99, max_value=0.99), st.integers(1, 12))
    @settings(max_examples=100, deadline=None)
    def test_matches_closed_form(self, x, terms):
        expected = sum(x**j for j in range(terms))
        assert geometric_series(x, terms) == pytest.approx(
            expected, rel=1e-12, abs=1e-12
        )

    def test_total_at_one(self):
        assert geometric_series(1.0, 6) == pytest.approx(6.0)

    def test_zero_terms(self):
        assert geometric_series(0.5, 0) == 0


class TestCouplingResidual:
    @given(windows, nodes, stages)
    @settings(max_examples=60, deadline=None)
    def test_zero_at_production_fixed_point(self, window, n, max_stage):
        solution = solve_symmetric(float(window), n, max_stage)
        residual = coupling_residual(
            solution.tau, float(window), n, max_stage
        )
        # R is scaled by ~(1 + W); the fixed point solves tau to ~1e-12.
        assert abs(residual) <= 1e-8 * (2.0 + window)

    @given(taus, windows, nodes, stages)
    @settings(max_examples=60, deadline=None)
    def test_matches_markov_inversion(self, tau, window, n, max_stage):
        """R(tau, W) = 0 iff tau equals the Markov-chain attempt rate."""
        p = collision_from_tau(tau, n)
        # At large n and tau the float p rounds to exactly 1, which the
        # production validator rejects; the identity needs p in [0, 1).
        assume(p < 1.0)
        tau_markov = transmission_probability(float(window), p, max_stage)
        residual = coupling_residual(tau, float(window), n, max_stage)
        # tau (2 / tau_markov) - 2 == R by construction.
        assert residual == pytest.approx(
            2.0 * tau / tau_markov - 2.0, rel=1e-9, abs=1e-9
        )


class TestQStationarity:
    @given(taus, nodes)
    @settings(max_examples=60, deadline=None)
    def test_matches_production_q(self, tau, n):
        times = slot_times(default_parameters(), AccessMode.BASIC)
        expected = q_function(tau, n, times)
        actual = q_stationarity(tau, n, times.idle_us, times.collision_us)
        scale = times.idle_us + times.collision_us
        assert abs(actual - expected) <= 1e-9 * scale


class TestSlotAndUtility:
    @given(taus, nodes)
    @settings(max_examples=60, deadline=None)
    def test_utility_matches_num_over_slot(self, tau, n):
        params = default_parameters()
        times = slot_times(params, AccessMode.BASIC)
        num = utility_numerator(
            tau, n, params.gain, params.cost, ignore_cost=False
        )
        slot = slot_length(
            tau, n, times.idle_us, times.success_us, times.collision_us
        )
        expected = symmetric_utility_from_tau(
            tau, n, params, times, ignore_cost=False
        )
        assert num / slot == pytest.approx(expected, rel=1e-9, abs=1e-12)

    @given(taus, taus, nodes)
    @settings(max_examples=60, deadline=None)
    def test_cross_difference_sign_matches_utility_order(self, a, b, n):
        params = default_parameters()
        times = slot_times(params, AccessMode.RTS_CTS)
        u_a = symmetric_utility_from_tau(a, n, params, times, ignore_cost=True)
        u_b = symmetric_utility_from_tau(b, n, params, times, ignore_cost=True)
        cross = utility_cross_difference(
            a,
            b,
            n,
            times.idle_us,
            times.success_us,
            times.collision_us,
            params.gain,
            params.cost,
            ignore_cost=True,
        )
        if abs(u_a - u_b) > 1e-12:
            assert math.copysign(1.0, cross) == math.copysign(1.0, u_a - u_b)

    @given(taus, nodes)
    @settings(max_examples=60, deadline=None)
    def test_margin_matches_collision_complement(self, tau, n):
        params = default_parameters()
        margin = success_margin(tau, n, params.gain, params.cost)
        expected = (
            1.0 - collision_from_tau(tau, n)
        ) * params.gain - params.cost
        assert margin == pytest.approx(expected, rel=1e-12, abs=1e-12)


class TestPerturbationHook:
    def test_clean_by_default(self):
        assert perturbation("cost") == 0
        assert perturbation("anything-else") == 0

    def test_perturbed_shifts_and_restores(self):
        margin_clean = success_margin(0.1, 5, 1.0, 0.01)
        with perturbed(cost=1e-3):
            assert perturbation("cost") == pytest.approx(1e-3)
            margin_bugged = success_margin(0.1, 5, 1.0, 0.01)
            assert margin_bugged == pytest.approx(margin_clean - 1e-3)
        assert perturbation("cost") == 0
        assert success_margin(0.1, 5, 1.0, 0.01) == pytest.approx(margin_clean)

    def test_perturbed_restores_on_error(self):
        with pytest.raises(RuntimeError, match="boom"):
            with perturbed(cost=5.0):
                raise RuntimeError("boom")
        assert perturbation("cost") == 0

    def test_nested_perturbations(self):
        with perturbed(cost=1.0):
            with perturbed(cost=2.0):
                assert perturbation("cost") == 2
            assert perturbation("cost") == 1
        assert perturbation("cost") == 0
