"""Unit tests for the verification parameter boxes."""

from __future__ import annotations

import dataclasses

import pytest

from repro.errors import VerificationError
from repro.phy.parameters import AccessMode, default_parameters
from repro.phy.timing import slot_times
from repro.verify.boxes import BOX_NAMES, ParameterBox, builtin_boxes, get_box


def small_box(**overrides):
    base = dict(
        name="test-box",
        mode="basic",
        n_lo=2,
        n_hi=5,
        m=5,
        w_lo=2.0,
        w_hi=64.0,
        gain_lo=1.0,
        gain_hi=1.0,
        cost_lo=0.01,
        cost_hi=0.01,
        sigma_lo=50.0,
        sigma_hi=50.0,
        ts_lo=8980.0,
        ts_hi=8980.0,
        tc_lo=8612.0,
        tc_hi=8612.0,
    )
    base.update(overrides)
    return ParameterBox(**base)


class TestValidation:
    def test_valid_box_constructs(self):
        assert small_box().name == "test-box"

    def test_bad_mode_rejected(self):
        with pytest.raises(VerificationError, match="mode"):
            small_box(mode="tdma")

    def test_single_node_rejected(self):
        with pytest.raises(VerificationError, match="n_lo"):
            small_box(n_lo=1)

    def test_empty_range_rejected(self):
        with pytest.raises(VerificationError, match="empty"):
            small_box(w_lo=64.0, w_hi=2.0)

    def test_cost_must_stay_below_gain(self):
        with pytest.raises(VerificationError, match="e < g"):
            small_box(cost_lo=0.5, cost_hi=1.5, gain_lo=1.0, gain_hi=1.0)

    def test_nonpositive_timing_rejected(self):
        with pytest.raises(VerificationError, match="positive"):
            small_box(sigma_lo=0.0, sigma_hi=0.0)

    def test_window_below_one_rejected(self):
        with pytest.raises(VerificationError, match="window"):
            small_box(w_lo=0.5)


class TestAccessors:
    def test_interval_accessor(self):
        box = small_box()
        w = box.interval("w")
        assert w.lo == 2 and w.hi == 64
        assert box.interval("sigma").is_point

    def test_unknown_dimension_rejected(self):
        with pytest.raises(VerificationError, match="dimension"):
            small_box().interval("n")

    def test_n_values_small_span_is_exhaustive(self):
        assert small_box().n_values() == (2, 3, 4, 5)

    def test_n_values_wide_span_keeps_endpoints(self):
        box = small_box(n_lo=5, n_hi=50)
        values = box.n_values(max_values=5)
        assert values[0] == 5 and values[-1] == 50
        assert len(values) <= 5
        assert list(values) == sorted(set(values))

    def test_slot_times_at_materialises_mode(self):
        times = small_box().slot_times_at(50.0, 8980.0, 8612.0)
        assert times.idle_us == 50
        assert times.mode is AccessMode.BASIC

    def test_vertices_cover_corners(self):
        box = small_box()
        points = box.vertices()
        # Non-degenerate dims: n (2 ends) x w (2 ends) -> 4 corners.
        assert len(points) == 4
        ns = {point["n"] for point in points}
        ws = {point["w"] for point in points}
        assert ns == {2.0, 5.0}
        assert ws == {2.0, 64.0}
        for point in points:
            assert set(point) == {
                "n", "m", "w", "gain", "cost", "sigma", "ts", "tc"
            }

    def test_vertices_subsampled_deterministically(self):
        box = get_box("tableII")
        first = box.vertices(max_vertices=8)
        second = box.vertices(max_vertices=8)
        assert first == second
        assert len(first) == 8


class TestRoundTrip:
    @pytest.mark.parametrize("name", BOX_NAMES)
    def test_builtin_round_trips(self, name):
        box = get_box(name)
        assert ParameterBox.from_dict(box.to_dict()) == box

    def test_missing_key_rejected(self):
        document = small_box().to_dict()
        del document["tc_hi"]
        with pytest.raises(VerificationError, match="missing"):
            ParameterBox.from_dict(document)

    def test_unknown_key_rejected(self):
        document = small_box().to_dict()
        document["surprise"] = 1.0
        with pytest.raises(VerificationError, match="unknown"):
            ParameterBox.from_dict(document)


class TestBuiltins:
    def test_names_match_registry(self):
        assert set(BOX_NAMES) == set(builtin_boxes())

    def test_unknown_box_rejected(self):
        with pytest.raises(VerificationError, match="unknown box"):
            get_box("tableXLII")

    def test_small_boxes_pin_table_one_timing(self):
        """The -small presets embed the production slot-time derivation."""
        for name, mode in (
            ("tableII-small", AccessMode.BASIC),
            ("tableIII-small", AccessMode.RTS_CTS),
        ):
            box = get_box(name)
            times = slot_times(default_parameters(), mode)
            assert box.sigma_lo == box.sigma_hi == times.idle_us
            assert box.ts_lo == box.ts_hi == times.success_us
            assert box.tc_lo == box.tc_hi == times.collision_us

    def test_boxes_are_frozen(self):
        box = get_box("tableII-small")
        with pytest.raises(dataclasses.FrozenInstanceError):
            box.n_lo = 3  # type: ignore[misc]
