"""Unit tests for the outward-rounded interval/dual arithmetic."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import VerificationError
from repro.verify.interval import (
    Dual,
    Interval,
    _down,
    _up,
    prove_sign_on_box,
)

finite = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)


def make_interval(a: float, b: float) -> Interval:
    return Interval(min(a, b), max(a, b))


class TestIntervalConstruction:
    def test_ordering_enforced(self):
        with pytest.raises(VerificationError):
            Interval(2.0, 1.0)

    def test_nan_rejected(self):
        with pytest.raises(VerificationError):
            Interval(float("nan"), 1.0)

    def test_point_and_width(self):
        point = Interval.point(3.0)
        assert point.is_point
        assert point.width == 0
        assert 3.0 in point

    def test_hull(self):
        hull = Interval.hull(2.0, 0.0, 3.0)
        assert hull.lo == 0 and hull.hi == 3

    def test_hull_of_nothing_rejected(self):
        with pytest.raises(VerificationError):
            Interval.hull()

    def test_coerce_rejects_non_numbers(self):
        with pytest.raises(VerificationError):
            Interval.point(1.0) + "nope"  # type: ignore[operator]


class TestOutwardRounding:
    """Every operation must contain the exact real result."""

    @given(finite, finite, finite, finite)
    @settings(max_examples=200, deadline=None)
    def test_add_mul_sub_containment(self, a, b, c, d):
        x = make_interval(a, b)
        y = make_interval(c, d)
        for px in (x.lo, x.midpoint, x.hi):
            for py in (y.lo, y.midpoint, y.hi):
                assert px + py in x + y
                assert px * py in x * y
                assert px - py in x - y

    @given(finite, finite, st.integers(min_value=0, max_value=6))
    @settings(max_examples=200, deadline=None)
    def test_pow_containment(self, a, b, exponent):
        x = make_interval(a, b)
        for px in (x.lo, x.midpoint, x.hi):
            assert px**exponent in x**exponent

    def test_even_power_of_straddling_interval_is_nonnegative(self):
        squared = Interval(-2.0, 3.0) ** 2
        assert squared.lo >= 0.0
        assert 0.0 in squared
        assert 9.0 in squared

    def test_division_by_zero_crossing_raises(self):
        with pytest.raises(VerificationError):
            Interval(1.0, 2.0) / Interval(-1.0, 1.0)

    def test_division_containment(self):
        quotient = Interval(1.0, 2.0) / Interval(4.0, 8.0)
        assert 1.0 / 4.0 in quotient
        assert 2.0 / 4.0 in quotient
        assert 1.0 / 8.0 in quotient

    def test_scalar_mixing(self):
        x = Interval(1.0, 2.0)
        assert 3.0 in 1.0 + x * 1.0
        difference = 2.0 - x
        assert difference.lo <= 0.0 <= difference.hi

    def test_ulp_directions(self):
        assert _down(1.0) < 1.0 < _up(1.0)
        assert _down(-1.0) < -1.0 < _up(-1.0)


class TestDual:
    def test_variable_derivative_is_one(self):
        x = Dual.variable(Interval.point(2.0))
        assert 1.0 in x.der
        assert 2.0 in x.val

    def test_constant_derivative_is_zero(self):
        c = Dual.constant(Interval.point(5.0))
        assert c.der.is_point and c.der.lo == 0

    def test_product_rule(self):
        # d/dx [x (x + 3)] = 2x + 3 -> 7 at x = 2.
        x = Dual.variable(Interval.point(2.0))
        y = x * (x + 3.0)
        assert 10.0 in y.val
        assert 7.0 in y.der

    def test_power_rule(self):
        # d/dx [x^3] = 3 x^2 -> 12 at x = 2.
        x = Dual.variable(Interval.point(2.0))
        y = x**3
        assert 8.0 in y.val
        assert 12.0 in y.der

    def test_float_payload(self):
        # d/dx [(1 - x)^2] = -2 (1 - x) -> 2 at x = 2.
        x = Dual.variable(2.0)
        y = (1.0 - x) ** 2
        assert y.val == pytest.approx(1.0)
        assert y.der == pytest.approx(2.0)

    def test_zeroth_power_is_constant_one(self):
        x = Dual.variable(3.0)
        y = x**0
        assert y.val == pytest.approx(1.0)
        assert y.der == pytest.approx(0.0)


class TestProveSignOnBox:
    def test_proves_positive_polynomial(self):
        proof = prove_sign_on_box(
            lambda dims: dims["x"] * dims["x"] + 1.0,
            {"x": Interval(-2.0, 2.0)},
            positive=True,
        )
        assert proof.status == "proved"
        assert proof.boxes_proved >= 1
        assert proof.counterexample is None

    def test_finds_counterexample(self):
        proof = prove_sign_on_box(
            lambda dims: dims["x"] - 1.0,
            {"x": Interval(0.0, 2.0)},
            positive=True,
        )
        assert proof.status == "counterexample"
        assert proof.counterexample is not None
        assert proof.counterexample["x"] <= 1.0
        assert proof.witness_value is not None
        assert proof.witness_value <= 0.0

    def test_budget_exhaustion_is_unknown(self):
        # x - x + 1 is identically 1, but the naive enclosure keeps the
        # full dependency width, so a tiny budget cannot decide the sign
        # - and no midpoint probe witnesses a violation.  The prover
        # must answer "unknown", never mislabel.
        proof = prove_sign_on_box(
            lambda dims: dims["x"] - dims["x"] + 1.0,
            {"x": Interval(-1e6, 1e6)},
            positive=True,
            max_boxes=64,
        )
        assert proof.status == "unknown"
        assert proof.boxes_unknown >= 1

    def test_multidimensional_proof(self):
        proof = prove_sign_on_box(
            lambda dims: dims["x"] + dims["y"] + 3.0,
            {"x": Interval(-1.0, 1.0), "y": Interval(-1.0, 1.0)},
            positive=True,
        )
        assert proof.status == "proved"

    def test_negative_sign_direction(self):
        proof = prove_sign_on_box(
            lambda dims: -(dims["x"] * dims["x"]) - 0.5,
            {"x": Interval(-1.0, 1.0)},
            positive=False,
        )
        assert proof.status == "proved"

    def test_empty_box_rejected(self):
        with pytest.raises(VerificationError):
            prove_sign_on_box(lambda dims: Interval.point(1.0), {}, positive=True)

    def test_deterministic(self):
        def f(dims):
            return dims["x"] * dims["x"] - 0.25

        box = {"x": Interval(0.6, 2.0)}
        first = prove_sign_on_box(f, box, positive=True)
        second = prove_sign_on_box(f, box, positive=True)
        assert first == second
