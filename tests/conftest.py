"""Shared fixtures for the repro test suite."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, settings

from repro.game.definition import MACGame
from repro.phy.parameters import AccessMode, PhyParameters, default_parameters
from repro.phy.timing import slot_times

# Property tests solve fixed points inside; keep examples moderate and do
# not time-limit individual examples (CI machines vary).
settings.register_profile(
    "repro",
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("repro")


def pytest_addoption(parser):
    """Add ``--update-golden`` (regenerate the golden snapshots)."""
    parser.addoption(
        "--update-golden",
        action="store_true",
        default=False,
        help="rewrite tests/golden/snapshots/*.json from the current code",
    )


@pytest.fixture(autouse=True)
def _isolated_result_store(tmp_path, monkeypatch):
    """Point the content-addressed store at a per-test directory.

    ``repro-experiments run`` (and anything else using
    ``ResultStore.default()``) would otherwise write ``./.repro-store``
    into the working tree during the suite.
    """
    monkeypatch.setenv("REPRO_STORE_DIR", str(tmp_path / "repro-store"))


@pytest.fixture(scope="session")
def params() -> PhyParameters:
    """The paper's Table I parameters."""
    return default_parameters()


@pytest.fixture(scope="session")
def basic_times(params):
    """Slot times for basic access."""
    return slot_times(params, AccessMode.BASIC)


@pytest.fixture(scope="session")
def rts_times(params):
    """Slot times for RTS/CTS access."""
    return slot_times(params, AccessMode.RTS_CTS)


@pytest.fixture(scope="session")
def small_game(params) -> MACGame:
    """A 4-player basic-access game (cheap to solve repeatedly)."""
    return MACGame(n_players=4, params=params, mode=AccessMode.BASIC)


@pytest.fixture(scope="session")
def rts_game(params) -> MACGame:
    """A 5-player RTS/CTS game."""
    return MACGame(n_players=5, params=params, mode=AccessMode.RTS_CTS)


@pytest.fixture()
def rng() -> np.random.Generator:
    """A deterministic per-test random generator."""
    return np.random.default_rng(12345)
