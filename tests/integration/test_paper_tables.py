"""Integration: Tables II and III against the paper's bands.

We do not demand the paper's absolute numbers (their NS-2 testbed and an
unstated max backoff stage differ from our substrate) but the *shape*
must hold: monotone growth with ``n``, RTS/CTS windows several times
smaller, simulated per-node optima on the analytic plateau.
"""

from __future__ import annotations

import pytest

from repro.experiments import table2, table3
from repro.experiments.table2 import PAPER_BASIC
from repro.experiments.table3 import PAPER_RTS
from repro.game.equilibrium import efficient_window
from repro.phy.parameters import AccessMode


class TestAnalyticColumns:
    def test_basic_matches_paper_within_five_percent(self, params, basic_times):
        for n, paper in PAPER_BASIC.items():
            ours = efficient_window(n, params, basic_times)
            assert ours == pytest.approx(paper, rel=0.05)

    def test_rts_shape(self, params, rts_times):
        ours = {n: efficient_window(n, params, rts_times) for n in PAPER_RTS}
        # Monotone in n.
        assert ours[5] < ours[20] < ours[50]
        # n=20 exact, n=50 within 5%; n=5 sits on an extremely flat
        # plateau (see EXPERIMENTS.md) - only demand the right magnitude.
        assert ours[20] == PAPER_RTS[20]
        assert ours[50] == pytest.approx(PAPER_RTS[50], rel=0.05)
        assert 0.4 * PAPER_RTS[5] < ours[5] < 1.6 * PAPER_RTS[5]

    def test_rts_several_times_smaller_than_basic(
        self, params, basic_times, rts_times
    ):
        for n in (5, 20, 50):
            basic = efficient_window(n, params, basic_times)
            rts = efficient_window(n, params, rts_times)
            assert 4 < basic / rts < 12


class TestSimulatedColumns:
    @pytest.mark.parametrize("module,mode", [
        (table2, AccessMode.BASIC),
        (table3, AccessMode.RTS_CTS),
    ])
    def test_simulated_mean_on_plateau(self, params, module, mode):
        result = module.run(
            params=params, sizes=(5,), slots_per_point=100_000
        )
        row = result.rows[0]
        # The plateau is wide; the mean of per-node optima must land
        # within the +-40% grid around the analytic value and well away
        # from its edges on average.
        assert row.simulated_mean == pytest.approx(
            row.analytic_window, rel=0.35
        )
        assert row.simulated_variance >= 0

    def test_render_includes_paper_column(self, params):
        result = table2.run(params=params, sizes=(5,), slots_per_point=30_000)
        assert "paper" in result.render()
        assert str(PAPER_BASIC[5]) in result.render()
