"""Integration: registry-driven end-to-end runs and the examples.

Runs every registered experiment at a reduced size and executes each
example script in-process, asserting they complete and produce sane
output.
"""

from __future__ import annotations

import runpy
import sys
from pathlib import Path

import pytest

from repro.experiments import EXPERIMENTS, run_experiment

EXAMPLES_DIR = Path(__file__).resolve().parents[2] / "examples"

SMALL_KWARGS = {
    "table1": {},
    "table2": {"sizes": (3,), "slots_per_point": 15_000},
    "table3": {"sizes": (3,), "slots_per_point": 15_000},
    "fig2": {"sizes": (3,), "n_points": 10},
    "fig3": {"sizes": (3,), "n_points": 10},
    "multihop": {"n_nodes": 25, "n_snapshots": 1},
    "shortsighted": {"n_players": 4, "discounts": (0.1, 0.9999)},
    "malicious": {"n_players": 4},
    "search": {"n_players": 4, "with_simulation": False},
    "convergence": {"n_players": 4, "n_stages": 6},
    "bestresponse": {"n_players": 3, "n_stages": 3},
    "mobility": {"n_nodes": 20, "n_epochs": 3},
    "verify": {"max_boxes": 4000},
    "meanfield": {
        "agreement_populations": (8, 16),
        "scaling_populations": (1e3, 1e5),
        "replicator_steps": 200,
        "screening_nodes": 5_000,
        "screening_slots": 100_000,
    },
}


class TestRegistryEndToEnd:
    @pytest.mark.parametrize("experiment_id", sorted(EXPERIMENTS))
    def test_runs_and_renders(self, experiment_id):
        result = run_experiment(experiment_id, **SMALL_KWARGS[experiment_id])
        text = result.render()
        assert isinstance(text, str)
        assert len(text.splitlines()) >= 2

    def test_small_kwargs_cover_registry(self):
        assert set(SMALL_KWARGS) == set(EXPERIMENTS)


class TestExamples:
    def _run(self, name: str, monkeypatch, capsys) -> str:
        path = EXAMPLES_DIR / name
        assert path.exists(), f"missing example {name}"
        monkeypatch.setattr(sys, "argv", [str(path)])
        runpy.run_path(str(path), run_name="__main__")
        return capsys.readouterr().out

    def test_quickstart(self, monkeypatch, capsys):
        out = self._run("quickstart.py", monkeypatch, capsys)
        assert "Nash equilibrium analysis" in out
        assert "converged at stage" in out

    def test_shortsighted_attack(self, monkeypatch, capsys):
        out = self._run("shortsighted_attack.py", monkeypatch, capsys)
        assert "Deviation gain" in out
        assert "does not pay" in out

    @pytest.mark.slow
    def test_delay_aware_tuning(self, monkeypatch, capsys):
        out = self._run("delay_aware_tuning.py", monkeypatch, capsys)
        assert "delay landscape" in out
        assert "Validation" in out

    def test_rate_control_game(self, monkeypatch, capsys):
        out = self._run("rate_control_game.py", monkeypatch, capsys)
        assert "price of anarchy" in out

    @pytest.mark.slow
    def test_measured_tft(self, monkeypatch, capsys):
        out = self._run("measured_tft.py", monkeypatch, capsys)
        assert "CW estimation" in out
        assert "Generous TFT" in out

    @pytest.mark.slow
    def test_selfish_hotspot(self, monkeypatch, capsys):
        out = self._run("selfish_hotspot.py", monkeypatch, capsys)
        assert "Distributed search" in out

    @pytest.mark.slow
    def test_multihop_field(self, monkeypatch, capsys):
        out = self._run("multihop_field.py", monkeypatch, capsys)
        assert "TFT flood converged" in out

    @pytest.mark.slow
    def test_reproduce_paper_quick_single(self, monkeypatch, capsys):
        path = EXAMPLES_DIR / "reproduce_paper.py"
        monkeypatch.setattr(
            sys, "argv", [str(path), "--quick", "--only", "convergence"]
        )
        with pytest.raises(SystemExit) as info:
            runpy.run_path(str(path), run_name="__main__")
        assert info.value.code == 0
        out = capsys.readouterr().out
        assert "convergence" in out
