"""Integration: the Section VII.B multi-hop study end to end."""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.multihop_quasi import hidden_independence, run
from repro.multihop.topology import random_topology


class TestStudy:
    @pytest.fixture(scope="class")
    def study(self, params):
        return run(
            params=params,
            n_nodes=50,
            n_snapshots=2,
            snapshot_interval_s=60.0,
            seed=3,
        )

    def test_snapshot_count(self, study):
        assert len(study.snapshots) == 2

    def test_quasi_optimality_bands(self, study):
        # Paper: each node keeps >= ~96% of its max local payoff and the
        # global payoff is within ~3% of its max.  Random snapshots vary;
        # demand the conservative shape.
        assert study.worst_node_fraction > 0.85
        assert study.worst_global_fraction > 0.9

    def test_converged_windows_positive(self, study):
        for snapshot in study.snapshots:
            assert snapshot.converged_window >= 1
            assert snapshot.convergence_stages >= 0

    def test_render_mentions_paper_bands(self, study):
        text = study.render()
        assert "0.96" in text
        assert "Section VII.B" in text


class TestSpatialQuasiOptimality:
    def test_converged_window_near_simulated_maximum(self, params):
        from repro.experiments.multihop_quasi import spatial_quasi_optimality
        from repro.multihop.game import MultihopGame

        topology = random_topology(
            30, rng=np.random.default_rng(19), require_connected=True
        )
        game = MultihopGame(topology, params)
        equilibrium = game.solve()
        fraction = spatial_quasi_optimality(
            topology,
            equilibrium.converged_window,
            params=params,
            n_slots=40_000,
        )
        # Simulated payoff at W_m within ~15% of the grid maximum (the
        # RTS/CTS payoff is nearly CW-independent, per the paper; the
        # band absorbs simulation noise).
        assert fraction > 0.85

    def test_grid_must_contain_window(self, params):
        from repro.errors import ParameterError
        from repro.experiments.multihop_quasi import spatial_quasi_optimality

        topology = random_topology(10, rng=np.random.default_rng(20))
        with pytest.raises(ParameterError):
            spatial_quasi_optimality(
                topology, 16, params=params, grid=[8, 32]
            )


class TestHiddenIndependence:
    def test_degradation_insensitive_to_cw(self, params):
        # The Section VI key approximation: 1 - p_hn varies slowly with
        # the common window (for windows that are not too small) while
        # the sender-side collision probability varies sharply.
        topology = random_topology(
            30, rng=np.random.default_rng(41), require_connected=True
        )
        windows = [32, 128]
        degradation = hidden_independence(
            topology, windows, params=params, n_slots=40_000, seed=2
        )
        assert degradation.shape == (2,)
        assert np.all(degradation >= 0)
        assert np.all(degradation <= 1)
        # Slow variation: a 4x window change moves the degradation by
        # far less than proportionally.
        denominator = max(degradation.max(), 1e-9)
        assert (degradation.max() - degradation.min()) / denominator < 0.5
