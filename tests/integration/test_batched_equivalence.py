"""Integration: the batched rewire reproduces the scalar pipeline.

The PR's acceptance bar: every paper artefact that now runs through
`repro.bianchi.batched` - the Table II/III efficient windows, the
Figure 2/3 payoff curves, the Section V.D/V.E sweeps and the Section
VII.B quasi-optimality matrix - must equal a scalar recomputation (or
the seed's frozen outputs) within 1e-9, the documented tolerance of the
batched solver.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments import malicious, shortsighted
from repro.experiments.figure2 import run_mode
from repro.game.definition import MACGame
from repro.game.equilibrium import efficient_window
from repro.game.utility import symmetric_utility_from_tau
from repro.bianchi.fixedpoint import solve_symmetric
from repro.multihop.game import MultihopGame
from repro.multihop.topology import random_topology
from repro.phy.parameters import AccessMode
from repro.phy.timing import slot_times

TOL = 1e-9

#: Seed outputs of Tables II/III (W_c* per network size and access mode),
#: produced by the scalar pipeline before this PR.
SEED_EFFICIENT_WINDOWS = {
    AccessMode.BASIC: {5: 78, 20: 335, 50: 848},
    AccessMode.RTS_CTS: {5: 12, 20: 48, 50: 121},
}


class TestEfficientWindows:
    @pytest.mark.parametrize("mode", list(SEED_EFFICIENT_WINDOWS))
    def test_tables_2_and_3_windows_unchanged(self, params, mode):
        times = slot_times(params, mode)
        for n_nodes, expected in SEED_EFFICIENT_WINDOWS[mode].items():
            assert efficient_window(n_nodes, params, times) == expected


class TestFigureCurves:
    @pytest.mark.parametrize(
        "mode", [AccessMode.BASIC, AccessMode.RTS_CTS]
    )
    def test_curves_match_scalar_recomputation(self, params, mode):
        curves = run_mode(
            mode, params=params, sizes=(5, 20), n_points=12, jobs=1
        )
        times = slot_times(params, mode)
        for n_nodes, curve in curves.curves.items():
            for window, value in zip(curves.windows, curve):
                scalar = solve_symmetric(
                    float(window), n_nodes, params.max_backoff_stage
                )
                utility = symmetric_utility_from_tau(
                    scalar.tau, n_nodes, params, times
                )
                expected = n_nodes * utility * times.idle_us / params.gain
                assert float(value) == pytest.approx(expected, abs=TOL)


class TestSectionVSweeps:
    def test_shortsighted_matches_seed_rows(self, params):
        result = shortsighted.run(params=params, n_players=10)
        seed_rows = {
            0.01: (2, 974.618240007),
            0.3: (2, 957.035096163),
            0.6: (2, 912.016184771),
            0.9: (3, 606.168454876),
            0.99: (151, 4.149169025),
            0.9999: (163, -0.0),
        }
        assert len(result.rows) == len(seed_rows)
        for row in result.rows:
            window, gain = seed_rows[row.discount]
            assert row.best_window == window
            assert row.gain == pytest.approx(gain, abs=1e-6)

    def test_malicious_matches_scalar_recomputation(self, params):
        result = malicious.run(params=params, n_players=10)
        times = slot_times(params, AccessMode.BASIC)
        for row in result.rows:
            scalar = solve_symmetric(
                float(row.attack_window), 10, params.max_backoff_stage
            )
            expected = 10 * symmetric_utility_from_tau(
                scalar.tau, 10, params, times
            )
            assert row.global_payoff == pytest.approx(expected, abs=TOL)


class TestMultihopQuasiOptimality:
    def test_utility_matrix_matches_local_utility_loop(self, params):
        topology = random_topology(
            30, rng=np.random.default_rng(19), require_connected=True
        )
        game = MultihopGame(topology, params)
        equilibrium = game.solve()
        report = game.quasi_optimality(equilibrium)

        grid = report.grid
        utilities = game._utility_matrix(np.asarray(grid, dtype=int))
        for row, window in enumerate(grid):
            for node in range(topology.n_nodes):
                scalar = game.local_utility(node, int(window))
                assert float(utilities[row, node]) == pytest.approx(
                    scalar, abs=TOL
                )
        np.testing.assert_allclose(
            report.global_curve, utilities.sum(axis=1), atol=TOL, rtol=0
        )
