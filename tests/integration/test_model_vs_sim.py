"""Integration: the analytical model against the discrete-event simulator.

These tests are the reproduction's backbone: the simulator is an
independent implementation of the same stochastic process, so agreement
here validates both the fixed-point solver and the utility pipeline the
game analysis is built on.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bianchi.fixedpoint import solve_heterogeneous, solve_symmetric
from repro.bianchi.throughput import normalized_throughput
from repro.game.utility import stage_outcome
from repro.phy.parameters import AccessMode
from repro.phy.timing import slot_times
from repro.sim.engine import DcfSimulator

SLOTS = 250_000


class TestSymmetricAgreement:
    @pytest.mark.parametrize(
        "mode,window,n",
        [
            (AccessMode.BASIC, 78, 5),
            (AccessMode.BASIC, 335, 20),
            (AccessMode.RTS_CTS, 48, 20),
        ],
    )
    def test_tau_and_p(self, params, mode, window, n):
        analytic = solve_symmetric(window, n, params.max_backoff_stage)
        result = DcfSimulator([window] * n, params, mode, seed=21).run(SLOTS)
        assert result.tau.mean() == pytest.approx(analytic.tau, rel=0.03)
        assert result.collision.mean() == pytest.approx(
            analytic.collision, rel=0.08, abs=0.005
        )

    def test_payoff_rate_agreement(self, params):
        window, n = 100, 8
        times = slot_times(params, AccessMode.BASIC)
        outcome = stage_outcome([window] * n, params, times)
        result = DcfSimulator([window] * n, params, seed=22).run(SLOTS)
        assert result.payoff_rates.mean() == pytest.approx(
            float(outcome.utilities[0]), rel=0.05
        )

    def test_bianchi_throughput_agreement(self, params):
        # The classic saturation-throughput validation of Section III.
        window, n = 128, 10
        times = slot_times(params, AccessMode.BASIC)
        analytic = solve_symmetric(window, n, params.max_backoff_stage)
        expected = normalized_throughput(
            [analytic.tau] * n, times, params.payload_time_us
        )
        result = DcfSimulator([window] * n, params, seed=23).run(SLOTS)
        assert result.throughput == pytest.approx(expected, rel=0.03)


class TestHeterogeneousAgreement:
    def test_lemma1_visible_in_simulation(self, params):
        # The payoff ordering of Lemma 1 must hold in the simulator too.
        windows = [32, 128, 512]
        result = DcfSimulator(windows, params, seed=24).run(SLOTS)
        assert (
            result.payoff_rates[0]
            > result.payoff_rates[1]
            > result.payoff_rates[2]
        )
        assert result.tau[0] > result.tau[1] > result.tau[2]
        assert result.collision[0] < result.collision[1] < result.collision[2]

    def test_full_profile_agreement(self, params):
        windows = [40, 80, 160, 320]
        analytic = solve_heterogeneous(windows, params.max_backoff_stage)
        result = DcfSimulator(windows, params, seed=25).run(SLOTS)
        np.testing.assert_allclose(result.tau, analytic.tau, rtol=0.06)
        # The conditional-collision decoupling approximation is exact in
        # the symmetric case but only approximate for strongly
        # heterogeneous windows; allow a wider band here.
        np.testing.assert_allclose(
            result.collision, analytic.collision, rtol=0.2, atol=0.01
        )

    def test_stage_outcome_utilities_match_simulation(self, params):
        windows = [64, 64, 256, 256]
        times = slot_times(params, AccessMode.BASIC)
        outcome = stage_outcome(windows, params, times)
        result = DcfSimulator(windows, params, seed=26).run(SLOTS)
        np.testing.assert_allclose(
            result.payoff_rates, outcome.utilities, rtol=0.08
        )


class TestEfficientNeIsSimulatedOptimum:
    def test_ne_window_beats_neighbours_in_simulation(self, params):
        # Simulated symmetric payoff at W_c* must be at least as good as
        # at windows well off the plateau.
        from repro.game.equilibrium import efficient_window

        n = 5
        times = slot_times(params, AccessMode.BASIC)
        star = efficient_window(n, params, times)

        def simulated_payoff(window):
            sim = DcfSimulator([window] * n, params, seed=27)
            return sim.run(SLOTS).payoff_rates.mean()

        at_star = simulated_payoff(star)
        assert at_star > simulated_payoff(max(2, star // 4))
        assert at_star > simulated_payoff(star * 4)
