"""Integration: Figures 2 and 3 shape checks.

The paper's figures plot the normalised global payoff ``U/C`` against the
common contention window for ``n in {5, 20, 50}``.  The reproduction must
show: unimodal curves peaking on the ``W_c*`` plateau, larger networks
peaking at larger windows, and the RTS/CTS family much flatter and less
sensitive than the basic one.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments import figure2, figure3


@pytest.fixture(scope="module")
def fig2(params):
    return figure2.run(params=params, sizes=(5, 20, 50), n_points=30)


@pytest.fixture(scope="module")
def fig3(params):
    return figure3.run(params=params, sizes=(5, 20, 50), n_points=30)


class TestFigure2:
    def test_unimodal_per_size(self, fig2):
        for values in fig2.curves.values():
            peak = int(np.argmax(values))
            assert np.all(np.diff(values[: peak + 1]) >= -1e-15)
            assert np.all(np.diff(values[peak:]) <= 1e-15)

    def test_peaks_ordered_by_population(self, fig2):
        peaks = [fig2.peak_window(n) for n in (5, 20, 50)]
        assert peaks[0] < peaks[1] < peaks[2]

    def test_peak_payoff_matches_efficient_ne(self, fig2):
        for n in (5, 20, 50):
            star = fig2.optima[n]
            index = int(np.flatnonzero(fig2.windows == star)[0])
            assert fig2.curves[n][index] >= fig2.curves[n].max() * 0.999

    def test_small_window_penalty_grows_with_population(self, fig2):
        # Aggressive windows hurt crowded networks much more.
        def left_fraction(n):
            values = fig2.curves[n]
            return values[0] / values.max()

        assert left_fraction(50) < left_fraction(20) < left_fraction(5)


class TestFigure3:
    def test_unimodal_per_size(self, fig3):
        for values in fig3.curves.values():
            peak = int(np.argmax(values))
            assert np.all(np.diff(values[: peak + 1]) >= -1e-15)
            assert np.all(np.diff(values[peak:]) <= 1e-15)

    def test_rts_peak_windows_smaller(self, fig2, fig3):
        for n in (5, 20, 50):
            assert fig3.optima[n] < fig2.optima[n]

    def test_rts_flatter_on_plateau(self, fig2, fig3):
        # Spread of the top half of the grid relative to the peak.
        def plateau_spread(curves, n):
            values = curves.curves[n]
            top = values[values >= values.max() * 0.95]
            return len(top) / len(values)

        # Many more grid points stay within 5% of the RTS peak.
        assert plateau_spread(fig3, 20) > plateau_spread(fig2, 20)

    def test_global_optimum_near_ne_payoff(self, fig3):
        # "Operating at W_c* also achieves the global social optimality":
        # payoff at the NE is within a hair of the curve maximum.
        for n in (5, 20, 50):
            star = fig3.optima[n]
            index = int(np.flatnonzero(fig3.windows == star)[0])
            assert fig3.curves[n][index] >= fig3.curves[n].max() * 0.995
