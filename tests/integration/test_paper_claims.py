"""Integration: the paper's headline claims, end to end.

Each test replays one claim of the paper through the library's public
API - the "does the reproduction actually reproduce" suite.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    MACGame,
    RepeatedGameEngine,
    ShortSightedStrategy,
    TitForTat,
    analyze_deviation,
    analyze_equilibria,
    refine_equilibria,
    run_search_protocol,
)
from repro.game.lemmas import check_lemma1, check_lemma4
from repro.multihop.game import MultihopGame
from repro.multihop.topology import random_topology
from repro.phy.parameters import AccessMode


class TestTheorem2Family:
    """Every symmetric profile in [W_c0, W_c*] is a NE."""

    def test_no_player_gains_by_unilateral_upward_move(self, small_game):
        analysis = analyze_equilibria(
            small_game.n_players, small_game.params, small_game.times
        )
        # Upward deviation loses immediately (Lemma 4, first case): the
        # deviator is disfavoured in the very stage it deviates.
        for window in (
            analysis.window_breakeven,
            (analysis.window_breakeven + analysis.window_star) // 2,
            analysis.window_star,
        ):
            check = check_lemma4(small_game, window, window * 2)
            assert check.utility_deviant < check.utility_symmetric

    def test_downward_move_punished_by_tft(self, small_game):
        # Downward deviation gains for the reaction lag, then loses
        # forever: for a long-sighted player the discounted total is
        # negative anywhere inside the NE family.
        analysis = analyze_equilibria(
            small_game.n_players, small_game.params, small_game.times
        )
        star = analysis.window_star
        deviation = analyze_deviation(
            small_game,
            max(2, star // 2),
            discount=small_game.discount_factor,
            reference_window=star,
        )
        assert not deviation.profitable


class TestRefinementClaim:
    """Refinement leaves exactly one NE, maximizing local+global payoff."""

    def test_unique_survivor(self, small_game):
        report = refine_equilibria(small_game)
        survivors = [
            window
            for window in report.utilities
            if report.is_pareto_optimal(window)
            and report.maximizes_social_welfare(window)
        ]
        assert survivors == [report.analysis.window_star]


class TestTftFairness:
    """TFT equalises windows, hence payoffs (the fairness property)."""

    def test_payoffs_equal_after_convergence(self, small_game):
        engine = RepeatedGameEngine(
            small_game,
            [TitForTat() for _ in range(4)],
            [60, 90, 120, 240],
        )
        trace = engine.run(5)
        final = trace.records[-1]
        np.testing.assert_allclose(
            final.stage_payoffs, final.stage_payoffs[0], rtol=1e-9
        )


class TestSearchProtocolClaim:
    """The Section V.C protocol approaches the efficient NE."""

    def test_search_result_payoff_matches_optimum(self, small_game):
        analysis = analyze_equilibria(
            small_game.n_players, small_game.params, small_game.times
        )
        outcome = run_search_protocol(
            small_game, max(2, analysis.window_star - 20)
        )
        found = small_game.symmetric_utility(outcome.window)
        best = small_game.symmetric_utility(analysis.window_star)
        assert found >= 0.999 * best

    def test_underreporting_initiator_hurts_itself(self, small_game):
        # Remark of Section V.C: broadcasting W_m < W_c* drags everyone
        # (including the liar) to the lower window and a lower payoff.
        analysis = analyze_equilibria(
            small_game.n_players, small_game.params, small_game.times
        )
        star = analysis.window_star
        lie = max(2, star // 2)
        assert small_game.symmetric_utility(lie) < small_game.symmetric_utility(
            star
        )


class TestShortSightedClaim:
    """Section V.D: deviation pays iff the deviator discounts the future."""

    def test_dichotomy(self, small_game):
        star = analyze_equilibria(
            small_game.n_players, small_game.params, small_game.times
        ).window_star
        aggressive = max(2, star // 8)
        myopic = analyze_deviation(
            small_game, aggressive, discount=0.05, reference_window=star
        )
        patient = analyze_deviation(
            small_game, aggressive, discount=0.9999, reference_window=star
        )
        assert myopic.profitable
        assert not patient.profitable

    def test_deviation_played_out_matches_analysis(self, small_game):
        # The repeated-game engine must produce exactly the stage payoffs
        # the closed-form analysis integrates.
        star = analyze_equilibria(
            small_game.n_players, small_game.params, small_game.times
        ).window_star
        w_s = max(2, star // 8)
        analysis = analyze_deviation(
            small_game, w_s, discount=0.5, reference_window=star
        )
        strategies = [ShortSightedStrategy(w_s)] + [TitForTat()] * 3
        engine = RepeatedGameEngine(small_game, strategies, [star] * 4)
        trace = engine.run(4)
        # Stage 1 = deviator alone on w_s; stage 2+ = converged on w_s.
        assert trace.records[1].stage_payoffs[0] == pytest.approx(
            analysis.stage_payoff_before, rel=1e-9
        )
        assert trace.records[2].stage_payoffs[0] == pytest.approx(
            analysis.stage_payoff_after, rel=1e-9
        )


class TestMaliciousClaim:
    """Section V.E: a malicious minimum drags the whole network down."""

    def test_tft_follows_attacker_and_welfare_drops(self, small_game):
        from repro.game.strategies import MaliciousStrategy

        star = analyze_equilibria(
            small_game.n_players, small_game.params, small_game.times
        ).window_star
        strategies = [MaliciousStrategy(2)] + [TitForTat()] * 3
        engine = RepeatedGameEngine(small_game, strategies, [star] * 4)
        trace = engine.run(4)
        assert trace.final_windows.tolist() == [2.0] * 4
        before = trace.records[0].stage_payoffs.sum()
        after = trace.records[-1].stage_payoffs.sum()
        # 4 players at W=2 still deliver some traffic; the welfare drop
        # deepens with population (see the malicious experiment's sweep).
        assert after < before * 0.8


class TestEmpiricalShortSighted:
    """Section V.D played on the *simulator* with measured windows."""

    def test_deviator_windfall_then_shared_misery(self, params):
        from repro.detect import EmpiricalRepeatedGame

        game = MACGame(n_players=4, params=params)
        star = analyze_equilibria(
            game.n_players, game.params, game.times
        ).window_star
        w_s = max(2, star // 8)
        strategies = [ShortSightedStrategy(w_s)] + [TitForTat()] * 3
        engine = EmpiricalRepeatedGame(
            game,
            strategies,
            [star] * 4,
            slots_per_stage=60_000,
            seed=3,
        )
        trace = engine.run(4)
        # Stage 1: the deviator measured more than the honest players.
        stage1 = trace.stages[1].payoff_rates
        assert stage1[0] > stage1[1:].max() * 2
        # Final stage: everyone (deviator included) below the measured
        # NE-stage payoff.
        stage0 = trace.stages[0].payoff_rates
        final = trace.stages[-1].payoff_rates
        assert final.mean() < stage0.mean()


class TestMultihopClaim:
    """Section VI: converged minimum is a quasi-optimal NE of G'."""

    def test_full_pipeline_on_paper_scale_topology(self, params):
        topology = random_topology(
            60, rng=np.random.default_rng(31), require_connected=True
        )
        game = MultihopGame(topology, params, AccessMode.RTS_CTS)
        equilibrium = game.solve()
        assert equilibrium.converged_window == equilibrium.local.windows.min()
        assert game.check_no_profitable_deviation(equilibrium)
        report = game.quasi_optimality(equilibrium)
        assert report.worst_node_fraction > 0.85
        assert report.global_fraction > 0.9
