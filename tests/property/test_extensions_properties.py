"""Property-based tests for the delay, detection and rate-control layers."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bianchi.delay import (
    access_delay_jitter,
    expected_access_delay,
    mean_backoff_slots,
)
from repro.bianchi.markov import transmission_probability
from repro.detect.estimator import estimate_window
from repro.game.rate_control import RateControlGame, RateOption
from repro.phy.parameters import AccessMode, default_parameters
from repro.phy.timing import slot_times

PARAMS = default_parameters()
TIMES = slot_times(PARAMS, AccessMode.BASIC)

windows = st.integers(min_value=1, max_value=2048)
populations = st.integers(min_value=1, max_value=40)
probabilities = st.floats(min_value=0.0, max_value=0.97)


class TestDelayProperties:
    @given(windows, probabilities, st.integers(min_value=0, max_value=7))
    def test_backoff_slots_nonnegative(self, window, p, m):
        assert mean_backoff_slots(window, p, m) >= 0

    @given(windows, populations)
    def test_delay_positive_and_above_success_time(self, window, n):
        delay = expected_access_delay(window, n, PARAMS, TIMES)
        assert delay.delay_us >= TIMES.success_us
        assert delay.mean_attempts >= 1.0
        assert delay.countdown_slot_us >= TIMES.idle_us

    @given(windows, populations)
    def test_jitter_nonnegative(self, window, n):
        assert access_delay_jitter(window, n, PARAMS, TIMES) >= 0

    @given(windows, st.integers(min_value=1, max_value=20))
    def test_delay_monotone_in_population(self, window, n):
        smaller = expected_access_delay(window, n, PARAMS, TIMES).delay_us
        larger = expected_access_delay(
            window, n + 5, PARAMS, TIMES
        ).delay_us
        assert larger > smaller - 1e-9


class TestEstimatorProperties:
    @given(
        st.integers(min_value=1, max_value=4096),
        probabilities,
        st.integers(min_value=0, max_value=7),
    )
    def test_roundtrip_through_equation_two(self, window, p, m):
        tau = transmission_probability(window, p, m)
        recovered = estimate_window(tau, p, m)
        assert recovered == pytest.approx(window, rel=1e-9)

    @given(
        st.floats(min_value=1e-4, max_value=1.0),
        probabilities,
        st.integers(min_value=0, max_value=7),
    )
    def test_estimate_positive(self, tau, p, m):
        assert estimate_window(tau, p, m) >= 0


def ladders():
    """Random strictly-faster-but-lossier rate ladders."""
    return st.lists(
        st.tuples(
            st.floats(min_value=0.5e6, max_value=54e6),
            st.floats(min_value=0.3, max_value=1.0),
        ),
        min_size=2,
        max_size=5,
    ).map(
        lambda pairs: [
            RateOption(rate, quality)
            for rate, quality in sorted(
                {(round(r, -3), round(q, 3)) for r, q in pairs}
            )
        ]
    ).filter(lambda options: len(options) >= 2)


class TestRateControlProperties:
    @given(ladders(), st.integers(min_value=2, max_value=8))
    @settings(max_examples=15)
    def test_best_response_dynamics_terminate_on_nash(self, options, n):
        game = RateControlGame(n, PARAMS, 128, options=options)
        equilibrium = game.solve()
        assert game.is_nash(equilibrium.nash_profile)

    @given(ladders(), st.integers(min_value=2, max_value=8))
    @settings(max_examples=15)
    def test_welfare_at_social_profile_is_maximal_symmetric(
        self, options, n
    ):
        game = RateControlGame(n, PARAMS, 128, options=options)
        equilibrium = game.solve()
        for candidate in range(len(options)):
            assert equilibrium.social_welfare >= game.welfare(
                [candidate] * n
            ) - 1e-18

    @given(ladders(), st.integers(min_value=2, max_value=6))
    @settings(max_examples=15)
    def test_slot_time_monotone_in_any_players_airtime(self, options, n):
        game = RateControlGame(n, PARAMS, 128, options=options)
        airtimes = np.array(game._success_us)
        slowest = int(np.argmax(airtimes))
        fastest = int(np.argmin(airtimes))
        base = game.expected_slot_us([fastest] * n)
        slowed = game.expected_slot_us([slowest] + [fastest] * (n - 1))
        assert slowed >= base - 1e-9
