"""Property tests for the observability layer.

Pins the three contracts the tentpole design leans on:

* span streams obey strict stack discipline whatever the body raises
  (:func:`repro.obs.validate_span_events`);
* profile counter aggregation is associative and commutative, so worker
  batches merge to the same profile in any grouping or order;
* JSONL round-trips events losslessly.
"""

from __future__ import annotations

import math

from hypothesis import given
from hypothesis import strategies as st

from repro import obs
from repro.obs.profile import build_profile, profile_digest

# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------
_label_keys = st.sampled_from(["kind", "method", "engine", "outcome"])
_label_values = st.sampled_from(
    ["a", "b", "anderson", "newton", "hit", "miss", "reference"]
)
_labels = st.dictionaries(_label_keys, _label_values, max_size=2)
_metric_names = st.sampled_from(
    ["bianchi.solves", "sim.slots", "store.cache", "parallel.tasks"]
)
_finite_floats = st.floats(
    allow_nan=False, allow_infinity=False, min_value=-1e9, max_value=1e9
)
_counter_events = st.builds(
    lambda name, labels, value: {
        "type": "counter",
        "name": name,
        "labels": labels,
        "value": value,
    },
    _metric_names,
    _labels,
    st.integers(min_value=0, max_value=10**6) | _finite_floats,
)

_json_scalars = (
    st.none()
    | st.booleans()
    | st.integers(min_value=-(10**12), max_value=10**12)
    | _finite_floats
    | st.text(max_size=20)
)
_events = st.dictionaries(
    st.text(
        alphabet="abcdefghijklmnopqrstuvwxyz_.", min_size=1, max_size=12
    ),
    _json_scalars
    | st.lists(_json_scalars, max_size=4)
    | st.dictionaries(st.text(max_size=6), _json_scalars, max_size=3),
    max_size=6,
)


# ----------------------------------------------------------------------
# Span nesting
# ----------------------------------------------------------------------
class _Boom(Exception):
    pass


@given(
    plan=st.recursive(
        st.booleans(),  # leaf: True = raise inside this span
        lambda children: st.lists(children, min_size=1, max_size=3),
        max_leaves=12,
    )
)
def test_span_stream_well_formed_under_exceptions(plan) -> None:
    """Arbitrary nesting with exceptions still yields a well-formed stream."""
    recorder = obs.MemoryRecorder()

    def execute(node, depth: int) -> None:
        with obs.span(f"level{depth}"):
            if node is True:
                raise _Boom()
            if isinstance(node, list):
                for child in node:
                    try:
                        execute(child, depth + 1)
                    except _Boom:
                        pass

    with obs.use_recorder(recorder):
        try:
            execute(plan, 0)
        except _Boom:
            pass

    obs.validate_span_events(recorder.events)
    starts = [e for e in recorder.events if e["type"] == "span_start"]
    ends = [e for e in recorder.events if e["type"] == "span_end"]
    assert len(starts) == len(ends)


@given(plan=st.lists(st.booleans(), min_size=1, max_size=6))
def test_error_status_marks_exactly_the_raising_spans(plan) -> None:
    recorder = obs.MemoryRecorder()
    with obs.use_recorder(recorder):
        for should_raise in plan:
            try:
                with obs.span("op"):
                    if should_raise:
                        raise _Boom()
            except _Boom:
                pass
    ends = [e for e in recorder.events if e["type"] == "span_end"]
    assert [e["status"] == "error" for e in ends] == plan


# ----------------------------------------------------------------------
# Counter merge algebra
# ----------------------------------------------------------------------
def _counters_of(events):
    return build_profile(events)["counters"]


@given(
    events=st.lists(_counter_events, max_size=30),
    data=st.data(),
)
def test_counter_aggregation_is_order_invariant(events, data) -> None:
    """Any permutation of the event stream folds to the same counters."""
    shuffled = data.draw(st.permutations(events))
    a = _counters_of(events)
    b = _counters_of(shuffled)
    assert set(a) == set(b)
    for key in a:
        assert math.isclose(a[key], b[key], rel_tol=1e-12, abs_tol=1e-9)


@given(
    batch_a=st.lists(_counter_events, max_size=15),
    batch_b=st.lists(_counter_events, max_size=15),
    batch_c=st.lists(_counter_events, max_size=15),
)
def test_counter_merge_associative_commutative(batch_a, batch_b, batch_c) -> None:
    """Worker batches merge identically in any grouping or order.

    Integer-valued counters (what the instrumented code records) merge
    *exactly*, so the profile digest is grouping-invariant too.
    """
    int_only = [
        e
        for e in batch_a + batch_b + batch_c
        if isinstance(e["value"], int)
    ]
    left = _counters_of(int_only)
    # Regroup: c + b + a, concatenated differently.
    regrouped = (
        [e for e in batch_c if isinstance(e["value"], int)]
        + [e for e in batch_b if isinstance(e["value"], int)]
        + [e for e in batch_a if isinstance(e["value"], int)]
    )
    right = _counters_of(regrouped)
    assert left == right
    assert profile_digest(build_profile(int_only)) == profile_digest(
        build_profile(regrouped)
    )


@given(batches=st.lists(st.lists(_counter_events, max_size=8), max_size=5))
def test_ingest_preserves_counter_totals(batches) -> None:
    """Merging worker batches via MemoryRecorder.ingest loses no counts."""
    parent = obs.MemoryRecorder()
    for batch in batches:
        parent.ingest(batch)
    direct = _counters_of([event for batch in batches for event in batch])
    merged = _counters_of(parent.events)
    assert set(direct) == set(merged)
    for key in direct:
        assert math.isclose(
            direct[key], merged[key], rel_tol=1e-12, abs_tol=1e-9
        )


# ----------------------------------------------------------------------
# JSONL round-trip
# ----------------------------------------------------------------------
@given(events=st.lists(_events, max_size=20))
def test_jsonl_roundtrip_lossless(events) -> None:
    text = obs.events_to_jsonl(events)
    assert obs.jsonl_to_events(text) == events


@given(events=st.lists(_events, max_size=10))
def test_jsonl_serialisation_canonical(events) -> None:
    """Identical events always serialise to identical lines."""
    assert obs.events_to_jsonl(events) == obs.events_to_jsonl(
        [dict(e) for e in events]
    )
