"""Property-based equivalence of the batched solver vs the scalar one.

The batched Anderson solver (`repro.bianchi.batched`) is the production
path; `solve_heterogeneous_reference` is the original damped scalar
iteration kept as a reference.  These tests pin the ISSUE's acceptance
tolerance: on randomized window vectors the two must agree to within
1e-9 in max absolute tau difference, in both access-mode regimes
(max_stage varies the backoff ladder, not the access mode per se, but it
is the knob the modes differ on).
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bianchi.batched import solve_heterogeneous_batch, solve_symmetric_grid
from repro.bianchi.fixedpoint import (
    solve_heterogeneous,
    solve_heterogeneous_reference,
    solve_symmetric,
)

TOL = 1e-9

window_vectors = st.lists(
    st.integers(min_value=2, max_value=1024), min_size=2, max_size=50
)
stages = st.sampled_from([0, 3, 5, 7])


class TestBatchedMatchesReference:
    @given(window_vectors, stages)
    @settings(max_examples=25, deadline=None)
    def test_batched_matches_scalar_reference(self, windows, max_stage):
        reference = solve_heterogeneous_reference(windows, max_stage)
        batch = solve_heterogeneous_batch(
            np.asarray(windows, dtype=float)[None, :], max_stage
        )
        assert float(np.max(np.abs(batch.tau[0] - reference.tau))) <= TOL
        assert (
            float(np.max(np.abs(batch.collision[0] - reference.collision)))
            <= TOL
        )

    @given(window_vectors, stages)
    @settings(max_examples=25, deadline=None)
    def test_wrapper_matches_reference(self, windows, max_stage):
        reference = solve_heterogeneous_reference(windows, max_stage)
        wrapped = solve_heterogeneous(windows, max_stage)
        assert float(np.max(np.abs(wrapped.tau - reference.tau))) <= TOL

    @given(
        st.lists(
            st.lists(
                st.integers(min_value=2, max_value=1024),
                min_size=4,
                max_size=4,
            ),
            min_size=1,
            max_size=16,
        ),
        stages,
    )
    @settings(max_examples=15, deadline=None)
    def test_batch_rows_are_independent(self, rows, max_stage):
        # Solving B instances at once must equal solving each alone.
        windows = np.asarray(rows, dtype=float)
        batch = solve_heterogeneous_batch(windows, max_stage)
        for index, row in enumerate(rows):
            alone = solve_heterogeneous_batch(
                np.asarray(row, dtype=float)[None, :], max_stage
            )
            assert (
                float(np.max(np.abs(batch.tau[index] - alone.tau[0]))) <= TOL
            )


class TestSymmetricGrid:
    @given(
        st.lists(st.integers(min_value=2, max_value=1024), min_size=1, max_size=24),
        st.integers(min_value=2, max_value=50),
        stages,
    )
    @settings(max_examples=25, deadline=None)
    def test_grid_matches_scalar_symmetric(self, windows, n_nodes, max_stage):
        grid = solve_symmetric_grid(
            np.asarray(sorted(set(windows)), dtype=float), n_nodes, max_stage
        )
        for index, window in enumerate(sorted(set(windows))):
            scalar = solve_symmetric(float(window), n_nodes, max_stage)
            assert abs(float(grid.tau[index]) - scalar.tau) <= TOL
            assert abs(float(grid.collision[index]) - scalar.collision) <= TOL


class TestEdgeCases:
    @given(st.integers(min_value=2, max_value=4096), stages)
    @settings(max_examples=25, deadline=None)
    def test_single_node_has_no_collisions(self, window, max_stage):
        batch = solve_heterogeneous_batch(
            np.asarray([[float(window)]]), max_stage
        )
        # The n=1 shortcut is an exact closed form, not an iterate.
        assert float(batch.collision[0, 0]) == 0.0  # repro: noqa=REPRO003
        assert abs(float(batch.tau[0, 0]) - 2.0 / (1.0 + window)) <= TOL

    @given(
        st.integers(min_value=2, max_value=1024),
        st.integers(min_value=2, max_value=50),
        stages,
    )
    @settings(max_examples=25, deadline=None)
    def test_identical_windows_reduce_to_symmetric(
        self, window, n_nodes, max_stage
    ):
        batch = solve_heterogeneous_batch(
            np.full((1, n_nodes), float(window)), max_stage
        )
        scalar = solve_symmetric(float(window), n_nodes, max_stage)
        assert float(np.max(np.abs(batch.tau[0] - scalar.tau))) <= 1e-8
        spread = float(batch.tau[0].max() - batch.tau[0].min())
        assert spread <= TOL  # homogeneity is preserved exactly

    @given(st.integers(min_value=2, max_value=50), stages)
    @settings(max_examples=25, deadline=None)
    def test_one_aggressive_deviator(self, n_nodes, max_stage):
        windows = [2.0] + [1024.0] * (n_nodes - 1)
        reference = solve_heterogeneous_reference(windows, max_stage)
        batch = solve_heterogeneous_batch(
            np.asarray(windows)[None, :], max_stage
        )
        assert float(np.max(np.abs(batch.tau[0] - reference.tau))) <= TOL
        # The deviator transmits strictly more aggressively than the rest.
        if n_nodes >= 2:
            assert float(batch.tau[0, 0]) > float(batch.tau[0, 1:].max())
