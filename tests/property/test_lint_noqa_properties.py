"""Property tests for ``# repro: noqa`` suppression semantics.

Covers the acceptance surface for the suppression machinery:
multi-code ``# repro: noqa=CODE1,CODE2`` comments, the ``--no-noqa``
escape hatch, and whole-program (REPRO1xx) findings round-tripping
consistently through the text, JSON and SARIF output formats.
"""

from __future__ import annotations

import json
import textwrap

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.lint.analyzer import check_source
from repro.lint.cli import main as lint_main
from repro.lint.sarif import validate_sarif

# One single-line trigger per per-file rule we exercise; each line
# produces exactly one violation of its code when linted standalone.
_TRIGGERS = {
    "REPRO001": "rng = np.random.default_rng()",
    "REPRO003": "flag = (x == 0.5)",
    "REPRO004": "def f(a=[]):\n    return a",
}

_CODES = sorted(_TRIGGERS)

_noqa_sets = st.lists(
    st.tuples(
        st.frozensets(st.sampled_from(_CODES + ["REPRO101", "REPRO102"])),
        st.booleans(),  # whether a noqa comment is present at all
    ),
    min_size=len(_CODES),
    max_size=len(_CODES),
)


def _build_source(per_line):
    """A module with one trigger per rule, each with its noqa config."""
    chunks = ["import numpy as np", "x = 1.0"]
    for code, (codes, present) in zip(_CODES, per_line):
        trigger = _TRIGGERS[code]
        if present:
            suffix = (
                "  # repro: noqa=" + ",".join(sorted(codes))
                if codes
                else "  # repro: noqa"
            )
        else:
            suffix = ""
        first, *rest = trigger.split("\n")
        chunks.append(first + suffix)
        chunks.extend(rest)
    return "\n".join(chunks) + "\n"


@given(per_line=_noqa_sets)
@settings(max_examples=60, deadline=None)
def test_multicode_noqa_suppresses_exactly_listed_codes(per_line):
    source = _build_source(per_line)
    reported = {
        v.rule for v in check_source(source, path="prop.py")
    }
    for code, (codes, present) in zip(_CODES, per_line):
        # A bare noqa suppresses everything on the line; a code list
        # suppresses the violation iff its own code is listed.
        suppressed = present and (not codes or code in codes)
        assert (code not in reported) == suppressed


@given(per_line=_noqa_sets)
@settings(max_examples=30, deadline=None)
def test_no_noqa_reports_everything(per_line):
    source = _build_source(per_line)
    reported = {
        v.rule
        for v in check_source(source, path="prop.py", respect_noqa=False)
    }
    assert reported == set(_CODES)


@given(
    codes=st.frozensets(
        st.sampled_from(["REPRO101", "REPRO001", "REPRO003"])
    ),
    fmt=st.sampled_from(["text", "json", "sarif"]),
)
@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
def test_deep_suppression_round_trips_through_formats(
    codes, fmt, tmp_path_factory, capsys
):
    """A REPRO101 finding suppressed at its call site disappears from
    every output format; unsuppressed it appears in every format."""
    tree = tmp_path_factory.mktemp("deeptree")
    suffix = "  # repro: noqa=" + ",".join(sorted(codes)) if codes else ""
    (tree / "mod.py").write_text(
        textwrap.dedent(
            """
            import time

            ANALYSIS_ROOTS = ("mod.run",)

            def run():
                return time.time(){suffix}
            """
        ).format(suffix=suffix),
        encoding="utf-8",
    )
    exit_code = lint_main([str(tree), "--deep", "--format", fmt])
    out = capsys.readouterr().out
    suppressed = "REPRO101" in codes
    assert exit_code == (0 if suppressed else 1)
    if fmt == "json":
        payload = json.loads(out)
        present = any(
            v["rule"] == "REPRO101" for v in payload["violations"]
        )
    elif fmt == "sarif":
        log = json.loads(out)
        assert validate_sarif(log) == []
        present = any(
            r["ruleId"] == "REPRO101"
            for r in log["runs"][0]["results"]
        )
    else:
        present = "REPRO101" in out
    assert present == (not suppressed)


@given(data=st.data())
@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
def test_no_noqa_flag_resurfaces_deep_findings(
    data, tmp_path_factory, capsys
):
    tree = tmp_path_factory.mktemp("deepnoqa")
    (tree / "mod.py").write_text(
        textwrap.dedent(
            """
            import time

            ANALYSIS_ROOTS = ("mod.run",)

            def run():
                return time.time()  # repro: noqa=REPRO101
            """
        ),
        encoding="utf-8",
    )
    fmt = data.draw(st.sampled_from(["text", "json"]))
    assert lint_main([str(tree), "--deep", "--format", fmt]) == 0
    capsys.readouterr()
    assert (
        lint_main([str(tree), "--deep", "--no-noqa", "--format", fmt]) == 1
    )
    out = capsys.readouterr().out
    assert "REPRO101" in out
