"""Hypothesis differential suite: mean-field vs exact per-node solver.

The type-distribution formulation of :mod:`repro.bianchi.meanfield` is
*exact* for integer counts - two nodes with the same window share the
same fixed-point ``tau``, so collapsing the per-node system to types
loses nothing.  These properties pin that equivalence on randomized
populations, plus the simplex invariants of the replicator update the
mean-field solver feeds.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bianchi.batched import solve_heterogeneous_batch
from repro.bianchi.meanfield import expand_types, solve_mean_field
from repro.errors import ParameterError
from repro.game.dynamics import replicator_step

TAU_AGREEMENT = 1e-9

populations = st.lists(
    st.tuples(
        st.floats(min_value=2.0, max_value=1024.0),
        st.integers(min_value=1, max_value=12),
    ),
    min_size=1,
    max_size=5,
).filter(lambda types: sum(count for _, count in types) >= 2)

stages = st.sampled_from([0, 1, 3, 5])


class TestMeanFieldMatchesExactSolver:
    @given(populations, stages)
    @settings(max_examples=60, deadline=None)
    def test_tau_agrees_with_per_node_solve(self, types, max_stage):
        windows = [w for w, _ in types]
        counts = [c for _, c in types]
        mean_field = solve_mean_field(windows, counts, max_stage)
        per_node = solve_heterogeneous_batch(
            [expand_types(windows, counts)], max_stage
        )
        expanded_mf = np.repeat(mean_field.tau[0], counts)
        assert expanded_mf.shape == per_node.tau[0].shape
        np.testing.assert_allclose(
            expanded_mf, per_node.tau[0], rtol=0.0, atol=TAU_AGREEMENT
        )

    @given(populations, stages)
    @settings(max_examples=60, deadline=None)
    def test_collision_agrees_with_per_node_solve(self, types, max_stage):
        windows = [w for w, _ in types]
        counts = [c for _, c in types]
        mean_field = solve_mean_field(windows, counts, max_stage)
        per_node = solve_heterogeneous_batch(
            [expand_types(windows, counts)], max_stage
        )
        expanded = np.repeat(mean_field.collision[0], counts)
        np.testing.assert_allclose(
            expanded, per_node.collision[0], rtol=0.0, atol=1e-8
        )

    @given(populations, stages)
    @settings(max_examples=60, deadline=None)
    def test_solution_is_physical(self, types, max_stage):
        windows = [w for w, _ in types]
        counts = [c for _, c in types]
        solution = solve_mean_field(windows, counts, max_stage)
        assert np.all(solution.tau > 0.0)
        assert np.all(solution.tau <= 1.0)
        assert np.all(solution.collision >= 0.0)
        assert np.all(solution.collision < 1.0)
        assert np.all(solution.residual <= 1e-8)

    @given(populations, stages)
    @settings(max_examples=40, deadline=None)
    def test_duplicate_types_collapse(self, types, max_stage):
        """Splitting one type into two identical halves changes nothing."""
        windows = [w for w, _ in types]
        counts = [c for _, c in types]
        split_windows = windows + [windows[0]]
        split_counts = counts + [counts[0]]
        merged = solve_mean_field(
            windows[:1] + windows[1:],
            [counts[0] * 2] + counts[1:],
            max_stage,
        )
        split = solve_mean_field(split_windows, split_counts, max_stage)
        assert split.tau[0, 0] == pytest.approx(
            split.tau[0, -1], abs=TAU_AGREEMENT
        )
        assert merged.tau[0, 0] == pytest.approx(
            split.tau[0, 0], abs=TAU_AGREEMENT
        )


shares_vectors = st.integers(min_value=1, max_value=6).flatmap(
    lambda k: st.lists(
        st.floats(min_value=0.0, max_value=1.0),
        min_size=k,
        max_size=k,
    ).filter(lambda raw: sum(raw) > 1e-6)
)

fitness_values = st.floats(min_value=-50.0, max_value=50.0)


class TestReplicatorInvariants:
    @given(shares_vectors, st.data())
    @settings(max_examples=100, deadline=None)
    def test_step_stays_on_simplex(self, raw, data):
        shares = np.asarray(raw) / sum(raw)
        fitness = np.asarray(
            data.draw(
                st.lists(
                    fitness_values,
                    min_size=len(raw),
                    max_size=len(raw),
                )
            )
        )
        updated = replicator_step(shares, fitness)
        assert updated.sum() == pytest.approx(1.0, abs=1e-12)
        assert np.all(updated >= 0.0)

    @given(shares_vectors, st.data())
    @settings(max_examples=100, deadline=None)
    def test_extinct_types_stay_extinct(self, raw, data):
        shares = np.asarray(raw) / sum(raw)
        shares[0] = 0.0
        total = shares.sum()
        if total <= 0.0:
            return
        shares = shares / total
        fitness = np.asarray(
            data.draw(
                st.lists(
                    fitness_values,
                    min_size=len(raw),
                    max_size=len(raw),
                )
            )
        )
        # Even a huge fitness advantage cannot resurrect share zero.
        fitness[0] = 100.0
        updated = replicator_step(shares, fitness)
        assert updated[0] == 0
        assert updated.sum() == pytest.approx(1.0, abs=1e-12)

    @given(st.integers(min_value=1, max_value=8), fitness_values)
    @settings(max_examples=60, deadline=None)
    def test_equal_fitness_is_a_fixed_point(self, k, level):
        shares = np.full(k, 1.0 / k)
        fitness = np.full(k, level)
        updated = replicator_step(shares, fitness)
        np.testing.assert_allclose(updated, shares, rtol=0.0, atol=1e-12)

    @given(shares_vectors, fitness_values, fitness_values)
    @settings(max_examples=60, deadline=None)
    def test_translation_invariance(self, raw, level, shift):
        shares = np.asarray(raw) / sum(raw)
        fitness = np.linspace(level, level + 1.0, len(raw))
        base = replicator_step(shares, fitness)
        shifted = replicator_step(shares, fitness + shift)
        np.testing.assert_allclose(base, shifted, rtol=0.0, atol=1e-12)

    def test_all_extinct_rejected(self):
        with pytest.raises(ParameterError, match="extinct"):
            replicator_step(np.zeros(3), np.zeros(3))

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ParameterError, match="matching"):
            replicator_step(np.full(3, 1.0 / 3.0), np.zeros(2))
