"""Property tests for the streaming statistics accumulators.

The population screening pipeline shards its observation chunks across
monitors and folds them back with ``WelfordAccumulator.merge``, so the
merge must behave exactly like one observer that saw every sample:

* merge is **commutative** and **associative** up to floating-point
  noise - shard outputs combine to the same moments in any order or
  grouping;
* merged moments agree with a two-pass numpy ``mean``/``var`` over the
  concatenated samples to 1e-12;
* merging an empty accumulator is a no-op, and merging *into* an empty
  one copies the other side without aliasing its arrays.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.streaming import WelfordAccumulator

# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------
_WIDTH = 3

_samples = st.lists(
    st.lists(
        st.floats(
            allow_nan=False,
            allow_infinity=False,
            min_value=-1e6,
            max_value=1e6,
            width=64,
        ),
        min_size=_WIDTH,
        max_size=_WIDTH,
    ),
    min_size=0,
    max_size=12,
)


def _fold(samples) -> WelfordAccumulator:
    accumulator = WelfordAccumulator()
    for sample in samples:
        accumulator.update(np.asarray(sample, dtype=float))
    return accumulator


def _merged(*accumulators) -> WelfordAccumulator:
    result = WelfordAccumulator()
    for accumulator in accumulators:
        result.merge(accumulator)
    return result


def _assert_same_moments(a: WelfordAccumulator, b: WelfordAccumulator):
    assert a.count == b.count
    if a.count == 0:
        return
    # 1e-12 relative to the moment scale (the samples span +-1e6, so a
    # fixed absolute tolerance would be below one ulp of the data).
    mean_scale = 1.0 + float(np.max(np.abs(b.mean)))
    var_scale = 1.0 + float(np.max(np.abs(b.variance())))
    np.testing.assert_allclose(
        a.mean, b.mean, rtol=0, atol=1e-12 * mean_scale
    )
    np.testing.assert_allclose(
        a.variance(), b.variance(), rtol=0, atol=1e-12 * var_scale
    )


# ----------------------------------------------------------------------
# Properties
# ----------------------------------------------------------------------
class TestMergeAlgebra:
    @settings(max_examples=100, deadline=None)
    @given(_samples, _samples)
    def test_merge_is_commutative(self, xs, ys):
        _assert_same_moments(
            _merged(_fold(xs), _fold(ys)),
            _merged(_fold(ys), _fold(xs)),
        )

    @settings(max_examples=100, deadline=None)
    @given(_samples, _samples, _samples)
    def test_merge_is_associative(self, xs, ys, zs):
        left = _merged(_merged(_fold(xs), _fold(ys)), _fold(zs))
        right = _merged(_fold(xs), _merged(_fold(ys), _fold(zs)))
        _assert_same_moments(left, right)

    @settings(max_examples=100, deadline=None)
    @given(_samples, _samples)
    def test_merge_equals_single_observer(self, xs, ys):
        sharded = _merged(_fold(xs), _fold(ys))
        single = _fold(list(xs) + list(ys))
        _assert_same_moments(sharded, single)


class TestAgainstTwoPassNumpy:
    @settings(max_examples=100, deadline=None)
    @given(_samples, _samples)
    def test_merged_moments_match_two_pass(self, xs, ys):
        stacked = np.asarray(list(xs) + list(ys), dtype=float)
        if stacked.shape[0] < 2:
            return
        merged = _merged(_fold(xs), _fold(ys))
        two_pass_mean = stacked.mean(axis=0)
        two_pass_var = stacked.var(axis=0, ddof=1)
        mean_scale = 1.0 + float(np.max(np.abs(two_pass_mean)))
        var_scale = 1.0 + float(np.max(np.abs(two_pass_var)))
        np.testing.assert_allclose(
            merged.mean, two_pass_mean, rtol=0, atol=1e-12 * mean_scale
        )
        np.testing.assert_allclose(
            merged.variance(),
            two_pass_var,
            rtol=0,
            atol=1e-12 * var_scale,
        )


class TestEdgeCases:
    def test_merging_empty_is_a_noop(self):
        accumulator = _fold([[1.0, 2.0, 3.0]])
        before = np.array(accumulator.mean)
        accumulator.merge(WelfordAccumulator())
        assert accumulator.count == 1
        np.testing.assert_array_equal(accumulator.mean, before)

    def test_merge_into_empty_copies_without_aliasing(self):
        source = _fold([[1.0, 2.0, 3.0], [3.0, 2.0, 1.0]])
        empty = WelfordAccumulator()
        empty.merge(source)
        assert empty.count == source.count
        np.testing.assert_array_equal(empty.mean, source.mean)
        empty.update(np.array([100.0, 100.0, 100.0]))
        # The source's moments must be untouched by the copy's update.
        np.testing.assert_array_equal(source.mean, [2.0, 2.0, 2.0])
        assert source.count == 2
