"""Property-based tests for the coupled fixed point."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bianchi.fixedpoint import solve_heterogeneous, solve_symmetric
from repro.bianchi.markov import transmission_probability

MAX_STAGE = 5

window_lists = st.lists(
    st.integers(min_value=1, max_value=1024), min_size=2, max_size=8
)


class TestSymmetricProperties:
    @given(
        st.integers(min_value=1, max_value=2048),
        st.integers(min_value=2, max_value=60),
    )
    def test_solution_is_consistent(self, window, n):
        sol = solve_symmetric(window, n, MAX_STAGE)
        assert 0 < sol.tau < 1
        assert 0 <= sol.collision < 1
        assert sol.collision == pytest.approx(
            1 - (1 - sol.tau) ** (n - 1), rel=1e-8
        )

    @given(
        st.integers(min_value=1, max_value=1024),
        st.integers(min_value=2, max_value=40),
    )
    def test_adding_a_node_increases_pressure(self, window, n):
        smaller = solve_symmetric(window, n, MAX_STAGE)
        larger = solve_symmetric(window, n + 1, MAX_STAGE)
        assert larger.collision > smaller.collision - 1e-12
        assert larger.tau < smaller.tau + 1e-12


class TestHeterogeneousProperties:
    @given(window_lists)
    def test_solution_satisfies_both_equation_sets(self, windows):
        sol = solve_heterogeneous(windows, MAX_STAGE)
        one_minus = 1 - sol.tau
        for i, window in enumerate(windows):
            others = np.delete(one_minus, i)
            assert sol.collision[i] == pytest.approx(
                1 - np.prod(others), rel=1e-6, abs=1e-9
            )
            assert sol.tau[i] == pytest.approx(
                transmission_probability(window, sol.collision[i], MAX_STAGE),
                rel=1e-6,
            )

    @given(window_lists)
    def test_lemma1_tau_ordering(self, windows):
        # Strictly larger window => strictly smaller tau (Lemma 1).
        sol = solve_heterogeneous(windows, MAX_STAGE)
        order = np.argsort(windows)
        sorted_windows = np.asarray(windows, dtype=float)[order]
        sorted_tau = sol.tau[order]
        for a, b in zip(range(len(windows) - 1), range(1, len(windows))):
            if sorted_windows[a] < sorted_windows[b]:
                assert sorted_tau[a] > sorted_tau[b]
            else:  # equal windows -> equal tau
                assert sorted_tau[a] == pytest.approx(
                    sorted_tau[b], rel=1e-6
                )

    @given(window_lists, st.integers(min_value=0, max_value=7))
    @settings(max_examples=15)
    def test_permutation_equivariance(self, windows, seed):
        rng = np.random.default_rng(seed)
        perm = rng.permutation(len(windows))
        base = solve_heterogeneous(windows, MAX_STAGE)
        shuffled = solve_heterogeneous(
            [windows[i] for i in perm], MAX_STAGE
        )
        np.testing.assert_allclose(
            shuffled.tau, base.tau[perm], rtol=1e-6
        )
