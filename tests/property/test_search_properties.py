"""Property-based tests for the Section V.C search protocol."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.game.definition import MACGame
from repro.game.search import run_search_protocol
from repro.phy.parameters import default_parameters

GAME = MACGame(n_players=4, params=default_parameters())

peaks = st.integers(min_value=3, max_value=500)
starts = st.integers(min_value=2, max_value=600)
steps = st.integers(min_value=1, max_value=7)


class TestSearchOnSyntheticUnimodal:
    @given(peaks, starts)
    @settings(max_examples=40)
    def test_unit_step_finds_exact_peak(self, peak, start):
        outcome = run_search_protocol(
            GAME, start, measure=lambda w: -abs(w - peak)
        )
        assert outcome.window == peak

    @given(peaks, starts, steps)
    @settings(max_examples=40)
    def test_larger_steps_land_within_one_step(self, peak, start, step):
        outcome = run_search_protocol(
            GAME,
            start,
            measure=lambda w: -((w - peak) ** 2),
            step=step,
        )
        # The climb stops at the grid point nearest the peak along its
        # lattice (start + k*step), so the error is below one step.
        assert abs(outcome.window - peak) <= step or (
            # ...unless the peak lies outside the reachable lattice
            # range clipped by the strategy space.
            outcome.window
            in (GAME.params.cw_min, GAME.params.cw_max)
        )

    @given(peaks, starts)
    @settings(max_examples=30)
    def test_probe_count_bounded_by_walk_length(self, peak, start):
        outcome = run_search_protocol(
            GAME, start, measure=lambda w: -abs(w - peak)
        )
        # Start probe + the climb + one failed probe per direction
        # (right-search always tries one step; left-search fires when
        # right-search fails immediately).
        assert outcome.n_measurements <= abs(peak - start) + 3

    @given(peaks, starts)
    @settings(max_examples=30)
    def test_trace_is_consistent(self, peak, start):
        outcome = run_search_protocol(
            GAME, start, measure=lambda w: -abs(w - peak)
        )
        assert outcome.messages[0].kind == "start"
        assert outcome.messages[-1].kind == "result"
        assert outcome.messages[-1].window == outcome.window
        probed = [w for w, _ in outcome.measurements]
        assert probed[0] == start
        assert len(set(probed)) == len(probed)  # never re-probes
