"""Property-based tests for slot statistics, throughput and fairness."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.bianchi.fairness import jain_index, throughput_shares
from repro.bianchi.throughput import normalized_throughput, slot_statistics
from repro.phy.parameters import AccessMode, default_parameters
from repro.phy.timing import slot_times

PARAMS = default_parameters()
TIMES = {
    mode: slot_times(PARAMS, mode) for mode in AccessMode
}

tau_lists = st.lists(
    st.floats(min_value=0.0, max_value=0.95),
    min_size=1,
    max_size=10,
)
active_tau_lists = st.lists(
    st.floats(min_value=1e-3, max_value=0.95),
    min_size=2,
    max_size=10,
)
modes = st.sampled_from(list(AccessMode))


class TestSlotStatisticsProperties:
    @given(tau_lists, modes)
    def test_probabilities_are_probabilities(self, taus, mode):
        stats = slot_statistics(taus, TIMES[mode])
        assert 0.0 <= stats.p_transmission <= 1.0
        assert 0.0 <= stats.p_success <= 1.0
        assert stats.p_idle == pytest.approx(1.0 - stats.p_transmission)
        assert np.all(stats.per_node_success >= 0)
        assert stats.per_node_success.sum() <= stats.p_transmission + 1e-12

    @given(tau_lists, modes)
    def test_slot_duration_bracketed(self, taus, mode):
        times = TIMES[mode]
        stats = slot_statistics(taus, times)
        lo = min(times.idle_us, times.collision_us, times.success_us)
        hi = max(times.idle_us, times.collision_us, times.success_us)
        assert lo - 1e-9 <= stats.expected_slot_us <= hi + 1e-9

    @given(active_tau_lists, modes)
    def test_throughput_in_unit_interval(self, taus, mode):
        s = normalized_throughput(
            taus, TIMES[mode], PARAMS.payload_time_us
        )
        assert 0.0 <= s < 1.0


class TestFairnessProperties:
    @given(active_tau_lists, modes)
    def test_shares_form_a_distribution(self, taus, mode):
        shares = throughput_shares(taus, TIMES[mode])
        assert shares.shape == (len(taus),)
        assert np.all(shares >= 0)
        assert shares.sum() == pytest.approx(1.0)

    @given(active_tau_lists, modes)
    def test_jain_bounds(self, taus, mode):
        shares = throughput_shares(taus, TIMES[mode])
        value = jain_index(shares)
        assert 1.0 / len(taus) - 1e-12 <= value <= 1.0 + 1e-12

    @given(
        st.floats(min_value=1e-3, max_value=0.95),
        st.integers(min_value=2, max_value=10),
        modes,
    )
    def test_symmetric_taus_perfectly_fair(self, tau, n, mode):
        shares = throughput_shares([tau] * n, TIMES[mode])
        assert jain_index(shares) == pytest.approx(1.0)

    @given(
        st.lists(
            st.floats(min_value=0.0, max_value=100.0),
            min_size=1,
            max_size=12,
        ).filter(lambda xs: sum(xs) > 0)
    )
    def test_jain_permutation_invariant(self, allocation):
        shuffled = list(reversed(allocation))
        assert jain_index(allocation) == pytest.approx(
            jain_index(shuffled)
        )
