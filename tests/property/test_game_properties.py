"""Property-based tests for game utilities, lemmas and equilibria."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.game.definition import MACGame
from repro.game.equilibrium import optimal_tau, q_function, window_for_tau
from repro.game.lemmas import check_lemma1, check_lemma4
from repro.game.utility import discounted_utility, symmetric_utility_from_tau
from repro.phy.parameters import AccessMode, default_parameters
from repro.phy.timing import slot_times

PARAMS = default_parameters()
TIMES = {
    AccessMode.BASIC: slot_times(PARAMS, AccessMode.BASIC),
    AccessMode.RTS_CTS: slot_times(PARAMS, AccessMode.RTS_CTS),
}
GAME = MACGame(n_players=4, params=PARAMS)

windows = st.integers(min_value=2, max_value=2048)
modes = st.sampled_from(list(AccessMode))


class TestLemma1Property:
    @given(
        st.lists(windows, min_size=4, max_size=4, unique=True), modes
    )
    @settings(max_examples=20)
    def test_ordering_for_any_profile(self, profile, mode):
        game = MACGame(n_players=4, params=PARAMS, mode=mode)
        ordered = sorted(range(4), key=lambda i: profile[i])
        i, j = ordered[-1], ordered[0]  # largest vs smallest window
        check = check_lemma1(game, profile, i, j)
        assert check.holds


class TestLemma4Property:
    @given(windows, windows)
    @settings(max_examples=20)
    def test_ordering_for_any_deviation(self, common, deviant):
        if common == deviant:
            deviant += 1
        check = check_lemma4(GAME, common, deviant)
        assert check.holds


class TestQFunctionProperty:
    @given(st.integers(min_value=2, max_value=80), modes)
    def test_root_exists_and_interior(self, n, mode):
        tau_star = optimal_tau(n, TIMES[mode])
        assert 0 < tau_star < 1
        assert q_function(tau_star, n, TIMES[mode]) == pytest.approx(
            0.0, abs=1e-6
        )

    @given(
        st.integers(min_value=2, max_value=80),
        st.floats(min_value=1e-4, max_value=0.99),
        modes,
    )
    def test_q_sign_locates_root(self, n, tau, mode):
        tau_star = optimal_tau(n, TIMES[mode])
        value = q_function(tau, n, TIMES[mode])
        if tau < tau_star:
            assert value > -1e-9
        else:
            assert value < 1e-9


class TestWindowTauDuality:
    @given(
        st.floats(min_value=0.001, max_value=0.6),
        st.integers(min_value=2, max_value=50),
    )
    def test_roundtrip_through_fixed_point(self, tau, n):
        from repro.bianchi.fixedpoint import solve_symmetric

        window = window_for_tau(tau, n, PARAMS.max_backoff_stage)
        if window < 1:  # too aggressive to realise with any window
            return
        sol = solve_symmetric(window, n, PARAMS.max_backoff_stage)
        assert sol.tau == pytest.approx(tau, rel=1e-6)


class TestUtilityProperties:
    @given(
        st.floats(min_value=0.0, max_value=1.0),
        st.integers(min_value=2, max_value=50),
        modes,
    )
    def test_utility_finite_and_bounded(self, tau, n, mode):
        value = symmetric_utility_from_tau(tau, n, PARAMS, TIMES[mode])
        # |u| <= tau * g / min-slot.
        bound = PARAMS.gain / TIMES[mode].idle_us
        assert -bound <= value <= bound

    @given(
        st.lists(
            st.floats(min_value=-100, max_value=100),
            min_size=0,
            max_size=30,
        ),
        st.floats(min_value=0.01, max_value=0.99),
    )
    def test_discounted_utility_linear(self, payoffs, delta):
        doubled = [2 * p for p in payoffs]
        assert discounted_utility(doubled, delta) == pytest.approx(
            2 * discounted_utility(payoffs, delta), rel=1e-9, abs=1e-9
        )

    @given(
        st.lists(
            st.floats(min_value=0, max_value=100), min_size=1, max_size=30
        ),
        st.floats(min_value=0.01, max_value=0.99),
    )
    def test_discounted_utility_bounded_by_geometric(self, payoffs, delta):
        peak = max(payoffs)
        value = discounted_utility(payoffs, delta)
        assert 0 <= value <= peak / (1 - delta) + 1e-9
