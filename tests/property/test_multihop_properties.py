"""Property-based tests for topologies, mobility and the TFT flood."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.multihop.game import MultihopGame
from repro.multihop.mobility import RandomWaypointModel
from repro.multihop.topology import GeometricTopology, random_topology
from repro.phy.parameters import default_parameters

PARAMS = default_parameters()

seeds = st.integers(min_value=0, max_value=10_000)


def sampled_topology(seed: int, n: int = 15) -> GeometricTopology:
    return random_topology(
        n, tx_range=400.0, rng=np.random.default_rng(seed)
    )


class TestTopologyProperties:
    @given(seeds)
    @settings(max_examples=15)
    def test_adjacency_symmetric_no_self_loops(self, seed):
        topo = sampled_topology(seed)
        adj = topo.adjacency
        np.testing.assert_array_equal(adj, adj.T)
        assert not adj.diagonal().any()

    @given(seeds)
    @settings(max_examples=15)
    def test_components_partition_nodes(self, seed):
        topo = sampled_topology(seed)
        components = topo.components()
        union = set().union(*components) if components else set()
        assert union == set(range(topo.n_nodes))
        total = sum(len(c) for c in components)
        assert total == topo.n_nodes

    @given(seeds)
    @settings(max_examples=15)
    def test_growing_range_only_adds_edges(self, seed):
        topo = sampled_topology(seed)
        wider = GeometricTopology(
            positions=topo.positions,
            tx_range=topo.tx_range * 1.5,
            width=topo.width,
            height=topo.height,
        )
        assert np.all(wider.adjacency >= topo.adjacency)


class TestMobilityProperties:
    @given(seeds, st.floats(min_value=0.1, max_value=20.0))
    @settings(max_examples=15)
    def test_positions_confined(self, seed, dt):
        model = RandomWaypointModel(
            12, rng=np.random.default_rng(seed), max_speed=5.0
        )
        for _ in range(30):
            model.step(dt)
        assert np.all(model.state.positions >= -1e-9)
        assert np.all(
            model.state.positions
            <= np.array([model.width, model.height]) + 1e-9
        )

    @given(seeds)
    @settings(max_examples=15)
    def test_displacement_bounded_by_speed(self, seed):
        model = RandomWaypointModel(
            12,
            rng=np.random.default_rng(seed),
            min_speed=1.0,
            max_speed=5.0,
        )
        before = model.state.positions.copy()
        dt = 3.0
        model.step(dt)
        moved = np.linalg.norm(model.state.positions - before, axis=1)
        assert np.all(moved <= 5.0 * dt + 1e-6)


class TestFloodProperties:
    @given(seeds)
    @settings(max_examples=8)
    def test_flood_reaches_componentwise_minima(self, seed):
        topo = sampled_topology(seed)
        game = MultihopGame(topo, PARAMS)
        eq = game.solve()
        final = eq.window_history[-1]
        initial = eq.window_history[0]
        contending = topo.degrees() > 0
        for component in topo.components():
            members = [m for m in component if contending[m]]
            if not members:
                continue
            component_min = min(initial[m] for m in members)
            for member in members:
                assert final[member] == component_min

    @given(seeds)
    @settings(max_examples=8)
    def test_flood_monotone_and_bounded(self, seed):
        topo = sampled_topology(seed)
        game = MultihopGame(topo, PARAMS)
        eq = game.solve()
        history = eq.window_history
        assert np.all(history[1:] <= history[:-1])
        assert np.all(history >= 1)
