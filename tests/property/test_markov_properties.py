"""Property-based tests for the backoff Markov chain."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.bianchi.markov import (
    BackoffChain,
    stationary_distribution,
    transmission_probability,
)

windows = st.integers(min_value=1, max_value=2048)
probabilities = st.floats(
    min_value=0.0, max_value=0.999, allow_nan=False, allow_infinity=False
)
stages = st.integers(min_value=0, max_value=8)


class TestTransmissionProbability:
    @given(windows, probabilities, stages)
    def test_always_a_probability(self, window, p, m):
        tau = transmission_probability(window, p, m)
        assert 0.0 < tau <= 1.0

    @given(windows, probabilities, stages)
    def test_monotone_decreasing_in_window(self, window, p, m):
        smaller = transmission_probability(window, p, m)
        larger = transmission_probability(window + 1, p, m)
        assert larger < smaller

    @given(windows, stages, probabilities, probabilities)
    def test_monotone_decreasing_in_collision(self, window, m, p1, p2):
        lo, hi = sorted((p1, p2))
        tau_lo = transmission_probability(window, lo, m)
        tau_hi = transmission_probability(window, hi, m)
        assert tau_hi <= tau_lo + 1e-15

    @given(windows, probabilities, stages)
    def test_deeper_ladder_never_more_aggressive(self, window, p, m):
        shallow = transmission_probability(window, p, m)
        deep = transmission_probability(window, p, m + 1)
        assert deep <= shallow + 1e-15


class TestChainInvariants:
    @given(windows, probabilities, stages)
    def test_stage_probabilities_sum_to_tau(self, window, p, m):
        chain = BackoffChain(
            window=window, collision_probability=p, max_stage=m
        )
        total = chain.stage_probabilities().sum()
        assert total == pytest.approx(
            chain.transmission_probability(), rel=1e-9
        )

    @given(windows, probabilities, stages)
    def test_stage_probabilities_nonnegative(self, window, p, m):
        chain = BackoffChain(
            window=window, collision_probability=p, max_stage=m
        )
        assert np.all(chain.stage_probabilities() >= 0)

    @given(
        st.integers(min_value=1, max_value=32),
        probabilities,
        st.integers(min_value=0, max_value=4),
    )
    def test_stationary_distribution_normalised(self, window, p, m):
        chain = BackoffChain(
            window=window, collision_probability=p, max_stage=m
        )
        dist = stationary_distribution(chain)
        assert sum(dist.values()) == pytest.approx(1.0, abs=1e-9)
        assert all(v >= 0 for v in dist.values())

    @given(
        st.integers(min_value=2, max_value=32),
        probabilities,
        st.integers(min_value=0, max_value=4),
    )
    def test_counter_marginal_monotone(self, window, p, m):
        chain = BackoffChain(
            window=window, collision_probability=p, max_stage=m
        )
        dist = stationary_distribution(chain)
        for stage in range(m + 1):
            w_stage = int(chain.stage_window(stage))
            values = [dist[(stage, k)] for k in range(w_stage)]
            assert all(a >= b - 1e-15 for a, b in zip(values, values[1:]))
