"""Property-based tests for strategies and the repeated-game engine."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.game.definition import MACGame
from repro.game.repeated import RepeatedGameEngine
from repro.game.strategies import GenerousTitForTat, TitForTat
from repro.phy.parameters import default_parameters

PARAMS = default_parameters()

profiles = st.lists(
    st.integers(min_value=2, max_value=2000), min_size=3, max_size=6
)


class TestTftProperties:
    @given(profiles)
    @settings(max_examples=15)
    def test_converges_to_initial_minimum(self, initial):
        game = MACGame(n_players=len(initial), params=PARAMS)
        engine = RepeatedGameEngine(
            game, [TitForTat() for _ in initial], initial
        )
        trace = engine.run(3)
        assert trace.final_windows.tolist() == [float(min(initial))] * len(
            initial
        )

    @given(profiles)
    @settings(max_examples=15)
    def test_windows_never_increase_under_tft(self, initial):
        game = MACGame(n_players=len(initial), params=PARAMS)
        engine = RepeatedGameEngine(
            game, [TitForTat() for _ in initial], initial
        )
        trace = engine.run(4)
        history = trace.window_history()
        assert np.all(history[1:] <= history[:-1] + 1e-12)

    @given(profiles)
    @settings(max_examples=10)
    def test_fairness_at_convergence(self, initial):
        game = MACGame(n_players=len(initial), params=PARAMS)
        engine = RepeatedGameEngine(
            game, [TitForTat() for _ in initial], initial
        )
        trace = engine.run(3)
        final = trace.records[-1].stage_payoffs
        np.testing.assert_allclose(final, final[0], rtol=1e-9)


class TestGtftProperties:
    @given(
        st.integers(min_value=50, max_value=500),
        st.integers(min_value=1, max_value=4),
        st.floats(min_value=0.5, max_value=0.95),
    )
    @settings(max_examples=10)
    def test_common_window_is_fixed_point(self, window, memory, tolerance):
        # Without noise, a common window never moves under GTFT.
        game = MACGame(n_players=4, params=PARAMS)
        engine = RepeatedGameEngine(
            game,
            [GenerousTitForTat(memory=memory, tolerance=tolerance)] * 4,
            [window] * 4,
        )
        trace = engine.run(4)
        assert np.all(trace.window_history() == window)

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=10)
    def test_gtft_never_below_observed_minimum(self, seed):
        # Even with noise, GTFT's reaction is bounded below by the
        # minimum window anyone was *observed* to play.
        game = MACGame(n_players=4, params=PARAMS)
        engine = RepeatedGameEngine(
            game,
            [GenerousTitForTat(memory=2, tolerance=0.9)] * 4,
            [200] * 4,
            observation_noise=20,
            rng=np.random.default_rng(seed),
        )
        trace = engine.run(6)
        lowest_observed = min(
            record.observed_windows.min() for record in trace.records
        )
        assert trace.window_history().min() >= lowest_observed
