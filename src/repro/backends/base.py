"""Compute-backend protocol shared by the two hot kernels.

A *backend* supplies low-level implementations of the repository's two
hot loops - the slotted DCF simulation chunk and the batched Bianchi
fixed point - behind a small, array-in/array-out protocol.  The public
entry points (:func:`repro.sim.vectorized.run_batch`,
:func:`repro.bianchi.batched.solve_heterogeneous_batch`) keep all
validation, finalization, contracts and observability; backends only
advance raw ``(batch, n)`` state arrays.

The simulation protocol is *chunked*: a kernel call advances every lane
to an absolute virtual-slot target, mutating the state arrays in place,
and may be called repeatedly on the same state.  That is what lets the
streaming-statistics path (:mod:`repro.sim.streaming`) fold counters
into running Welford accumulators every ``interval`` slots without ever
materialising an array with a slots-sized axis.

Determinism contract per backend:

* ``deterministic`` - results are a pure function of the seed (every
  shipped backend is deterministic).
* ``matches_numpy`` - *bit-identical* to the numpy backend for matched
  seeds.  Only the numpy backend itself claims this for the simulator:
  the numba/C kernels consume their own (deterministic) splitmix64
  streams, so they are pinned by tolerance-based statistical tests
  instead.  Fixed-point solves are deterministic math on every backend
  and are pinned to the numpy path at ``1e-9``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple, Union

import numpy as np

from repro.typealiases import BoolArray, FloatArray, IntArray
from repro.errors import BackendError

__all__ = ["ComputeBackend", "SimChunkState", "lane_seeds"]

SeedLike = Union[None, int, np.random.SeedSequence, np.random.Generator]

#: Sentinel value marking an uninitialised backoff counter; the first
#: chunk call draws the initial uniform backoff for sentinel entries.
COUNTER_UNSET = -1


@dataclass
class SimChunkState:
    """Mutable per-run simulator state shared across chunk calls.

    All arrays are C-contiguous ``int64`` of shape ``(batch, n)`` or
    ``(batch,)``; ``rng`` is backend-specific (a
    :class:`numpy.random.Generator` for the numpy backend, a ``(batch,)``
    ``uint64`` splitmix64 state vector for the numba/C kernels).
    """

    stage: IntArray
    counter: IntArray
    attempts: IntArray
    successes: IntArray
    busy_count: IntArray
    slots_done: IntArray
    rng: object

    @classmethod
    def allocate(cls, batch: int, n_nodes: int, rng: object) -> "SimChunkState":
        """Fresh state with sentinel counters (first chunk initialises)."""
        return cls(
            stage=np.zeros((batch, n_nodes), dtype=np.int64),
            counter=np.full((batch, n_nodes), COUNTER_UNSET, dtype=np.int64),
            attempts=np.zeros((batch, n_nodes), dtype=np.int64),
            successes=np.zeros((batch, n_nodes), dtype=np.int64),
            busy_count=np.zeros(batch, dtype=np.int64),
            slots_done=np.zeros(batch, dtype=np.int64),
            rng=rng,
        )


def lane_seeds(seed: SeedLike, batch: int) -> IntArray:
    """Derive one independent ``uint64`` splitmix64 seed per batch lane.

    A pure function of the input seed, shared by every non-numpy sim
    kernel so that two backends given the same seed consume *identical*
    per-lane streams (the cnative-vs-python bit-compatibility tests rely
    on this).  A ready :class:`numpy.random.Generator` is consumed for
    ``batch`` draws; anything else routes through
    :class:`numpy.random.SeedSequence`.
    """
    if isinstance(seed, np.random.Generator):
        return seed.integers(0, 2**64, size=batch, dtype=np.uint64)
    sequence = (
        seed
        if isinstance(seed, np.random.SeedSequence)
        else np.random.SeedSequence(seed)
    )
    return sequence.generate_state(batch, np.uint64)


class ComputeBackend:
    """Base class every registered compute backend implements.

    Subclasses override :meth:`sim_chunk` (required) and, when they
    accelerate the fixed point, set ``supports_fixed_point = True`` and
    override :meth:`solve_batch`.
    """

    #: Registry key and obs label value.
    name: str = "abstract"
    #: Results are a pure function of the seed.
    deterministic: bool = True
    #: Simulator output is bit-identical to the numpy backend.
    matches_numpy: bool = False
    #: Whether :meth:`solve_batch` is implemented.
    supports_fixed_point: bool = False

    def available(self) -> bool:
        """Whether this backend can run in the current environment."""
        return True

    def availability_note(self) -> str:
        """Human-readable reason when :meth:`available` is ``False``."""
        return "available" if self.available() else "unavailable"

    # ------------------------------------------------------------------
    # Simulation kernel
    # ------------------------------------------------------------------
    def init_sim_rng(self, seed: SeedLike, batch: int) -> object:
        """Backend-specific RNG state for one simulation run."""
        return lane_seeds(seed, batch)

    def sim_chunk(
        self,
        windows: IntArray,
        max_stage: int,
        target_slots: int,
        state: SimChunkState,
    ) -> None:
        """Advance every lane of ``state`` to ``target_slots`` slots.

        Mutates the state arrays in place; lanes already at or past the
        target are untouched.  Counter entries equal to
        :data:`COUNTER_UNSET` are initialised from the backend's stream
        before the first slot.
        """
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Fixed-point kernel
    # ------------------------------------------------------------------
    def solve_batch(
        self,
        windows: FloatArray,
        max_stage: int,
        *,
        tol: float,
        max_iterations: int,
        initial_tau: Optional[FloatArray] = None,
    ) -> Tuple[FloatArray, IntArray, BoolArray]:
        """Solve ``B`` heterogeneous fixed points; see :mod:`repro.bianchi`.

        Returns ``(tau, iterations, converged)``; lanes with
        ``converged == False`` are re-solved on the numpy path by the
        caller, so a backend may bail out early on hard instances
        without failing the whole batch.
        """
        raise BackendError(
            f"backend {self.name!r} does not accelerate the fixed point"
        )
