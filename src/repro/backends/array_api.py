"""Minimal array-API namespace shim.

Post-processing code that only *transforms* arrays (estimator
finalisation, streaming Welford folds) is written against an ``xp``
namespace parameter instead of importing numpy directly, so CuPy-style
array libraries can be dropped in later without touching the math.  The
custom lint ``REPRO006`` enforces the convention: a function that takes
``xp`` must not call ``np.*`` in its body.

This module is deliberately tiny - it resolves a namespace from the
arrays in hand (the `array API standard`_ ``__array_namespace__`` hook
when present, numpy otherwise) and nothing more.  Kernels that need
RNGs, scatter updates or JIT stay backend-specific.

.. _array API standard: https://data-apis.org/array-api/latest/
"""

from __future__ import annotations

from types import ModuleType
from typing import Any

import numpy as np

from repro.errors import BackendError

__all__ = ["get_namespace"]


def get_namespace(*arrays: Any) -> Any:
    """Resolve the array namespace shared by ``arrays``.

    Returns the ``__array_namespace__()`` of the first array exposing
    the array API standard hook, and :mod:`numpy` when none does (plain
    ndarrays and scalars).  Mixing arrays from two different non-numpy
    namespaces is an error - there is no sane common namespace to
    compute in.
    """
    namespace: Any = None
    for array in arrays:
        hook = getattr(array, "__array_namespace__", None)
        if hook is None:
            continue
        candidate = hook()
        if namespace is None:
            namespace = candidate
        elif candidate is not namespace:
            raise BackendError(
                "arrays come from two different array namespaces: "
                f"{namespace!r} and {candidate!r}"
            )
    if namespace is None:
        return np
    if isinstance(namespace, ModuleType) and namespace.__name__.startswith(
        "numpy"
    ):
        # numpy >= 2 exposes __array_namespace__ returning numpy itself
        # (or numpy.array_api); normalise to the top-level module so
        # callers can rely on the full namespace surface.
        return np
    return namespace
