"""Calendar-queue backends: interpreted (``python``) and JIT (``numba``).

Both backends run the *same source* - the kernels in
:mod:`repro.backends.calendar_kernels` - so the ``python`` backend is
simultaneously a debugging reference for the calendar algorithm and the
graceful-degradation target when numba is not installed.  The ``numba``
backend compiles the kernels with ``njit(parallel=True)`` on first use
(``prange`` over batch lanes), paying one compilation per process and
amortising it across every later call.

Numba is an *optional* dependency (``pip install repro[backends]``);
importing this module never imports it eagerly beyond a cheap
availability probe, and a missing numba simply reports the backend as
unavailable - :func:`repro.backends.resolve_backend` then falls back to
numpy with a warning instead of failing the run.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional, Tuple

import numpy as np

from repro.typealiases import BoolArray, FloatArray, IntArray
from repro.errors import BackendError
from repro.backends.base import ComputeBackend, SimChunkState
from repro.backends.calendar_kernels import (
    fixed_point_kernel,
    ring_size_for,
    sim_chunk_kernel,
)

__all__ = ["NumbaBackend", "PurePythonBackend"]

try:  # pragma: no cover - absent in the default container
    import numba  # type: ignore[import-untyped]
except ImportError:  # pragma: no cover
    numba = None  # type: ignore[assignment]

# Fixed-point constants matching repro.bianchi.batched's clamps; the
# plain damped scheme here is the scalar reference iteration, so the
# same guards keep iterates strictly inside (0, 1).
_P_MAX = 1.0 - 1e-15
_TAU_MIN = 1e-12
_TAU_MAX = 1.0 - 1e-12
_DAMPING = 0.5


class _CalendarBackend(ComputeBackend):
    """Shared chunk/solve plumbing around the calendar kernels."""

    def _kernels(
        self,
    ) -> Tuple[Callable[..., None], Callable[..., None]]:
        """Return ``(sim_chunk, fixed_point)`` callables to dispatch to."""
        raise NotImplementedError

    def sim_chunk(
        self,
        windows: IntArray,
        max_stage: int,
        target_slots: int,
        state: SimChunkState,
    ) -> None:
        rng_state = np.ascontiguousarray(state.rng, dtype=np.uint64)
        state.rng = rng_state
        sim_kernel, _ = self._kernels()
        # uint64 wraparound is the point of splitmix64; silence numpy's
        # interpreted-mode overflow warnings (numba wraps silently).
        with np.errstate(over="ignore"):
            sim_kernel(
                windows,
                max_stage,
                target_slots,
                ring_size_for(windows, max_stage),
                state.stage,
                state.counter,
                state.attempts,
                state.successes,
                state.busy_count,
                state.slots_done,
                rng_state,
            )

    def solve_batch(
        self,
        windows: FloatArray,
        max_stage: int,
        *,
        tol: float,
        max_iterations: int,
        initial_tau: Optional[FloatArray] = None,
    ) -> Tuple[FloatArray, IntArray, BoolArray]:
        w = np.ascontiguousarray(windows, dtype=np.float64)
        batch = w.shape[0]
        if initial_tau is not None:
            tau = np.ascontiguousarray(
                np.broadcast_to(
                    np.asarray(initial_tau, dtype=np.float64), w.shape
                ).copy()
            )
            np.clip(tau, _TAU_MIN, _TAU_MAX, out=tau)
        else:
            tau = np.full_like(w, 0.1)
        iterations = np.zeros(batch, dtype=np.int64)
        converged = np.zeros(batch, dtype=np.int64)
        _, fp_kernel = self._kernels()
        fp_kernel(
            w,
            max_stage,
            tol,
            max_iterations,
            _DAMPING,
            _P_MAX,
            _TAU_MIN,
            _TAU_MAX,
            tau,
            iterations,
            converged,
        )
        return tau, iterations, converged.astype(bool)


class PurePythonBackend(_CalendarBackend):
    """Interpreted calendar-queue backend - always available, slow.

    Exists for algorithm debugging and for the cross-backend
    bit-compatibility tests: it consumes the exact splitmix64 streams of
    the numba and cnative kernels at interpreter speed.  Do not use it
    for production-size runs.
    """

    name = "python"
    deterministic = True
    matches_numpy = False
    supports_fixed_point = True

    def availability_note(self) -> str:
        return "always available (interpreted calendar kernels; slow)"

    def _kernels(self) -> Tuple[Callable[..., None], Callable[..., None]]:
        return sim_chunk_kernel, fixed_point_kernel


class NumbaBackend(_CalendarBackend):
    """JIT-compiled calendar-queue backend (optional numba dependency)."""

    name = "numba"
    deterministic = True
    matches_numpy = False
    supports_fixed_point = True

    def __init__(self) -> None:
        self._compiled: Optional[
            Tuple[Callable[..., None], Callable[..., None]]
        ] = None

    def available(self) -> bool:
        return numba is not None

    def availability_note(self) -> str:
        if numba is None:
            return "numba is not installed (pip install repro[backends])"
        return f"numba {numba.__version__}"

    def _kernels(self) -> Tuple[Callable[..., None], Callable[..., None]]:
        if numba is None:
            raise BackendError(
                "the numba backend was selected but numba is not "
                "installed; install repro[backends] or pick another "
                "backend"
            )
        if self._compiled is None:
            jit: Dict[str, Any] = dict(parallel=True, nogil=True, cache=True)
            self._compiled = (
                numba.njit(**jit)(sim_chunk_kernel),
                numba.njit(**jit)(fixed_point_kernel),
            )
        return self._compiled
