"""Self-compiled C backend for the two hot kernels (``cnative``).

A transliteration of :mod:`repro.backends.calendar_kernels` to C,
compiled on demand with the system C compiler and loaded through
:mod:`ctypes` - no build-time artefacts ship with the package and no
new Python dependency is required, which is what makes this backend
usable in containers where ``numba`` cannot be installed.

The shared object is cached in a per-user temp directory keyed by the
SHA-256 of the C source plus the compiler command line, so the compiler
runs once per source revision per machine.  When no compiler is present
the backend simply reports itself unavailable and
:func:`repro.backends.resolve_backend` falls back to numpy.

Bit-compatibility: the C kernels consume the *same* per-lane splitmix64
streams as the interpreted/JIT calendar kernels (same constants, same
``floor(u53 * bound)`` draw, same bucket iteration order), so
``cnative`` and ``python`` produce identical counters for matched seeds
- the cross-backend tests pin exactly that, which is how the C code is
validated without numba in the container.
"""

from __future__ import annotations

import ctypes
import getpass
import hashlib
import os
import shutil
import subprocess
import tempfile
from pathlib import Path
from typing import Optional, Tuple

import numpy as np

from repro.typealiases import BoolArray, FloatArray, IntArray
from repro.errors import BackendError
from repro.backends.base import ComputeBackend, SimChunkState
from repro.backends.calendar_kernels import ring_size_for

__all__ = ["CNativeBackend"]

#: Override the shared-object cache directory (e.g. for hermetic CI).
ENV_CACHE_DIR = "REPRO_CNATIVE_CACHE"
#: Override the compiler executable (default: ``cc`` then ``gcc``).
ENV_CC = "REPRO_CC"

_P_MAX = 1.0 - 1e-15
_TAU_MIN = 1e-12
_TAU_MAX = 1.0 - 1e-12
_DAMPING = 0.5

_C_SOURCE = r"""
#include <stdint.h>
#include <stdlib.h>
#include <math.h>

/* splitmix64 (public domain, Vigna); must match calendar_kernels.py. */
static inline uint64_t sm64_next(uint64_t *state) {
    uint64_t z = (*state += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
}

/* floor(u53 * bound): identical construction (and bias) to the python
 * kernels and the numpy backend's uniform blocks. */
static inline int64_t draw_below(uint64_t *state, int64_t bound) {
    double u = (double)(sm64_next(state) >> 11) * (1.0 / 9007199254740992.0);
    return (int64_t)(u * (double)bound);
}

/* Calendar-queue DCF chunk; see calendar_kernels.sim_chunk_kernel for
 * the algorithm notes.  Returns 0, or 1 if an allocation failed (the
 * caller detects unfinished lanes via slots_done). */
int repro_sim_chunk(
    const int64_t *windows, int64_t batch, int64_t n,
    int64_t max_stage, int64_t target, int64_t ring_size,
    int64_t *stage, int64_t *counter,
    int64_t *attempts, int64_t *successes,
    int64_t *busy_count, int64_t *slots_done,
    uint64_t *rng_state)
{
    int failed = 0;
    int64_t lane;
#if defined(_OPENMP)
#pragma omp parallel for schedule(dynamic)
#endif
    for (lane = 0; lane < batch; lane++) {
        int64_t t = slots_done[lane];
        if (t >= target) continue;
        uint64_t s = rng_state[lane];
        const int64_t *W = windows + lane * n;
        int64_t *stg = stage + lane * n;
        int64_t *cnt = counter + lane * n;
        int64_t *att = attempts + lane * n;
        int64_t *suc = successes + lane * n;
        int64_t *head = (int64_t *)malloc(sizeof(int64_t) * (size_t)ring_size);
        int64_t *nxt = (int64_t *)malloc(sizeof(int64_t) * (size_t)n);
        int64_t *deadline = (int64_t *)malloc(sizeof(int64_t) * (size_t)n);
        int64_t *due = (int64_t *)malloc(sizeof(int64_t) * (size_t)n);
        if (!head || !nxt || !deadline || !due) {
            free(head); free(nxt); free(deadline); free(due);
            failed = 1;
            continue;
        }
        for (int64_t b = 0; b < ring_size; b++) head[b] = -1;
        for (int64_t i = 0; i < n; i++) {
            int64_t c = cnt[i];
            if (c < 0) c = draw_below(&s, W[i]);
            deadline[i] = t + c;
            int64_t b = deadline[i] % ring_size;
            nxt[i] = head[b];
            head[b] = i;
        }
        int64_t bucket = t % ring_size;
        int64_t busy = busy_count[lane];
        while (t < target) {
            int64_t i = head[bucket];
            if (i < 0) {
                t++;
                if (++bucket == ring_size) bucket = 0;
                continue;
            }
            /* Collect transmitters, then process in ascending node
             * order: chain order is push-order LIFO and depends on
             * where chunk boundaries fell, so a canonical order keeps
             * differently-chunked runs (and the python/numba kernels)
             * bit-identical. */
            int64_t k = 0;
            for (int64_t j = i; j >= 0; j = nxt[j]) due[k++] = j;
            for (int64_t a = 1; a < k; a++) {
                int64_t v = due[a];
                int64_t b = a - 1;
                while (b >= 0 && due[b] > v) { due[b + 1] = due[b]; b--; }
                due[b + 1] = v;
            }
            int success = (k == 1);
            head[bucket] = -1;
            for (int64_t a = 0; a < k; a++) {
                int64_t j = due[a];
                att[j] += 1;
                if (success) {
                    suc[j] += 1;
                    stg[j] = 0;
                } else {
                    int64_t st = stg[j] + 1;
                    if (st > max_stage) st = max_stage;
                    stg[j] = st;
                }
                int64_t bound = W[j] << stg[j];
                int64_t d = draw_below(&s, bound);
                deadline[j] = t + 1 + d;
                int64_t nb = deadline[j] % ring_size;
                nxt[j] = head[nb];
                head[nb] = j;
            }
            busy++;
            t++;
            if (++bucket == ring_size) bucket = 0;
        }
        busy_count[lane] = busy;
        slots_done[lane] = t;
        for (int64_t i = 0; i < n; i++) cnt[i] = deadline[i] - t;
        rng_state[lane] = s;
        free(head); free(nxt); free(deadline); free(due);
    }
    return failed;
}

/* Per-lane damped Bianchi fixed point; see
 * calendar_kernels.fixed_point_kernel. */
int repro_fixed_point(
    const double *windows, int64_t batch, int64_t n,
    int64_t max_stage, double tol, int64_t max_iterations,
    double damping, double p_max, double tau_min, double tau_max,
    double *tau, int64_t *iterations, int64_t *converged)
{
    int failed = 0;
    int64_t lane;
#if defined(_OPENMP)
#pragma omp parallel for schedule(dynamic)
#endif
    for (lane = 0; lane < batch; lane++) {
        const double *W = windows + lane * n;
        double *x = tau + lane * n;
        double *x_next = (double *)malloc(sizeof(double) * (size_t)n);
        if (!x_next) { failed = 1; continue; }
        int done = 0;
        int64_t it = 0;
        while (it < max_iterations && !done) {
            it++;
            double total = 0.0;
            for (int64_t i = 0; i < n; i++) total += log1p(-x[i]);
            double delta = 0.0;
            for (int64_t i = 0; i < n; i++) {
                double p = 1.0 - exp(total - log1p(-x[i]));
                if (p > p_max) p = p_max;
                if (p < 0.0) p = 0.0;
                double series = 0.0;
                double power = 1.0;
                for (int64_t j = 0; j < max_stage; j++) {
                    series += power;
                    power *= 2.0 * p;
                }
                double fp = 2.0 / (1.0 + W[i] + p * W[i] * series);
                double nx = x[i] + damping * (fp - x[i]);
                if (nx < tau_min) nx = tau_min;
                if (nx > tau_max) nx = tau_max;
                double d = fabs(nx - x[i]);
                if (d > delta) delta = d;
                x_next[i] = nx;
            }
            for (int64_t i = 0; i < n; i++) x[i] = x_next[i];
            if (delta < tol) done = 1;
        }
        iterations[lane] = it;
        converged[lane] = done;
        free(x_next);
    }
    return failed;
}
"""

_I64 = ctypes.POINTER(ctypes.c_int64)
_U64 = ctypes.POINTER(ctypes.c_uint64)
_F64 = ctypes.POINTER(ctypes.c_double)


def _find_compiler() -> Optional[str]:
    override = os.environ.get(ENV_CC)
    if override:
        return override if shutil.which(override) else None
    for candidate in ("cc", "gcc", "clang"):
        if shutil.which(candidate):
            return candidate
    return None


def _cache_dir() -> Path:
    override = os.environ.get(ENV_CACHE_DIR)
    if override:
        return Path(override)
    try:
        user = getpass.getuser()
    except (KeyError, OSError):  # pragma: no cover - no passwd entry
        user = str(os.getuid()) if hasattr(os, "getuid") else "user"
    return Path(tempfile.gettempdir()) / f"repro-cnative-{user}"


def _build_library(compiler: str) -> Path:
    """Compile (or reuse) the shared object; returns its path."""
    flags = ["-O3", "-fPIC", "-shared", "-lm"]
    key = hashlib.sha256(
        ("\x00".join([compiler, *flags, _C_SOURCE])).encode()
    ).hexdigest()[:16]
    cache = _cache_dir()
    library = cache / f"repro_kernels_{key}.so"
    if library.exists():
        return library
    cache.mkdir(parents=True, exist_ok=True)
    source = cache / f"repro_kernels_{key}.c"
    source.write_text(_C_SOURCE)
    # Build to a temp name then atomically rename, so concurrent
    # processes never load a half-written object.
    scratch = cache / f".build-{key}-{os.getpid()}.so"
    command = [compiler, str(source), "-o", str(scratch), *flags]
    try:
        completed = subprocess.run(
            command, capture_output=True, text=True, timeout=120
        )
    except (OSError, subprocess.TimeoutExpired) as error:
        raise BackendError(f"cnative build failed to run: {error}") from error
    if completed.returncode != 0:
        raise BackendError(
            "cnative build failed:\n"
            f"$ {' '.join(command)}\n{completed.stderr.strip()}"
        )
    os.replace(scratch, library)
    return library


class CNativeBackend(ComputeBackend):
    """C calendar-queue kernels compiled on demand via the system cc."""

    name = "cnative"
    deterministic = True
    matches_numpy = False
    supports_fixed_point = True

    def __init__(self) -> None:
        self._library: Optional[ctypes.CDLL] = None
        self._build_error: Optional[str] = None

    def available(self) -> bool:
        if self._library is not None:
            return True
        if self._build_error is not None:
            return False
        if _find_compiler() is None:
            self._build_error = "no C compiler found (cc/gcc/clang)"
            return False
        try:
            self._load()
        except BackendError as error:
            self._build_error = str(error)
            return False
        return True

    def availability_note(self) -> str:
        if self.available():
            return "C kernels built via the system compiler"
        return self._build_error or "unavailable"

    def _load(self) -> ctypes.CDLL:
        if self._library is None:
            compiler = _find_compiler()
            if compiler is None:
                raise BackendError(
                    "the cnative backend needs a C compiler (cc/gcc/clang) "
                    "on PATH"
                )
            library = ctypes.CDLL(str(_build_library(compiler)))
            library.repro_sim_chunk.restype = ctypes.c_int
            library.repro_sim_chunk.argtypes = [
                _I64, ctypes.c_int64, ctypes.c_int64,
                ctypes.c_int64, ctypes.c_int64, ctypes.c_int64,
                _I64, _I64, _I64, _I64, _I64, _I64, _U64,
            ]
            library.repro_fixed_point.restype = ctypes.c_int
            library.repro_fixed_point.argtypes = [
                _F64, ctypes.c_int64, ctypes.c_int64,
                ctypes.c_int64, ctypes.c_double, ctypes.c_int64,
                ctypes.c_double, ctypes.c_double, ctypes.c_double,
                ctypes.c_double, _F64, _I64, _I64,
            ]
            self._library = library
        return self._library

    def sim_chunk(
        self,
        windows: IntArray,
        max_stage: int,
        target_slots: int,
        state: SimChunkState,
    ) -> None:
        library = self._load()
        rng_state = np.ascontiguousarray(state.rng, dtype=np.uint64)
        state.rng = rng_state
        batch, n_nodes = windows.shape
        status = library.repro_sim_chunk(
            np.ascontiguousarray(windows).ctypes.data_as(_I64),
            batch,
            n_nodes,
            max_stage,
            target_slots,
            ring_size_for(windows, max_stage),
            state.stage.ctypes.data_as(_I64),
            state.counter.ctypes.data_as(_I64),
            state.attempts.ctypes.data_as(_I64),
            state.successes.ctypes.data_as(_I64),
            state.busy_count.ctypes.data_as(_I64),
            state.slots_done.ctypes.data_as(_I64),
            rng_state.ctypes.data_as(_U64),
        )
        if status != 0:  # pragma: no cover - malloc failure
            raise BackendError("cnative sim kernel ran out of memory")

    def solve_batch(
        self,
        windows: FloatArray,
        max_stage: int,
        *,
        tol: float,
        max_iterations: int,
        initial_tau: Optional[FloatArray] = None,
    ) -> Tuple[FloatArray, IntArray, BoolArray]:
        library = self._load()
        w = np.ascontiguousarray(windows, dtype=np.float64)
        batch, n_nodes = w.shape
        if initial_tau is not None:
            tau = np.ascontiguousarray(
                np.broadcast_to(
                    np.asarray(initial_tau, dtype=np.float64), w.shape
                ).copy()
            )
            np.clip(tau, _TAU_MIN, _TAU_MAX, out=tau)
        else:
            tau = np.full_like(w, 0.1)
        iterations = np.zeros(batch, dtype=np.int64)
        converged = np.zeros(batch, dtype=np.int64)
        status = library.repro_fixed_point(
            w.ctypes.data_as(_F64),
            batch,
            n_nodes,
            max_stage,
            tol,
            max_iterations,
            _DAMPING,
            _P_MAX,
            _TAU_MIN,
            _TAU_MAX,
            tau.ctypes.data_as(_F64),
            iterations.ctypes.data_as(_I64),
            converged.ctypes.data_as(_I64),
        )
        if status != 0:  # pragma: no cover - malloc failure
            raise BackendError("cnative fixed point ran out of memory")
        return tau, iterations, converged.astype(bool)
