"""Pluggable compute backends for the two hot kernels.

The vectorized DCF simulator (:func:`repro.sim.vectorized.run_batch`)
and the batched Bianchi solver
(:func:`repro.bianchi.batched.solve_heterogeneous_batch`) dispatch their
inner loops through a small registry of :class:`ComputeBackend`
implementations:

``numpy``
    The always-available reference (the original vectorized kernel,
    relocated).  Bit-identical to pre-backend releases for matched
    seeds.
``numba``
    JIT-compiled calendar-queue kernels, ``prange``-parallel over batch
    lanes.  Optional dependency (``pip install repro[backends]``);
    reports unavailable when numba is missing.
``cnative``
    The same calendar-queue kernels transliterated to C, compiled on
    demand with the system compiler and loaded via ctypes.  No Python
    dependency at all - available wherever a C compiler is.
``python``
    The calendar-queue kernels interpreted.  A debugging reference and
    the bit-compatibility anchor for ``numba``/``cnative``; slow.

Selection precedence (lowest to highest): built-in default (numpy), the
``REPRO_BACKEND`` environment variable, the CLI ``--backend`` flag, a
campaign spec's ``backend`` field.  Each layer simply overrides the
previous one; :func:`resolve_backend` then maps the final name to an
instance, falling back to numpy with a warning when the requested
backend is unavailable in this environment (``fallback=False`` turns
that into a :class:`~repro.errors.BackendError` instead).

The backend name never enters results-store digests: like the worker
count, it is a *speed* knob - every backend is pinned to the numpy
reference by equivalence tests, so results are interchangeable.
"""

from __future__ import annotations

import os
import warnings
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional

from repro.errors import BackendError
from repro.backends.array_api import get_namespace
from repro.backends.base import (
    COUNTER_UNSET,
    ComputeBackend,
    SimChunkState,
    lane_seeds,
)
from repro.backends.cnative_backend import CNativeBackend
from repro.backends.numba_backend import NumbaBackend, PurePythonBackend
from repro.backends.numpy_backend import NumpyBackend

__all__ = [
    "COUNTER_UNSET",
    "ComputeBackend",
    "DEFAULT_BACKEND",
    "ENV_BACKEND",
    "SimChunkState",
    "available_backends",
    "backend_names",
    "default_backend_name",
    "describe_backends",
    "get_backend",
    "get_namespace",
    "lane_seeds",
    "register_backend",
    "resolve_backend",
    "set_default_backend",
    "use_backend",
]

#: Environment variable consulted by :func:`default_backend_name`.
ENV_BACKEND = "REPRO_BACKEND"
#: The built-in default when nothing overrides it.
DEFAULT_BACKEND = "numpy"

_REGISTRY: Dict[str, ComputeBackend] = {}
#: Process-wide override installed by :func:`set_default_backend` (the
#: CLI flag lands here); ``None`` defers to the environment variable.
_DEFAULT_OVERRIDE: Optional[str] = None


def register_backend(backend: ComputeBackend) -> ComputeBackend:
    """Add ``backend`` to the registry (last registration wins).

    Third-party array libraries (a CuPy backend, say) register here and
    immediately become selectable by name through the environment
    variable, the CLI flag and campaign specs.
    """
    if not backend.name or backend.name == "abstract":
        raise BackendError("backends must define a non-default name")
    _REGISTRY[backend.name] = backend
    return backend


def backend_names() -> List[str]:
    """All registered backend names, registration order."""
    return list(_REGISTRY)


def available_backends() -> List[str]:
    """Names of the registered backends usable in this environment."""
    return [
        name
        for name, backend in _REGISTRY.items()
        if backend.available()
    ]


def describe_backends() -> Dict[str, str]:
    """Name -> human-readable availability note, for diagnostics."""
    return {
        name: backend.availability_note()
        for name, backend in _REGISTRY.items()
    }


def get_backend(name: str) -> ComputeBackend:
    """Return the registered backend called ``name`` (may be unavailable).

    Raises
    ------
    BackendError
        If no backend with that name is registered.
    """
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise BackendError(
            f"unknown compute backend {name!r}; registered: {known}"
        ) from None


def default_backend_name() -> str:
    """The effective default backend name for this process.

    A :func:`set_default_backend` override wins, then the
    ``REPRO_BACKEND`` environment variable, then :data:`DEFAULT_BACKEND`.
    """
    if _DEFAULT_OVERRIDE is not None:
        return _DEFAULT_OVERRIDE
    return os.environ.get(ENV_BACKEND, "").strip() or DEFAULT_BACKEND


def set_default_backend(name: Optional[str]) -> None:
    """Install (or with ``None`` clear) a process-wide default override.

    The name is validated against the registry immediately so typos fail
    at configuration time, not mid-campaign.
    """
    global _DEFAULT_OVERRIDE
    if name is not None:
        get_backend(name)
    _DEFAULT_OVERRIDE = name


@contextmanager
def use_backend(name: Optional[str]) -> Iterator[None]:
    """Scoped :func:`set_default_backend`; restores the prior override."""
    previous = _DEFAULT_OVERRIDE
    set_default_backend(name)
    try:
        yield
    finally:
        set_default_backend(previous)


def resolve_backend(
    name: Optional[str] = None, *, fallback: bool = True
) -> ComputeBackend:
    """Map a backend name (or the configured default) to an instance.

    An unknown name always raises - silently computing on the wrong
    backend is never acceptable.  A *known but unavailable* backend
    falls back to numpy with a warning when ``fallback`` is true (the
    graceful-degradation path for optional dependencies), and raises
    otherwise.
    """
    effective = (name or "").strip() or default_backend_name()
    backend = get_backend(effective)
    if backend.available():
        return backend
    if not fallback:
        raise BackendError(
            f"backend {effective!r} is unavailable: "
            f"{backend.availability_note()}"
        )
    warnings.warn(
        f"compute backend {effective!r} is unavailable "
        f"({backend.availability_note()}); falling back to numpy",
        RuntimeWarning,
        stacklevel=2,
    )
    return get_backend(DEFAULT_BACKEND)


register_backend(NumpyBackend())
register_backend(NumbaBackend())
register_backend(CNativeBackend())
register_backend(PurePythonBackend())
