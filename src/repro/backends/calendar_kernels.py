"""Calendar-queue DCF kernels shared by the python and numba backends.

The numpy kernel pays O(batch x n) array work per busy event; these
kernels replace it with a classic discrete-event *calendar queue* per
batch lane: each node stores an absolute transmission deadline, buckets
of a ring buffer hold the nodes due at each future slot, and advancing
one virtual slot is O(1) plus O(transmitters) - independent of ``n``.
Because every drawn backoff is strictly smaller than the ring size
``(max_window << max_stage) + 1``, the ``deadline % ring_size`` hash is
exact (no overflow chains), so the algorithm is an exact sampler of the
same ``(stage, counter)`` process as the reference engine.

Randomness is a per-lane `splitmix64`_ stream mapped to bounded integers
by ``floor(u53 * bound)`` - the same floor construction (and the same
O(bound / 2^53) bias) as the numpy kernel's uniform-block draws.  The
arithmetic is written with explicit ``numpy.uint64`` scalars so the
functions behave identically interpreted (python backend), JIT-compiled
(numba backend) and transliterated to C (cnative backend): the
cnative-vs-python bit-compatibility tests in
``tests/unit/test_backends.py`` pin all three to the same stream.

Everything here is ``numba.njit``-compatible: scalar loops, no closures,
no python objects.  ``prange`` resolves to :func:`numba.prange` when
numba is installed (a plain ``range`` alias while interpreted) and to
``range`` otherwise, so the same source serves both backends.

.. _splitmix64: https://prng.di.unimi.it/splitmix64.c
"""

from __future__ import annotations

import math

import numpy as np

from repro.typealiases import FloatArray, IntArray

try:  # pragma: no cover - exercised only where numba is installed
    from numba import prange  # type: ignore[import-untyped]
except ImportError:  # pragma: no cover - the container default
    prange = range  # type: ignore[assignment]

__all__ = ["fixed_point_kernel", "ring_size_for", "sim_chunk_kernel"]

#: Cache-entering analysis roots for ``repro.lint --deep`` (REPRO101):
#: results of the two hot kernels flow into digested store entries via
#: every calendar backend, so both must certify as transitively pure.
ANALYSIS_ROOTS = (
    "repro.backends.calendar_kernels.sim_chunk_kernel",
    "repro.backends.calendar_kernels.fixed_point_kernel",
)

# splitmix64 constants; uint64 scalars wrap exactly like C both under
# numba and in interpreted numpy (the python backend runs the kernels
# under ``errstate(over="ignore")`` to silence the wraparound warnings).
_SM_GAMMA = np.uint64(0x9E3779B97F4A7C15)
_SM_MUL1 = np.uint64(0xBF58476D1CE4E5B9)
_SM_MUL2 = np.uint64(0x94D049BB133111EB)
_SH30 = np.uint64(30)
_SH27 = np.uint64(27)
_SH31 = np.uint64(31)
_SH11 = np.uint64(11)
#: ``2**-53``: top 53 bits of the mix mapped to a uniform in ``[0, 1)``.
_INV_2_53 = 1.0 / 9007199254740992.0


def ring_size_for(windows: IntArray, max_stage: int) -> int:
    """Calendar ring size: one slot more than the largest backoff bound."""
    return (int(windows.max()) << max_stage) + 1


def sim_chunk_kernel(
    windows: IntArray,
    max_stage: int,
    target: int,
    ring_size: int,
    stage: IntArray,
    counter: IntArray,
    attempts: IntArray,
    successes: IntArray,
    busy_count: IntArray,
    slots_done: IntArray,
    rng_state: IntArray,
) -> None:
    """Advance every lane to ``target`` absolute slots (in place).

    ``counter`` entries below zero are initialised from the lane stream
    (the first-chunk sentinel); on return ``counter`` holds each node's
    remaining backoff so a later chunk resumes exactly.
    """
    batch, n = windows.shape
    for lane in prange(batch):
        t = slots_done[lane]
        if t >= target:
            continue
        s = rng_state[lane]
        head = np.full(ring_size, -1, np.int64)
        nxt = np.empty(n, np.int64)
        deadline = np.empty(n, np.int64)
        due = np.empty(n, np.int64)
        for i in range(n):
            c = counter[lane, i]
            if c < 0:
                s = s + _SM_GAMMA
                z = s
                z = (z ^ (z >> _SH30)) * _SM_MUL1
                z = (z ^ (z >> _SH27)) * _SM_MUL2
                z = z ^ (z >> _SH31)
                u = np.float64(z >> _SH11) * _INV_2_53
                c = np.int64(u * np.float64(windows[lane, i]))
            deadline[i] = t + c
            b = deadline[i] % ring_size
            nxt[i] = head[b]
            head[b] = i
        bucket = t % ring_size
        busy = busy_count[lane]
        while t < target:
            i = head[bucket]
            if i < 0:
                t += 1
                bucket += 1
                if bucket == ring_size:
                    bucket = 0
                continue
            # Collect this slot's transmitters and process them in
            # ascending node order: bucket chains are LIFO in *push*
            # order, which depends on where chunk boundaries fell, so a
            # canonical order is what keeps differently-chunked runs
            # (and the C transliteration) bit-identical.
            k = 0
            j = i
            while j >= 0:
                due[k] = j
                k += 1
                j = nxt[j]
            for a in range(1, k):
                v = due[a]
                b = a - 1
                while b >= 0 and due[b] > v:
                    due[b + 1] = due[b]
                    b -= 1
                due[b + 1] = v
            success = k == 1
            head[bucket] = -1
            for a in range(k):
                j = due[a]
                attempts[lane, j] += 1
                if success:
                    successes[lane, j] += 1
                    stage[lane, j] = 0
                else:
                    st = stage[lane, j] + 1
                    if st > max_stage:
                        st = max_stage
                    stage[lane, j] = st
                bound = windows[lane, j] << stage[lane, j]
                s = s + _SM_GAMMA
                z = s
                z = (z ^ (z >> _SH30)) * _SM_MUL1
                z = (z ^ (z >> _SH27)) * _SM_MUL2
                z = z ^ (z >> _SH31)
                u = np.float64(z >> _SH11) * _INV_2_53
                d = np.int64(u * np.float64(bound))
                deadline[j] = t + 1 + d
                nb = deadline[j] % ring_size
                nxt[j] = head[nb]
                head[nb] = j
            busy += 1
            t += 1
            bucket += 1
            if bucket == ring_size:
                bucket = 0
        busy_count[lane] = busy
        slots_done[lane] = t
        for i in range(n):
            counter[lane, i] = deadline[i] - t
        rng_state[lane] = s


def fixed_point_kernel(
    windows: FloatArray,
    max_stage: int,
    tol: float,
    max_iterations: int,
    damping: float,
    p_max: float,
    tau_min: float,
    tau_max: float,
    tau: FloatArray,
    iterations: IntArray,
    converged: IntArray,
) -> None:
    """Per-lane damped Bianchi fixed point on ``(B, n)`` arrays.

    The plain damped iteration of the scalar reference solver, one lane
    per ``prange`` index: coupling through the ``log1p``-sum leave-one-
    out product, ``tau(W, p)`` through the geometric series of paper
    equation (2).  ``tau`` is the warm start on entry and the solution
    on exit; lanes that exhaust the budget report ``converged == 0`` and
    are finished on the numpy path by the caller.
    """
    batch, n = windows.shape
    for lane in prange(batch):
        x = np.empty(n, np.float64)
        x_next = np.empty(n, np.float64)
        for i in range(n):
            x[i] = tau[lane, i]
        done = False
        it = 0
        while it < max_iterations and not done:
            it += 1
            total = 0.0
            for i in range(n):
                total += math.log1p(-x[i])
            delta = 0.0
            for i in range(n):
                p = 1.0 - math.exp(total - math.log1p(-x[i]))
                if p > p_max:
                    p = p_max
                if p < 0.0:
                    p = 0.0
                series = 0.0
                power = 1.0
                for _ in range(max_stage):
                    series += power
                    power *= 2.0 * p
                w = windows[lane, i]
                fp = 2.0 / (1.0 + w + p * w * series)
                nx = x[i] + damping * (fp - x[i])
                if nx < tau_min:
                    nx = tau_min
                if nx > tau_max:
                    nx = tau_max
                d = abs(nx - x[i])
                if d > delta:
                    delta = d
                x_next[i] = nx
            for i in range(n):
                x[i] = x_next[i]
            if delta < tol:
                done = True
        for i in range(n):
            tau[lane, i] = x[i]
        iterations[lane] = it
        converged[lane] = 1 if done else 0
