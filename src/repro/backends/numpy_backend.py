"""Reference numpy backend: the vectorized SoA kernel, unchanged math.

This is the batched struct-of-arrays kernel PR 1 introduced, relocated
behind the chunked :class:`~repro.backends.base.ComputeBackend` protocol.
For a single chunk covering the whole slot budget it consumes the random
stream in exactly the order the pre-backend ``run_batch`` did, so every
seeded artefact (golden snapshots, Tables II/III, Figure sweeps) is
bit-identical to earlier revisions.

The fixed point is *not* implemented here: the numpy solve path lives in
:mod:`repro.bianchi.batched` (Anderson acceleration plus Newton
fallback) and is what every other backend is pinned against.
"""

from __future__ import annotations

import numpy as np

from repro.typealiases import IntArray
from repro.backends.base import (
    COUNTER_UNSET,
    ComputeBackend,
    SeedLike,
    SimChunkState,
)

__all__ = ["NumpyBackend"]


class NumpyBackend(ComputeBackend):
    """The always-available reference backend (pure numpy)."""

    name = "numpy"
    deterministic = True
    matches_numpy = True
    supports_fixed_point = False

    def availability_note(self) -> str:
        return "always available (reference)"

    def init_sim_rng(self, seed: SeedLike, batch: int) -> object:
        return np.random.default_rng(seed)

    def sim_chunk(
        self,
        windows: IntArray,
        max_stage: int,
        target_slots: int,
        state: SimChunkState,
    ) -> None:
        rng = state.rng
        assert isinstance(rng, np.random.Generator)
        batch, n_nodes = windows.shape
        stage = state.stage
        counter = state.counter
        attempts = state.attempts
        successes = state.successes
        slots_done = state.slots_done

        if counter[0, 0] == COUNTER_UNSET:
            # First chunk: one vectorized uniform draw per node, exactly
            # the initial-backoff draw of the pre-backend kernel.
            counter[...] = rng.integers(0, windows, dtype=np.int64)

        # Flat views share memory with the 2-D state; scatter updates for
        # the (few) transmitters per slot avoid full-array np.where
        # temporaries.
        counter_flat = counter.ravel()
        stage_flat = stage.ravel()
        window_flat = windows.ravel()
        attempts_flat = attempts.ravel()
        successes_flat = successes.ravel()

        # Backoff redraws consume one pre-drawn block of uniforms at a
        # time; ``floor(u * bound)`` on float64 uniforms is uniform on
        # ``{0, ..., bound-1}`` up to O(bound / 2^53) bias - immaterial
        # next to the Monte-Carlo noise of any finite run.
        block_size = max(1 << 16, 4 * batch * n_nodes)
        uniform_block = rng.random(block_size)
        block_pos = 0

        # --------------------------------------------------------------
        # Fast path: every replica is mid-run, so no per-replica masking
        # is needed - each iteration advances the whole batch by one idle
        # jump plus one busy slot with ~20 full-vector ops.
        # --------------------------------------------------------------
        fast_iterations = 0
        while True:
            jump = counter.min(axis=1)
            if np.any(jump >= target_slots - slots_done):
                break  # some replica exhausts its budget: tail path
            ready_idx = np.flatnonzero(counter == jump[:, np.newaxis])
            rows = ready_idx // n_nodes
            success_flags = np.bincount(rows, minlength=batch)[rows] == 1

            # A node index appears at most once per slot, so plain fancy
            # increments are safe (no np.add.at needed).
            attempts_flat[ready_idx] += 1
            successes_flat[ready_idx[success_flags]] += 1

            new_stage = np.minimum(stage_flat[ready_idx] + 1, max_stage)
            new_stage[success_flags] = 0
            stage_flat[ready_idx] = new_stage
            bounds = window_flat[ready_idx] << new_stage

            k = ready_idx.size
            if block_pos + k > block_size:
                uniform_block = rng.random(block_size)
                block_pos = 0
            draws = (
                uniform_block[block_pos : block_pos + k] * bounds
            ).astype(np.int64)
            block_pos += k

            jump_plus = jump + 1
            counter -= jump_plus[:, np.newaxis]
            counter_flat[ready_idx] = draws
            slots_done += jump_plus
            fast_iterations += 1
        state.busy_count += fast_iterations

        # --------------------------------------------------------------
        # Tail path: replicas finish at different events; mask the
        # stragglers.  At most a handful of iterations for homogeneous
        # slot budgets.
        # --------------------------------------------------------------
        active = slots_done < target_slots
        while active.any():
            jump = counter[active].min(axis=1)
            idle = np.minimum(jump, target_slots - slots_done[active])
            counter[active] -= idle[:, np.newaxis]
            slots_done[active] += idle

            # Replicas that still owe slots now have some counter at zero.
            busy = np.flatnonzero(slots_done < target_slots)
            if busy.size == 0:
                break
            sub_counter = counter[busy]
            ready = sub_counter == 0
            success = ready.sum(axis=1) == 1
            success_col = success[:, np.newaxis]
            attempts[busy] += ready
            successes[busy] += ready & success_col

            sub_stage = stage[busy]
            sub_stage = np.where(
                ready,
                np.where(
                    success_col, 0, np.minimum(sub_stage + 1, max_stage)
                ),
                sub_stage,
            )
            stage[busy] = sub_stage

            stage_window = windows[busy] << sub_stage
            draws = rng.integers(0, stage_window[ready], dtype=np.int64)
            new_counter = sub_counter - 1
            new_counter[ready] = draws
            counter[busy] = new_counter

            state.busy_count[busy] += 1
            slots_done[busy] += 1
            active = slots_done < target_slots
