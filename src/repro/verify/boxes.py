"""Bounded parameter boxes the verification claims quantify over.

A :class:`ParameterBox` is an axis-aligned region of the model space
``(n, W, m, g, e, sigma, Ts, Tc)``: integer ranges for the network size
``n`` and a fixed backoff ladder depth ``m``, closed float intervals for
the window and the utility/timing constants.  Claims are certified *for
every point of the box* (interval subdivision / SMT universal queries)
and differentially spot-checked at the box vertices against the numeric
stack.

The built-in presets anchor the paper's evaluation: the ``tableII`` /
``tableIII`` family pins the Table I constants (slot times derived from
:func:`repro.phy.timing.slot_times`, never hand-copied) and spans the
published network sizes ``n in {5, 20, 50}``; the ``-small`` variants
restrict to ``n = 5`` and a modest window range so CI certifies them in
seconds.  Boxes round-trip through canonical dicts so certificates and
regression scenarios can embed them.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Any, Dict, Mapping, Tuple

from repro.errors import VerificationError
from repro.phy.parameters import AccessMode, default_parameters
from repro.phy.timing import SlotTimes, slot_times
from repro.verify.interval import Interval

__all__ = [
    "BOX_NAMES",
    "ParameterBox",
    "builtin_boxes",
    "get_box",
]

#: Dimensions that may be degenerate (lo == hi) or genuine intervals.
_REAL_DIMS = ("w", "gain", "cost", "sigma", "ts", "tc")


@dataclass(frozen=True)
class ParameterBox:
    """One axis-aligned box of model parameters.

    ``n_lo <= n <= n_hi`` (integers), ``m`` fixed, and closed float
    ranges for the window ``w``, utility constants ``gain``/``cost`` and
    slot times ``sigma``/``ts``/``tc``.  ``mode`` labels which access
    mode the timing ranges were derived from.
    """

    name: str
    mode: str
    n_lo: int
    n_hi: int
    m: int
    w_lo: float
    w_hi: float
    gain_lo: float
    gain_hi: float
    cost_lo: float
    cost_hi: float
    sigma_lo: float
    sigma_hi: float
    ts_lo: float
    ts_hi: float
    tc_lo: float
    tc_hi: float

    def __post_init__(self) -> None:
        if self.mode not in ("basic", "rts_cts"):
            raise VerificationError(
                f"mode must be 'basic' or 'rts_cts', got {self.mode!r}"
            )
        if self.n_lo < 2 or self.n_hi < self.n_lo:
            raise VerificationError(
                f"need 2 <= n_lo <= n_hi, got [{self.n_lo}, {self.n_hi}]"
            )
        if self.m < 0:
            raise VerificationError(f"m must be >= 0, got {self.m!r}")
        for dim in _REAL_DIMS:
            lo = getattr(self, f"{dim}_lo")
            hi = getattr(self, f"{dim}_hi")
            if not lo <= hi:
                raise VerificationError(
                    f"{dim} range [{lo!r}, {hi!r}] is empty"
                )
        if self.w_lo < 1.0:
            raise VerificationError(
                f"window range must start at >= 1, got {self.w_lo!r}"
            )
        if self.cost_lo < 0.0 or self.cost_hi >= self.gain_lo:
            raise VerificationError(
                "cost range must satisfy 0 <= e < g everywhere in the box"
            )
        for dim in ("sigma", "ts", "tc"):
            if getattr(self, f"{dim}_lo") <= 0.0:
                raise VerificationError(f"{dim} must be positive")

    # -- accessors ----------------------------------------------------

    def interval(self, dim: str) -> Interval:
        """The closed range of one real dimension as an :class:`Interval`."""
        if dim not in _REAL_DIMS:
            raise VerificationError(
                f"unknown box dimension {dim!r}; expected one of {_REAL_DIMS}"
            )
        return Interval(getattr(self, f"{dim}_lo"), getattr(self, f"{dim}_hi"))

    def n_values(self, *, max_values: int = 5) -> Tuple[int, ...]:
        """Representative network sizes: endpoints plus an even interior grid.

        Claims quantify per integer ``n`` (the polynomial degree depends
        on it), so wide boxes are sampled at up to ``max_values``
        deterministic sizes including both endpoints.
        """
        if max_values < 1:
            raise VerificationError(
                f"max_values must be >= 1, got {max_values!r}"
            )
        span = self.n_hi - self.n_lo
        if span + 1 <= max_values:
            return tuple(range(self.n_lo, self.n_hi + 1))
        picks = sorted(
            {
                self.n_lo + round(span * k / (max_values - 1))
                for k in range(max_values)
            }
        )
        return tuple(int(v) for v in picks)

    def slot_times_at(
        self, sigma: float, ts: float, tc: float
    ) -> SlotTimes:
        """Materialise a :class:`SlotTimes` for one timing point."""
        return SlotTimes(
            success_us=ts,
            collision_us=tc,
            idle_us=sigma,
            mode=AccessMode(self.mode),
        )

    def vertices(self, *, max_vertices: int = 64) -> Tuple[Dict[str, float], ...]:
        """All corner points of the box as flat parameter dicts.

        The cartesian product of ``{lo, hi}`` over every non-degenerate
        dimension (degenerate dimensions contribute their single value),
        crossed with the endpoint network sizes.  Deterministically
        subsampled to ``max_vertices`` with an even stride when the full
        corner set is larger.
        """
        corner_axes = []
        for dim in _REAL_DIMS:
            lo = getattr(self, f"{dim}_lo")
            hi = getattr(self, f"{dim}_hi")
            corner_axes.append((dim, (lo,) if lo >= hi else (lo, hi)))
        n_ends = (
            (self.n_lo,) if self.n_lo == self.n_hi else (self.n_lo, self.n_hi)
        )
        points = []
        for n in n_ends:
            partial: Tuple[Dict[str, float], ...] = ({"n": float(n), "m": float(self.m)},)
            for dim, ends in corner_axes:
                partial = tuple(
                    {**point, dim: value}
                    for point in partial
                    for value in ends
                )
            points.extend(partial)
        if len(points) > max_vertices:
            stride = len(points) / max_vertices
            points = [points[int(i * stride)] for i in range(max_vertices)]
        return tuple(points)

    # -- serialization ------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """Canonical plain-dict form (embedded in certificates/scenarios)."""
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @staticmethod
    def from_dict(document: Mapping[str, Any]) -> "ParameterBox":
        """Rebuild a box from :meth:`to_dict` output."""
        expected = {f.name for f in fields(ParameterBox)}
        missing = sorted(expected - set(document))
        unknown = sorted(set(document) - expected)
        if missing or unknown:
            raise VerificationError(
                f"malformed box document: missing {missing}, unknown {unknown}"
            )
        try:
            return ParameterBox(**{key: document[key] for key in expected})
        except TypeError as exc:  # pragma: no cover - defensive
            raise VerificationError(f"malformed box document: {exc}") from exc


def _preset(
    name: str,
    mode: str,
    n_lo: int,
    n_hi: int,
    w_hi: float,
    *,
    gain: Tuple[float, float],
    cost: Tuple[float, float],
    timing_slack: float,
) -> ParameterBox:
    """Build a preset anchored to the Table I constants.

    Slot times come from the production :func:`slot_times` derivation
    (never hand-copied numbers) and are widened symmetrically by
    ``timing_slack`` (a fraction) for the non-small boxes.
    """
    params = default_parameters()
    times = slot_times(params, AccessMode(mode))

    def band(value: float) -> Tuple[float, float]:
        return value * (1.0 - timing_slack), value * (1.0 + timing_slack)

    sigma_lo, sigma_hi = band(times.idle_us)
    ts_lo, ts_hi = band(times.success_us)
    tc_lo, tc_hi = band(times.collision_us)
    return ParameterBox(
        name=name,
        mode=mode,
        n_lo=n_lo,
        n_hi=n_hi,
        m=params.max_backoff_stage,
        w_lo=2.0,
        w_hi=w_hi,
        gain_lo=gain[0],
        gain_hi=gain[1],
        cost_lo=cost[0],
        cost_hi=cost[1],
        sigma_lo=sigma_lo,
        sigma_hi=sigma_hi,
        ts_lo=ts_lo,
        ts_hi=ts_hi,
        tc_lo=tc_lo,
        tc_hi=tc_hi,
    )


def builtin_boxes() -> Dict[str, ParameterBox]:
    """The built-in parameter boxes, keyed by name.

    ``tableII-small`` / ``tableIII-small`` pin the exact Table I point
    (``n = 5``, degenerate constants) with a CI-sized window range;
    ``tableII`` / ``tableIII`` span ``n in [5, 50]``, a band of utility
    constants around ``g = 1, e = 0.01`` and 2% timing slack;
    ``multihop-small`` covers the small local-domain sizes of the
    Theorem 3 multi-hop analysis.
    """
    params = default_parameters()
    point_gain = (params.gain, params.gain)
    point_cost = (params.cost, params.cost)
    boxes = (
        _preset(
            "tableII-small", "basic", 5, 5, 256.0,
            gain=point_gain, cost=point_cost, timing_slack=0.0,
        ),
        _preset(
            "tableII", "basic", 5, 50, 1024.0,
            gain=(0.9, 1.1), cost=(0.005, 0.02), timing_slack=0.02,
        ),
        _preset(
            "tableIII-small", "rts_cts", 5, 5, 64.0,
            gain=point_gain, cost=point_cost, timing_slack=0.0,
        ),
        _preset(
            "tableIII", "rts_cts", 5, 50, 256.0,
            gain=(0.9, 1.1), cost=(0.005, 0.02), timing_slack=0.02,
        ),
        _preset(
            "multihop-small", "basic", 2, 6, 256.0,
            gain=point_gain, cost=point_cost, timing_slack=0.0,
        ),
    )
    return {box.name: box for box in boxes}


#: Names of the built-in boxes, sorted for help texts.
BOX_NAMES: Tuple[str, ...] = tuple(sorted(builtin_boxes()))


def get_box(name: str) -> ParameterBox:
    """Look up a built-in box by name.

    Raises
    ------
    VerificationError
        When ``name`` is not a built-in box.
    """
    boxes = builtin_boxes()
    if name not in boxes:
        raise VerificationError(
            f"unknown box {name!r}; expected one of {BOX_NAMES}"
        )
    return boxes[name]
