"""Dependency-free interval arithmetic and forward-mode duals.

This module is the fallback prover of :mod:`repro.verify`: when z3 is
not installed, claims are still checked - more coarsely - by evaluating
the same polynomial encodings (:mod:`repro.verify.encodings`) over
:class:`Interval` operands and adaptively subdividing a parameter box
until the sign of the target expression is decided on every sub-box.

Soundness discipline
--------------------
Every arithmetic operation widens its result outward by one ulp with
:func:`math.nextafter` after computing the float endpoints in
round-to-nearest.  A single IEEE-754 operation in round-to-nearest is
off by at most one ulp from the true real value, so the widened
endpoints bracket the exact real-arithmetic result; composition
preserves the enclosure inductively.  The enclosures are therefore
*conservative*: ``prove_sign_on_box`` can answer "unknown" but never
falsely "proved".

:class:`Dual` layers forward-mode differentiation on top: a dual number
``(value, derivative)`` whose payloads are floats or Intervals, so one
set of generic encodings yields guaranteed derivative enclosures (used
to prove strict monotonicity, e.g. Lemma 3 uniqueness via ``Q' < 0``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Optional, Tuple, Union

from repro.errors import VerificationError

__all__ = [
    "BoxProof",
    "Dual",
    "Interval",
    "prove_sign_on_box",
]

_INF = math.inf


def _down(x: float) -> float:
    """One ulp towards -inf (identity on infinities)."""
    if math.isinf(x):
        return x
    return math.nextafter(x, -_INF)


def _up(x: float) -> float:
    """One ulp towards +inf (identity on infinities)."""
    if math.isinf(x):
        return x
    return math.nextafter(x, _INF)


@dataclass(frozen=True)
class Interval:
    """A closed real interval ``[lo, hi]`` with outward-rounded ops."""

    lo: float
    hi: float

    def __post_init__(self) -> None:
        if math.isnan(self.lo) or math.isnan(self.hi):
            raise VerificationError("interval endpoints must not be NaN")
        if self.lo > self.hi:
            raise VerificationError(
                f"interval lower bound {self.lo!r} exceeds upper {self.hi!r}"
            )

    # -- constructors -------------------------------------------------

    @staticmethod
    def point(value: float) -> "Interval":
        """The degenerate interval ``[value, value]``."""
        return Interval(float(value), float(value))

    @staticmethod
    def hull(*values: float) -> "Interval":
        """The smallest interval containing all ``values``."""
        if not values:
            raise VerificationError("hull of no points is undefined")
        return Interval(min(values), max(values))

    @staticmethod
    def _coerce(value: Union["Interval", float, int]) -> "Interval":
        if isinstance(value, Interval):
            return value
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise VerificationError(
                f"cannot coerce {value!r} to an interval"
            )
        return Interval.point(float(value))

    # -- geometry -----------------------------------------------------

    @property
    def width(self) -> float:
        return self.hi - self.lo

    @property
    def midpoint(self) -> float:
        mid = 0.5 * (self.lo + self.hi)
        if not math.isfinite(mid):
            mid = 0.5 * self.lo + 0.5 * self.hi
        return min(max(mid, self.lo), self.hi)

    @property
    def is_point(self) -> bool:
        return self.width <= 0.0

    @property
    def strictly_positive(self) -> bool:
        return self.lo > 0.0

    @property
    def strictly_negative(self) -> bool:
        return self.hi < 0.0

    def __contains__(self, value: float) -> bool:
        return self.lo <= float(value) <= self.hi

    def split(self) -> Tuple["Interval", "Interval"]:
        """Bisect at the midpoint."""
        mid = self.midpoint
        return Interval(self.lo, mid), Interval(mid, self.hi)

    # -- arithmetic ---------------------------------------------------

    def __neg__(self) -> "Interval":
        return Interval(-self.hi, -self.lo)

    def __add__(self, other: Union["Interval", float, int]) -> "Interval":
        o = Interval._coerce(other)
        return Interval(_down(self.lo + o.lo), _up(self.hi + o.hi))

    def __radd__(self, other: Union[float, int]) -> "Interval":
        return self.__add__(other)

    def __sub__(self, other: Union["Interval", float, int]) -> "Interval":
        o = Interval._coerce(other)
        return Interval(_down(self.lo - o.hi), _up(self.hi - o.lo))

    def __rsub__(self, other: Union[float, int]) -> "Interval":
        return Interval._coerce(other).__sub__(self)

    def __mul__(self, other: Union["Interval", float, int]) -> "Interval":
        o = Interval._coerce(other)
        products = (
            self.lo * o.lo,
            self.lo * o.hi,
            self.hi * o.lo,
            self.hi * o.hi,
        )
        return Interval(_down(min(products)), _up(max(products)))

    def __rmul__(self, other: Union[float, int]) -> "Interval":
        return self.__mul__(other)

    def __truediv__(self, other: Union["Interval", float, int]) -> "Interval":
        o = Interval._coerce(other)
        if o.lo <= 0.0 <= o.hi:
            raise VerificationError(
                f"interval division by {o!r} which contains zero"
            )
        quotients = (
            self.lo / o.lo,
            self.lo / o.hi,
            self.hi / o.lo,
            self.hi / o.hi,
        )
        return Interval(_down(min(quotients)), _up(max(quotients)))

    def __rtruediv__(self, other: Union[float, int]) -> "Interval":
        return Interval._coerce(other).__truediv__(self)

    def __pow__(self, exponent: int) -> "Interval":
        if isinstance(exponent, bool) or not isinstance(exponent, int):
            raise VerificationError(
                f"interval powers require integer exponents, got {exponent!r}"
            )
        if exponent < 0:
            raise VerificationError(
                "negative interval exponents are not supported"
            )
        if exponent == 0:
            return Interval.point(1.0)
        result = self
        for _ in range(exponent - 1):
            result = result * self
        if exponent % 2 == 0 and self.lo <= 0.0 <= self.hi:
            # An even power of a zero-straddling interval is nonnegative;
            # repeated multiplication loses that, so clamp the floor.
            result = Interval(max(result.lo, 0.0), max(result.hi, 0.0))
        return result


_Scalar = Union[float, int]
_Payload = Union[float, Interval]


def _zero_like(payload: _Payload) -> _Payload:
    if isinstance(payload, Interval):
        return Interval.point(0.0)
    return 0.0


@dataclass(frozen=True)
class Dual:
    """Forward-mode dual number generic over float/Interval payloads."""

    val: _Payload
    der: _Payload

    @staticmethod
    def variable(value: _Payload) -> "Dual":
        """The differentiation variable: derivative one."""
        one: _Payload
        if isinstance(value, Interval):
            one = Interval.point(1.0)
        else:
            one = 1.0
        return Dual(value, one)

    @staticmethod
    def constant(value: _Payload) -> "Dual":
        return Dual(value, _zero_like(value))

    def _coerce(self, other: Union["Dual", _Scalar, Interval]) -> "Dual":
        if isinstance(other, Dual):
            return other
        if isinstance(other, Interval):
            return Dual(other, _zero_like(self.val))
        if isinstance(other, bool) or not isinstance(other, (int, float)):
            raise VerificationError(f"cannot coerce {other!r} to a dual")
        if isinstance(self.val, Interval):
            return Dual(Interval.point(float(other)), Interval.point(0.0))
        return Dual(float(other), 0.0)

    def __neg__(self) -> "Dual":
        return Dual(-self.val, -self.der)

    def __add__(self, other: Union["Dual", _Scalar, Interval]) -> "Dual":
        o = self._coerce(other)
        return Dual(self.val + o.val, self.der + o.der)

    def __radd__(self, other: _Scalar) -> "Dual":
        return self.__add__(other)

    def __sub__(self, other: Union["Dual", _Scalar, Interval]) -> "Dual":
        o = self._coerce(other)
        return Dual(self.val - o.val, self.der - o.der)

    def __rsub__(self, other: _Scalar) -> "Dual":
        return self._coerce(other).__sub__(self)

    def __mul__(self, other: Union["Dual", _Scalar, Interval]) -> "Dual":
        o = self._coerce(other)
        return Dual(
            self.val * o.val,
            self.der * o.val + self.val * o.der,
        )

    def __rmul__(self, other: _Scalar) -> "Dual":
        return self.__mul__(other)

    def __pow__(self, exponent: int) -> "Dual":
        if isinstance(exponent, bool) or not isinstance(exponent, int):
            raise VerificationError(
                f"dual powers require integer exponents, got {exponent!r}"
            )
        if exponent < 0:
            raise VerificationError(
                "negative dual exponents are not supported"
            )
        if exponent == 0:
            one = 1.0 + _zero_like(self.val)
            return Dual(one, _zero_like(self.val))
        result = self
        for _ in range(exponent - 1):
            result = result * self
        return result


@dataclass(frozen=True)
class BoxProof:
    """Outcome of an adaptive sign proof over a parameter box.

    ``status`` is ``"proved"`` (the sign condition holds on the whole
    box), ``"counterexample"`` (a concrete float point violating the
    condition was found - recorded in ``counterexample`` together with
    the violating ``witness_value``), or ``"unknown"`` (the subdivision
    budget ran out before every sub-box was decided; no violation was
    observed).
    """

    status: str
    boxes_proved: int
    boxes_unknown: int
    deepest_split: int
    counterexample: Optional[Dict[str, float]] = None
    witness_value: Optional[float] = None


def _violates(value: float, positive: bool) -> bool:
    return value <= 0.0 if positive else value >= 0.0


def prove_sign_on_box(
    evaluate: Callable[[Mapping[str, Interval]], Interval],
    dims: Mapping[str, Interval],
    *,
    positive: bool,
    max_boxes: int = 20000,
    min_rel_width: float = 1e-4,
) -> BoxProof:
    """Prove ``evaluate(box) > 0`` (or ``< 0``) over a parameter box.

    ``evaluate`` maps named :class:`Interval` coordinates to an interval
    enclosure of the target expression.  The prover bisects the widest
    remaining dimension until each sub-box either certifies the sign,
    shrinks below ``min_rel_width`` of its original width (then the
    float midpoint is tested: a strict violation becomes a
    counterexample, otherwise the sub-box is left "unknown"), or the
    ``max_boxes`` work budget is exhausted.

    Deterministic: subdivision order is a fixed depth-first traversal
    and no randomness is involved, so identical inputs always yield the
    identical proof object.
    """
    if not dims:
        raise VerificationError("cannot prove a sign over an empty box")
    names = sorted(dims)
    original_width = {
        name: max(dims[name].width, 1e-12) for name in names
    }
    stack: List[Tuple[Dict[str, Interval], int]] = [
        ({name: dims[name] for name in names}, 0)
    ]
    proved = 0
    unknown = 0
    deepest = 0
    examined = 0
    while stack:
        box, depth = stack.pop()
        examined += 1
        deepest = max(deepest, depth)
        if examined > max_boxes:
            # Budget exhausted: everything still on the stack is unknown.
            unknown += 1 + len(stack)
            break
        enclosure = evaluate(box)
        if (positive and enclosure.strictly_positive) or (
            not positive and enclosure.strictly_negative
        ):
            proved += 1
            continue
        # Probe the float midpoint for a concrete violation before
        # deciding whether to keep splitting.
        midpoint = {
            name: Interval.point(box[name].midpoint) for name in names
        }
        probe = evaluate(midpoint)
        if _violates(probe.midpoint, positive):
            point = {name: box[name].midpoint for name in names}
            return BoxProof(
                status="counterexample",
                boxes_proved=proved,
                boxes_unknown=unknown,
                deepest_split=deepest,
                counterexample=point,
                witness_value=probe.midpoint,
            )
        widest = max(
            names,
            key=lambda name: box[name].width / original_width[name],
        )
        rel = box[widest].width / original_width[widest]
        if rel <= min_rel_width or box[widest].is_point:
            unknown += 1
            continue
        low, high = box[widest].split()
        stack.append(({**box, widest: high}, depth + 1))
        stack.append(({**box, widest: low}, depth + 1))
    status = "proved" if unknown == 0 else "unknown"
    return BoxProof(
        status=status,
        boxes_proved=proved,
        boxes_unknown=unknown,
        deepest_split=deepest,
    )
