"""Certification driver: run the checkers, assemble JSON certificates.

:func:`certify_claim` runs the requested checkers (``interval``,
``smt``, ``numeric``) of one claim over one box and folds their
outcomes into a :class:`Certificate` - a JSON-serialisable record of
what was proved, what was skipped, and every concrete counterexample
point found.  Status semantics:

* ``counterexample`` - some checker produced a concrete violating
  parameter point (the scenario pipeline turns each into a pinned
  regression test).
* ``certified`` - every checker that ran passed, and at least one
  *whole-box* checker (interval proof or SMT ``unsat``) succeeded.
* ``checked`` - the checkers that ran passed, but none covered the
  whole box (e.g. only the vertex differential ran, or the interval
  budget left sub-boxes unknown and z3 was absent).
* ``skipped`` - nothing ran (e.g. ``--checkers smt`` without z3).

Every run is traced through :mod:`repro.obs` spans and counters so
certificates can ship an optional run profile.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro import obs
from repro.errors import VerificationError
from repro.verify.boxes import ParameterBox
from repro.verify.claims import (
    CLAIMS,
    CheckBudget,
    Claim,
    claims_for,
)
from repro.verify.smt import run_query, z3_available

__all__ = [
    "Certificate",
    "CheckOutcome",
    "CHECKER_NAMES",
    "VertexComparison",
    "certify_claim",
    "run_certification",
]

#: The recognised checker names, in execution order.
CHECKER_NAMES: Tuple[str, ...] = ("interval", "smt", "numeric")


@dataclass(frozen=True)
class CheckOutcome:
    """Result of one checker sub-step.

    ``verdict`` is one of ``"proved"``, ``"violated"``, ``"unknown"``
    or ``"skipped"``; ``counterexample`` holds the concrete float point
    for ``"violated"``.
    """

    checker: str
    label: str
    verdict: str
    detail: str = ""
    counterexample: Optional[Dict[str, float]] = None
    stats: Dict[str, float] = field(default_factory=dict)


@dataclass(frozen=True)
class VertexComparison:
    """Differential-oracle result at one box vertex."""

    point: Dict[str, float]
    ok: bool
    detail: str
    quantities: Dict[str, float] = field(default_factory=dict)
    encoder: Dict[str, float] = field(default_factory=dict)


@dataclass(frozen=True)
class Certificate:
    """Machine-checked certificate of one claim over one box."""

    claim: str
    description: str
    box: Dict[str, Any]
    checkers: Tuple[str, ...]
    outcomes: Tuple[CheckOutcome, ...]
    vertices: Tuple[VertexComparison, ...]

    @property
    def status(self) -> str:
        """Overall verdict (see the module docstring for semantics)."""
        verdicts = [outcome.verdict for outcome in self.outcomes]
        if any(v == "violated" for v in verdicts) or any(
            not vertex.ok for vertex in self.vertices
        ):
            return "counterexample"
        ran = [v for v in verdicts if v != "skipped"]
        if not ran and not self.vertices:
            return "skipped"
        whole_box_proofs = [
            outcome
            for outcome in self.outcomes
            if outcome.checker in ("interval", "smt")
            and outcome.verdict == "proved"
        ]
        has_unknown = any(v == "unknown" for v in ran)
        if whole_box_proofs and not has_unknown:
            return "certified"
        return "checked"

    @property
    def counterexamples(self) -> List[Dict[str, Any]]:
        """Every concrete violating point, with its provenance."""
        found: List[Dict[str, Any]] = []
        for outcome in self.outcomes:
            if outcome.verdict == "violated" and outcome.counterexample:
                found.append(
                    {
                        "source": outcome.checker,
                        "label": outcome.label,
                        "detail": outcome.detail,
                        "point": dict(outcome.counterexample),
                    }
                )
        for vertex in self.vertices:
            if not vertex.ok:
                found.append(
                    {
                        "source": "numeric",
                        "label": "vertex-differential",
                        "detail": vertex.detail,
                        "point": dict(vertex.point),
                        "quantities": dict(vertex.quantities),
                        "encoder": dict(vertex.encoder),
                    }
                )
        return found

    def to_dict(self) -> Dict[str, Any]:
        """Canonical plain-dict form for JSON export."""
        return {
            "claim": self.claim,
            "description": self.description,
            "status": self.status,
            "box": dict(self.box),
            "checkers": list(self.checkers),
            "outcomes": [asdict(outcome) for outcome in self.outcomes],
            "vertices": [asdict(vertex) for vertex in self.vertices],
            "counterexamples": self.counterexamples,
        }


def _interval_outcomes(
    claim: Claim, box: ParameterBox, budget: CheckBudget
) -> List[CheckOutcome]:
    outcomes = []
    for check in claim.interval_checks(box, budget):
        proof = check.proof
        verdict = {
            "proved": "proved",
            "counterexample": "violated",
            "unknown": "unknown",
        }[proof.status]
        detail = (
            f"{proof.boxes_proved} sub-boxes proved, "
            f"{proof.boxes_unknown} unknown, depth {proof.deepest_split}"
        )
        if proof.status == "counterexample":
            detail = (
                f"violating midpoint found (value {proof.witness_value!r})"
            )
        obs.inc("verify.interval_checks", claim=claim.name, verdict=verdict)
        outcomes.append(
            CheckOutcome(
                checker="interval",
                label=check.label,
                verdict=verdict,
                detail=detail,
                counterexample=proof.counterexample,
                stats={
                    "boxes_proved": float(proof.boxes_proved),
                    "boxes_unknown": float(proof.boxes_unknown),
                    "deepest_split": float(proof.deepest_split),
                },
            )
        )
    return outcomes


def _smt_outcomes(
    claim: Claim, box: ParameterBox, budget: CheckBudget
) -> List[CheckOutcome]:
    outcomes = []
    for spec in claim.smt_specs(box, budget):
        result = run_query(spec, timeout_ms=budget.smt_timeout_ms)
        verdict = {
            "unsat": "proved",
            "sat": "violated",
            "unknown": "unknown",
            "skipped": "skipped",
        }[result.verdict]
        obs.inc("verify.smt_queries", claim=claim.name, verdict=verdict)
        outcomes.append(
            CheckOutcome(
                checker="smt",
                label=spec.label,
                verdict=verdict,
                detail=result.detail,
                counterexample=result.model,
            )
        )
    return outcomes


def _numeric_outcomes(
    claim: Claim, box: ParameterBox, budget: CheckBudget
) -> Tuple[List[CheckOutcome], List[VertexComparison]]:
    vertices = []
    failures = 0
    for point in box.vertices(max_vertices=budget.max_vertices):
        verdict = claim.vertex_check(box, point, budget.tol)
        obs.inc(
            "verify.vertices",
            claim=claim.name,
            ok=str(verdict.ok).lower(),
        )
        if not verdict.ok:
            failures += 1
        vertices.append(
            VertexComparison(
                point=dict(point),
                ok=verdict.ok,
                detail=verdict.detail,
                quantities=verdict.quantities,
                encoder=verdict.encoder,
            )
        )
    summary = CheckOutcome(
        checker="numeric",
        label="vertex-differential",
        verdict="violated" if failures else "proved",
        detail=(
            f"{len(vertices) - failures}/{len(vertices)} box vertices agree "
            "across encoder and production solvers"
        ),
        stats={"vertices": float(len(vertices)), "failures": float(failures)},
    )
    return [summary], vertices


def certify_claim(
    name: str,
    box: ParameterBox,
    *,
    checkers: Sequence[str] = CHECKER_NAMES,
    budget: Optional[CheckBudget] = None,
) -> Certificate:
    """Certify one claim over one box with the selected checkers.

    Parameters
    ----------
    name:
        Claim name (``bianchi``, ``lemma3``, ``theorem2``, ``theorem3``).
    box:
        The parameter box to quantify over.
    checkers:
        Subset of :data:`CHECKER_NAMES`.  The SMT checker degrades to
        per-query ``skipped`` outcomes when z3 is absent - it never
        raises for a missing solver.
    budget:
        Work limits; defaults to :class:`CheckBudget`.

    Raises
    ------
    VerificationError
        On unknown claim or checker names.
    """
    if name not in CLAIMS:
        raise VerificationError(
            f"unknown claim {name!r}; expected one of {tuple(sorted(CLAIMS))}"
        )
    unknown = sorted(set(checkers) - set(CHECKER_NAMES))
    if unknown:
        raise VerificationError(
            f"unknown checker(s) {unknown}; expected a subset of "
            f"{CHECKER_NAMES}"
        )
    claim = CLAIMS[name]
    budget = budget or CheckBudget()
    outcomes: List[CheckOutcome] = []
    vertices: List[VertexComparison] = []
    with obs.span("verify.certify", claim=name, box=box.name):
        if "interval" in checkers:
            with obs.span("verify.interval", claim=name):
                outcomes.extend(_interval_outcomes(claim, box, budget))
        if "smt" in checkers:
            with obs.span("verify.smt", claim=name, available=z3_available()):
                outcomes.extend(_smt_outcomes(claim, box, budget))
        if "numeric" in checkers:
            with obs.span("verify.numeric", claim=name):
                numeric, vertices = _numeric_outcomes(claim, box, budget)
                outcomes.extend(numeric)
    certificate = Certificate(
        claim=name,
        description=claim.description,
        box=box.to_dict(),
        checkers=tuple(checkers),
        outcomes=tuple(outcomes),
        vertices=tuple(vertices),
    )
    obs.inc("verify.certificates", claim=name, status=certificate.status)
    return certificate


def run_certification(
    theorems: Any,
    box: ParameterBox,
    *,
    checkers: Sequence[str] = CHECKER_NAMES,
    budget: Optional[CheckBudget] = None,
) -> List[Certificate]:
    """Certify a theorem selection (``"all"`` or a list of names)."""
    return [
        certify_claim(claim.name, box, checkers=checkers, budget=budget)
        for claim in claims_for(theorems)
    ]
