"""Polynomial encodings of the paper's equilibrium claims.

Every function here is a *pure, division-free, log1p-free* polynomial
(or cross-multiplied rational) form of a quantity the numeric stack
computes elsewhere, written against generic operands: plain floats,
:class:`~repro.verify.interval.Interval` enclosures,
:class:`~repro.verify.interval.Dual` forward-mode duals, or z3 ``Real``
terms all flow through the identical expressions.  That single-sourcing
is the point - the interval prover, the SMT solver and the float-level
vertex differential all certify (or refute) literally the same algebra:

* ``geometric_series(x, m)`` - ``sum_{j=0}^{m-1} x^j`` by Horner, no
  ``(1 - x^m)/(1 - x)`` division, so it is total at ``x = 1``.
* ``collision_from_tau`` - the symmetric coupling ``p = 1-(1-tau)^{n-1}``.
* ``coupling_residual`` - equation (2) cleared of its division:
  ``tau (1 + W + p W S(2p)) - 2``; its root in ``tau`` is the Bianchi
  symmetric fixed point.
* ``q_stationarity`` - Lemma 3's ``Q(tau)``, term for term the same
  polynomial as :func:`repro.game.equilibrium.q_function`.
* ``slot_length`` / ``utility_numerator`` / ``utility_cross_difference``
  - the symmetric utility ``U = num/T`` with comparisons cross-multiplied
  (``U(a) >= U(b)  <=>  num(a) T(b) - num(b) T(a) >= 0`` given positive
  slots) so no operand type ever needs division.
* ``success_margin`` - the Theorem 2 break-even margin ``(1-p) g - e``.

Test-only fault injection
-------------------------
:func:`perturbation` reads a module-level delta table that is empty in
production; the :func:`perturbed` context manager (used only by the
injected-bug self-tests) temporarily shifts a named constant so the
certification pipeline can prove it *detects* a wrong encoder rather
than passing by vacuity.  Encoder functions only read the table, so the
``lint --deep`` purity certification of the verify roots (REPRO101)
holds; the mutation lives here, outside every certified call tree.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Dict, Iterator

__all__ = [
    "ANALYSIS_ROOTS",
    "collision_from_tau",
    "coupling_residual",
    "geometric_series",
    "perturbation",
    "perturbed",
    "q_stationarity",
    "slot_length",
    "success_margin",
    "utility_cross_difference",
    "utility_numerator",
]

#: Extra whole-program analysis roots: the encoder entry points must be
#: certified pure (REPRO101) - their answers feed machine-checked
#: certificates, so any hidden IO/entropy/global-write would silently
#: invalidate the proofs.
ANALYSIS_ROOTS = (
    "repro.verify.encodings.coupling_residual",
    "repro.verify.encodings.q_stationarity",
    "repro.verify.encodings.utility_cross_difference",
    "repro.verify.encodings.success_margin",
)

#: Named constant deltas injected by :func:`perturbed`; empty in
#: production, so :func:`perturbation` returns 0.0 on every name.
_PERTURBATIONS: Dict[str, float] = {}


def perturbation(name: str) -> float:
    """The currently injected delta for ``name`` (0.0 in production)."""
    return _PERTURBATIONS.get(name, 0.0)


@contextmanager
def perturbed(**deltas: float) -> Iterator[None]:
    """Test-only hook: temporarily shift named encoder constants.

    ``with perturbed(cost=1e-3): ...`` makes every encoder expression
    involving the energy cost off by ``1e-3``, which the differential
    oracle must then flag as a counterexample.  Never used on any
    production path; restores the previous table even on error.
    """
    previous = dict(_PERTURBATIONS)
    _PERTURBATIONS.update(deltas)
    try:
        yield
    finally:
        _PERTURBATIONS.clear()
        _PERTURBATIONS.update(previous)


def geometric_series(x: Any, terms: int) -> Any:
    """``sum_{j=0}^{terms-1} x^j`` by Horner's rule (division-free).

    Total at ``x = 1`` by construction, unlike the closed form
    ``(1 - x^terms)/(1 - x)``; the numeric stack special-cases that
    point, this encoding never has to.
    """
    if terms <= 0:
        return x * 0.0
    series = x * 0.0 + 1.0
    for _ in range(terms - 1):
        series = 1.0 + x * series
    return series


def collision_from_tau(tau: Any, n_nodes: int) -> Any:
    """Symmetric coupling ``p = 1 - (1 - tau)^{n-1}``."""
    return 1.0 - (1.0 - tau) ** (n_nodes - 1)


def coupling_residual(tau: Any, window: Any, n_nodes: int, max_stage: int) -> Any:
    """Equation (2) cleared of division: zero exactly at the fixed point.

    ``R(tau, W) = tau (1 + W + p W S(2p)) - 2`` with
    ``p = 1 - (1-tau)^{n-1}`` and ``S`` the ``max_stage``-term geometric
    series.  ``R`` is strictly increasing in ``tau`` on ``(0, 1)``
    (``dR/dtau >= 1 + W``), which is what the uniqueness claims exploit.
    """
    p = collision_from_tau(tau, n_nodes)
    series = geometric_series(2.0 * p, max_stage)
    return tau * (1.0 + window + p * window * series) - 2.0


def q_stationarity(tau: Any, n_nodes: int, idle_us: Any, collision_us: Any) -> Any:
    """Lemma 3's stationarity polynomial ``Q(tau)``.

    Mirrors :func:`repro.game.equilibrium.q_function` term for term:
    ``sign(Q(tau)) = sign(dU/dtau)`` under the paper's ``g >> e``
    approximation, ``Q(0) = sigma > 0``, ``Q(1) = -(n-1) Tc < 0`` and
    ``Q`` is strictly decreasing in between (Lemma 3 uniqueness).
    """
    n = n_nodes
    one_minus = 1.0 - tau
    pow_n = one_minus**n
    pow_n1 = one_minus ** (n - 1)
    bracket = (1.0 - n * tau) * (1.0 - pow_n - n * tau * pow_n1) - n * (
        n - 1
    ) * tau**2 * pow_n1
    return pow_n * idle_us + collision_us * bracket


def slot_length(
    tau: Any, n_nodes: int, idle_us: Any, success_us: Any, collision_us: Any
) -> Any:
    """Expected slot duration ``T(tau)`` at a symmetric profile.

    ``T = p_idle sigma + p_single Ts + (1 - p_idle - p_single) Tc`` with
    ``p_idle = (1-tau)^n`` and ``p_single = n tau (1-tau)^{n-1}``.
    Strictly positive on ``tau in [0, 1]`` for positive slot times.
    """
    n = n_nodes
    one_minus = 1.0 - tau
    p_idle = one_minus**n
    p_single = n * tau * one_minus ** (n - 1)
    return (
        p_idle * idle_us
        + p_single * success_us
        + (1.0 - p_idle - p_single) * collision_us
    )


def success_margin(tau: Any, n_nodes: int, gain: Any, cost: Any) -> Any:
    """Theorem 2's break-even margin ``(1 - p) g - e``.

    Positive margin means the symmetric stage payoff is positive, i.e.
    the window sits at or above ``W_c0``.  The margin is strictly
    decreasing in ``tau`` (more contention, more collisions), which
    makes the break-even boundary unique.
    """
    return (1.0 - tau) ** (n_nodes - 1) * gain - (
        cost + perturbation("cost")
    )


def utility_numerator(
    tau: Any, n_nodes: int, gain: Any, cost: Any, *, ignore_cost: bool
) -> Any:
    """Numerator of the symmetric utility: ``tau ((1-p) g - e)``.

    The full utility is this over :func:`slot_length`; keeping the
    numerator separate lets comparisons cross-multiply instead of
    divide.  Under ``ignore_cost`` the energy term is dropped (the
    paper's ``g >> e`` approximation of Lemma 3).
    """
    if ignore_cost:
        return tau * (1.0 - tau) ** (n_nodes - 1) * gain
    return tau * success_margin(tau, n_nodes, gain, cost)


def utility_cross_difference(
    tau_a: Any,
    tau_b: Any,
    n_nodes: int,
    idle_us: Any,
    success_us: Any,
    collision_us: Any,
    gain: Any,
    cost: Any,
    *,
    ignore_cost: bool,
) -> Any:
    """``U(tau_a) - U(tau_b)`` cross-multiplied by both slot lengths.

    Since ``T(tau) > 0`` on the whole domain,
    ``sign(U(a) - U(b)) = sign(num(a) T(b) - num(b) T(a))`` - a pure
    polynomial the SMT and interval layers can evaluate without ever
    dividing.
    """
    num_a = utility_numerator(tau_a, n_nodes, gain, cost, ignore_cost=ignore_cost)
    num_b = utility_numerator(tau_b, n_nodes, gain, cost, ignore_cost=ignore_cost)
    slot_a = slot_length(tau_a, n_nodes, idle_us, success_us, collision_us)
    slot_b = slot_length(tau_b, n_nodes, idle_us, success_us, collision_us)
    return num_a * slot_b - num_b * slot_a
