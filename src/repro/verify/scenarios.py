"""Counterexample-to-regression pipeline: scenario JSON files + replay.

Every concrete violating point a checker finds (SMT ``sat`` model,
interval midpoint violation, vertex differential mismatch) is frozen
into a canonical JSON *scenario*: the parameter point, the violation's
provenance, and a list of production-solver quantities pinned at
creation time.  Scenarios live under ``tests/regression/scenarios/``
where the replay harness auto-discovers them and asserts the numeric
stack still reproduces every pinned quantity - so each verifier finding
permanently hardens the test suite, even on machines without z3.

Schema (``repro.verify/scenario-v1``)::

    {
      "schema": "repro.verify/scenario-v1",
      "claim": "theorem2",
      "source": "numeric" | "smt" | "interval" | "pin",
      "detail": "<human-readable provenance>",
      "box": { ... ParameterBox.to_dict() ... },
      "point": {"n": 5, "m": 5, "w": 2.0, "gain": 1.0, ...},
      "violation": { ... optional checker-specific payload ... },
      "expect": [
        {"quantity": "tau_star", "value": 0.0229..., "rtol": 1e-9,
         "atol": 1e-12, "args": {}}
      ]
    }

``expect`` quantities are evaluated by name against the production
``bianchi``/``game.equilibrium`` stack (:data:`QUANTITIES`), so a
scenario is self-contained: no verifier code is needed to replay it.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Dict, List, Mapping, Tuple, Union

from repro.errors import VerificationError
from repro.bianchi.fixedpoint import solve_symmetric
from repro.game.equilibrium import analyze_equilibria, optimal_tau, q_function
from repro.game.utility import symmetric_utility_from_tau
from repro.verify.boxes import ParameterBox
from repro.verify.certify import Certificate

__all__ = [
    "QUANTITIES",
    "ReplayReport",
    "SCENARIO_SCHEMA",
    "discover_scenarios",
    "load_scenario",
    "pin_scenario",
    "replay_scenario",
    "scenarios_from_certificate",
    "write_scenario",
]

SCENARIO_SCHEMA = "repro.verify/scenario-v1"

#: Dimensions a completed scenario point always carries.
_POINT_KEYS = ("n", "m", "w", "gain", "cost", "sigma", "ts", "tc")

#: Default production quantities pinned per claim when a counterexample
#: is frozen into a scenario.
_DEFAULT_PINS: Dict[str, Tuple[str, ...]] = {
    "bianchi": ("tau_symmetric", "collision_symmetric"),
    "lemma3": ("tau_star", "q_at_half_tau_star"),
    "theorem2": (
        "tau_star",
        "window_star",
        "window_breakeven",
        "n_equilibria",
        "margin_at_breakeven",
    ),
    "theorem3": ("tau_symmetric", "tau_star"),
}


def _point_context(
    box: ParameterBox, point: Mapping[str, float]
) -> Tuple[int, int, Any, Any]:
    """Production params/times for one completed scenario point."""
    from repro.phy.parameters import default_parameters

    n = int(point["n"])
    m = int(point["m"])
    params = default_parameters().with_updates(
        gain=point["gain"],
        cost=point["cost"],
        max_backoff_stage=m,
    )
    times = box.slot_times_at(point["sigma"], point["ts"], point["tc"])
    return n, m, params, times


def _eval_tau_symmetric(
    box: ParameterBox, point: Mapping[str, float], args: Mapping[str, Any]
) -> float:
    n, m, _, _ = _point_context(box, point)
    window = float(args.get("w", point["w"]))
    return float(solve_symmetric(window, n, m).tau)


def _eval_collision_symmetric(
    box: ParameterBox, point: Mapping[str, float], args: Mapping[str, Any]
) -> float:
    n, m, _, _ = _point_context(box, point)
    window = float(args.get("w", point["w"]))
    return float(solve_symmetric(window, n, m).collision)


def _eval_tau_star(
    box: ParameterBox, point: Mapping[str, float], args: Mapping[str, Any]
) -> float:
    n, _, _, times = _point_context(box, point)
    return float(optimal_tau(n, times))


def _eval_q_at_half_tau_star(
    box: ParameterBox, point: Mapping[str, float], args: Mapping[str, Any]
) -> float:
    n, _, _, times = _point_context(box, point)
    tau_star = optimal_tau(n, times)
    return float(q_function(0.5 * tau_star, n, times))


def _eval_window_star(
    box: ParameterBox, point: Mapping[str, float], args: Mapping[str, Any]
) -> float:
    n, _, params, times = _point_context(box, point)
    return float(analyze_equilibria(n, params, times).window_star)


def _eval_window_breakeven(
    box: ParameterBox, point: Mapping[str, float], args: Mapping[str, Any]
) -> float:
    n, _, params, times = _point_context(box, point)
    return float(analyze_equilibria(n, params, times).window_breakeven)


def _eval_n_equilibria(
    box: ParameterBox, point: Mapping[str, float], args: Mapping[str, Any]
) -> float:
    n, _, params, times = _point_context(box, point)
    return float(analyze_equilibria(n, params, times).n_equilibria)


def _eval_margin_at_breakeven(
    box: ParameterBox, point: Mapping[str, float], args: Mapping[str, Any]
) -> float:
    n, m, params, times = _point_context(box, point)
    analysis = analyze_equilibria(n, params, times)
    solution = solve_symmetric(float(analysis.window_breakeven), n, m)
    return float(
        (1.0 - solution.collision) * point["gain"] - point["cost"]
    )


def _eval_utility_at_star(
    box: ParameterBox, point: Mapping[str, float], args: Mapping[str, Any]
) -> float:
    n, _, params, times = _point_context(box, point)
    return float(analyze_equilibria(n, params, times).utility_at_star)


def _eval_utility_at_tau(
    box: ParameterBox, point: Mapping[str, float], args: Mapping[str, Any]
) -> float:
    n, _, params, times = _point_context(box, point)
    return float(
        symmetric_utility_from_tau(
            float(args["tau"]),
            n,
            params,
            times,
            ignore_cost=bool(args.get("ignore_cost", True)),
        )
    )


#: Quantity name -> evaluator against the production numeric stack.
QUANTITIES: Dict[
    str,
    Callable[[ParameterBox, Mapping[str, float], Mapping[str, Any]], float],
] = {
    "tau_symmetric": _eval_tau_symmetric,
    "collision_symmetric": _eval_collision_symmetric,
    "tau_star": _eval_tau_star,
    "q_at_half_tau_star": _eval_q_at_half_tau_star,
    "window_star": _eval_window_star,
    "window_breakeven": _eval_window_breakeven,
    "n_equilibria": _eval_n_equilibria,
    "margin_at_breakeven": _eval_margin_at_breakeven,
    "utility_at_star": _eval_utility_at_star,
    "utility_at_tau": _eval_utility_at_tau,
}


def _complete_point(
    box: ParameterBox, raw: Mapping[str, float]
) -> Dict[str, float]:
    """Fill missing point dimensions from the box lower corner.

    Checker counterexamples are often partial (an SMT model names only
    its free variables); the completed point anchors every remaining
    dimension at the box's lower corner so replay is deterministic.
    """
    defaults = {
        "n": float(box.n_lo),
        "m": float(box.m),
        "w": box.w_lo,
        "gain": box.gain_lo,
        "cost": box.cost_lo,
        "sigma": box.sigma_lo,
        "ts": box.ts_lo,
        "tc": box.tc_lo,
    }
    completed = dict(defaults)
    for key in _POINT_KEYS:
        if key in raw:
            completed[key] = float(raw[key])
    return completed


def scenarios_from_certificate(
    certificate: Certificate, *, rtol: float = 1e-9, atol: float = 1e-12
) -> List[Dict[str, Any]]:
    """Freeze every counterexample of a certificate into scenarios.

    The production quantities of the claim's default pin list are
    evaluated *now* and stored as the expected values, so replay checks
    the numeric stack against its behaviour at scenario-creation time.
    """
    box = ParameterBox.from_dict(certificate.box)
    scenarios = []
    for finding in certificate.counterexamples:
        point = _complete_point(box, finding.get("point", {}))
        expect = []
        for quantity in _DEFAULT_PINS.get(certificate.claim, ("tau_star",)):
            value = QUANTITIES[quantity](box, point, {})
            expect.append(
                {
                    "quantity": quantity,
                    "value": value,
                    "rtol": rtol,
                    "atol": atol,
                    "args": {},
                }
            )
        violation = {
            key: value
            for key, value in finding.items()
            if key != "point"
        }
        violation["raw_point"] = dict(finding.get("point", {}))
        scenarios.append(
            {
                "schema": SCENARIO_SCHEMA,
                "claim": certificate.claim,
                "source": finding.get("source", "numeric"),
                "detail": finding.get("detail", ""),
                "box": certificate.box,
                "point": point,
                "violation": violation,
                "expect": expect,
            }
        )
    return scenarios


def _canonical_text(scenario: Mapping[str, Any]) -> str:
    # Imported lazily: repro.store pulls in the experiment registry for
    # manifest digests, and the registry pulls this module back in via
    # the ``verify`` experiment — a module-level import would be a cycle.
    from repro.store import canonicalize

    return json.dumps(
        canonicalize(dict(scenario)),
        sort_keys=True,
        indent=2,
        allow_nan=False,
    )


def write_scenario(
    scenario: Mapping[str, Any], directory: Union[str, Path]
) -> Path:
    """Write one scenario as canonical JSON; filename from its digest."""
    if scenario.get("schema") != SCENARIO_SCHEMA:
        raise VerificationError(
            f"scenario schema must be {SCENARIO_SCHEMA!r}, "
            f"got {scenario.get('schema')!r}"
        )
    text = _canonical_text(scenario)
    digest = hashlib.sha256(text.encode("utf-8")).hexdigest()[:12]
    target = Path(directory)
    target.mkdir(parents=True, exist_ok=True)
    path = target / f"{scenario['claim']}-{digest}.json"
    path.write_text(text + "\n", encoding="utf-8")
    return path


def load_scenario(path: Union[str, Path]) -> Dict[str, Any]:
    """Load and validate one scenario file.

    Raises
    ------
    VerificationError
        On unreadable files, wrong schema or missing required keys.
    """
    source = Path(path)
    try:
        document = json.loads(source.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        raise VerificationError(
            f"cannot read scenario {source}: {exc}"
        ) from exc
    if not isinstance(document, dict):
        raise VerificationError(
            f"scenario {source} must be a JSON object"
        )
    if document.get("schema") != SCENARIO_SCHEMA:
        raise VerificationError(
            f"scenario {source} has schema {document.get('schema')!r}, "
            f"expected {SCENARIO_SCHEMA!r}"
        )
    for key in ("claim", "box", "point", "expect"):
        if key not in document:
            raise VerificationError(
                f"scenario {source} is missing required key {key!r}"
            )
    if not isinstance(document["expect"], list) or not document["expect"]:
        raise VerificationError(
            f"scenario {source} must pin at least one expected quantity"
        )
    return document


def discover_scenarios(directory: Union[str, Path]) -> List[Path]:
    """All scenario files under a directory, sorted for determinism."""
    root = Path(directory)
    if not root.is_dir():
        return []
    return sorted(root.glob("*.json"))


@dataclass(frozen=True)
class ReplayReport:
    """Outcome of replaying one scenario against the numeric stack."""

    ok: bool
    failures: Tuple[str, ...]
    observed: Dict[str, float]


def replay_scenario(scenario: Mapping[str, Any]) -> ReplayReport:
    """Re-evaluate every pinned quantity with the production solvers."""
    box = ParameterBox.from_dict(scenario["box"])
    point = {key: float(value) for key, value in scenario["point"].items()}
    failures = []
    observed: Dict[str, float] = {}
    for entry in scenario["expect"]:
        quantity = entry.get("quantity")
        if quantity not in QUANTITIES:
            failures.append(
                f"unknown quantity {quantity!r}; expected one of "
                f"{tuple(sorted(QUANTITIES))}"
            )
            continue
        args = entry.get("args", {}) or {}
        value = QUANTITIES[quantity](box, point, args)
        observed[str(quantity)] = value
        expected = float(entry["value"])
        rtol = float(entry.get("rtol", 1e-9))
        atol = float(entry.get("atol", 1e-12))
        if abs(value - expected) > atol + rtol * abs(expected):
            failures.append(
                f"{quantity}: numeric stack now produces {value!r}, "
                f"scenario pinned {expected!r} (rtol={rtol}, atol={atol})"
            )
    return ReplayReport(
        ok=not failures, failures=tuple(failures), observed=observed
    )


def pin_scenario(
    box: ParameterBox,
    claim: str,
    point: Mapping[str, float],
    quantities: Mapping[str, Mapping[str, Any]],
    *,
    detail: str = "",
    rtol: float = 1e-9,
    atol: float = 1e-12,
) -> Dict[str, Any]:
    """Build a ``source: "pin"`` scenario from live production values.

    Used to freeze known-good equilibrium quantities (Tables II/III) so
    the replay harness guards them against solver drift; ``quantities``
    maps quantity names to their ``args`` dicts.
    """
    completed = _complete_point(box, point)
    expect = []
    for quantity, args in quantities.items():
        if quantity not in QUANTITIES:
            raise VerificationError(
                f"unknown quantity {quantity!r}; expected one of "
                f"{tuple(sorted(QUANTITIES))}"
            )
        value = QUANTITIES[quantity](box, completed, args)
        expect.append(
            {
                "quantity": quantity,
                "value": value,
                "rtol": rtol,
                "atol": atol,
                "args": dict(args),
            }
        )
    return {
        "schema": SCENARIO_SCHEMA,
        "claim": claim,
        "source": "pin",
        "detail": detail,
        "box": box.to_dict(),
        "point": completed,
        "violation": {},
        "expect": expect,
    }
