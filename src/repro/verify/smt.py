"""Gated z3 access: SMT queries with a graceful degrade path.

z3 is an *optional* dependency (the ``verify`` extra).  Everything here
works without it installed: :func:`z3_available` reports the fact,
:func:`run_query` returns a ``"skipped"`` outcome instead of raising,
and the interval fallback of :mod:`repro.verify.interval` carries the
certification (more coarsely).  Only :func:`load_z3` - used when a
caller *explicitly requires* SMT - raises :class:`VerificationError`.

Queries are *violation-existence* formulations: the claim is encoded as
"there exists a parameter point inside the box violating the property",
so ``unsat`` is the certificate and every ``sat`` model is a concrete
counterexample, extracted to floats for the regression-scenario
pipeline.  Constants enter as exact rationals
(:func:`fractions.Fraction` of the IEEE-754 value via ``RatVal``), so
the SMT layer reasons about precisely the numbers the float stack uses.
"""

from __future__ import annotations

import importlib
import importlib.util
from dataclasses import dataclass, field
from fractions import Fraction
from typing import Any, Callable, Dict, Optional

from repro.errors import VerificationError

__all__ = [
    "SmtOutcome",
    "SmtSpec",
    "bounded_real",
    "load_z3",
    "rational",
    "run_query",
    "z3_available",
]


def z3_available() -> bool:
    """Whether the optional z3 solver can be imported."""
    return importlib.util.find_spec("z3") is not None


def load_z3() -> Any:
    """Import and return the z3 module, or raise if it is missing.

    Raises
    ------
    VerificationError
        When z3 is not installed; the message names the extra so the
        remedy is obvious (``pip install 'repro-selfish-mac[verify]'``).
    """
    if not z3_available():
        raise VerificationError(
            "the SMT checker requires z3, which is not installed; "
            "install the 'verify' extra (repro-selfish-mac[verify]) or "
            "run with the interval/numeric checkers only"
        )
    return importlib.import_module("z3")


def rational(z3: Any, value: float) -> Any:
    """The exact rational of an IEEE-754 double as a z3 term."""
    fraction = Fraction(value)
    return z3.RatVal(fraction.numerator, fraction.denominator)


def bounded_real(
    z3: Any, solver: Any, name: str, lo: float, hi: float
) -> Any:
    """A real variable constrained to ``[lo, hi]``.

    Degenerate ranges collapse to the exact rational constant - fewer
    free variables keeps the nonlinear queries tractable.
    """
    if hi <= lo:
        return rational(z3, lo)
    var = z3.Real(name)
    solver.add(var >= rational(z3, lo), var <= rational(z3, hi))
    return var


@dataclass(frozen=True)
class SmtSpec:
    """One violation-existence query of a claim.

    ``build(z3, solver)`` asserts the violation formula and returns the
    named free variables whose model values become the counterexample
    point on ``sat``.  ``expect`` documents the certifying verdict
    (always ``"unsat"`` for the shipped claims).
    """

    label: str
    build: Callable[[Any, Any], Dict[str, Any]]
    expect: str = "unsat"


@dataclass(frozen=True)
class SmtOutcome:
    """Result of one SMT query.

    ``verdict`` is ``"unsat"`` (property certified), ``"sat"``
    (violated - ``model`` holds the float counterexample point),
    ``"unknown"`` (solver gave up within the timeout) or ``"skipped"``
    (z3 not installed).
    """

    label: str
    verdict: str
    model: Optional[Dict[str, float]] = None
    detail: str = ""
    stats: Dict[str, float] = field(default_factory=dict)


def _model_float(z3: Any, model: Any, var: Any) -> float:
    """Evaluate a model value to a float (rationals and algebraics)."""
    value = model.eval(var, model_completion=True)
    if hasattr(value, "as_fraction"):
        try:
            return float(value.as_fraction())
        except z3.Z3Exception:
            pass
    # Irrational algebraic numbers: take a high-precision rational
    # approximation instead.
    approx = value.approx(20)
    return float(approx.as_fraction())


def run_query(spec: SmtSpec, *, timeout_ms: int = 60000) -> SmtOutcome:
    """Run one violation-existence query (gracefully skipped without z3)."""
    if not z3_available():
        return SmtOutcome(
            label=spec.label,
            verdict="skipped",
            detail="z3 is not installed; install the 'verify' extra",
        )
    z3 = load_z3()
    solver = z3.Solver()
    solver.set("timeout", int(timeout_ms))
    variables = spec.build(z3, solver)
    result = solver.check()
    if result == z3.unsat:
        return SmtOutcome(label=spec.label, verdict="unsat")
    if result == z3.sat:
        model = solver.model()
        point = {
            name: _model_float(z3, model, var)
            for name, var in sorted(variables.items())
        }
        return SmtOutcome(
            label=spec.label,
            verdict="sat",
            model=point,
            detail="violation model found",
        )
    return SmtOutcome(
        label=spec.label,
        verdict="unknown",
        detail=f"solver returned unknown: {solver.reason_unknown()}",
    )
