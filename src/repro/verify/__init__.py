"""Machine-checked equilibria: SMT + interval certification (ROADMAP 4).

The package certifies the paper's equilibrium claims - the Bianchi
coupling's unique symmetric fixed point, Lemma 3 stationarity and
uniqueness, the Theorem 2 NE window family ``[W_c0, W_c*]``, and the
Theorem 3 multi-hop drag-down structure - over bounded parameter boxes
of ``(n, W, m, g, e, sigma, Ts, Tc)``, instead of merely reproducing
them numerically at the published points.

Three checkers, one algebra (:mod:`repro.verify.encodings` holds the
single-source polynomial forms all of them evaluate):

* ``interval`` - dependency-free outward-rounded interval arithmetic
  with forward-mode duals and adaptive box subdivision
  (:mod:`repro.verify.interval`); always available.
* ``smt`` - z3 violation-existence queries behind the optional
  ``verify`` extra (:mod:`repro.verify.smt`); skipped gracefully when
  z3 is absent.
* ``numeric`` - the production solver stack evaluated at the box
  vertices and differentially compared against the encoder.

Counterexamples found by any checker are frozen into canonical JSON
scenarios under ``tests/regression/scenarios/``
(:mod:`repro.verify.scenarios`) and replayed by the regression harness
forever after.  Entry points: the ``repro-experiments verify`` CLI verb
and the ``verify`` experiment.
"""

from __future__ import annotations

from repro.verify.boxes import BOX_NAMES, ParameterBox, builtin_boxes, get_box
from repro.verify.claims import CLAIMS, CheckBudget, Claim, claims_for
from repro.verify.certify import (
    CHECKER_NAMES,
    Certificate,
    CheckOutcome,
    VertexComparison,
    certify_claim,
    run_certification,
)
from repro.verify.interval import BoxProof, Dual, Interval, prove_sign_on_box
from repro.verify.scenarios import (
    QUANTITIES,
    SCENARIO_SCHEMA,
    ReplayReport,
    discover_scenarios,
    load_scenario,
    pin_scenario,
    replay_scenario,
    scenarios_from_certificate,
    write_scenario,
)
from repro.verify.smt import SmtOutcome, SmtSpec, run_query, z3_available

__all__ = [
    "BOX_NAMES",
    "BoxProof",
    "CHECKER_NAMES",
    "CLAIMS",
    "Certificate",
    "CheckBudget",
    "CheckOutcome",
    "Claim",
    "Dual",
    "Interval",
    "ParameterBox",
    "QUANTITIES",
    "ReplayReport",
    "SCENARIO_SCHEMA",
    "SmtOutcome",
    "SmtSpec",
    "VertexComparison",
    "builtin_boxes",
    "certify_claim",
    "claims_for",
    "discover_scenarios",
    "get_box",
    "load_scenario",
    "pin_scenario",
    "prove_sign_on_box",
    "replay_scenario",
    "run_certification",
    "run_query",
    "scenarios_from_certificate",
    "write_scenario",
    "z3_available",
]
