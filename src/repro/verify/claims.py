"""The verified claims: Bianchi coupling, Lemma 3, Theorems 2 and 3.

Each :class:`Claim` bundles three independent views of one equilibrium
property, all driven by the *same* polynomial encodings of
:mod:`repro.verify.encodings`:

* **interval** - adaptive subdivision proofs over the whole box
  (:func:`repro.verify.interval.prove_sign_on_box`), using forward-mode
  :class:`~repro.verify.interval.Dual` numbers for the derivative-sign
  conditions.  Works without any optional dependency.
* **smt** - violation-existence queries for z3 (``unsat`` certifies;
  every ``sat`` model is a counterexample point).  The symbolic
  derivatives reuse the very same :class:`Dual` arithmetic over z3
  terms.
* **numeric** - a differential oracle at the box vertices: the
  production ``bianchi``/``game.equilibrium`` stack is evaluated at
  each corner and must agree with the encoder to tolerance.

The mathematical backbone, re-derived from the paper:

* ``R(tau, W) = tau (1 + W + p W S(2p)) - 2`` is strictly increasing in
  ``tau`` (``dR/dtau >= 1 + W``), so the symmetric Bianchi fixed point
  is unique; ``dR/dW > 0`` makes ``tau`` strictly decreasing in ``W``
  (the Theorem 3 drag-down direction).
* Lemma 3's ``Q`` satisfies ``Q(0+) = sigma > 0 > Q(1-) = -(n-1) Tc``
  and ``Q' < 0`` on ``(0, 1)`` - a unique stationary ``tau*``.
* The exact identity ``num'(tau) T(tau) - num(tau) T'(tau)
  = g (1-tau)^{n-2} Q(tau)`` (``num = g tau (1-tau)^{n-1}``, ``T`` the
  expected slot) ties the sign of the costless utility slope to ``Q``:
  the utility rises on ``[0, tau*]`` and falls on ``[tau*, 1)``, which
  together with the strictly decreasing break-even margin
  ``(1-p) g - e`` yields the contiguous NE window family
  ``[W_c0, W_c*]`` of Theorem 2.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Tuple

from repro.errors import VerificationError
from repro.bianchi.fixedpoint import solve_symmetric
from repro.game.equilibrium import (
    analyze_equilibria,
    efficient_window,
    optimal_tau,
    q_function,
)
from repro.game.utility import symmetric_utility_from_tau
from repro.phy.parameters import default_parameters
from repro.verify.boxes import ParameterBox
from repro.verify.encodings import (
    coupling_residual,
    q_stationarity,
    slot_length,
    success_margin,
    utility_cross_difference,
    utility_numerator,
)
from repro.verify.interval import BoxProof, Dual, Interval, prove_sign_on_box
from repro.verify.smt import SmtSpec, bounded_real, rational

__all__ = [
    "CLAIMS",
    "CheckBudget",
    "Claim",
    "IntervalCheck",
    "PointVerdict",
    "TAU_EPS",
    "claims_for",
]

#: The open interval (0, 1) is approached to this margin: the encodings
#: are polynomials, so the claims extend to the closure by continuity,
#: but the fixed-point/stationarity structure lives strictly inside.
TAU_EPS = 1e-6

#: Upper tau reached by any symmetric profile with W >= 2:
#: tau = 2/(1 + W + pWS) <= 2/3 < 0.7, so claims over the reachable
#: region never need tau beyond this cap.
TAU_RIGHT_CAP = 0.7


@dataclass(frozen=True)
class CheckBudget:
    """Work limits shared by the checkers of one certification run."""

    max_boxes: int = 20000
    min_rel_width: float = 1e-4
    smt_timeout_ms: int = 120000
    max_vertices: int = 16
    tol: float = 1e-6


@dataclass(frozen=True)
class IntervalCheck:
    """One labelled interval-subdivision proof."""

    label: str
    proof: BoxProof


@dataclass(frozen=True)
class PointVerdict:
    """Differential verdict at one box vertex."""

    ok: bool
    detail: str
    quantities: Dict[str, float] = field(default_factory=dict)
    encoder: Dict[str, float] = field(default_factory=dict)


@dataclass(frozen=True)
class Claim:
    """One machine-checked claim with its three checker views."""

    name: str
    description: str
    interval_checks: Callable[[ParameterBox, CheckBudget], List[IntervalCheck]]
    smt_specs: Callable[[ParameterBox, CheckBudget], List[SmtSpec]]
    vertex_check: Callable[[ParameterBox, Mapping[str, float], float], PointVerdict]


# ----------------------------------------------------------------------
# Shared helpers
# ----------------------------------------------------------------------


def _branch_caps(box: ParameterBox, n: int) -> Tuple[float, float]:
    """Safe tau caps bracketing ``tau*`` for every point of the box.

    ``tau*`` is the unique root of ``Q`` (Lemma 3), which depends only
    on ``(n, sigma, Tc)``; ``Q`` increases with ``sigma`` and decreases
    with ``Tc`` at the crossing, so over the box ``tau*`` is smallest
    at ``(sigma_lo, tc_hi)`` and largest at ``(sigma_hi, tc_lo)``.  The
    caps are those two corner roots (production ``optimal_tau``) with a
    5% guard band.  The paper's large-``n`` approximation
    ``sqrt(2 sigma / Tc)/n`` is *not* used - it undershoots by >30% at
    ``n = 2``.  Soundness does not rest on these numeric roots: the
    caps only select the sub-domains the interval/SMT branch proofs
    quantify over, so a mis-placed cap surfaces as a counterexample,
    never as a false certificate.
    """
    lo_corner = box.slot_times_at(box.sigma_lo, box.ts_lo, box.tc_hi)
    hi_corner = box.slot_times_at(box.sigma_hi, box.ts_lo, box.tc_lo)
    left = 0.95 * optimal_tau(n, lo_corner)
    right = 1.05 * optimal_tau(n, hi_corner)
    left = max(left, 2.0 * TAU_EPS)
    right = min(max(right, left), TAU_RIGHT_CAP)
    return left, right


def _point_params(point: Mapping[str, float]) -> Any:
    """Production :class:`PhyParameters` at one vertex point."""
    return default_parameters().with_updates(
        gain=point["gain"],
        cost=point["cost"],
        max_backoff_stage=int(point["m"]),
    )


def _point_times(box: ParameterBox, point: Mapping[str, float]) -> Any:
    return box.slot_times_at(point["sigma"], point["ts"], point["tc"])


def _utility_slope_numerator(
    tau: Any, n: int, sigma: Any, ts: Any, tc: Any, gain: Any
) -> Any:
    """``num'(tau) T(tau) - num(tau) T'(tau)`` via forward-mode duals.

    Positive exactly where the costless symmetric utility increases
    (``T > 0`` on the whole domain).  Works for Interval *and* z3
    payloads - the symbolic SMT derivative is literally the same code
    path as the interval one.
    """
    t = Dual.variable(tau)
    num = utility_numerator(t, n, Dual.constant(gain), 0.0, ignore_cost=True)
    slot = slot_length(
        t, n, Dual.constant(sigma), Dual.constant(ts), Dual.constant(tc)
    )
    return num.der * slot.val - num.val * slot.der


# ----------------------------------------------------------------------
# Bianchi coupling: unique symmetric fixed point
# ----------------------------------------------------------------------


def _bianchi_interval(
    box: ParameterBox, budget: CheckBudget
) -> List[IntervalCheck]:
    checks = []
    tau_range = Interval(TAU_EPS, 1.0 - TAU_EPS)
    for n in box.n_values():

        def evaluate(
            dims: Mapping[str, Interval], n: int = n, m: int = box.m
        ) -> Interval:
            tau = Dual.variable(dims["tau"])
            resid = coupling_residual(tau, Dual.constant(dims["w"]), n, m)
            return resid.der

        proof = prove_sign_on_box(
            evaluate,
            {"tau": tau_range, "w": box.interval("w")},
            positive=True,
            max_boxes=budget.max_boxes,
            min_rel_width=budget.min_rel_width,
        )
        checks.append(IntervalCheck(label=f"n={n}:dR/dtau>0", proof=proof))
    return checks


def _bianchi_smt(box: ParameterBox, budget: CheckBudget) -> List[SmtSpec]:
    specs = []
    for n in box.n_values():

        def build(
            z3: Any, solver: Any, n: int = n, m: int = box.m
        ) -> Dict[str, Any]:
            tau1 = bounded_real(z3, solver, "tau1", TAU_EPS, 1.0 - TAU_EPS)
            tau2 = bounded_real(z3, solver, "tau2", TAU_EPS, 1.0 - TAU_EPS)
            w = bounded_real(z3, solver, "w", box.w_lo, box.w_hi)
            solver.add(tau1 < tau2)
            solver.add(coupling_residual(tau1, w, n, m) == 0)
            solver.add(coupling_residual(tau2, w, n, m) == 0)
            return {
                "tau1": tau1,
                "tau2": tau2,
                "w": w,
                "n": rational(z3, float(n)),
            }

        specs.append(
            SmtSpec(label=f"n={n}:two-symmetric-fixed-points", build=build)
        )
    return specs


def _bianchi_vertex(
    box: ParameterBox, point: Mapping[str, float], tol: float
) -> PointVerdict:
    n = int(point["n"])
    m = int(point["m"])
    w = float(point["w"])
    solution = solve_symmetric(w, n, m)
    resid = coupling_residual(solution.tau, w, n, m)
    below = coupling_residual(solution.tau * (1.0 - 1e-3), w, n, m)
    above = coupling_residual(min(solution.tau * (1.0 + 1e-3), 1.0), w, n, m)
    scale = 2.0 + w
    problems = []
    if abs(resid) > tol * scale:
        problems.append(
            f"encoder residual {resid!r} at the production fixed point "
            f"exceeds {tol * scale!r}"
        )
    if not below < 0.0 < above:
        problems.append(
            f"residual does not bracket the root: R-={below!r}, R+={above!r}"
        )
    return PointVerdict(
        ok=not problems,
        detail="; ".join(problems) or "fixed point matches encoder root",
        quantities={
            "tau_symmetric": solution.tau,
            "collision_symmetric": solution.collision,
        },
        encoder={"coupling_residual": float(resid)},
    )


# ----------------------------------------------------------------------
# Lemma 3: unique stationary tau* (Q sign structure)
# ----------------------------------------------------------------------


def _lemma3_interval(
    box: ParameterBox, budget: CheckBudget
) -> List[IntervalCheck]:
    checks = []
    sigma = box.interval("sigma")
    tc = box.interval("tc")
    for n in box.n_values():

        def slope(
            dims: Mapping[str, Interval], n: int = n
        ) -> Interval:
            tau = Dual.variable(dims["tau"])
            q = q_stationarity(
                tau, n, Dual.constant(dims["sigma"]), Dual.constant(dims["tc"])
            )
            return q.der

        def value(
            dims: Mapping[str, Interval], n: int = n
        ) -> Interval:
            return q_stationarity(dims["tau"], n, dims["sigma"], dims["tc"])

        proof = prove_sign_on_box(
            slope,
            {
                "tau": Interval(TAU_EPS, 1.0 - TAU_EPS),
                "sigma": sigma,
                "tc": tc,
            },
            positive=False,
            max_boxes=budget.max_boxes,
            min_rel_width=budget.min_rel_width,
        )
        checks.append(IntervalCheck(label=f"n={n}:dQ/dtau<0", proof=proof))
        left = prove_sign_on_box(
            value,
            {
                "tau": Interval.point(TAU_EPS),
                "sigma": sigma,
                "tc": tc,
            },
            positive=True,
            max_boxes=budget.max_boxes,
            min_rel_width=budget.min_rel_width,
        )
        checks.append(IntervalCheck(label=f"n={n}:Q(eps)>0", proof=left))
        right = prove_sign_on_box(
            value,
            {
                "tau": Interval.point(1.0 - TAU_EPS),
                "sigma": sigma,
                "tc": tc,
            },
            positive=False,
            max_boxes=budget.max_boxes,
            min_rel_width=budget.min_rel_width,
        )
        checks.append(IntervalCheck(label=f"n={n}:Q(1-eps)<0", proof=right))
    return checks


def _lemma3_smt(box: ParameterBox, budget: CheckBudget) -> List[SmtSpec]:
    specs = []
    for n in box.n_values():

        def build(z3: Any, solver: Any, n: int = n) -> Dict[str, Any]:
            tau1 = bounded_real(z3, solver, "tau1", TAU_EPS, 1.0 - TAU_EPS)
            tau2 = bounded_real(z3, solver, "tau2", TAU_EPS, 1.0 - TAU_EPS)
            sigma = bounded_real(z3, solver, "sigma", box.sigma_lo, box.sigma_hi)
            tc = bounded_real(z3, solver, "tc", box.tc_lo, box.tc_hi)
            solver.add(tau1 < tau2)
            solver.add(q_stationarity(tau1, n, sigma, tc) <= 0)
            solver.add(q_stationarity(tau2, n, sigma, tc) >= 0)
            return {
                "tau1": tau1,
                "tau2": tau2,
                "sigma": sigma,
                "tc": tc,
                "n": rational(z3, float(n)),
            }

        specs.append(
            SmtSpec(label=f"n={n}:Q-recovers-after-crossing", build=build)
        )
    return specs


def _lemma3_vertex(
    box: ParameterBox, point: Mapping[str, float], tol: float
) -> PointVerdict:
    n = int(point["n"])
    times = _point_times(box, point)
    tau_star = optimal_tau(n, times)
    scale = point["sigma"] + point["tc"]
    probes = (0.5 * tau_star, tau_star, min(1.5 * tau_star, 0.99))
    problems = []
    for tau in probes:
        enc = q_stationarity(tau, n, times.idle_us, times.collision_us)
        prod = q_function(tau, n, times)
        if abs(enc - prod) > tol * scale:
            problems.append(
                f"encoder Q({tau!r})={enc!r} disagrees with production "
                f"{prod!r}"
            )
    q_left = q_stationarity(probes[0], n, times.idle_us, times.collision_us)
    q_star = q_stationarity(tau_star, n, times.idle_us, times.collision_us)
    q_right = q_stationarity(probes[2], n, times.idle_us, times.collision_us)
    if not q_left > 0.0 > q_right:
        problems.append(
            f"Q sign pattern broken around tau*: Q-={q_left!r}, Q+={q_right!r}"
        )
    if abs(q_star) > tol * scale:
        problems.append(
            f"encoder Q(tau*)={q_star!r} is not stationary (tau*={tau_star!r})"
        )
    return PointVerdict(
        ok=not problems,
        detail="; ".join(problems) or "unique stationary tau* confirmed",
        quantities={"tau_star": tau_star},
        encoder={"q_at_tau_star": float(q_star)},
    )


# ----------------------------------------------------------------------
# Theorem 2: the NE window family [W_c0, W_c*]
# ----------------------------------------------------------------------


def _theorem2_interval(
    box: ParameterBox, budget: CheckBudget
) -> List[IntervalCheck]:
    checks = []
    for n in box.n_values():
        left_cap, right_cap = _branch_caps(box, n)

        def margin_slope(
            dims: Mapping[str, Interval], n: int = n
        ) -> Interval:
            tau = Dual.variable(dims["tau"])
            margin = success_margin(
                tau,
                n,
                Dual.constant(dims["gain"]),
                Dual.constant(dims["cost"]),
            )
            return margin.der

        def slope_num(
            dims: Mapping[str, Interval], n: int = n
        ) -> Interval:
            return _utility_slope_numerator(
                dims["tau"],
                n,
                dims["sigma"],
                dims["ts"],
                dims["tc"],
                dims["gain"],
            )

        proof = prove_sign_on_box(
            margin_slope,
            {
                "tau": Interval(TAU_EPS, 1.0 - TAU_EPS),
                "gain": box.interval("gain"),
                "cost": box.interval("cost"),
            },
            positive=False,
            max_boxes=budget.max_boxes,
            min_rel_width=budget.min_rel_width,
        )
        checks.append(
            IntervalCheck(label=f"n={n}:dmargin/dtau<0", proof=proof)
        )
        timing = {
            "sigma": box.interval("sigma"),
            "ts": box.interval("ts"),
            "tc": box.interval("tc"),
            "gain": box.interval("gain"),
        }
        rising = prove_sign_on_box(
            slope_num,
            {"tau": Interval(TAU_EPS, left_cap), **timing},
            positive=True,
            max_boxes=budget.max_boxes,
            min_rel_width=budget.min_rel_width,
        )
        checks.append(
            IntervalCheck(label=f"n={n}:U'-positive-below-tau*", proof=rising)
        )
        falling = prove_sign_on_box(
            slope_num,
            {"tau": Interval(right_cap, TAU_RIGHT_CAP), **timing},
            positive=False,
            max_boxes=budget.max_boxes,
            min_rel_width=budget.min_rel_width,
        )
        checks.append(
            IntervalCheck(label=f"n={n}:U'-negative-above-tau*", proof=falling)
        )
    return checks


def _theorem2_smt(box: ParameterBox, budget: CheckBudget) -> List[SmtSpec]:
    specs = []
    for n in box.n_values():

        def margin_build(z3: Any, solver: Any, n: int = n) -> Dict[str, Any]:
            tau1 = bounded_real(z3, solver, "tau1", TAU_EPS, 1.0 - TAU_EPS)
            tau2 = bounded_real(z3, solver, "tau2", TAU_EPS, 1.0 - TAU_EPS)
            gain = bounded_real(z3, solver, "gain", box.gain_lo, box.gain_hi)
            cost = bounded_real(z3, solver, "cost", box.cost_lo, box.cost_hi)
            solver.add(tau1 < tau2)
            solver.add(
                success_margin(tau2, n, gain, cost)
                >= success_margin(tau1, n, gain, cost)
            )
            return {
                "tau1": tau1,
                "tau2": tau2,
                "gain": gain,
                "cost": cost,
                "n": rational(z3, float(n)),
            }

        def identity_build(z3: Any, solver: Any, n: int = n) -> Dict[str, Any]:
            tau = bounded_real(z3, solver, "tau", TAU_EPS, 1.0 - TAU_EPS)
            sigma = bounded_real(z3, solver, "sigma", box.sigma_lo, box.sigma_hi)
            ts = bounded_real(z3, solver, "ts", box.ts_lo, box.ts_hi)
            tc = bounded_real(z3, solver, "tc", box.tc_lo, box.tc_hi)
            gain = bounded_real(z3, solver, "gain", box.gain_lo, box.gain_hi)
            slope = _utility_slope_numerator(tau, n, sigma, ts, tc, gain)
            q = q_stationarity(tau, n, sigma, tc)
            solver.add(slope != gain * (1 - tau) ** (n - 2) * q)
            return {
                "tau": tau,
                "sigma": sigma,
                "ts": ts,
                "tc": tc,
                "gain": gain,
                "n": rational(z3, float(n)),
            }

        def branch_build(z3: Any, solver: Any, n: int = n) -> Dict[str, Any]:
            tau1 = bounded_real(z3, solver, "tau1", TAU_EPS, 1.0 - TAU_EPS)
            tau2 = bounded_real(z3, solver, "tau2", TAU_EPS, 1.0 - TAU_EPS)
            sigma = bounded_real(z3, solver, "sigma", box.sigma_lo, box.sigma_hi)
            ts = bounded_real(z3, solver, "ts", box.ts_lo, box.ts_hi)
            tc = bounded_real(z3, solver, "tc", box.tc_lo, box.tc_hi)
            gain = bounded_real(z3, solver, "gain", box.gain_lo, box.gain_hi)
            cost = bounded_real(z3, solver, "cost", box.cost_lo, box.cost_hi)
            solver.add(tau1 < tau2)
            solver.add(q_stationarity(tau2, n, sigma, tc) >= 0)
            solver.add(
                utility_cross_difference(
                    tau1,
                    tau2,
                    n,
                    sigma,
                    ts,
                    tc,
                    gain,
                    cost,
                    ignore_cost=True,
                )
                >= 0
            )
            return {
                "tau1": tau1,
                "tau2": tau2,
                "sigma": sigma,
                "tc": tc,
                "n": rational(z3, float(n)),
            }

        specs.append(
            SmtSpec(label=f"n={n}:margin-not-decreasing", build=margin_build)
        )
        specs.append(
            SmtSpec(label=f"n={n}:slope-identity-broken", build=identity_build)
        )
        specs.append(
            SmtSpec(
                label=f"n={n}:utility-not-increasing-below-tau*",
                build=branch_build,
            )
        )
    return specs


def _theorem2_vertex(
    box: ParameterBox, point: Mapping[str, float], tol: float
) -> PointVerdict:
    n = int(point["n"])
    m = int(point["m"])
    params = _point_params(point)
    times = _point_times(box, point)
    analysis = analyze_equilibria(n, params, times)
    sol_zero = solve_symmetric(float(analysis.window_breakeven), n, m)
    margin_prod = (1.0 - sol_zero.collision) * point["gain"] - point["cost"]
    margin_enc = success_margin(
        sol_zero.tau, n, point["gain"], point["cost"]
    )
    problems = []
    if analysis.n_equilibria < 1:
        problems.append("the NE family of Theorem 2 is empty")
    if abs(margin_enc - margin_prod) > tol:
        problems.append(
            f"encoder margin {margin_enc!r} disagrees with production "
            f"{margin_prod!r} at W_c0={analysis.window_breakeven}"
        )
    if margin_enc <= 0.0:
        problems.append(
            f"stage payoff not positive at W_c0={analysis.window_breakeven}"
        )
    if analysis.window_breakeven > params.cw_min:
        below = solve_symmetric(
            float(analysis.window_breakeven - 1), n, m
        )
        margin_below = success_margin(
            below.tau, n, point["gain"], point["cost"]
        )
        if margin_below > tol:
            problems.append(
                f"W_c0 is not minimal: margin {margin_below!r} already "
                f"positive at {analysis.window_breakeven - 1}"
            )
    u_zero = symmetric_utility_from_tau(
        sol_zero.tau, n, params, times, ignore_cost=False
    )
    if analysis.utility_at_star < u_zero - tol:
        problems.append(
            "W_c* is not the efficient end of the NE family: "
            f"U(W_c*)={analysis.utility_at_star!r} < U(W_c0)={u_zero!r}"
        )
    return PointVerdict(
        ok=not problems,
        detail="; ".join(problems) or "NE interval structure confirmed",
        quantities={
            "tau_star": analysis.tau_star,
            "window_star": float(analysis.window_star),
            "window_breakeven": float(analysis.window_breakeven),
            "n_equilibria": float(analysis.n_equilibria),
            "margin_at_breakeven": float(margin_prod),
            "utility_at_star": analysis.utility_at_star,
        },
        encoder={"margin_at_breakeven": float(margin_enc)},
    )


# ----------------------------------------------------------------------
# Theorem 3: multi-hop drag-down NE (tau decreasing in W, utility
# decreasing beyond tau*)
# ----------------------------------------------------------------------


def _theorem3_interval(
    box: ParameterBox, budget: CheckBudget
) -> List[IntervalCheck]:
    checks = []
    tau_range = Interval(TAU_EPS, 1.0 - TAU_EPS)
    for n in box.n_values():
        _, right_cap = _branch_caps(box, n)

        def dw(dims: Mapping[str, Interval], n: int = n) -> Interval:
            w = Dual.variable(dims["w"])
            resid = coupling_residual(Dual.constant(dims["tau"]), w, n, box.m)
            return resid.der

        def dtau(dims: Mapping[str, Interval], n: int = n) -> Interval:
            tau = Dual.variable(dims["tau"])
            resid = coupling_residual(tau, Dual.constant(dims["w"]), n, box.m)
            return resid.der

        def slope_num(dims: Mapping[str, Interval], n: int = n) -> Interval:
            return _utility_slope_numerator(
                dims["tau"],
                n,
                dims["sigma"],
                dims["ts"],
                dims["tc"],
                dims["gain"],
            )

        for label, func, sign in (
            (f"n={n}:dR/dw>0", dw, True),
            (f"n={n}:dR/dtau>0", dtau, True),
        ):
            proof = prove_sign_on_box(
                func,
                {"tau": tau_range, "w": box.interval("w")},
                positive=sign,
                max_boxes=budget.max_boxes,
                min_rel_width=budget.min_rel_width,
            )
            checks.append(IntervalCheck(label=label, proof=proof))
        falling = prove_sign_on_box(
            slope_num,
            {
                "tau": Interval(right_cap, TAU_RIGHT_CAP),
                "sigma": box.interval("sigma"),
                "ts": box.interval("ts"),
                "tc": box.interval("tc"),
                "gain": box.interval("gain"),
            },
            positive=False,
            max_boxes=budget.max_boxes,
            min_rel_width=budget.min_rel_width,
        )
        checks.append(
            IntervalCheck(
                label=f"n={n}:U'-negative-beyond-tau*", proof=falling
            )
        )
    return checks


def _theorem3_smt(box: ParameterBox, budget: CheckBudget) -> List[SmtSpec]:
    specs = []
    for n in box.n_values():

        def coupling_build(z3: Any, solver: Any, n: int = n) -> Dict[str, Any]:
            tau1 = bounded_real(z3, solver, "tau1", TAU_EPS, 1.0 - TAU_EPS)
            tau2 = bounded_real(z3, solver, "tau2", TAU_EPS, 1.0 - TAU_EPS)
            w1 = bounded_real(z3, solver, "w1", box.w_lo, box.w_hi)
            w2 = bounded_real(z3, solver, "w2", box.w_lo, box.w_hi)
            solver.add(w1 < w2)
            solver.add(coupling_residual(tau1, w1, n, box.m) == 0)
            solver.add(coupling_residual(tau2, w2, n, box.m) == 0)
            solver.add(tau2 >= tau1)
            return {
                "tau1": tau1,
                "tau2": tau2,
                "w1": w1,
                "w2": w2,
                "n": rational(z3, float(n)),
            }

        def branch_build(z3: Any, solver: Any, n: int = n) -> Dict[str, Any]:
            tau1 = bounded_real(z3, solver, "tau1", TAU_EPS, 1.0 - TAU_EPS)
            tau2 = bounded_real(z3, solver, "tau2", TAU_EPS, 1.0 - TAU_EPS)
            sigma = bounded_real(z3, solver, "sigma", box.sigma_lo, box.sigma_hi)
            ts = bounded_real(z3, solver, "ts", box.ts_lo, box.ts_hi)
            tc = bounded_real(z3, solver, "tc", box.tc_lo, box.tc_hi)
            gain = bounded_real(z3, solver, "gain", box.gain_lo, box.gain_hi)
            cost = bounded_real(z3, solver, "cost", box.cost_lo, box.cost_hi)
            solver.add(tau1 < tau2)
            solver.add(q_stationarity(tau1, n, sigma, tc) <= 0)
            solver.add(
                utility_cross_difference(
                    tau2,
                    tau1,
                    n,
                    sigma,
                    ts,
                    tc,
                    gain,
                    cost,
                    ignore_cost=True,
                )
                >= 0
            )
            return {
                "tau1": tau1,
                "tau2": tau2,
                "sigma": sigma,
                "tc": tc,
                "n": rational(z3, float(n)),
            }

        specs.append(
            SmtSpec(
                label=f"n={n}:tau-not-decreasing-in-w", build=coupling_build
            )
        )
        specs.append(
            SmtSpec(
                label=f"n={n}:utility-not-decreasing-beyond-tau*",
                build=branch_build,
            )
        )
    return specs


def _theorem3_vertex(
    box: ParameterBox, point: Mapping[str, float], tol: float
) -> PointVerdict:
    n = int(point["n"])
    m = int(point["m"])
    params = _point_params(point)
    times = _point_times(box, point)
    windows = sorted({box.w_lo, 0.5 * (box.w_lo + box.w_hi), box.w_hi})
    taus = [solve_symmetric(w, n, m).tau for w in windows]
    problems = []
    residuals = [
        float(coupling_residual(tau, w, n, m))
        for tau, w in zip(taus, windows)
    ]
    for w, resid in zip(windows, residuals):
        if abs(resid) > tol * (2.0 + w):
            problems.append(
                f"encoder residual {resid!r} at W={w!r} exceeds tolerance"
            )
    for earlier, later in zip(taus, taus[1:]):
        if not later < earlier:
            problems.append(
                f"tau is not strictly decreasing in W: {taus!r}"
            )
            break
    w_star = efficient_window(n, params, times)
    tau_star_window = solve_symmetric(float(w_star), n, m).tau
    tau_aggressive = taus[0]
    if tau_aggressive > tau_star_window + tol:
        u_star = symmetric_utility_from_tau(
            tau_star_window, n, params, times, ignore_cost=True
        )
        u_aggressive = symmetric_utility_from_tau(
            tau_aggressive, n, params, times, ignore_cost=True
        )
        if not u_star > u_aggressive:
            problems.append(
                "production utility does not fall beyond tau*: "
                f"U(tau*)={u_star!r} <= U(tau_aggr)={u_aggressive!r}"
            )
        cross = utility_cross_difference(
            tau_star_window,
            tau_aggressive,
            n,
            times.idle_us,
            times.success_us,
            times.collision_us,
            point["gain"],
            point["cost"],
            ignore_cost=True,
        )
        if not cross > 0.0:
            problems.append(
                f"encoder cross-difference {cross!r} disagrees with the "
                "production utility ordering"
            )
    return PointVerdict(
        ok=not problems,
        detail="; ".join(problems)
        or "drag-down structure confirmed (tau falls with W, utility "
        "falls beyond tau*)",
        quantities={
            "tau_at_w_lo": taus[0],
            "tau_at_w_hi": taus[-1],
            "local_window_star": float(w_star),
        },
        encoder={"coupling_residual_at_w_lo": residuals[0]},
    )


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------

CLAIMS: Dict[str, Claim] = {
    "bianchi": Claim(
        name="bianchi",
        description=(
            "The symmetric Bianchi fixed point is unique: the coupling "
            "residual R(tau, W) is strictly increasing in tau."
        ),
        interval_checks=_bianchi_interval,
        smt_specs=_bianchi_smt,
        vertex_check=_bianchi_vertex,
    ),
    "lemma3": Claim(
        name="lemma3",
        description=(
            "Lemma 3: Q(tau) is strictly decreasing with Q(0+) > 0 > "
            "Q(1-), so the stationary tau* is unique and the symmetric "
            "utility is unimodal."
        ),
        interval_checks=_lemma3_interval,
        smt_specs=_lemma3_smt,
        vertex_check=_lemma3_vertex,
    ),
    "theorem2": Claim(
        name="theorem2",
        description=(
            "Theorem 2: the symmetric NE form the contiguous window "
            "family [W_c0, W_c*] - the utility rises up to tau*, falls "
            "beyond it, and the break-even margin decreases strictly."
        ),
        interval_checks=_theorem2_interval,
        smt_specs=_theorem2_smt,
        vertex_check=_theorem2_vertex,
    ),
    "theorem3": Claim(
        name="theorem3",
        description=(
            "Theorem 3 (multi-hop): tau falls strictly with W, so TFT "
            "drags every local domain to W_m = min_i W_i, and the "
            "utility falls beyond tau* (deviating below the local "
            "optimum hurts)."
        ),
        interval_checks=_theorem3_interval,
        smt_specs=_theorem3_smt,
        vertex_check=_theorem3_vertex,
    ),
}


def claims_for(selection: Any) -> List[Claim]:
    """Resolve a theorem selection to claims.

    ``selection`` is an iterable of claim names or the string
    ``"all"``; unknown names raise.
    """
    if isinstance(selection, str):
        selection = [selection]
    names: List[str] = []
    for entry in selection:
        if entry == "all":
            names.extend(sorted(CLAIMS))
        elif entry in CLAIMS:
            names.append(entry)
        else:
            raise VerificationError(
                f"unknown theorem {entry!r}; expected one of "
                f"{('all',) + tuple(sorted(CLAIMS))}"
            )
    seen = []
    for name in names:
        if name not in seen:
            seen.append(name)
    return [CLAIMS[name] for name in seen]
