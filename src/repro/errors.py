"""Exception hierarchy for the :mod:`repro` package.

Every error raised by this library derives from :class:`ReproError`, so
downstream users can catch one base class.  Specific subclasses signal the
layer that failed: model configuration, numerical solving, game definition,
simulation, or the distributed search protocol.
"""

from __future__ import annotations

__all__ = [
    "BackendError",
    "CampaignError",
    "ContractError",
    "ConvergenceError",
    "GameDefinitionError",
    "InsufficientDataError",
    "IntegrityError",
    "LintError",
    "ParameterError",
    "ProtocolError",
    "ReproError",
    "ServeError",
    "SimulationError",
    "StoreError",
    "StrategyError",
    "TopologyError",
    "VerificationError",
]


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class ParameterError(ReproError, ValueError):
    """A PHY/MAC or model parameter is out of its valid domain."""


class ContractError(ParameterError):
    """A validated invariant of :mod:`repro.contracts` was violated.

    Subclasses :class:`ParameterError` so boundary callers that catch the
    generic domain error keep working when a check is expressed as a
    contract instead of an inline ``if``/``raise``.
    """


class InsufficientDataError(ParameterError):
    """An estimator was asked for a result before observing any data.

    Raised by :mod:`repro.detect` when an observation window contains
    zero slots or zero attempts - the division that would otherwise
    produce ``nan``/``inf`` estimates and leak into hypothesis tests.
    Subclasses :class:`ParameterError` so callers catching the generic
    domain error keep working.
    """


class ConvergenceError(ReproError, RuntimeError):
    """A numerical fixed point or root search failed to converge."""


class GameDefinitionError(ReproError, ValueError):
    """A game was constructed with an inconsistent specification."""


class StrategyError(ReproError, RuntimeError):
    """A strategy was driven outside its contract (e.g. missing history)."""


class SimulationError(ReproError, RuntimeError):
    """The discrete-event simulator reached an inconsistent state."""


class ProtocolError(ReproError, RuntimeError):
    """The distributed NE-search protocol violated its message contract."""


class TopologyError(ReproError, ValueError):
    """A multi-hop topology is invalid for the requested operation."""


class StoreError(ReproError, RuntimeError):
    """The content-addressed results store is missing or inconsistent."""


class IntegrityError(StoreError):
    """A stored artefact failed integrity verification on read.

    Raised when a result payload's recorded SHA-256 no longer matches the
    bytes on disk, or a manifest is malformed - i.e. the store was
    tampered with or truncated, not merely absent.
    """


class CampaignError(ReproError, ValueError):
    """A campaign specification is malformed or inconsistent."""


class BackendError(ReproError, RuntimeError):
    """A compute backend is unknown, unavailable or misbehaved.

    Raised by :mod:`repro.backends` when a requested backend name is not
    registered, when ``fallback=False`` resolution hits an unavailable
    backend, or when a native kernel fails to build/load.
    """


class ServeError(ReproError, RuntimeError):
    """The serving layer received a malformed request or lost a worker.

    Raised by :mod:`repro.serve` for unknown request kinds, invalid
    request documents and solver failures surfaced to waiting clients.
    """


class VerificationError(ReproError, RuntimeError):
    """The machine-checked verification layer could not run a check.

    Raised by :mod:`repro.verify` when a requested checker backend is
    unavailable and was explicitly required (``z3`` missing for an SMT
    check), when a claim/box name is unknown, or when a scenario file is
    malformed.  A claim *failing* is never an exception - failures are
    reported as counterexample verdicts in the certificate.
    """


class LintError(ReproError, ValueError):
    """The static analyzer was misconfigured or fed bad inputs.

    Raised by :mod:`repro.lint` for unknown/duplicate rule codes and
    unreadable baseline files.  Subclasses :class:`ValueError` so
    pre-hierarchy callers catching ``ValueError`` keep working.
    """
