"""Cheap runtime contracts for the model's numerical invariants.

The fixed-point, utility and equilibrium layers rest on invariants the
paper states but code only holds implicitly: transmission and collision
probabilities live in ``[0, 1]``, contention windows satisfy ``W >= 1``,
and the Theorem 2 NE family is the interval ``W_c0 <= W_c <= W_c*``.
This module makes those invariants machine-checked at the few points
where a numerical bug would silently corrupt every downstream artefact.

Two usage tiers:

* **Always-on boundary checks.**  Call :func:`check_probability`,
  :func:`check_window` or :func:`check_interval` directly where a public
  function validates its inputs; they raise
  :class:`repro.errors.ContractError` (a :class:`ParameterError`) on
  violation.
* **Gated hot-path checks.**  Wrap the same helpers in
  :func:`checks_enabled` or apply the :func:`contract` decorator; both
  honour the ``REPRO_CHECKS`` environment variable, so production sweeps
  can run with ``REPRO_CHECKS=0`` and pay nothing beyond one dict lookup
  per call.

Checks are enabled by default: correctness first, opt out explicitly.
"""

from __future__ import annotations

import functools
import inspect
import os
import re
from typing import Any, Callable, Optional, TypeVar, Union

import numpy as np

from repro.errors import ContractError

__all__ = [
    "ENV_FLAG",
    "checks_enabled",
    "check_digest",
    "check_interval",
    "check_probability",
    "check_window",
    "contract",
    "in_interval",
    "probability",
    "window",
]

ENV_FLAG = "REPRO_CHECKS"

ScalarOrArray = Union[float, int, np.ndarray]
Validator = Callable[[Any, str], Any]
F = TypeVar("F", bound=Callable[..., Any])

_DEFAULT_TOL = 1e-9


def checks_enabled() -> bool:
    """Whether runtime contracts are active (``REPRO_CHECKS != "0"``)."""
    return os.environ.get(ENV_FLAG, "1") != "0"


def _fail(name: str, value: Any, requirement: str) -> None:
    raise ContractError(
        f"contract violated: {name} must {requirement}, got {value!r}"
    )


def check_probability(
    value: ScalarOrArray,
    name: str = "probability",
    *,
    tol: float = _DEFAULT_TOL,
) -> ScalarOrArray:
    """Require ``value`` (scalar or array) to lie in ``[0, 1]``.

    A tolerance absorbs honest floating-point overshoot (e.g. a fixed
    point returning ``1 + 1e-16``); anything beyond it is a genuine
    invariant violation.  Returns ``value`` unchanged so the helper can
    be used inline: ``tau = check_probability(solve(...), "tau")``.
    """
    arr = np.asarray(value, dtype=float)
    if not np.all(np.isfinite(arr)):
        _fail(name, value, "be finite")
    if np.any(arr < -tol) or np.any(arr > 1.0 + tol):
        _fail(name, value, "lie in [0, 1]")
    return value


def check_window(
    value: ScalarOrArray,
    name: str = "window",
    *,
    minimum: float = 1.0,
) -> ScalarOrArray:
    """Require a contention window (scalar or array) to satisfy ``W >= 1``.

    ``minimum`` generalises to other lower bounds (e.g. ``cw_min``).
    Returns ``value`` unchanged.
    """
    arr = np.asarray(value, dtype=float)
    if not np.all(np.isfinite(arr)):
        _fail(name, value, "be finite")
    if np.any(arr < minimum):
        _fail(name, value, f"be >= {minimum!r}")
    return value


def check_interval(
    value: ScalarOrArray,
    lower: float,
    upper: float,
    name: str = "value",
    *,
    tol: float = 0.0,
) -> ScalarOrArray:
    """Require ``lower - tol <= value <= upper + tol`` (scalar or array).

    This is the Theorem 2 shape: the efficient window must fall inside
    ``[W_c0, W_c*]``, a converged ``tau`` inside its bracket, and so on.
    Returns ``value`` unchanged.
    """
    if upper < lower:
        _fail(name, (lower, upper), "have a non-empty interval")
    arr = np.asarray(value, dtype=float)
    if not np.all(np.isfinite(arr)):
        _fail(name, value, "be finite")
    if np.any(arr < lower - tol) or np.any(arr > upper + tol):
        _fail(name, value, f"lie in [{lower!r}, {upper!r}]")
    return value


_DIGEST_PATTERN = re.compile(r"[0-9a-f]{64}\Z")


def check_digest(value: Any, name: str = "digest") -> str:
    """Require ``value`` to be a 64-character lowercase hex SHA-256 digest.

    The content-addressed results store (:mod:`repro.store`) keys every
    run by such a digest; validating the shape at the boundary turns a
    corrupted index or a truncated manifest into a loud
    :class:`~repro.errors.ContractError` instead of a silent cache miss.
    Returns ``value`` unchanged.
    """
    if not isinstance(value, str) or _DIGEST_PATTERN.fullmatch(value) is None:
        _fail(name, value, "be a 64-character lowercase hex sha-256 digest")
    return value


# ----------------------------------------------------------------------
# Validator factories for the decorator form
# ----------------------------------------------------------------------
def probability(*, tol: float = _DEFAULT_TOL) -> Validator:
    """Validator factory: argument/result must be a probability."""

    def validate(value: Any, name: str) -> Any:
        return check_probability(value, name, tol=tol)

    return validate


def window(*, minimum: float = 1.0) -> Validator:
    """Validator factory: argument/result must be a window ``>= minimum``."""

    def validate(value: Any, name: str) -> Any:
        return check_window(value, name, minimum=minimum)

    return validate


def in_interval(lower: float, upper: float, *, tol: float = 0.0) -> Validator:
    """Validator factory: argument/result must lie in ``[lower, upper]``."""

    def validate(value: Any, name: str) -> Any:
        return check_interval(value, lower, upper, name, tol=tol)

    return validate


def contract(
    *, result: Optional[Validator] = None, **param_validators: Validator
) -> Callable[[F], F]:
    """Attach gated invariant checks to a function's arguments and result.

    Each keyword names a parameter of the decorated function and maps it
    to a validator ``callable(value, name)``; ``result=`` validates the
    return value.  When ``REPRO_CHECKS=0`` the wrapper short-circuits to
    the undecorated call, so hot paths pay only an environment lookup.

    Examples
    --------
    >>> @contract(tau=probability())
    ... def success_rate(tau: float) -> float:
    ...     return 1.0 - tau
    >>> success_rate(0.25)
    0.75
    """

    def decorate(func: F) -> F:
        signature = inspect.signature(func)
        unknown = set(param_validators) - set(signature.parameters)
        if unknown:
            raise ContractError(
                f"contract on {func.__qualname__!r} names unknown "
                f"parameters: {sorted(unknown)!r}"
            )

        @functools.wraps(func)
        def wrapper(*args: Any, **kwargs: Any) -> Any:
            if not checks_enabled():
                return func(*args, **kwargs)
            bound = signature.bind(*args, **kwargs)
            bound.apply_defaults()
            for param_name, validate in param_validators.items():
                validate(bound.arguments[param_name], param_name)
            value = func(*args, **kwargs)
            if result is not None:
                result(value, f"{func.__qualname__}() result")
            return value

        return wrapper  # type: ignore[return-value]

    return decorate
