"""Shared static-typing aliases for the numerically typed packages.

``mypy --strict`` (see the ``lint`` CI job) requires parameterized
generics; these aliases name the only array flavours the model layers
exchange, so annotations stay short and the dtype intent is explicit.
"""

from __future__ import annotations

from typing import Union

import numpy as np
import numpy.typing as npt

__all__ = ["BoolArray", "FloatArray", "IntArray", "ScalarOrArray"]

#: Float64 ndarray - probabilities, utilities, timings.
FloatArray = npt.NDArray[np.float64]

#: Int64 ndarray - windows, counters, slot counts.
IntArray = npt.NDArray[np.int64]

#: Boolean ndarray - adjacency and masks.
BoolArray = npt.NDArray[np.bool_]

#: Accepted by the contract helpers: one value or a whole array.
ScalarOrArray = Union[float, int, FloatArray, IntArray]
