"""Empirical repeated game: TFT on *measured* windows.

The analytical engine (:mod:`repro.game.repeated`) hands strategies the
true window profile (the paper's perfect-observation assumption).  This
engine removes the oracle: each stage actually runs the DCF simulator on
the current profile, every player estimates the others' windows from the
channel events it overheard (:mod:`repro.detect.estimator`), and the
stock strategies act on those estimates - its own window it of course
knows exactly.

With enough observation slots per stage the estimates are tight and the
empirical dynamics coincide with the analytical ones (TFT floods the
minimum window in one reaction stage); with short stages the estimation
noise is exactly the regime Generous TFT's tolerance was designed for.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro.errors import GameDefinitionError
from repro.detect.estimator import estimate_windows
from repro.game.definition import MACGame
from repro.game.strategies import Strategy
from repro.sim.engine import DcfSimulator

__all__ = ["EmpiricalRepeatedGame", "EmpiricalStage"]


@dataclass(frozen=True)
class EmpiricalStage:
    """One stage of an empirical run.

    Attributes
    ----------
    stage:
        Stage index.
    windows:
        The profile actually configured this stage.
    estimated_windows:
        The (shared-channel) window estimates after the stage's
        simulation; ``nan`` where a node stayed silent.
    payoff_rates:
        Per-node *measured* payoffs, ``(n_s g - n_e e) / t_m``.
    """

    stage: int
    windows: np.ndarray
    estimated_windows: np.ndarray
    payoff_rates: np.ndarray


@dataclass
class EmpiricalTrace:
    """Full record of an empirical repeated-game run."""

    stages: List[EmpiricalStage] = field(default_factory=list)

    @property
    def final_windows(self) -> np.ndarray:
        """Profile of the last stage."""
        if not self.stages:
            raise GameDefinitionError("trace is empty")
        return self.stages[-1].windows

    def window_history(self) -> np.ndarray:
        """Stacked profiles, shape ``(n_stages, n_players)``."""
        return np.stack([stage.windows for stage in self.stages])


class EmpiricalRepeatedGame:
    """Run the repeated MAC game on the simulator with measured CWs.

    Parameters
    ----------
    game:
        The stage game (constants, access mode, player count).
    strategies:
        One strategy per player (the same objects the analytical engine
        uses).
    initial_windows:
        Stage-0 profile.
    slots_per_stage:
        Virtual slots simulated (and observed) per stage.  More slots =
        tighter estimates.
    seed:
        Base seed; each stage uses an independent stream.
    """

    def __init__(
        self,
        game: MACGame,
        strategies: Sequence[Strategy],
        initial_windows: Sequence[int],
        *,
        slots_per_stage: int = 60_000,
        seed: int = 0,
    ) -> None:
        if len(strategies) != game.n_players:
            raise GameDefinitionError(
                f"need {game.n_players} strategies, got {len(strategies)}"
            )
        if slots_per_stage < 1:
            raise GameDefinitionError(
                f"slots_per_stage must be >= 1, got {slots_per_stage!r}"
            )
        self.game = game
        self.strategies = list(strategies)
        self.initial_windows = game.validate_profile(initial_windows)
        self.slots_per_stage = slots_per_stage
        self.seed = seed

    def run(self, n_stages: int) -> EmpiricalTrace:
        """Play ``n_stages`` simulated stages and return the trace."""
        if n_stages < 1:
            raise GameDefinitionError(
                f"n_stages must be >= 1, got {n_stages!r}"
            )
        trace = EmpiricalTrace()
        windows = self.initial_windows.copy()
        # Per-player observed histories (1-D profiles as each player saw
        # them: estimates for others, exact for itself).
        histories: List[List[np.ndarray]] = [
            [] for _ in range(self.game.n_players)
        ]

        for stage in range(n_stages):
            if stage > 0:
                windows = np.array(
                    [
                        float(
                            self.strategies[player].next_window(
                                player, histories[player], self.game
                            )
                        )
                        for player in range(self.game.n_players)
                    ]
                )
            simulator = DcfSimulator(
                [int(w) for w in windows],
                self.game.params,
                self.game.mode,
                seed=self.seed + stage,
            )
            result = simulator.run(self.slots_per_stage)
            estimates = estimate_windows(
                result, self.game.params.max_backoff_stage
            )
            lo, hi = self.game.params.cw_min, self.game.params.cw_max
            for player in range(self.game.n_players):
                view = estimates.copy()
                # Silent nodes observed nothing: assume they are polite
                # (top of the strategy space) rather than aggressive.
                view[np.isnan(view)] = hi
                view = np.clip(np.round(view), lo, hi)
                view[player] = windows[player]  # own window known exactly
                histories[player].append(view)
            trace.stages.append(
                EmpiricalStage(
                    stage=stage,
                    windows=windows.copy(),
                    estimated_windows=estimates,
                    payoff_rates=result.payoff_rates.copy(),
                )
            )
        return trace
