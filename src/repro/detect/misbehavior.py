"""Misbehaviour flagging from estimated contention windows.

The observation mechanism the paper cites ([Kyasanur & Vaidya,
DSN 2003]) exists to *detect misbehaving stations*.  GTFT already embeds
the decision rule - react when some player's (averaged) window undercuts
``beta`` times your own - and this module factors that rule out as a
standalone detector over the estimates of
:mod:`repro.detect.estimator`, so monitoring code can flag deviators
without running a game.

A node is flagged when its estimated window falls below ``tolerance``
times the population reference (median by default) - the same
``beta``-undercut test GTFT applies, made symmetric by using the
median rather than each observer's own window.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.errors import ParameterError

__all__ = ["MisbehaviorReport", "detect_misbehavior"]


@dataclass(frozen=True)
class MisbehaviorReport:
    """Outcome of one detection pass.

    Attributes
    ----------
    estimates:
        The per-node window estimates examined (``nan`` = unobserved).
    reference:
        The population reference window (median of the finite
        estimates, unless overridden).
    threshold:
        Flagging cut-off, ``tolerance * reference``.
    flagged:
        Boolean mask: node's estimate fell below the threshold.
    """

    estimates: np.ndarray
    reference: float
    threshold: float
    flagged: np.ndarray

    @property
    def flagged_nodes(self) -> np.ndarray:
        """Indices of the flagged nodes."""
        return np.flatnonzero(self.flagged)

    @property
    def any_flagged(self) -> bool:
        """Whether any node was flagged."""
        return bool(self.flagged.any())


def detect_misbehavior(
    estimates: Sequence[float],
    *,
    tolerance: float = 0.8,
    reference: Optional[float] = None,
) -> MisbehaviorReport:
    """Flag nodes whose estimated window undercuts the population.

    Parameters
    ----------
    estimates:
        Per-node window estimates (``nan`` entries - silent nodes - are
        never flagged and excluded from the reference).
    tolerance:
        ``beta`` in ``(0, 1]``: flag below ``beta * reference``.  The
        GTFT default of ~0.8 absorbs estimation noise; raise it toward 1
        for a stricter monitor.
    reference:
        Population reference window; defaults to the median of the
        finite estimates.

    Returns
    -------
    MisbehaviorReport
    """
    arr = np.asarray(list(estimates), dtype=float)
    if arr.ndim != 1 or arr.size < 2:
        raise ParameterError(
            "estimates must contain at least two nodes to compare"
        )
    if not 0.0 < tolerance <= 1.0:
        raise ParameterError(
            f"tolerance must lie in (0, 1], got {tolerance!r}"
        )
    finite = arr[np.isfinite(arr)]
    if finite.size == 0:
        raise ParameterError("no finite estimates to compare")
    if np.any(finite <= 0):
        raise ParameterError("window estimates must be positive")
    if reference is None:
        reference = float(np.median(finite))
    if reference <= 0:
        raise ParameterError(
            f"reference must be positive, got {reference!r}"
        )
    threshold = tolerance * reference
    with np.errstate(invalid="ignore"):
        flagged = np.where(np.isfinite(arr), arr < threshold, False)
    return MisbehaviorReport(
        estimates=arr,
        reference=reference,
        threshold=threshold,
        flagged=flagged,
    )
