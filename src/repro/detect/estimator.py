"""Closed-form contention-window estimation from channel observations.

In a single collision domain a promiscuous observer sees every channel
event: which nodes attempted in a slot and whether the slot was a
success or a collision.  That yields, per node ``i``:

* ``tau_hat_i`` - attempts per virtual slot;
* ``p_hat_i``  - collided attempts per attempt.

The backoff chain's equation (2) then *inverts in closed form*::

    W_hat = (2 / tau_hat - 1) / (1 + p_hat * sum_{j=0}^{m-1} (2 p_hat)^j)

which is exactly how :func:`repro.game.equilibrium.window_for_tau`
recovers a window from the symmetric fixed point - here applied per
node with its own measured pair.  The estimator is consistent: as the
observation window grows, ``(tau_hat, p_hat) -> (tau, p)`` and
``W_hat -> W``.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import InsufficientDataError, ParameterError
from repro.bianchi.markov import _geometric_sum
from repro.sim.engine import SimulationResult

__all__ = ["WindowObserver", "estimate_window", "estimate_windows"]


def estimate_window(tau_hat: float, p_hat: float, max_stage: int) -> float:
    """Invert equation (2): the window consistent with ``(tau, p)``.

    Parameters
    ----------
    tau_hat:
        Measured attempts per virtual slot, in ``(0, 1]``.
    p_hat:
        Measured collided-attempt fraction, in ``[0, 1)``.
    max_stage:
        Maximum backoff stage ``m`` (802.11 protocol constant, known to
        the observer).

    Returns
    -------
    float
        The estimated stage-0 window (real-valued; callers round).
    """
    if not 0.0 < tau_hat <= 1.0:
        raise ParameterError(f"tau_hat must lie in (0, 1], got {tau_hat!r}")
    if not 0.0 <= p_hat < 1.0:
        raise ParameterError(f"p_hat must lie in [0, 1), got {p_hat!r}")
    if max_stage < 0:
        raise ParameterError(f"max_stage must be >= 0, got {max_stage!r}")
    series = _geometric_sum(2.0 * p_hat, max_stage)
    return (2.0 / tau_hat - 1.0) / (1.0 + p_hat * series)


def estimate_windows(
    result: SimulationResult, max_stage: int
) -> np.ndarray:
    """Per-node window estimates from one simulator run.

    Nodes that never attempted get ``nan`` (nothing was observable).
    """
    estimates = np.full(result.tau.shape, np.nan)
    for i, (tau_hat, p_hat) in enumerate(zip(result.tau, result.collision)):
        if tau_hat > 0:
            estimates[i] = estimate_window(
                float(tau_hat), float(min(p_hat, 1 - 1e-12)), max_stage
            )
    return estimates


class WindowObserver:
    """Streaming CW estimator fed by channel events.

    The observer mirrors what a promiscuous station can log: one call
    per virtual slot, listing the attempting nodes and the outcome.

    Parameters
    ----------
    n_nodes:
        Number of stations under observation.
    max_stage:
        The protocol's maximum backoff stage ``m``.

    Examples
    --------
    >>> observer = WindowObserver(n_nodes=2, max_stage=5)
    >>> observer.record_idle(8)
    >>> observer.record_transmission([0], success=True)
    >>> observer.total_slots
    9
    """

    def __init__(self, n_nodes: int, max_stage: int) -> None:
        if n_nodes < 1:
            raise ParameterError(f"n_nodes must be >= 1, got {n_nodes!r}")
        if max_stage < 0:
            raise ParameterError(f"max_stage must be >= 0, got {max_stage!r}")
        self.n_nodes = n_nodes
        self.max_stage = max_stage
        self.total_slots = 0
        self.attempts = np.zeros(n_nodes, dtype=np.int64)
        self.collisions = np.zeros(n_nodes, dtype=np.int64)

    def record_idle(self, slots: int = 1) -> None:
        """Log ``slots`` idle virtual slots."""
        if slots < 0:
            raise ParameterError(f"slots must be >= 0, got {slots!r}")
        self.total_slots += slots

    def record_transmission(
        self, transmitters: Sequence[int], success: bool
    ) -> None:
        """Log one busy virtual slot with its attempting nodes."""
        indices = list(transmitters)
        if not indices:
            raise ParameterError("a busy slot needs at least one transmitter")
        if success and len(indices) != 1:
            raise ParameterError(
                "a successful slot has exactly one transmitter"
            )
        for index in indices:
            if not 0 <= index < self.n_nodes:
                raise ParameterError(
                    f"transmitter {index!r} out of range [0, {self.n_nodes})"
                )
            self.attempts[index] += 1
            if not success:
                self.collisions[index] += 1
        self.total_slots += 1

    # ------------------------------------------------------------------
    def tau_estimates(self) -> np.ndarray:
        """Measured per-node attempt rates.

        Raises
        ------
        InsufficientDataError
            If the observation window is empty (zero slots): dividing by
            the slot count would silently turn into ``nan``/``inf``
            estimates that leak into downstream hypothesis tests.
        """
        if self.total_slots == 0:
            raise InsufficientDataError("no slots observed yet")
        return self.attempts / self.total_slots

    def collision_estimates(self) -> np.ndarray:
        """Measured per-node collided-attempt fractions.

        Nodes that never attempted have no measurable collision fraction;
        their entries are an explicit 0.0 (never a leaked ``nan`` from a
        0/0 division).

        Raises
        ------
        InsufficientDataError
            If the observation window is empty (zero slots).
        """
        if self.total_slots == 0:
            raise InsufficientDataError("no slots observed yet")
        attempted = self.attempts > 0
        return np.where(
            attempted,
            self.collisions / np.maximum(self.attempts, 1),
            0.0,
        )

    def estimates(self) -> np.ndarray:
        """Per-node window estimates (``nan`` for silent nodes)."""
        tau_hat = self.tau_estimates()
        p_hat = self.collision_estimates()
        result = np.full(self.n_nodes, np.nan)
        for i in range(self.n_nodes):
            if tau_hat[i] > 0:
                result[i] = estimate_window(
                    float(tau_hat[i]),
                    float(min(p_hat[i], 1 - 1e-12)),
                    self.max_stage,
                )
        return result
