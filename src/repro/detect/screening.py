"""Population-scale misbehavior screening: 10^6 nodes in one pass.

:mod:`repro.detect.estimator` watches tens of nodes through per-slot
events; an operator screening a metropolitan deployment has millions.
This module runs the same measurement at population scale by combining
three O(n) ingredients - no array ever grows a slots axis:

* **Streaming attempt-rate estimators.**  Observation advances in
  chunks of ``chunk_slots`` virtual slots; each chunk's per-node attempt
  *rate* is folded into the :class:`~repro.sim.streaming.WelfordAccumulator`
  (mean + across-chunk variance in two ``(n,)`` arrays).  Chunks can be
  split round-robin across ``observer_shards`` logical monitors whose
  accumulators are combined with
  :meth:`~repro.sim.streaming.WelfordAccumulator.merge` - the
  parallel-Welford formula makes the sharded result identical to a
  single observer's.
* **Vectorized hypothesis tests.**  Against a compliant reference rate
  ``tau_0`` (the symmetric fixed point of the advertised window), the
  one-sided binomial z-test
  ``z_i = (tau_hat_i - tau_0) / sqrt(tau_0 (1 - tau_0) / S)``
  flags nodes attempting significantly more than a compliant station
  would across the ``S`` observed slots.
* **Window-undercut detection.**  Equation (2) inverts each node's
  ``(tau_hat, p_hat)`` into an estimated window; a node whose ``W_hat``
  falls below ``beta W_ref`` is flagged the way GTFT (and Banchs
  et al.'s punishment design, PAPERS.md) reacts to undercutting -
  catching cheats whose aggression hides in a noisy attempt rate.

Nodes with too little data for a stable estimate are reported in a
typed ``insufficient`` mask rather than leaking ``nan`` into either
test (see :class:`repro.errors.InsufficientDataError` for the scalar
path).

The synthetic channel is intentionally simple - per-chunk attempt
counts are ``Binomial(chunk_slots, tau_i)`` draws and collided attempts
``Binomial(attempts_i, p_i)`` with ``p_i`` from the population coupling
- because the object under test is the *screening pipeline* (memory
bounds, shard-merge exactness, test power), not the channel itself.
``tests/unit/test_screening.py`` pins the O(n) memory bound with
``tracemalloc``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Union

import numpy as np

from repro.typealiases import BoolArray, FloatArray, IntArray
from repro.errors import InsufficientDataError, ParameterError
from repro.obs import enabled as _obs_enabled
from repro.obs.metrics import inc as _obs_inc
from repro.obs.metrics import observe as _obs_observe
from repro.rng import resolve_rng
from repro.sim.streaming import WelfordAccumulator
from repro.bianchi.markov import _geometric_sum_array

__all__ = [
    "ScreeningResult",
    "screen_population",
    "synthetic_population_tau",
]

#: Attempts below which a node's window estimate is "insufficient data"
#: rather than a number: the closed-form inversion is wildly noisy on a
#: handful of samples.
_MIN_ATTEMPTS = 8


@dataclass(frozen=True)
class ScreeningResult:
    """Outcome of one population screening pass.

    Attributes
    ----------
    n_nodes:
        Population size screened.
    slots_observed:
        Total virtual slots the estimators integrated over (``S``).
    n_chunks:
        Observation chunks folded into the accumulators.
    observer_shards:
        Logical monitors the chunks were split across (merged before
        testing; the result is shard-count invariant).
    reference_tau:
        The compliant attempt rate ``tau_0`` tested against.
    reference_window:
        The advertised window ``W_ref`` for the undercut test.
    tau_hat:
        Per-node mean attempt rate, shape ``(n,)``.
    tau_std:
        Across-chunk standard deviation of the rate, shape ``(n,)``.
    z_scores:
        One-sided z statistics against ``tau_0``, shape ``(n,)``
        (``0.0`` where insufficient).
    window_hat:
        Equation-(2) window estimates, shape ``(n,)`` (``inf`` where
        insufficient - an unobserved node is indistinguishable from an
        arbitrarily patient one).
    rate_flagged:
        ``z > z_threshold``: attempting more than compliance explains.
    undercut_flagged:
        The GTFT/Banchs undercut rule ``W_hat < beta W_ref``, deflated
        by the estimate's own noise so lightly-observed compliant nodes
        are not flagged by chance.
    flagged:
        Union of the two detectors.
    insufficient:
        Nodes with too few attempts for a stable estimate; never
        flagged, surfaced instead of ``nan``.
    """

    n_nodes: int
    slots_observed: int
    n_chunks: int
    observer_shards: int
    reference_tau: float
    reference_window: float
    tau_hat: FloatArray
    tau_std: FloatArray
    z_scores: FloatArray
    window_hat: FloatArray
    rate_flagged: BoolArray
    undercut_flagged: BoolArray
    flagged: BoolArray
    insufficient: BoolArray

    @property
    def flagged_nodes(self) -> IntArray:
        """Indices of all flagged nodes."""
        return np.flatnonzero(self.flagged)

    @property
    def flagged_fraction(self) -> float:
        """Fraction of the population flagged."""
        return float(self.flagged.mean())


def synthetic_population_tau(
    compliant_tau: float,
    n_nodes: int,
    *,
    selfish_fraction: float = 0.0,
    selfish_boost: float = 4.0,
    rng: Optional[Union[int, np.random.Generator]] = None,
) -> FloatArray:
    """Ground-truth per-node attempt rates for screening experiments.

    A ``selfish_fraction`` of the population attempts at
    ``selfish_boost`` times the compliant rate (capped below 1); the
    selfish node indices are drawn from ``rng`` so campaigns get
    different placements per seed while staying reproducible.
    """
    if not 0.0 < compliant_tau < 1.0:
        raise ParameterError(
            f"compliant_tau must lie in (0, 1), got {compliant_tau!r}"
        )
    if n_nodes < 1:
        raise ParameterError(f"n_nodes must be >= 1, got {n_nodes!r}")
    if not 0.0 <= selfish_fraction <= 1.0:
        raise ParameterError(
            f"selfish_fraction must lie in [0, 1], got {selfish_fraction!r}"
        )
    if selfish_boost < 1.0:
        raise ParameterError(
            f"selfish_boost must be >= 1, got {selfish_boost!r}"
        )
    generator = resolve_rng(rng)
    tau = np.full(n_nodes, compliant_tau)
    n_selfish = int(round(selfish_fraction * n_nodes))
    if n_selfish:
        chosen = generator.choice(n_nodes, size=n_selfish, replace=False)
        tau[chosen] = min(compliant_tau * selfish_boost, 0.999)
    return tau


def _window_from_estimates(
    tau_hat: FloatArray, p_hat: FloatArray, max_stage: int
) -> FloatArray:
    """Vectorized equation-(2) inversion (cf. ``estimate_window``)."""
    series = _geometric_sum_array(2.0 * p_hat, max_stage)
    return (2.0 / tau_hat - 1.0) / (1.0 + p_hat * series)


def screen_population(
    tau: Union[Sequence[float], FloatArray],
    reference_tau: float,
    reference_window: float,
    max_stage: int,
    *,
    slots: int = 100_000,
    chunk_slots: int = 10_000,
    z_threshold: float = 6.0,
    undercut_tolerance: float = 0.8,
    observer_shards: int = 1,
    collision_probability: Optional[float] = None,
    rng: Optional[Union[int, np.random.Generator]] = None,
) -> ScreeningResult:
    """Screen a synthetic population for MAC misbehavior in one pass.

    Parameters
    ----------
    tau:
        Ground-truth per-node attempt rates, shape ``(n,)`` (e.g. from
        :func:`synthetic_population_tau`).
    reference_tau:
        Compliant attempt rate ``tau_0`` - the symmetric fixed point of
        the advertised window at this population size.
    reference_window:
        The advertised window ``W_ref`` for the undercut rule.
    max_stage:
        Protocol constant ``m`` for the window inversion.
    slots:
        Total virtual slots to observe (split into chunks).
    chunk_slots:
        Slots per observation chunk; memory never scales with
        ``slots / chunk_slots``, only compute does.
    z_threshold:
        One-sided flagging threshold on the z statistic (6.0 is a
        ~1e-9 per-node false-positive rate - calibrated for million-node
        populations where even 1e-4 would flag a hundred innocents).
    undercut_tolerance:
        ``beta`` in ``(0, 1]`` for the window-undercut rule.
    observer_shards:
        Split chunks round-robin across this many logical monitors and
        merge their accumulators afterwards; the estimates are
        identical to a single observer's (pinned by the unit tests).
    collision_probability:
        Conditional collision probability for the synthetic collided
        attempts.  Defaults to the population coupling
        ``1 - prod_j (1 - tau_j) / (1 - tau_i)`` evaluated per node.
    rng:
        Seed or generator for the synthetic draws (deterministic
        default via :func:`repro.rng.resolve_rng`).

    Raises
    ------
    InsufficientDataError
        If ``slots`` or ``chunk_slots`` admit no observation at all.
    """
    rates = np.asarray(tau, dtype=float)
    if rates.ndim != 1 or rates.shape[0] < 1:
        raise ParameterError(
            f"tau must be a non-empty 1-D vector, got shape {rates.shape!r}"
        )
    if np.any(rates <= 0.0) or np.any(rates >= 1.0):
        raise ParameterError("per-node tau must lie in (0, 1)")
    if not 0.0 < reference_tau < 1.0:
        raise ParameterError(
            f"reference_tau must lie in (0, 1), got {reference_tau!r}"
        )
    if reference_window < 1.0:
        raise ParameterError(
            f"reference_window must be >= 1, got {reference_window!r}"
        )
    if not 0.0 < undercut_tolerance <= 1.0:
        raise ParameterError(
            "undercut_tolerance must lie in (0, 1], got "
            f"{undercut_tolerance!r}"
        )
    if z_threshold <= 0.0:
        raise ParameterError(
            f"z_threshold must be positive, got {z_threshold!r}"
        )
    if observer_shards < 1:
        raise ParameterError(
            f"observer_shards must be >= 1, got {observer_shards!r}"
        )
    if chunk_slots < 1:
        raise InsufficientDataError(
            f"chunk_slots must be >= 1, got {chunk_slots!r}"
        )
    if slots < 1:
        raise InsufficientDataError(
            f"slots must be >= 1 to observe anything, got {slots!r}"
        )
    n_nodes = rates.shape[0]
    generator = resolve_rng(rng)

    if collision_probability is None:
        # Leave-one-out coupling of the ground-truth rates, O(n).
        logs = np.log1p(-rates)
        p_true = np.clip(
            1.0 - np.exp(logs.sum() - logs), 0.0, 1.0 - 1e-15
        )
    else:
        if not 0.0 <= collision_probability < 1.0:
            raise ParameterError(
                "collision_probability must lie in [0, 1), got "
                f"{collision_probability!r}"
            )
        p_true = np.full(n_nodes, collision_probability)

    # Chunked observation: rate chunks fold into per-shard Welford
    # accumulators; attempt/collision totals are plain O(n) sums.
    shards = [WelfordAccumulator() for _ in range(observer_shards)]
    attempts_total = np.zeros(n_nodes, dtype=np.int64)
    collisions_total = np.zeros(n_nodes, dtype=np.int64)
    slots_observed = 0
    n_chunks = 0
    remaining = slots
    while remaining > 0:
        this_chunk = min(chunk_slots, remaining)
        attempts = generator.binomial(this_chunk, rates)
        collided = generator.binomial(attempts, p_true)
        shards[n_chunks % observer_shards].update(attempts / this_chunk)
        attempts_total += attempts
        collisions_total += collided
        slots_observed += this_chunk
        n_chunks += 1
        remaining -= this_chunk

    merged = WelfordAccumulator()
    for shard in shards:
        merged.merge(shard)
    tau_hat = np.asarray(merged.mean)
    tau_std = np.asarray(merged.std())

    insufficient = attempts_total < _MIN_ATTEMPTS

    # One-sided binomial z-test against the compliant rate.  The
    # chunk-mean of rates equals attempts_total / slots_observed when
    # every chunk has equal length; with a ragged final chunk the
    # Welford mean weights chunks equally, which is still an unbiased
    # rate estimator - the test statistic uses the totals for the exact
    # binomial null variance.
    null_sd = float(
        np.sqrt(reference_tau * (1.0 - reference_tau) / slots_observed)
    )
    rate_estimate = attempts_total / slots_observed
    z = np.where(
        insufficient, 0.0, (rate_estimate - reference_tau) / null_sd
    )
    rate_flagged = z > z_threshold

    # Equation-(2) inversion on the aggregated estimates; silent or
    # nearly-silent nodes get +inf (an unobserved node cannot be
    # distinguished from an arbitrarily patient one) and are excluded.
    safe_attempts = np.maximum(attempts_total, 1)
    p_hat = np.clip(collisions_total / safe_attempts, 0.0, 1.0 - 1e-12)
    safe_rate = np.clip(rate_estimate, 1e-300, 1.0)
    window_hat = np.where(
        insufficient,
        np.inf,
        _window_from_estimates(safe_rate, p_hat, max_stage),
    )
    # The undercut rule is significance-controlled like the rate test:
    # W_hat inherits the attempt-rate's relative noise (W ~ 1/tau at
    # fixed p), so on the log scale sd(log W_hat) ~ cv(tau_hat) =
    # sqrt((1 - tau_hat) / attempts).  Flag only when the undercut
    # exceeds z_threshold of that noise - otherwise a lightly-observed
    # compliant node undercuts by chance.
    cv = np.sqrt(
        np.clip(1.0 - rate_estimate, 0.0, 1.0) / safe_attempts
    )
    undercut_flagged = window_hat < (
        undercut_tolerance * reference_window * np.exp(-z_threshold * cv)
    )

    flagged = rate_flagged | undercut_flagged
    if _obs_enabled():
        _obs_inc("detect.screenings", 1)
        _obs_inc("detect.screened_nodes", n_nodes)
        _obs_inc("detect.flagged_nodes", int(flagged.sum()))
        _obs_observe("detect.screening_chunks", n_chunks)
    return ScreeningResult(
        n_nodes=n_nodes,
        slots_observed=slots_observed,
        n_chunks=n_chunks,
        observer_shards=observer_shards,
        reference_tau=reference_tau,
        reference_window=float(reference_window),
        tau_hat=tau_hat,
        tau_std=tau_std,
        z_scores=z,
        window_hat=window_hat,
        rate_flagged=rate_flagged,
        undercut_flagged=undercut_flagged,
        flagged=flagged,
        insufficient=insufficient,
    )
