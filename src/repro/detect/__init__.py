"""Contention-window observation (the measurement TFT relies on).

The paper's TFT strategy assumes each node can measure the CW values its
peers used in the previous stage, citing [Kyasanur & Vaidya, DSN 2003]
for the mechanism and noting that the broadcast medium makes observation
easy in promiscuous mode.  This subpackage supplies that missing layer:

* :mod:`repro.detect.estimator` - a closed-form CW estimator from
  promiscuously observable quantities (per-node attempt rates and
  collision fractions), plus a streaming observer that accumulates them
  from channel events;
* :mod:`repro.detect.empirical` - an *empirical* repeated-game engine:
  each stage actually runs the DCF simulator, every player estimates the
  others' windows from what it overheard, and the TFT/GTFT strategies of
  :mod:`repro.game.strategies` act on those estimates.  This closes the
  loop the paper leaves open between the game analysis and a deployable
  protocol.
"""

from repro.detect.estimator import (
    WindowObserver,
    estimate_window,
    estimate_windows,
)
from repro.detect.empirical import EmpiricalRepeatedGame, EmpiricalStage
from repro.detect.misbehavior import MisbehaviorReport, detect_misbehavior
from repro.detect.screening import (
    ScreeningResult,
    screen_population,
    synthetic_population_tau,
)

__all__ = [
    "EmpiricalRepeatedGame",
    "EmpiricalStage",
    "MisbehaviorReport",
    "ScreeningResult",
    "WindowObserver",
    "detect_misbehavior",
    "estimate_window",
    "estimate_windows",
    "screen_population",
    "synthetic_population_tau",
]
