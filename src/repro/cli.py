"""Command-line interface for the reproduction.

Installed as ``repro-experiments``::

    repro-experiments list                    # every registered experiment
    repro-experiments backends                # compute backends + availability
    repro-experiments run table2              # regenerate one artefact
    repro-experiments run table2 --quick      # reduced simulation size
    repro-experiments run table3 --jobs 4     # sweep on 4 worker processes
    repro-experiments run table3 --backend cnative   # compiled hot kernels
    repro-experiments run-all --quick         # the whole evaluation
    repro-experiments store ls                # stored runs, newest first
    repro-experiments store show <digest>     # manifest + rendered artefact
    repro-experiments store diff <a> <b>      # field-level run delta
    repro-experiments store gc --keep 3       # retention per experiment
    repro-experiments campaign run sweep.toml # declarative cached sweep
    repro-experiments campaign run sweep.toml --shard 0/4 --writer-id w0
    repro-experiments campaign status sweep.toml
    repro-experiments obs summary [<digest>]  # run-profile of a stored run
    repro-experiments obs diff <a> <b>        # profile delta (timings excluded)
    repro-experiments obs export <digest>     # raw profile JSON
    repro-experiments run meanfield           # mean-field population study
    repro-experiments detect screen --nodes 100000   # misbehavior screening
    repro-experiments serve --port 8351       # equilibrium-as-a-service
    repro-experiments bench-serve             # serving benchmark -> JSON
    repro-experiments verify --box tableII-small   # certify the claims
    repro-experiments verify --theorem theorem2 --checkers interval,numeric

The quick overrides mirror ``examples/reproduce_paper.py``.  ``--jobs``
fans the sweep experiments out over a process pool
(:mod:`repro.experiments.parallel`); per-task seeds are spawned from the
experiment's root seed before dispatch, so the artefacts are bit-identical
whatever the worker count (``--jobs 0`` means one worker per CPU).

``run``/``run-all`` route through the content-addressed results store
(:mod:`repro.store`): a repeated invocation with the same parameters is
served from disk and labelled ``[cached <digest>]``; ``--no-cache``
forces recomputation and ``--store DIR`` overrides the store location
(default ``$REPRO_STORE_DIR`` or ``./.repro-store``).

Every executed ``run``/``run-all`` records through :mod:`repro.obs` and
stores the resulting run profile (``profile.json``) next to the
manifest; set ``REPRO_OBS=0`` to disable the recorder.  The ``obs``
commands read those artifacts back; profile references accept a digest,
a unique digest prefix or a filesystem path to a profile JSON file.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path
from typing import Any, Dict, List, Optional

from repro import backends as _backends
from repro import obs
from repro.campaign import campaign_status, load_spec, parse_shard, run_campaign
from repro.errors import IntegrityError, ReproError, StoreError
from repro.experiments import EXPERIMENTS, run_experiment
from repro.experiments.export import result_to_dict, write_json
from repro.store import ResultStore, compute_digest

__all__ = ["build_parser", "entry", "main"]

QUICK_OVERRIDES: Dict[str, Dict[str, Any]] = {
    "table2": {"slots_per_point": 40_000},
    "table3": {"slots_per_point": 40_000},
    "fig2": {"n_points": 20},
    "fig3": {"n_points": 20},
    "multihop": {"n_nodes": 60, "n_snapshots": 2},
    "search": {"slots_per_probe": 20_000},
    "meanfield": {
        "scaling_populations": (1e3, 1e4, 1e5),
        "replicator_steps": 800,
        "screening_nodes": 20_000,
        "screening_slots": 200_000,
    },
    "verify": {"max_boxes": 4000},
}

#: Experiments whose runners accept the parallel runner's ``jobs`` knob
#: (derived from the registry's ``supports_jobs`` capability flag).
PARALLEL_EXPERIMENTS = frozenset(
    experiment_id
    for experiment_id, experiment in EXPERIMENTS.items()
    if experiment.supports_jobs
)

#: Exit code for an interrupted campaign (mirrors 128 + SIGINT).
EXIT_INTERRUPTED = 130

#: Environment switch: set to ``0`` to run without the obs recorder.
ENV_OBS = "REPRO_OBS"


def _obs_active() -> bool:
    return os.environ.get(ENV_OBS, "1") != "0"


def _jobs_type(value: str) -> int:
    jobs = int(value)
    if jobs < 0:
        raise argparse.ArgumentTypeError(
            f"jobs must be >= 0 (0 = one per CPU), got {jobs}"
        )
    return jobs


def _add_jobs_option(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--jobs",
        type=_jobs_type,
        default=None,
        metavar="N",
        help="worker processes for sweep experiments (0 = one per CPU)",
    )


def _add_backend_option(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--backend",
        default=None,
        metavar="NAME",
        help="compute backend for the hot kernels "
        "(see 'repro-experiments backends'; default: $REPRO_BACKEND "
        "or numpy; a campaign spec's 'backend' field outranks this flag)",
    )


def _add_store_option(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--store",
        default=None,
        metavar="DIR",
        help="results store directory (default: $REPRO_STORE_DIR "
        "or ./.repro-store)",
    )


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for testing and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description=(
            "Reproduce the evaluation of 'Selfishness, Not Always A "
            "Nightmare' (Chen & Leneutre, ICDCS 2007)."
        ),
    )
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser("list", help="list registered experiments")

    lint_cmd = commands.add_parser(
        "lint",
        help=(
            "run the static analyzer (same flags as python -m "
            "repro.lint, e.g. 'repro lint --deep src')"
        ),
    )
    lint_cmd.add_argument(
        "lint_args",
        nargs=argparse.REMAINDER,
        help="arguments forwarded to python -m repro.lint",
    )

    backends_cmd = commands.add_parser(
        "backends", help="list compute backends and their availability"
    )
    _add_backend_option(backends_cmd)

    run = commands.add_parser("run", help="run one experiment")
    run.add_argument("experiment_id", choices=sorted(EXPERIMENTS))
    run.add_argument(
        "--quick", action="store_true", help="reduced simulation size"
    )
    _add_jobs_option(run)
    _add_backend_option(run)
    run.add_argument(
        "--no-cache",
        action="store_true",
        help="recompute even when the store already holds this run",
    )
    _add_store_option(run)

    run_all = commands.add_parser("run-all", help="run every experiment")
    run_all.add_argument(
        "--quick", action="store_true", help="reduced simulation size"
    )
    _add_jobs_option(run_all)
    _add_backend_option(run_all)
    run_all.add_argument(
        "--no-cache",
        action="store_true",
        help="recompute even when the store already holds these runs",
    )
    _add_store_option(run_all)

    store = commands.add_parser(
        "store", help="inspect the content-addressed results store"
    )
    store_commands = store.add_subparsers(dest="store_command", required=True)

    store_ls = store_commands.add_parser("ls", help="list stored runs")
    store_ls.add_argument(
        "--experiment",
        default=None,
        choices=sorted(EXPERIMENTS),
        help="only runs of one experiment",
    )
    _add_store_option(store_ls)

    store_show = store_commands.add_parser(
        "show", help="show one stored run (manifest + rendered artefact)"
    )
    store_show.add_argument("digest", help="full digest or unique prefix")
    _add_store_option(store_show)

    store_diff = store_commands.add_parser(
        "diff", help="field-level delta between two stored runs"
    )
    store_diff.add_argument("digest_a", help="full digest or unique prefix")
    store_diff.add_argument("digest_b", help="full digest or unique prefix")
    _add_store_option(store_diff)

    store_gc = store_commands.add_parser(
        "gc", help="apply a retention policy to the store"
    )
    store_gc.add_argument(
        "--keep",
        type=int,
        default=None,
        metavar="N",
        help="keep only the N newest runs per experiment",
    )
    store_gc.add_argument(
        "--before",
        default=None,
        metavar="ISO",
        help="drop runs created before this ISO-8601 timestamp",
    )
    store_gc.add_argument(
        "--experiment",
        default=None,
        choices=sorted(EXPERIMENTS),
        help="restrict the policy to one experiment",
    )
    _add_store_option(store_gc)

    campaign = commands.add_parser(
        "campaign", help="declarative sweep campaigns over the store"
    )
    campaign_commands = campaign.add_subparsers(
        dest="campaign_command", required=True
    )

    campaign_run = campaign_commands.add_parser(
        "run", help="run a campaign spec (cache misses only)"
    )
    campaign_run.add_argument("spec", help="path to a .toml/.json spec")
    _add_jobs_option(campaign_run)
    _add_backend_option(campaign_run)
    campaign_run.add_argument(
        "--no-cache",
        action="store_true",
        help="re-execute every task even on a store hit",
    )
    campaign_run.add_argument(
        "--shard",
        default=None,
        metavar="K/M",
        help="run only the tasks of shard K of M (task index mod M == K); "
        "start one process per shard against a shared store",
    )
    campaign_run.add_argument(
        "--writer-id",
        default=None,
        metavar="ID",
        help="stable writer identity for claims and the commit journal "
        "(default: <hostname>-<pid>)",
    )
    _add_store_option(campaign_run)

    campaign_stat = campaign_commands.add_parser(
        "status", help="show which tasks are cached vs pending"
    )
    campaign_stat.add_argument("spec", help="path to a .toml/.json spec")
    _add_store_option(campaign_stat)

    obs_cmd = commands.add_parser(
        "obs", help="inspect stored run profiles (tracing + metrics)"
    )
    obs_commands = obs_cmd.add_subparsers(dest="obs_command", required=True)

    obs_summary = obs_commands.add_parser(
        "summary", help="human-readable summary of one run profile"
    )
    obs_summary.add_argument(
        "ref",
        nargs="?",
        default=None,
        help="digest, unique prefix or profile JSON path "
        "(default: newest profiled run)",
    )
    _add_store_option(obs_summary)

    obs_diff = obs_commands.add_parser(
        "diff", help="delta between two run profiles (timings excluded)"
    )
    obs_diff.add_argument("ref_a", help="digest, prefix or profile path")
    obs_diff.add_argument("ref_b", help="digest, prefix or profile path")
    _add_store_option(obs_diff)

    obs_export = obs_commands.add_parser(
        "export", help="write one run profile as JSON"
    )
    obs_export.add_argument(
        "ref",
        nargs="?",
        default=None,
        help="digest, unique prefix or profile JSON path "
        "(default: newest profiled run)",
    )
    obs_export.add_argument(
        "--output",
        "-o",
        default=None,
        metavar="FILE",
        help="destination file (default: stdout)",
    )
    _add_store_option(obs_export)

    detect = commands.add_parser(
        "detect", help="misbehavior detection over node populations"
    )
    detect_commands = detect.add_subparsers(dest="detect_command", required=True)

    screen = detect_commands.add_parser(
        "screen",
        help="screen a population for selfish windows in one streaming pass",
    )
    screen.add_argument(
        "--nodes",
        type=int,
        default=100_000,
        metavar="N",
        help="population size for the synthetic population (default: 10^5)",
    )
    screen.add_argument(
        "--window",
        type=float,
        default=1024.0,
        metavar="W",
        help="compliant contention window (default: 1024)",
    )
    screen.add_argument(
        "--max-stage",
        type=int,
        default=5,
        metavar="M",
        help="backoff stages m (default: 5)",
    )
    screen.add_argument(
        "--selfish-fraction",
        type=float,
        default=0.01,
        metavar="F",
        help="fraction of synthetic nodes made selfish (default: 0.01)",
    )
    screen.add_argument(
        "--selfish-boost",
        type=float,
        default=4.0,
        metavar="B",
        help="attempt-rate multiplier of selfish nodes (default: 4)",
    )
    screen.add_argument(
        "--tau-file",
        default=None,
        metavar="FILE",
        help="JSON array of measured per-node attempt rates "
        "(replaces the synthetic population)",
    )
    screen.add_argument(
        "--slots",
        type=int,
        default=200_000,
        metavar="S",
        help="observation slots (default: 200000)",
    )
    screen.add_argument(
        "--chunk-slots",
        type=int,
        default=10_000,
        metavar="C",
        help="slots per streaming chunk (default: 10000)",
    )
    screen.add_argument(
        "--shards",
        type=int,
        default=1,
        metavar="K",
        help="observer shards merged into the verdict (default: 1)",
    )
    screen.add_argument(
        "--z-threshold",
        type=float,
        default=6.0,
        metavar="Z",
        help="one-sided z-score cut for the rate test (default: 6)",
    )
    screen.add_argument(
        "--seed",
        type=int,
        default=7,
        metavar="SEED",
        help="RNG seed for the population and the observation",
    )
    screen.add_argument(
        "--output",
        "-o",
        default=None,
        metavar="FILE",
        help="write the full screening report as JSON",
    )

    verify_cmd = commands.add_parser(
        "verify",
        help=(
            "machine-check the equilibrium claims over a parameter box "
            "(see docs/verification.md)"
        ),
    )
    verify_cmd.add_argument(
        "--theorem",
        action="append",
        choices=("all", "bianchi", "lemma3", "theorem2", "theorem3"),
        default=None,
        help="claim to certify (repeatable; default: all)",
    )
    verify_cmd.add_argument(
        "--box",
        default="tableII-small",
        metavar="NAME",
        help="built-in parameter box (default: tableII-small; "
        "see --list-boxes)",
    )
    verify_cmd.add_argument(
        "--list-boxes",
        action="store_true",
        help="list the built-in parameter boxes and exit",
    )
    verify_cmd.add_argument(
        "--checkers",
        default="interval,smt,numeric",
        metavar="CSV",
        help="comma-separated checker subset of interval,smt,numeric "
        "(default: all three; smt degrades to skipped without z3)",
    )
    verify_cmd.add_argument(
        "--max-boxes",
        type=int,
        default=20000,
        metavar="N",
        help="interval-subdivision budget per check (default: 20000)",
    )
    verify_cmd.add_argument(
        "--smt-timeout-ms",
        type=int,
        default=120000,
        metavar="MS",
        help="per-query z3 timeout (default: 120000)",
    )
    verify_cmd.add_argument(
        "--output",
        "-o",
        default=None,
        metavar="FILE",
        help="write the full JSON certificates to FILE",
    )
    verify_cmd.add_argument(
        "--write-scenarios",
        default=None,
        metavar="DIR",
        help="freeze every counterexample as a replayable JSON scenario "
        "under DIR (e.g. tests/regression/scenarios)",
    )

    serve = commands.add_parser(
        "serve",
        help="run the equilibrium solve server (see docs/serving.md)",
    )
    serve.add_argument(
        "--host", default="127.0.0.1", help="bind address (default: loopback)"
    )
    serve.add_argument(
        "--port",
        type=int,
        default=8351,
        help="TCP port (0 = ephemeral; default: 8351)",
    )
    serve.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="solver thread-pool size (default: executor default)",
    )
    serve.add_argument(
        "--no-cache",
        action="store_true",
        help="solve every request fresh instead of serving from the store",
    )
    _add_backend_option(serve)
    _add_store_option(serve)

    bench_serve = commands.add_parser(
        "bench-serve",
        help="benchmark the solve server (writes BENCH_serve.json)",
    )
    bench_serve.add_argument(
        "--output",
        "-o",
        default=None,
        metavar="FILE",
        help="artifact path (default: BENCH_serve.json)",
    )
    bench_serve.add_argument(
        "--smoke",
        action="store_true",
        help="reduced concurrency levels and probe sizes (CI)",
    )
    _add_backend_option(bench_serve)

    return parser


def _open_store(path: Optional[str]) -> ResultStore:
    return ResultStore(path) if path is not None else ResultStore.default()


def _print_header(experiment_id: str, note: str) -> None:
    experiment = EXPERIMENTS[experiment_id]
    print("=" * 72)
    print(
        f"{experiment.paper_artifact} ({experiment_id}) - "
        f"{experiment.description} [{note}]"
    )
    print("=" * 72)


def _run_one(
    experiment_id: str,
    quick: bool,
    jobs: Optional[int] = None,
    *,
    store: Optional[ResultStore] = None,
    use_cache: bool = True,
) -> None:
    kwargs = dict(QUICK_OVERRIDES.get(experiment_id, {})) if quick else {}
    # The digest is keyed on the science-relevant parameters only; jobs
    # is a pure speed knob and must not fragment the cache.
    digest = compute_digest(experiment_id, kwargs)
    if store is not None and use_cache and store.contains(digest):
        try:
            rendered = store.manifest(digest).rendered
            if rendered is not None:
                store.verify(digest)
                _print_header(experiment_id, f"cached {digest[:12]}")
                print(rendered)
                print()
                return
        except IntegrityError as error:
            # A corrupt cache entry must never abort the run - warn,
            # fall through and recompute (the put below heals it).
            print(
                f"warning: ignoring corrupt cached run: {error}",
                file=sys.stderr,
            )
    if jobs is not None and experiment_id in PARALLEL_EXPERIMENTS:
        kwargs["jobs"] = jobs
    recorder = obs.MemoryRecorder() if _obs_active() else obs.NullRecorder()
    started = time.perf_counter()
    with obs.use_recorder(recorder):
        result = run_experiment(experiment_id, **kwargs)
    elapsed = time.perf_counter() - started
    rendered = result.render()
    profile: Optional[Dict[str, Any]] = None
    if isinstance(recorder, obs.MemoryRecorder):
        profile = obs.build_profile(
            recorder.events,
            meta={
                "experiment_id": experiment_id,
                "quick": quick,
                "wall_time_s": elapsed,
            },
        )
    if store is not None:
        params = {
            key: value for key, value in kwargs.items() if key != "jobs"
        }
        store.put(
            experiment_id,
            params,
            result_to_dict(result),
            rendered=rendered,
            wall_time_s=elapsed,
            digest=digest,
            profile=profile,
        )
    _print_header(experiment_id, f"{elapsed:.1f}s")
    print(rendered)
    print()


def _store_ls(store: ResultStore, experiment_id: Optional[str]) -> int:
    entries = store.find(experiment_id)
    if not entries:
        print("store is empty")
        return 0
    for entry in entries:
        wall = entry.get("wall_time_s")
        wall_text = "-" if wall is None else f"{wall:8.2f}s"
        params = ", ".join(
            f"{key}={value!r}" for key, value in entry["params"].items()
        )
        print(
            f"{entry['digest'][:12]}  {entry['experiment_id']:<14}"
            f"{entry['created_at']}  {wall_text:>9}  {params}"
        )
    return 0


def _store_show(store: ResultStore, prefix: str) -> int:
    digest = store.resolve(prefix)
    manifest = store.verify(digest)
    print(f"digest:      {manifest.digest}")
    print(f"experiment:  {manifest.experiment_id}")
    print(f"created:     {manifest.created_at}")
    print(f"version:     {manifest.version}")
    print(f"git sha:     {manifest.git_sha or '-'}")
    print(f"host:        {manifest.host}")
    print(f"python:      {manifest.python_version}")
    print(f"numpy:       {manifest.numpy_version}")
    wall = manifest.wall_time_s
    print(f"wall time:   {'-' if wall is None else f'{wall:.2f}s'}")
    print(f"result sha:  {manifest.result_sha256}")
    print(f"params:      {manifest.params!r}")
    if manifest.rendered:
        print()
        print(manifest.rendered)
    return 0


def _resolve_profile(
    store: ResultStore, ref: Optional[str]
) -> Dict[str, Any]:
    """Load a run profile from a digest, prefix, path or the newest run."""
    if ref is None:
        for entry in store.find():
            if store.has_profile(entry["digest"]):
                return store.load_profile(entry["digest"])
        raise StoreError("store holds no run profiles yet")
    path = Path(ref)
    if path.is_file():
        try:
            profile = json.loads(path.read_text())
        except json.JSONDecodeError as error:
            raise IntegrityError(
                f"run profile at {path} is not valid JSON: {error}"
            ) from error
        if not isinstance(profile, dict):
            raise IntegrityError(
                f"run profile at {path} must be a JSON object"
            )
        return profile
    return store.load_profile(store.resolve(ref))


def _obs_command(args: argparse.Namespace) -> int:
    store = _open_store(args.store)
    if args.obs_command == "summary":
        print(obs.summarize_profile(_resolve_profile(store, args.ref)))
        return 0
    if args.obs_command == "diff":
        diff = obs.diff_profiles(
            _resolve_profile(store, args.ref_a),
            _resolve_profile(store, args.ref_b),
        )
        print(diff.render())
        return 0
    if args.obs_command == "export":
        profile = _resolve_profile(store, args.ref)
        if args.output is None:
            print(json.dumps(profile, indent=2, sort_keys=True))
        else:
            write_json(profile, Path(args.output))
            print(f"wrote {args.output}")
        return 0
    raise AssertionError("unreachable")  # pragma: no cover


def _detect_screen(args: argparse.Namespace) -> int:
    """Screen a (synthetic or measured) population and summarise verdicts."""
    import numpy as np

    from repro.bianchi.meanfield import solve_mean_field
    from repro.detect.screening import (
        screen_population,
        synthetic_population_tau,
    )

    if args.tau_file is not None:
        try:
            loaded = json.loads(Path(args.tau_file).read_text())
        except (OSError, json.JSONDecodeError) as error:
            print(f"error: cannot read {args.tau_file}: {error}", file=sys.stderr)
            return 1
        tau = np.asarray(loaded, dtype=float)
        n_nodes = int(tau.shape[0])
        source = args.tau_file
    else:
        n_nodes = args.nodes
        source = (
            f"synthetic ({args.selfish_fraction:.1%} selfish, "
            f"boost x{args.selfish_boost:g})"
        )
    reference_tau = float(
        solve_mean_field(
            [args.window], [float(n_nodes)], args.max_stage
        ).tau[0][0]
    )
    if args.tau_file is None:
        tau = synthetic_population_tau(
            reference_tau,
            n_nodes,
            selfish_fraction=args.selfish_fraction,
            selfish_boost=args.selfish_boost,
            rng=args.seed,
        )
    result = screen_population(
        tau,
        reference_tau,
        args.window,
        args.max_stage,
        slots=args.slots,
        chunk_slots=args.chunk_slots,
        z_threshold=args.z_threshold,
        observer_shards=args.shards,
        rng=args.seed + 1,
    )
    print(f"population:     {result.n_nodes} nodes ({source})")
    print(
        f"reference:      W = {result.reference_window:g}, "
        f"tau0 = {result.reference_tau:.6f}"
    )
    print(
        f"observation:    {result.slots_observed} slots, "
        f"{result.n_chunks} chunk(s), {result.observer_shards} shard(s)"
    )
    print(
        f"flagged:        {int(result.flagged.sum())} "
        f"({result.flagged_fraction:.4%}) - "
        f"rate test {int(result.rate_flagged.sum())}, "
        f"undercut test {int(result.undercut_flagged.sum())}"
    )
    print(f"insufficient:   {int(result.insufficient.sum())} node(s)")
    flagged_nodes = result.flagged_nodes
    if flagged_nodes.size:
        shown = ", ".join(str(i) for i in flagged_nodes[:10])
        more = (
            f" (+{flagged_nodes.size - 10} more)"
            if flagged_nodes.size > 10
            else ""
        )
        print(f"flagged nodes:  {shown}{more}")
    if args.output is not None:
        write_json(result_to_dict(result), Path(args.output))
        print(f"wrote {args.output}")
    return 0


def _verify_command(args: argparse.Namespace) -> int:
    """Certify the selected claims; exit 1 on any counterexample."""
    from repro.verify import (
        builtin_boxes,
        get_box,
        run_certification,
        scenarios_from_certificate,
        write_scenario,
        z3_available,
    )
    from repro.verify.claims import CheckBudget

    if args.list_boxes:
        for box in builtin_boxes().values():
            print(
                f"{box.name:<16} {box.mode:<8} n in [{box.n_lo}, {box.n_hi}]"
                f"  W in [{box.w_lo:g}, {box.w_hi:g}]  m={box.m}"
            )
        return 0
    checkers = tuple(
        name for name in args.checkers.split(",") if name.strip()
    )
    theorems = args.theorem or ["all"]
    box = get_box(args.box)
    budget = CheckBudget(
        max_boxes=args.max_boxes, smt_timeout_ms=args.smt_timeout_ms
    )
    if "smt" in checkers and not z3_available():
        print(
            "note: z3 is not installed - SMT queries will be skipped "
            "(pip install 'repro[verify]' to enable them)"
        )
    certificates = run_certification(
        theorems, box, checkers=checkers, budget=budget
    )
    worst = 0
    for certificate in certificates:
        unknowns = sum(
            1 for o in certificate.outcomes if o.verdict == "unknown"
        )
        skipped = sum(
            1 for o in certificate.outcomes if o.verdict == "skipped"
        )
        print(
            f"{certificate.claim:<10} {certificate.status:<15} "
            f"({len(certificate.outcomes)} checks, {unknowns} unknown, "
            f"{skipped} skipped, "
            f"{sum(1 for v in certificate.vertices if v.ok)}/"
            f"{len(certificate.vertices)} vertices)"
        )
        for counterexample in certificate.counterexamples:
            point = ", ".join(
                f"{key}={value:.6g}"
                for key, value in sorted(counterexample["point"].items())
            )
            print(
                f"  counterexample [{counterexample['source']}/"
                f"{counterexample['label']}]: {point}"
            )
        if certificate.status == "counterexample":
            worst = 1
    if args.write_scenarios is not None:
        written = []
        for certificate in certificates:
            for scenario in scenarios_from_certificate(certificate):
                written.append(
                    write_scenario(scenario, args.write_scenarios)
                )
        print(f"wrote {len(written)} scenario(s) to {args.write_scenarios}")
        for path in written:
            print(f"  {path}")
    if args.output is not None:
        payload = {
            "box": box.to_dict(),
            "checkers": list(checkers),
            "certificates": [c.to_dict() for c in certificates],
        }
        write_json(payload, Path(args.output))
        print(f"wrote {args.output}")
    return worst


def _serve_command(args: argparse.Namespace) -> int:
    """Run the solve server in the foreground until interrupted."""
    import asyncio

    from repro.serve import EquilibriumService, ServeServer

    service = EquilibriumService(
        _open_store(args.store),
        cache=not args.no_cache,
        max_workers=args.workers,
    )
    server = ServeServer(service, host=args.host, port=args.port)

    async def _run() -> None:
        await server.start()
        print(
            f"serving on http://{args.host}:{server.port} "
            f"(store: {service.store.root}; POST /v1/solve, GET /healthz, "
            f"GET /stats; Ctrl-C to stop)"
        )
        try:
            await server.serve_forever()
        finally:
            await server.close()

    try:
        asyncio.run(_run())
    except KeyboardInterrupt:
        print("interrupted; server stopped")
        return EXIT_INTERRUPTED
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    return 0


def _install_backend(name: Optional[str]) -> Optional[int]:
    """Apply a ``--backend`` flag; returns an exit code on failure.

    Installs the name as the process-wide default *and* exports
    ``REPRO_BACKEND`` so pool worker processes inherit the selection
    regardless of start method.  A campaign spec's ``backend`` field
    still outranks this (it is pinned around each task).
    """
    if name is None:
        return None
    try:
        _backends.set_default_backend(name)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    os.environ[_backends.ENV_BACKEND] = name
    return None


def _list_backends() -> int:
    default = _backends.default_backend_name()
    width = max(len(name) for name in _backends.backend_names())
    for name, note in _backends.describe_backends().items():
        marker = "*" if name == default else " "
        print(f"{marker} {name.ljust(width)}  {note}")
    print("(* = configured default)")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry; returns a process exit code."""
    args = build_parser().parse_args(argv)
    failure = _install_backend(getattr(args, "backend", None))
    if failure is not None:
        return failure
    if args.command == "backends":
        return _list_backends()
    if args.command == "lint":
        from repro.lint.cli import main as lint_main

        return lint_main(args.lint_args)
    if args.command == "list":
        width = max(len(eid) for eid in EXPERIMENTS)
        for eid in sorted(EXPERIMENTS):
            experiment = EXPERIMENTS[eid]
            print(
                f"{eid.ljust(width)}  {experiment.paper_artifact:14s}"
                f"  {experiment.description}"
            )
        return 0
    if args.command == "run":
        try:
            _run_one(
                args.experiment_id,
                args.quick,
                args.jobs,
                store=_open_store(args.store),
                use_cache=not args.no_cache,
            )
        except ReproError as error:
            print(f"error: {error}", file=sys.stderr)
            return 1
        return 0
    if args.command == "run-all":
        store = _open_store(args.store)
        try:
            for eid in EXPERIMENTS:
                _run_one(
                    eid,
                    args.quick,
                    args.jobs,
                    store=store,
                    use_cache=not args.no_cache,
                )
        except ReproError as error:
            print(f"error: {error}", file=sys.stderr)
            return 1
        return 0
    if args.command == "store":
        store = _open_store(args.store)
        try:
            if args.store_command == "ls":
                return _store_ls(store, args.experiment)
            if args.store_command == "show":
                return _store_show(store, args.digest)
            if args.store_command == "diff":
                diff = store.diff(
                    store.resolve(args.digest_a), store.resolve(args.digest_b)
                )
                print(diff.render())
                return 0
            if args.store_command == "gc":
                removed = store.gc(
                    keep_latest=args.keep,
                    before=args.before,
                    experiment_id=args.experiment,
                )
                print(f"removed {len(removed)} stored run(s)")
                for digest in removed:
                    print(f"  {digest}")
                return 0
        except ReproError as error:
            print(f"error: {error}", file=sys.stderr)
            return 1
    if args.command == "campaign":
        store = _open_store(args.store)
        try:
            spec = load_spec(args.spec)
            if args.campaign_command == "status":
                print(campaign_status(spec, store=store).render())
                return 0
            if args.campaign_command == "run":
                report = run_campaign(
                    spec,
                    store=store,
                    jobs=args.jobs,
                    force=args.no_cache,
                    shard=(
                        parse_shard(args.shard)
                        if args.shard is not None
                        else None
                    ),
                    writer_id=args.writer_id,
                )
                print(report.render())
                return EXIT_INTERRUPTED if report.interrupted else 0
        except ReproError as error:
            print(f"error: {error}", file=sys.stderr)
            return 1
    if args.command == "obs":
        try:
            return _obs_command(args)
        except ReproError as error:
            print(f"error: {error}", file=sys.stderr)
            return 1
    if args.command == "detect":
        try:
            if args.detect_command == "screen":
                return _detect_screen(args)
        except ReproError as error:
            print(f"error: {error}", file=sys.stderr)
            return 1
    if args.command == "verify":
        try:
            return _verify_command(args)
        except ReproError as error:
            print(f"error: {error}", file=sys.stderr)
            return 1
    if args.command == "serve":
        return _serve_command(args)
    if args.command == "bench-serve":
        from repro.serve.bench import DEFAULT_OUTPUT, render_report, run_benchmark

        output = args.output if args.output is not None else DEFAULT_OUTPUT
        try:
            report = run_benchmark(output=output, smoke=args.smoke)
        except ReproError as error:
            print(f"error: {error}", file=sys.stderr)
            return 1
        print(render_report(report))
        print(f"wrote {output}")
        return 0
    raise AssertionError("unreachable")  # pragma: no cover


def entry() -> None:  # pragma: no cover - thin wrapper
    """Console-script entry point."""
    try:
        sys.exit(main())
    except BrokenPipeError:
        # Downstream pager/head closed the pipe; exit quietly like cat.
        sys.exit(141)


if __name__ == "__main__":  # pragma: no cover - python -m repro.cli
    entry()
