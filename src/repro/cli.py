"""Command-line interface for the reproduction.

Installed as ``repro-experiments``::

    repro-experiments list                 # every registered experiment
    repro-experiments run table2           # regenerate one artefact
    repro-experiments run table2 --quick   # reduced simulation size
    repro-experiments run table3 --jobs 4  # sweep on 4 worker processes
    repro-experiments run-all --quick      # the whole evaluation

The quick overrides mirror ``examples/reproduce_paper.py``.  ``--jobs``
fans the sweep experiments out over a process pool
(:mod:`repro.experiments.parallel`); per-task seeds are spawned from the
experiment's root seed before dispatch, so the artefacts are bit-identical
whatever the worker count (``--jobs 0`` means one worker per CPU).
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Any, Dict, List, Optional

from repro.experiments import EXPERIMENTS, run_experiment

__all__ = ["build_parser", "entry", "main"]

QUICK_OVERRIDES: Dict[str, Dict[str, Any]] = {
    "table2": {"slots_per_point": 40_000},
    "table3": {"slots_per_point": 40_000},
    "fig2": {"n_points": 20},
    "fig3": {"n_points": 20},
    "multihop": {"n_nodes": 60, "n_snapshots": 2},
    "search": {"slots_per_probe": 20_000},
}

#: Experiments whose runners accept the parallel runner's ``jobs`` knob.
PARALLEL_EXPERIMENTS = frozenset(
    {"table2", "table3", "fig2", "fig3", "multihop"}
)


def _jobs_type(value: str) -> int:
    jobs = int(value)
    if jobs < 0:
        raise argparse.ArgumentTypeError(
            f"jobs must be >= 0 (0 = one per CPU), got {jobs}"
        )
    return jobs


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for testing and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description=(
            "Reproduce the evaluation of 'Selfishness, Not Always A "
            "Nightmare' (Chen & Leneutre, ICDCS 2007)."
        ),
    )
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser("list", help="list registered experiments")

    run = commands.add_parser("run", help="run one experiment")
    run.add_argument("experiment_id", choices=sorted(EXPERIMENTS))
    run.add_argument(
        "--quick", action="store_true", help="reduced simulation size"
    )
    run.add_argument(
        "--jobs",
        type=_jobs_type,
        default=None,
        metavar="N",
        help="worker processes for sweep experiments (0 = one per CPU)",
    )

    run_all = commands.add_parser("run-all", help="run every experiment")
    run_all.add_argument(
        "--quick", action="store_true", help="reduced simulation size"
    )
    run_all.add_argument(
        "--jobs",
        type=_jobs_type,
        default=None,
        metavar="N",
        help="worker processes for sweep experiments (0 = one per CPU)",
    )
    return parser


def _run_one(
    experiment_id: str, quick: bool, jobs: Optional[int] = None
) -> None:
    experiment = EXPERIMENTS[experiment_id]
    kwargs = dict(QUICK_OVERRIDES.get(experiment_id, {})) if quick else {}
    if jobs is not None and experiment_id in PARALLEL_EXPERIMENTS:
        kwargs["jobs"] = jobs
    started = time.perf_counter()
    result = run_experiment(experiment_id, **kwargs)
    elapsed = time.perf_counter() - started
    print("=" * 72)
    print(
        f"{experiment.paper_artifact} ({experiment_id}) - "
        f"{experiment.description} [{elapsed:.1f}s]"
    )
    print("=" * 72)
    print(result.render())
    print()


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry; returns a process exit code."""
    args = build_parser().parse_args(argv)
    if args.command == "list":
        width = max(len(eid) for eid in EXPERIMENTS)
        for eid in sorted(EXPERIMENTS):
            experiment = EXPERIMENTS[eid]
            print(
                f"{eid.ljust(width)}  {experiment.paper_artifact:14s}"
                f"  {experiment.description}"
            )
        return 0
    if args.command == "run":
        _run_one(args.experiment_id, args.quick, args.jobs)
        return 0
    if args.command == "run-all":
        for eid in EXPERIMENTS:
            _run_one(eid, args.quick, args.jobs)
        return 0
    raise AssertionError("unreachable")  # pragma: no cover


def entry() -> None:  # pragma: no cover - thin wrapper
    """Console-script entry point."""
    sys.exit(main())


if __name__ == "__main__":  # pragma: no cover - python -m repro.cli
    entry()
