"""repro - selfish IEEE 802.11 DCF as a non-cooperative repeated game.

A full reproduction of *"Selfishness, Not Always A Nightmare: Modeling
Selfish MAC Behaviors in Wireless Mobile Ad Hoc Networks"* (Lin Chen and
Jean Leneutre, ICDCS 2007), comprising:

* :mod:`repro.phy` - PHY/MAC constants (paper Table I) and slot timing;
* :mod:`repro.bianchi` - Bianchi's saturated-DCF Markov chain generalised
  to heterogeneous contention windows, with the coupled fixed point and
  throughput model (paper Section III);
* :mod:`repro.game` - the repeated MAC game, TFT/GTFT strategies, Nash
  equilibrium analysis and refinement, the distributed search protocol,
  and the short-sighted/malicious deviation studies (Sections IV-V);
* :mod:`repro.multihop` - the multi-hop extension: topologies, random
  waypoint mobility, local games and the quasi-optimal equilibrium of
  Theorem 3 (Section VI);
* :mod:`repro.sim` - a slot-accurate saturated-DCF simulator (single
  collision domain and spatial multi-hop), replacing the paper's NS-2
  experiments;
* :mod:`repro.experiments` - one module per table/figure of Section VII.

Quickstart
----------
>>> from repro import MACGame, analyze_equilibria
>>> game = MACGame(n_players=5)
>>> analysis = analyze_equilibria(game.n_players, game.params, game.times)
>>> analysis.window_star  # the efficient NE contention window
78
"""

from repro.errors import (
    ConvergenceError,
    GameDefinitionError,
    ParameterError,
    ProtocolError,
    ReproError,
    SimulationError,
    StrategyError,
    TopologyError,
)
from repro.phy import (
    AccessMode,
    PhyParameters,
    SlotTimes,
    default_parameters,
    slot_times,
)
from repro.bianchi import (
    BackoffChain,
    FixedPointSolution,
    SymmetricSolution,
    normalized_throughput,
    solve_heterogeneous,
    solve_symmetric,
)
from repro.game import (
    BestResponseStrategy,
    ConstantStrategy,
    EquilibriumAnalysis,
    GenerousTitForTat,
    MACGame,
    MaliciousStrategy,
    RepeatedGameEngine,
    ShortSightedStrategy,
    Strategy,
    TitForTat,
    analyze_deviation,
    analyze_equilibria,
    breakeven_window,
    efficient_window,
    is_symmetric_equilibrium,
    optimal_tau,
    q_function,
    refine_equilibria,
    run_search_protocol,
    window_for_tau,
)

__version__ = "1.0.0"

__all__ = [
    "AccessMode",
    "BackoffChain",
    "BestResponseStrategy",
    "ConstantStrategy",
    "ConvergenceError",
    "EquilibriumAnalysis",
    "FixedPointSolution",
    "GameDefinitionError",
    "GenerousTitForTat",
    "MACGame",
    "MaliciousStrategy",
    "ParameterError",
    "PhyParameters",
    "ProtocolError",
    "RepeatedGameEngine",
    "ReproError",
    "ShortSightedStrategy",
    "SimulationError",
    "SlotTimes",
    "Strategy",
    "StrategyError",
    "SymmetricSolution",
    "TitForTat",
    "TopologyError",
    "__version__",
    "analyze_deviation",
    "analyze_equilibria",
    "breakeven_window",
    "default_parameters",
    "efficient_window",
    "is_symmetric_equilibrium",
    "normalized_throughput",
    "optimal_tau",
    "q_function",
    "refine_equilibria",
    "run_search_protocol",
    "slot_times",
    "solve_heterogeneous",
    "solve_symmetric",
    "window_for_tau",
]
