"""Fixpoint dataflow analyses over the :mod:`repro.lint.graph` call graph.

Two interprocedural analyses back the REPRO1xx whole-program rules:

:func:`transitive_effects`
    Purity certification.  Starting from the graph's cache-entering
    roots, walk resolved call edges (skipping the sanctioned boundary
    functions) and surface every direct impurity - I/O, wall-clock and
    environment reads, entropy, module-state mutation, unsanctioned
    :mod:`repro.obs` recorder use - together with the *call chain* from
    the nearest root, so a violation message names exactly how the
    impure call is reached.

:func:`rng_taint`
    RNG provenance.  A generator built by a bare
    ``np.random.default_rng()`` is *tainted*; one built from a seed,
    from ``repro.rng.resolve_rng`` or spawned from a clean
    ``SeedSequence`` is *clean*.  Taint propagates through local
    assignments, returned values and call arguments (arguments bind to
    the callee's parameters; returns bind to the caller's target), and
    any sampling call on a tainted generator is reported with the
    provenance chain back to the offending construction.

Both analyses are monotone unions over finite lattices, so the
worklists terminate; both only *add* facts along resolved edges, which
makes them conservative in the right direction: a function the graph
cannot see (dynamic dispatch, externals) contributes nothing rather
than a spurious finding.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.lint.graph import Effect, FunctionInfo, ProjectGraph, RngOp

__all__ = [
    "EffectFinding",
    "TaintFinding",
    "TaintOrigin",
    "reachable_functions",
    "rng_taint",
    "transitive_effects",
]


# ---------------------------------------------------------------------------
# Purity / effect propagation
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class EffectFinding:
    """One impure effect reachable from a certification root."""

    root: str
    function: str  # qname of the function containing the effect
    effect: Effect
    chain: Tuple[str, ...]  # qnames from root to function, inclusive

    def render_chain(self) -> str:
        return " -> ".join(self.chain)


def _sanctioned(qname: str, boundaries: FrozenSet[str]) -> bool:
    """Exact qname or any dotted prefix entry (``pkg.`` form) matches."""
    if qname in boundaries:
        return True
    return any(
        qname.startswith(prefix)
        for prefix in boundaries
        if prefix.endswith(".")
    )


def reachable_functions(
    graph: ProjectGraph,
    roots: Sequence[str],
    *,
    boundaries: FrozenSet[str] = frozenset(),
) -> Dict[str, Tuple[str, ...]]:
    """BFS over resolved call edges: qname -> shortest chain from a root."""
    chains: Dict[str, Tuple[str, ...]] = {}
    queue: List[str] = []
    for root in roots:
        if root in graph.functions and root not in chains:
            chains[root] = (root,)
            queue.append(root)
    while queue:
        current = queue.pop(0)
        for call in graph.callees(current):
            if not call.resolved:
                continue
            if call.callee in chains:
                continue
            if _sanctioned(call.callee, boundaries):
                continue
            if call.callee not in graph.functions:
                continue
            chains[call.callee] = chains[current] + (call.callee,)
            queue.append(call.callee)
    return chains


def transitive_effects(
    graph: ProjectGraph,
    roots: Sequence[str],
    *,
    boundaries: FrozenSet[str] = frozenset(),
    kinds: Optional[FrozenSet[str]] = None,
) -> List[EffectFinding]:
    """Every direct effect in any function reachable from ``roots``.

    One finding per (function, effect site); the chain reported is the
    shortest path from the nearest root (BFS order), which is the most
    readable repro recipe for the violation.
    """
    chains = reachable_functions(graph, roots, boundaries=boundaries)
    findings: List[EffectFinding] = []
    for qname, chain in chains.items():
        info = graph.functions[qname]
        for effect in info.effects:
            if kinds is not None and effect.kind not in kinds:
                continue
            findings.append(
                EffectFinding(
                    root=chain[0],
                    function=qname,
                    effect=effect,
                    chain=chain,
                )
            )
    findings.sort(
        key=lambda f: (f.function, f.effect.line, f.effect.col, f.effect.kind)
    )
    return findings


# ---------------------------------------------------------------------------
# RNG provenance taint
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class TaintOrigin:
    """Where a provenance-free generator was constructed."""

    path: str
    line: int
    detail: str
    hops: Tuple[str, ...] = ()  # function qnames the taint travelled through

    def extended(self, qname: str) -> "TaintOrigin":
        if self.hops and self.hops[-1] == qname:
            return self
        return TaintOrigin(
            self.path, self.line, self.detail, self.hops + (qname,)
        )


@dataclass(frozen=True)
class TaintFinding:
    """A sampling call on a generator with no seed provenance."""

    function: str
    path: str
    line: int
    col: int
    method: str
    origin: TaintOrigin

    def render_provenance(self) -> str:
        via = (
            f" via {' -> '.join(self.origin.hops)}"
            if self.origin.hops
            else ""
        )
        return f"built by {self.origin.detail}{via}"


@dataclass
class _FunctionTaint:
    """Mutable per-function state for the interprocedural fixpoint."""

    params: Dict[str, TaintOrigin] = field(default_factory=dict)
    returns: Optional[TaintOrigin] = None


def _param_name(
    info: FunctionInfo, position: Optional[int], keyword: Optional[str]
) -> Optional[str]:
    if keyword is not None:
        return keyword if keyword in info.params else None
    if position is None:
        return None
    params = info.params
    # Skip the receiver slot for methods; positional args at a call site
    # never bind to ``self``/``cls``.
    if params and params[0] in ("self", "cls"):
        params = params[1:]
    if position < len(params):
        return params[position]
    return None


def _local_pass(
    info: FunctionInfo,
    state: _FunctionTaint,
    summaries: Dict[str, _FunctionTaint],
    graph: ProjectGraph,
) -> Tuple[List[TaintFinding], Dict[Tuple[str, str], TaintOrigin], bool]:
    """One any-path evaluation of a function's RNG micro-ops.

    Returns ``(sampling findings, argument taints keyed by (callee,
    param), return-taint changed)``.  Local taint iterates to a fixpoint
    internally so op ordering never matters.
    """
    local: Dict[str, TaintOrigin] = dict(state.params)
    changed = True
    while changed:
        changed = False
        for op in info.rng_ops:
            if op.op == "make" and op.tainted and op.var not in local:
                local[op.var] = TaintOrigin(info.path, op.line, op.detail)
                changed = True
            elif op.op == "copy":
                origin = local.get(op.src)
                if origin is not None and op.var not in local:
                    local[op.var] = origin
                    changed = True
            elif op.op == "call" and op.var:
                summary = summaries.get(op.callee)
                if (
                    summary is not None
                    and summary.returns is not None
                    and op.var not in local
                ):
                    local[op.var] = summary.returns.extended(op.callee)
                    changed = True

    findings: List[TaintFinding] = []
    argument_taints: Dict[Tuple[str, str], TaintOrigin] = {}
    for op in info.rng_ops:
        if op.op == "sample":
            origin = local.get(op.var)
            if origin is not None and op.detail != "spawn":
                findings.append(
                    TaintFinding(
                        function=info.qname,
                        path=info.path,
                        line=op.line,
                        col=op.col,
                        method=op.detail,
                        origin=origin,
                    )
                )
        elif op.op == "call" and op.callee in graph.functions:
            callee_info = graph.functions[op.callee]
            for binding in op.args:
                origin = local.get(binding.var)
                if origin is None:
                    continue
                param = _param_name(
                    callee_info, binding.position, binding.keyword
                )
                if param is None:
                    continue
                argument_taints[(op.callee, param)] = origin.extended(
                    info.qname
                )

    return_changed = False
    for op in info.rng_ops:
        if op.op == "return":
            origin = local.get(op.src)
            if origin is not None and state.returns is None:
                state.returns = origin
                return_changed = True
    return findings, argument_taints, return_changed


def rng_taint(graph: ProjectGraph) -> List[TaintFinding]:
    """Interprocedural RNG provenance analysis over the whole graph.

    Worklist fixpoint: whenever a call site passes a tainted local into a
    known function's parameter, or a function's return becomes tainted,
    every (transitive) caller/callee affected is re-evaluated.  Only
    *definite* taint is propagated - parameters with unknown call sites
    stay untracked - so clean ``resolve_rng``-fed paths produce no
    findings without any suppression.
    """
    summaries: Dict[str, _FunctionTaint] = {
        qname: _FunctionTaint() for qname in graph.functions
    }
    callers: Dict[str, Set[str]] = {qname: set() for qname in graph.functions}
    for qname, info in graph.functions.items():
        for call in info.calls:
            if call.resolved and call.callee in callers:
                callers[call.callee].add(qname)

    findings: Dict[Tuple[str, int, int], TaintFinding] = {}
    worklist: List[str] = sorted(graph.functions)
    pending: Set[str] = set(worklist)
    iterations = 0
    budget = max(64, 16 * len(graph.functions))
    while worklist and iterations < budget:
        iterations += 1
        qname = worklist.pop(0)
        pending.discard(qname)
        info = graph.functions[qname]
        state = summaries[qname]
        local_findings, argument_taints, return_changed = _local_pass(
            info, state, summaries, graph
        )
        for finding in local_findings:
            findings[(finding.path, finding.line, finding.col)] = finding
        for (callee, param), origin in argument_taints.items():
            callee_state = summaries[callee]
            if param not in callee_state.params:
                callee_state.params[param] = origin
                if callee not in pending:
                    worklist.append(callee)
                    pending.add(callee)
        if return_changed:
            for caller in callers[qname]:
                if caller not in pending:
                    worklist.append(caller)
                    pending.add(caller)
    ordered = sorted(
        findings.values(), key=lambda f: (f.path, f.line, f.col, f.method)
    )
    return ordered
