"""Lint rules and their plugin registry.

Every rule is a class with a unique ``code`` (``REPROnnn``), a one-line
``summary`` and a ``check_module`` generator yielding
:class:`~repro.lint.analyzer.Violation` instances.  Registration happens
at import time through the :func:`register_rule` decorator, so adding a
rule is: subclass :class:`LintRule`, decorate, done - the CLI, the JSON
output and ``--select``/``--ignore`` pick it up automatically.

The shipped rule set encodes this repository's determinism and invariant
conventions:

``REPRO001``
    Unseeded RNG construction (``np.random.default_rng()`` with no seed,
    legacy ``np.random.*`` global-state calls, bare ``RandomState()``).
``REPRO002``
    A function that accepts ``rng``/``seed`` but falls back to
    constructing its own unseeded generator.
``REPRO003``
    Float equality (``==``/``!=``) on probabilities/utilities or against
    float literals; use ``math.isclose``/``np.isclose`` or a tolerance.
``REPRO004``
    Mutable default argument values.
``REPRO005``
    Experiment module defining ``run()`` but missing from
    ``repro.experiments.registry``.
``REPRO006``
    Direct ``np.``/``numpy.`` call inside an ``xp``-parameterized kernel
    body; array-API-generic code must route every array operation
    through the ``xp`` namespace argument.
"""

from __future__ import annotations

import ast
import re
from typing import TYPE_CHECKING, Dict, Iterable, Iterator, List, Optional, Type

from repro.errors import LintError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.lint.analyzer import ModuleContext, Violation

__all__ = [
    "LintRule",
    "RULE_REGISTRY",
    "all_rule_codes",
    "build_rules",
    "register_rule",
]

RULE_REGISTRY: Dict[str, Type["LintRule"]] = {}


def register_rule(cls: Type["LintRule"]) -> Type["LintRule"]:
    """Class decorator adding a rule to the plugin registry."""
    code = cls.code
    if not re.fullmatch(r"REPRO\d{3}", code):
        raise LintError(f"rule code must match REPROnnn, got {code!r}")
    if code in RULE_REGISTRY:
        raise LintError(f"duplicate rule code {code!r}")
    RULE_REGISTRY[code] = cls
    return cls


def all_rule_codes() -> List[str]:
    """Sorted codes of every registered rule."""
    return sorted(RULE_REGISTRY)


def build_rules(
    select: Optional[Iterable[str]] = None,
    ignore: Optional[Iterable[str]] = None,
) -> List["LintRule"]:
    """Instantiate the registered rules, honouring select/ignore filters."""
    selected = set(select) if select is not None else set(RULE_REGISTRY)
    ignored = set(ignore) if ignore is not None else set()
    unknown = (selected | ignored) - set(RULE_REGISTRY)
    if unknown:
        raise LintError(
            f"unknown rule codes: {sorted(unknown)!r}; "
            f"known: {all_rule_codes()!r}"
        )
    return [
        RULE_REGISTRY[code]()
        for code in sorted(selected - ignored)
    ]


class LintRule:
    """Base class for lint rules (the plugin interface)."""

    code: str = "REPRO000"
    summary: str = ""

    def check_module(
        self, context: "ModuleContext"
    ) -> Iterator["Violation"]:
        """Yield violations for one parsed module."""
        raise NotImplementedError

    # Helper shared by subclasses -------------------------------------
    def violation(
        self, context: "ModuleContext", node: ast.AST, message: str
    ) -> "Violation":
        from repro.lint.analyzer import Violation

        return Violation(
            path=context.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            rule=self.code,
            message=message,
        )


# ----------------------------------------------------------------------
# RNG helpers
# ----------------------------------------------------------------------
#: Legacy numpy functions that mutate/read the hidden global RNG state.
_GLOBAL_STATE_FUNCS = frozenset(
    {
        "beta",
        "binomial",
        "bytes",
        "chisquare",
        "choice",
        "dirichlet",
        "exponential",
        "gamma",
        "geometric",
        "get_state",
        "lognormal",
        "multinomial",
        "multivariate_normal",
        "normal",
        "pareto",
        "permutation",
        "poisson",
        "rand",
        "randint",
        "randn",
        "random",
        "random_integers",
        "random_sample",
        "ranf",
        "sample",
        "seed",
        "set_state",
        "shuffle",
        "standard_cauchy",
        "standard_exponential",
        "standard_gamma",
        "standard_normal",
        "standard_t",
        "triangular",
        "uniform",
        "vonmises",
        "weibull",
        "zipf",
    }
)


def _is_none(node: Optional[ast.expr]) -> bool:
    return isinstance(node, ast.Constant) and node.value is None


def _unseeded_factory_call(call: ast.Call, canonical: str) -> bool:
    """``default_rng``/``RandomState`` called without a concrete seed."""
    if canonical not in (
        "numpy.random.default_rng",
        "numpy.random.RandomState",
    ):
        return False
    if not call.args and not call.keywords:
        return True
    if call.args and _is_none(call.args[0]):
        return True
    return any(
        keyword.arg == "seed" and _is_none(keyword.value)
        for keyword in call.keywords
    )


def _global_state_call(canonical: str) -> bool:
    parts = canonical.split(".")
    return (
        len(parts) == 3
        and parts[0] == "numpy"
        and parts[1] == "random"
        and parts[2] in _GLOBAL_STATE_FUNCS
    )


@register_rule
class UnseededRngRule(LintRule):
    """REPRO001: all randomness must flow from an explicit seed."""

    code = "REPRO001"
    summary = (
        "unseeded RNG construction or legacy np.random global-state call"
    )

    def check_module(
        self, context: "ModuleContext"
    ) -> Iterator["Violation"]:
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.Call):
                continue
            canonical = context.resolve(node.func)
            if canonical is None:
                continue
            if _unseeded_factory_call(node, canonical):
                yield self.violation(
                    context,
                    node,
                    f"{canonical}() without a seed draws OS entropy; pass "
                    "a seed/SeedSequence or use repro.rng.resolve_rng",
                )
            elif _global_state_call(canonical):
                yield self.violation(
                    context,
                    node,
                    f"{canonical}() uses numpy's hidden global RNG state; "
                    "use a seeded numpy.random.Generator instead",
                )


@register_rule
class RngFallbackRule(LintRule):
    """REPRO002: ``rng``/``seed`` takers must not invent their own stream."""

    code = "REPRO002"
    summary = (
        "function taking rng/seed constructs its own unseeded generator"
    )

    _PARAM_NAMES = frozenset({"rng", "seed", "random_state"})

    def check_module(
        self, context: "ModuleContext"
    ) -> Iterator["Violation"]:
        for node in ast.walk(context.tree):
            if not isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                continue
            arguments = node.args
            names = {
                arg.arg
                for arg in (
                    *arguments.posonlyargs,
                    *arguments.args,
                    *arguments.kwonlyargs,
                )
            }
            taken = names & self._PARAM_NAMES
            if not taken:
                continue
            for inner in ast.walk(node):
                if not isinstance(inner, ast.Call):
                    continue
                canonical = context.resolve(inner.func)
                if canonical is None:
                    continue
                if _unseeded_factory_call(inner, canonical):
                    yield self.violation(
                        context,
                        inner,
                        f"{node.name}() takes {sorted(taken)!r} but falls "
                        "back to an unseeded generator; derive the "
                        "fallback from a fixed seed "
                        "(repro.rng.resolve_rng) or require the argument",
                    )


@register_rule
class FloatEqualityRule(LintRule):
    """REPRO003: tolerate floating point; never ``==`` it.

    Modules listed in :attr:`EXEMPT_PATH_SUFFIXES` are skipped entirely.
    The batched fixed-point solver legitimately compares against exact
    ``0.0``: its Anderson-acceleration step guards a division with
    ``den == 0.0`` masks, where the denominator is a sum of squares that
    is *identically* zero (not merely small) when the iterate has
    stalled.  A tolerance there would misclassify genuinely tiny - but
    valid - secant denominators and disable the acceleration.
    """

    code = "REPRO003"
    summary = "float equality comparison (use math.isclose or a tolerance)"

    #: Path suffixes (``/``-normalised) whose modules may compare floats
    #: exactly; see the class docstring for the rationale per entry.
    EXEMPT_PATH_SUFFIXES = ("bianchi/batched.py",)

    _HINT = re.compile(
        r"(^|_)(tau|prob|probabilit|utilit|payoff|welfare|residual)"
    )
    _TOLERANT_CALLS = frozenset(
        {"approx", "isclose", "allclose", "assert_allclose"}
    )

    def _is_exempt(self, context: "ModuleContext") -> bool:
        path = str(context.path).replace("\\", "/")
        return path.endswith(self.EXEMPT_PATH_SUFFIXES)

    def _is_tolerant_call(self, node: ast.expr) -> bool:
        if not isinstance(node, ast.Call):
            return False
        func = node.func
        name = func.attr if isinstance(func, ast.Attribute) else (
            func.id if isinstance(func, ast.Name) else ""
        )
        return name in self._TOLERANT_CALLS

    def _is_float_literal(self, node: ast.expr) -> bool:
        if isinstance(node, ast.UnaryOp) and isinstance(
            node.op, (ast.UAdd, ast.USub)
        ):
            node = node.operand
        return isinstance(node, ast.Constant) and isinstance(
            node.value, float
        )

    def _hinted_name(self, node: ast.expr) -> Optional[str]:
        if isinstance(node, ast.Attribute):
            identifier = node.attr
        elif isinstance(node, ast.Name):
            identifier = node.id
        else:
            return None
        if self._HINT.search(identifier.lower()):
            return identifier
        return None

    def check_module(
        self, context: "ModuleContext"
    ) -> Iterator["Violation"]:
        if self._is_exempt(context):
            return
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left, *node.comparators]
            for index, op in enumerate(node.ops):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                left, right = operands[index], operands[index + 1]
                if self._is_tolerant_call(left) or self._is_tolerant_call(
                    right
                ):
                    continue
                if self._is_float_literal(left) or self._is_float_literal(
                    right
                ):
                    yield self.violation(
                        context,
                        node,
                        "equality against a float literal; use "
                        "math.isclose/np.isclose or compare with a "
                        "tolerance",
                    )
                    continue
                hinted = self._hinted_name(left) or self._hinted_name(right)
                if hinted is not None:
                    yield self.violation(
                        context,
                        node,
                        f"float equality on {hinted!r} (probability/"
                        "utility-like quantity); use math.isclose/"
                        "np.isclose or compare with a tolerance",
                    )


@register_rule
class MutableDefaultRule(LintRule):
    """REPRO004: mutable default arguments alias state across calls."""

    code = "REPRO004"
    summary = "mutable default argument value"

    _MUTABLE_CALLS = frozenset(
        {
            "bytearray",
            "collections.OrderedDict",
            "collections.defaultdict",
            "collections.deque",
            "dict",
            "list",
            "numpy.array",
            "numpy.empty",
            "numpy.ones",
            "numpy.zeros",
            "set",
        }
    )

    def _is_mutable(
        self, context: "ModuleContext", node: ast.expr
    ) -> bool:
        if isinstance(
            node,
            (
                ast.List,
                ast.Dict,
                ast.Set,
                ast.ListComp,
                ast.DictComp,
                ast.SetComp,
            ),
        ):
            return True
        if isinstance(node, ast.Call):
            canonical = context.resolve(node.func)
            return canonical in self._MUTABLE_CALLS
        return False

    def check_module(
        self, context: "ModuleContext"
    ) -> Iterator["Violation"]:
        for node in ast.walk(context.tree):
            if not isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            ):
                continue
            arguments = node.args
            defaults = [
                *arguments.defaults,
                *(d for d in arguments.kw_defaults if d is not None),
            ]
            for default in defaults:
                if self._is_mutable(context, default):
                    name = getattr(node, "name", "<lambda>")
                    yield self.violation(
                        context,
                        default,
                        f"mutable default argument in {name}(); default "
                        "to None and create the object inside the "
                        "function",
                    )


@register_rule
class UnregisteredExperimentRule(LintRule):
    """REPRO005: every experiment must be enumerable by tooling."""

    code = "REPRO005"
    summary = (
        "experiment module with run() missing from "
        "repro.experiments.registry"
    )

    #: Infrastructure modules of ``repro/experiments/`` that are not
    #: experiments themselves.
    INFRASTRUCTURE = frozenset(
        {
            "__init__",
            "__main__",
            "export",
            "parallel",
            "plotting",
            "registry",
            "reporting",
        }
    )

    def check_module(
        self, context: "ModuleContext"
    ) -> Iterator["Violation"]:
        registered = context.registered_experiments
        if registered is None:
            return
        if context.parent_dir_name != "experiments":
            return
        stem = context.module_stem
        if stem in self.INFRASTRUCTURE or stem in registered:
            return
        for node in ast.iter_child_nodes(context.tree):
            if (
                isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
                and node.name == "run"
            ):
                yield self.violation(
                    context,
                    node,
                    f"experiment module {stem!r} defines run() but has no "
                    "entry in repro.experiments.registry; register it so "
                    "the CLI/benchmarks can enumerate it",
                )
                return


@register_rule
class NumpyInXpKernelRule(LintRule):
    """REPRO006: ``xp``-generic kernels must not hard-code numpy.

    A function that accepts an ``xp`` array-namespace parameter (the
    convention :func:`repro.backends.get_namespace` serves) advertises
    that it works on any array-API family - CuPy arrays included.  A
    direct ``np.*`` call inside such a body silently converts device
    arrays to host numpy (or crashes), defeating the parameterization;
    every array operation must go through ``xp`` instead.  Scalar
    helpers that never touch the arrays (``math.*``) are fine and not
    flagged.
    """

    code = "REPRO006"
    summary = (
        "direct numpy call inside an xp-parameterized kernel body "
        "(route it through xp)"
    )

    def check_module(
        self, context: "ModuleContext"
    ) -> Iterator["Violation"]:
        for node in ast.walk(context.tree):
            if not isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                continue
            arguments = node.args
            names = {
                arg.arg
                for arg in (
                    *arguments.posonlyargs,
                    *arguments.args,
                    *arguments.kwonlyargs,
                )
            }
            if "xp" not in names:
                continue
            for inner in ast.walk(node):
                if not isinstance(inner, ast.Call):
                    continue
                canonical = context.resolve(inner.func)
                if canonical is None or not canonical.startswith("numpy."):
                    continue
                yield self.violation(
                    context,
                    inner,
                    f"{node.name}() takes an 'xp' namespace but calls "
                    f"{canonical}() directly; use the xp argument so the "
                    "kernel stays array-API generic",
                )
