"""Whole-program lint rules (the ``REPRO1xx`` family).

Per-file rules see one module; the rules here see the
:class:`~repro.lint.graph.ProjectGraph` plus the
:mod:`~repro.lint.flow` fixpoint results and certify *cross-module*
invariants:

``REPRO101``
    Purity.  Every cache-entering function (registered experiment
    runners, the backend hot kernels, the campaign dispatch target) must
    be transitively free of I/O, wall-clock/environment reads, entropy
    draws, module-state mutation and unsanctioned ``repro.obs`` recorder
    use.  Violations name the full call chain from the certification
    root to the impure call.
``REPRO102``
    RNG provenance.  Any sampling call whose generator does not flow
    from ``repro.rng.resolve_rng``, a seeded ``default_rng`` or a
    spawned ``SeedSequence`` is flagged, however many calls separate the
    construction from the draw.
``REPRO103``
    Exception contract.  Public API functions of the ``repro`` package
    raise only the :mod:`repro.errors` hierarchy (plus the conventional
    ``NotImplementedError``/``AssertionError``).
``REPRO104``
    Backend parity.  The three calendar kernels (python anchor, cnative
    C transliteration, numba JIT of the python source) must share the
    splitmix64 constants, the ``floor(u53 * bound)`` draw and the
    canonical ascending transmitter ordering that make them
    bit-compatible; the rule cross-checks the python AST against the
    embedded C source so the PR 6 bit-compat contract is machine
    enforced, not test-only.

Rules register through :func:`register_project_rule`, mirroring the
per-file plugin registry, and integrate with the same
``--select``/``--ignore``/noqa machinery.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, FrozenSet, Iterator, List, Optional, Tuple, Type

from repro.errors import LintError
from repro.lint.analyzer import Violation
from repro.lint.flow import rng_taint, transitive_effects
from repro.lint.graph import ProjectGraph

__all__ = [
    "PROJECT_RULE_REGISTRY",
    "ProjectContext",
    "ProjectRule",
    "SANCTIONED_PURITY_BOUNDARIES",
    "all_project_rule_codes",
    "build_project_rules",
    "register_project_rule",
]

PROJECT_RULE_REGISTRY: Dict[str, Type["ProjectRule"]] = {}

#: Functions the purity walk treats as opaque, certified boundaries.
#: Each entry is either an exact qname or a ``pkg.``-style prefix.  An
#: entry here is a *reviewed* exemption: the function either has no
#: result-affecting effects or confines them behind a deterministic
#: contract of its own.
SANCTIONED_PURITY_BOUNDARIES: FrozenSet[str] = frozenset(
    {
        # The sanctioned observability surface: spans and ambient-metric
        # helpers route through whatever recorder the *caller* installed
        # and are no-ops under NullRecorder; they never decide results.
        "repro.obs.span",
        "repro.obs.span.span",
        "repro.obs.enabled",
        "repro.obs.current_span_id",
        "repro.obs.inc",
        "repro.obs.gauge_set",
        "repro.obs.observe",
        "repro.obs.observe_many",
        "repro.obs.metrics.inc",
        "repro.obs.metrics.gauge_set",
        "repro.obs.metrics.observe",
        "repro.obs.metrics.observe_many",
        # rate_gauge is *the* sanctioned wall-clock reader: throughput
        # instrumentation on pure compute paths routes its perf_counter
        # reads through here (see the REPRO101 fix in repro.sim).
        "repro.obs.metrics.rate_gauge",
        # Runtime contracts validate-and-return (or raise); their only
        # ambient read is the REPRO_CHECKS gate, which toggles checking,
        # never values.
        "repro.contracts.",
        # The one sanctioned seed fallback: deterministic by definition.
        "repro.rng.resolve_rng",
        # Backend selection reads configuration (env/CLI/campaign), not
        # data; every backend is pinned to the numpy reference by the
        # equivalence tests, so the choice cannot alter results.
        "repro.backends.resolve_backend",
        "repro.backends.get_backend",
        "repro.backends.default_backend_name",
        "repro.backends.use_backend",
    }
)

#: Effect kinds REPRO101 certifies against.
PURITY_EFFECT_KINDS: FrozenSet[str] = frozenset(
    {"io", "time", "env", "entropy", "global-write", "obs-recorder"}
)

#: Builtin exceptions public API code may raise despite REPRO103.
_RAISE_ALLOWLIST = frozenset(
    {
        "NotImplementedError",
        "AssertionError",
        "StopIteration",
        "StopAsyncIteration",
        "KeyboardInterrupt",
        "SystemExit",
        "argparse.ArgumentTypeError",
    }
)

_BUILTIN_EXCEPTIONS = frozenset(
    {
        "ArithmeticError",
        "AttributeError",
        "BaseException",
        "BufferError",
        "EOFError",
        "Exception",
        "FileExistsError",
        "FileNotFoundError",
        "FloatingPointError",
        "IOError",
        "ImportError",
        "IndexError",
        "KeyError",
        "LookupError",
        "MemoryError",
        "NameError",
        "OSError",
        "OverflowError",
        "PermissionError",
        "RecursionError",
        "ReferenceError",
        "RuntimeError",
        "TimeoutError",
        "TypeError",
        "UnicodeDecodeError",
        "UnicodeEncodeError",
        "ValueError",
        "ZeroDivisionError",
    }
)


@dataclass
class ProjectContext:
    """Everything a whole-program rule may ask about the project."""

    graph: ProjectGraph
    #: Filesystem roots the graph was built from (for path reporting).
    roots: Tuple[str, ...] = ()
    #: Extra purity boundaries (tests extend the sanctioned set here).
    extra_boundaries: FrozenSet[str] = frozenset()
    _source_cache: Dict[str, str] = field(default_factory=dict)

    @property
    def boundaries(self) -> FrozenSet[str]:
        return SANCTIONED_PURITY_BOUNDARIES | self.extra_boundaries

    def source_of(self, path: str) -> str:
        if path not in self._source_cache:
            try:
                self._source_cache[path] = Path(path).read_text(
                    encoding="utf-8"
                )
            except OSError:
                self._source_cache[path] = ""
        return self._source_cache[path]


def register_project_rule(
    cls: Type["ProjectRule"],
) -> Type["ProjectRule"]:
    """Class decorator adding a whole-program rule to the registry."""
    code = cls.code
    if not re.fullmatch(r"REPRO1\d{2}", code):
        raise LintError(
            f"project rule code must match REPRO1nn, got {code!r}"
        )
    if code in PROJECT_RULE_REGISTRY:
        raise LintError(f"duplicate project rule code {code!r}")
    PROJECT_RULE_REGISTRY[code] = cls
    return cls


def all_project_rule_codes() -> List[str]:
    """Sorted codes of every registered whole-program rule."""
    return sorted(PROJECT_RULE_REGISTRY)


def build_project_rules(
    select: Optional[FrozenSet[str]] = None,
    ignore: Optional[FrozenSet[str]] = None,
) -> List["ProjectRule"]:
    """Instantiate whole-program rules honouring select/ignore filters.

    Unknown codes are *not* validated here - the CLI validates against
    the union of both registries so a ``--select REPRO101`` run does not
    trip over per-file codes and vice versa.
    """
    selected = (
        set(select) if select is not None else set(PROJECT_RULE_REGISTRY)
    )
    ignored = set(ignore) if ignore is not None else set()
    return [
        PROJECT_RULE_REGISTRY[code]()
        for code in sorted(selected - ignored)
        if code in PROJECT_RULE_REGISTRY
    ]


class ProjectRule:
    """Base class for whole-program rules (the plugin interface)."""

    code: str = "REPRO100"
    summary: str = ""

    def check_project(self, context: ProjectContext) -> Iterator[Violation]:
        raise NotImplementedError

    def violation(
        self, path: str, line: int, col: int, message: str
    ) -> Violation:
        return Violation(
            path=path, line=line, col=col, rule=self.code, message=message
        )


# ---------------------------------------------------------------------------
# REPRO101 - purity certification
# ---------------------------------------------------------------------------
@register_project_rule
class PurityRule(ProjectRule):
    """REPRO101: cache-entering call trees must be pure."""

    code = "REPRO101"
    summary = (
        "impure call (I/O, clock/env read, entropy, module-state "
        "mutation) reachable from a cache-entering root"
    )

    _KIND_TEXT = {
        "io": "performs I/O",
        "time": "reads the wall clock",
        "env": "reads/writes the process environment",
        "entropy": "draws OS entropy",
        "global-write": "mutates module-level state",
        "obs-recorder": "uses a repro.obs recorder outside the span API",
    }

    def check_project(self, context: ProjectContext) -> Iterator[Violation]:
        graph = context.graph
        findings = transitive_effects(
            graph,
            graph.roots,
            boundaries=context.boundaries,
            kinds=PURITY_EFFECT_KINDS,
        )
        for finding in findings:
            info = graph.functions[finding.function]
            kind_text = self._KIND_TEXT.get(
                finding.effect.kind, finding.effect.kind
            )
            yield self.violation(
                info.path,
                finding.effect.line,
                finding.effect.col + 1,
                f"{finding.function} {kind_text} ({finding.effect.detail}) "
                f"but is reachable from cache-entering root "
                f"{finding.root}; call chain: {finding.render_chain()}. "
                "Cached results must be pure functions of their digested "
                "inputs - hoist the effect out of the runner or route it "
                "through a sanctioned boundary",
            )


# ---------------------------------------------------------------------------
# REPRO102 - RNG provenance
# ---------------------------------------------------------------------------
@register_project_rule
class RngProvenanceRule(ProjectRule):
    """REPRO102: every random draw traces to resolve_rng/SeedSequence."""

    code = "REPRO102"
    summary = (
        "sampling call on a generator with no seed provenance "
        "(does not flow from resolve_rng or a seeded SeedSequence)"
    )

    def check_project(self, context: ProjectContext) -> Iterator[Violation]:
        for finding in rng_taint(context.graph):
            yield self.violation(
                finding.path,
                finding.line,
                finding.col + 1,
                f"{finding.function} samples .{finding.method}() from a "
                f"generator with no seed provenance: "
                f"{finding.render_provenance()}. Bit-identical --jobs "
                "replay requires every stream to flow from "
                "repro.rng.resolve_rng or a spawned SeedSequence",
            )


# ---------------------------------------------------------------------------
# REPRO103 - exception contract
# ---------------------------------------------------------------------------
@register_project_rule
class ExceptionContractRule(ProjectRule):
    """REPRO103: public API raises only the repro.errors hierarchy."""

    code = "REPRO103"
    summary = (
        "public API function raises outside the repro.errors hierarchy"
    )

    def check_project(self, context: ProjectContext) -> Iterator[Violation]:
        graph = context.graph
        approved = graph.exception_classes()
        for qname in sorted(graph.functions):
            info = graph.functions[qname]
            if info.module.split(".")[0] != "repro":
                continue
            if not info.is_public:
                continue
            if any(part.startswith("_") for part in info.module.split(".")):
                continue
            for site in info.raises:
                exception = site.exception
                if exception in _RAISE_ALLOWLIST:
                    continue
                if exception in approved:
                    continue
                if exception.startswith("repro.errors."):
                    continue
                if exception not in _BUILTIN_EXCEPTIONS:
                    continue  # third-party/unknown: out of contract scope
                yield self.violation(
                    info.path,
                    site.line,
                    site.col + 1,
                    f"{qname} raises builtin {exception}; public repro API "
                    "must raise the repro.errors hierarchy so callers can "
                    "catch ReproError at the boundary",
                )


# ---------------------------------------------------------------------------
# REPRO104 - backend parity
# ---------------------------------------------------------------------------
#: The shared splitmix64 contract, single source of truth for the check.
_SPLITMIX_CONSTANTS: Dict[str, int] = {
    "_SM_GAMMA": 0x9E3779B97F4A7C15,
    "_SM_MUL1": 0xBF58476D1CE4E5B9,
    "_SM_MUL2": 0x94D049BB133111EB,
}
_SPLITMIX_SHIFTS: Dict[str, int] = {
    "_SH30": 30,
    "_SH27": 27,
    "_SH31": 31,
    "_SH11": 11,
}
_U53_DENOMINATOR = 9007199254740992.0  # 2**53


@register_project_rule
class BackendParityRule(ProjectRule):
    """REPRO104: python/C/numba calendar kernels stay bit-compatible."""

    code = "REPRO104"
    summary = (
        "calendar-kernel backends diverge on splitmix64 constants, the "
        "u53 draw or the canonical transmitter ordering"
    )

    def _module_path(
        self, context: ProjectContext, module: str
    ) -> Optional[str]:
        info = context.graph.modules.get(module)
        return info.path if info is not None else None

    def check_project(self, context: ProjectContext) -> Iterator[Violation]:
        kernels_path = self._module_path(
            context, "repro.backends.calendar_kernels"
        )
        cnative_path = self._module_path(
            context, "repro.backends.cnative_backend"
        )
        numba_path = self._module_path(
            context, "repro.backends.numba_backend"
        )
        if kernels_path is None or cnative_path is None:
            return  # backends not part of this scan; nothing to certify
        yield from self._check_python_constants(context, kernels_path)
        yield from self._check_c_source(context, cnative_path)
        if numba_path is not None:
            yield from self._check_numba_shares_source(context, numba_path)

    # -- python anchor --------------------------------------------------
    def _python_assignments(
        self, context: ProjectContext, path: str
    ) -> Dict[str, object]:
        values: Dict[str, object] = {}
        try:
            tree = ast.parse(context.source_of(path))
        except SyntaxError:
            return values
        for node in ast.iter_child_nodes(tree):
            if not isinstance(node, ast.Assign):
                continue
            for target in node.targets:
                if not isinstance(target, ast.Name):
                    continue
                value = node.value
                if (
                    isinstance(value, ast.Call)
                    and value.args
                    and isinstance(value.args[0], ast.Constant)
                ):
                    values[target.id] = value.args[0].value
                elif isinstance(value, ast.Constant):
                    values[target.id] = value.value
                elif (
                    isinstance(value, ast.BinOp)
                    and isinstance(value.op, ast.Div)
                    and isinstance(value.left, ast.Constant)
                    and isinstance(value.right, ast.Constant)
                    and value.right.value
                ):
                    values[target.id] = (
                        value.left.value / value.right.value,
                        value.right.value,
                    )
        return values

    def _check_python_constants(
        self, context: ProjectContext, path: str
    ) -> Iterator[Violation]:
        values = self._python_assignments(context, path)
        for name, expected in _SPLITMIX_CONSTANTS.items():
            actual = values.get(name)
            if actual != expected:
                yield self.violation(
                    path,
                    1,
                    1,
                    f"python calendar kernel constant {name} is "
                    f"{actual!r}, expected {hex(expected)}; the splitmix64 "
                    "stream must match the cnative/numba backends exactly",
                )
        for name, expected in _SPLITMIX_SHIFTS.items():
            actual = values.get(name)
            if actual != expected:
                yield self.violation(
                    path,
                    1,
                    1,
                    f"python calendar kernel shift {name} is {actual!r}, "
                    f"expected {expected}; splitmix64 mixing must match "
                    "the C transliteration",
                )
        inv = values.get("_INV_2_53")
        denominator = inv[1] if isinstance(inv, tuple) else None
        if denominator != _U53_DENOMINATOR and denominator != int(
            _U53_DENOMINATOR
        ):
            yield self.violation(
                path,
                1,
                1,
                "_INV_2_53 must be 1.0 / 9007199254740992.0 (2**-53): the "
                "floor(u53 * bound) draw is part of the bit-compat "
                "contract",
            )
        source = context.source_of(path)
        if "due[b] > v" not in source:
            yield self.violation(
                path,
                1,
                1,
                "python sim kernel lost the canonical ascending "
                "transmitter insertion sort (due[b] > v); per-slot "
                "processing order is part of the bit-compat contract",
            )

    # -- C transliteration ----------------------------------------------
    def _check_c_source(
        self, context: ProjectContext, path: str
    ) -> Iterator[Violation]:
        source = context.source_of(path)
        for name, expected in _SPLITMIX_CONSTANTS.items():
            pattern = re.compile(
                r"0x%X" % expected, re.IGNORECASE
            )
            if not pattern.search(source):
                yield self.violation(
                    path,
                    1,
                    1,
                    f"cnative C source is missing splitmix64 constant "
                    f"{hex(expected)} ({name}); the C kernels must consume "
                    "the same per-lane streams as the python anchor",
                )
        for shift in sorted(set(_SPLITMIX_SHIFTS.values())):
            if not re.search(r">>\s*%d\b" % shift, source):
                yield self.violation(
                    path,
                    1,
                    1,
                    f"cnative C source is missing the '>> {shift}' "
                    "splitmix64 shift; mixing must match the python "
                    "anchor",
                )
        if "9007199254740992.0" not in source:
            yield self.violation(
                path,
                1,
                1,
                "cnative C source lost the 1.0/9007199254740992.0 (2**-53) "
                "u53 mapping of the floor(u53 * bound) draw",
            )
        if "due[b] > v" not in source:
            yield self.violation(
                path,
                1,
                1,
                "cnative C source lost the canonical ascending transmitter "
                "insertion sort (due[b] > v); per-slot processing order is "
                "part of the bit-compat contract",
            )

    # -- numba shares the python source ---------------------------------
    def _check_numba_shares_source(
        self, context: ProjectContext, path: str
    ) -> Iterator[Violation]:
        try:
            tree = ast.parse(context.source_of(path))
        except SyntaxError:
            return
        imported: set = set()
        redefined: List[Tuple[str, int]] = []
        for node in ast.walk(tree):
            if (
                isinstance(node, ast.ImportFrom)
                and node.module == "repro.backends.calendar_kernels"
            ):
                imported.update(name.name for name in node.names)
            elif isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef)
            ) and node.name in ("sim_chunk_kernel", "fixed_point_kernel"):
                redefined.append((node.name, node.lineno))
        for name in ("sim_chunk_kernel", "fixed_point_kernel"):
            if name not in imported:
                yield self.violation(
                    path,
                    1,
                    1,
                    f"numba backend must JIT-compile {name} from "
                    "repro.backends.calendar_kernels (shared source is "
                    "what guarantees numba/python bit-compatibility), but "
                    "the import is missing",
                )
        for name, line in redefined:
            yield self.violation(
                path,
                line,
                1,
                f"numba backend redefines {name} instead of compiling the "
                "shared calendar_kernels source; diverging kernel bodies "
                "break the cross-backend bit-compat contract",
            )
