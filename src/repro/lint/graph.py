"""Project-wide module/call graph for whole-program lint rules.

:func:`build_graph` parses every Python file under the given roots once
and produces a :class:`ProjectGraph`: modules, their import aliases,
every function/method with

* resolved **call edges** (``repro.experiments.table2.run`` calling
  ``repro.sim.adaptive.measure_per_node_optimum`` becomes an edge, with
  the call site position),
* a **direct effect summary** (filesystem/network I/O, wall-clock and
  environment reads, entropy draws, module-state mutation, unsanctioned
  :mod:`repro.obs` recorder use),
* **raise sites** with the resolved exception name, and
* a compact **RNG micro-op** sequence (generator construction, copies,
  argument passing, sampling calls) that :mod:`repro.lint.flow` replays
  interprocedurally for the REPRO102 provenance analysis.

The graph also collects the project's *analysis roots* - the functions
whose results enter the content-addressed cache and therefore must be
certified pure:

* every runner registered through ``Experiment(...)`` calls in an
  ``experiments/registry.py`` module (extracted statically, so a newly
  registered experiment is certified automatically), and
* every dotted name declared in a module-level ``ANALYSIS_ROOTS`` tuple
  (the store/campaign/backend registries declare their cache-entering
  dispatch targets this way).

Everything in the graph is plain picklable data; :func:`load_or_build`
caches the built graph on disk keyed by a hash of all source bytes, so
repeated deep lint runs (locally or in CI) skip the parse entirely.

Like the per-file analyzer, the builder never imports the code it
checks - it is pure ``ast`` work.
"""

from __future__ import annotations

import ast
import hashlib
import pickle
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from repro.lint.analyzer import DEFAULT_EXCLUDED_DIRS, iter_python_files

__all__ = [
    "ArgBinding",
    "CallSite",
    "Effect",
    "FunctionInfo",
    "GRAPH_SCHEMA_VERSION",
    "ModuleInfo",
    "ProjectGraph",
    "RaiseSite",
    "RngOp",
    "build_graph",
    "graph_cache_key",
    "load_or_build",
]

#: Bump when the pickled layout or the extraction semantics change, so
#: stale on-disk caches are never deserialized into the new analyzer.
GRAPH_SCHEMA_VERSION = 1

# ---------------------------------------------------------------------------
# Effect classification tables (canonical dotted names, alias-resolved)
# ---------------------------------------------------------------------------
_TIME_READS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.process_time",
        "time.localtime",
        "time.gmtime",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)

_ENV_READS = frozenset(
    {
        "os.getenv",
        "os.environ.get",
        "os.environ.items",
        "os.environ.keys",
        "os.environ.copy",
        "os.getcwd",
        "os.uname",
        "os.getpid",
        "platform.node",
        "platform.platform",
        "socket.gethostname",
        "getpass.getuser",
    }
)

_ENTROPY_CALLS = frozenset(
    {
        "os.urandom",
        "uuid.uuid1",
        "uuid.uuid4",
        "secrets.token_bytes",
        "secrets.token_hex",
        "secrets.randbelow",
    }
)
_ENTROPY_PREFIXES = ("random.",)

_IO_CALLS = frozenset(
    {
        "open",
        "input",
        "print",
        "os.remove",
        "os.unlink",
        "os.mkdir",
        "os.makedirs",
        "os.rmdir",
        "os.rename",
        "os.replace",
        "os.symlink",
        "os.system",
        "os.popen",
    }
)
_IO_PREFIXES = (
    "subprocess.",
    "shutil.",
    "socket.",
    "urllib.",
    "requests.",
    "http.client.",
    "ftplib.",
    "tempfile.",
)
#: Method names (any receiver) that are unmistakably filesystem I/O.
#: Deliberately narrow - ``.open``/``.rename``/``.replace`` collide with
#: common container/string methods and stay out.
_IO_METHODS = frozenset(
    {
        "write_text",
        "write_bytes",
        "read_text",
        "read_bytes",
        "mkdir",
        "rmdir",
        "unlink",
        "touch",
        "symlink_to",
        "hardlink_to",
    }
)

#: Method calls on a *module-level* name that mutate it in place.
_MUTATING_METHODS = frozenset(
    {
        "append",
        "add",
        "update",
        "setdefault",
        "pop",
        "popitem",
        "clear",
        "extend",
        "insert",
        "remove",
        "discard",
        "sort",
        "reverse",
        "appendleft",
        "popleft",
    }
)

#: ``Generator`` methods treated as sampling sites for REPRO102.
SAMPLING_METHODS = frozenset(
    {
        "random",
        "uniform",
        "integers",
        "normal",
        "standard_normal",
        "choice",
        "shuffle",
        "permutation",
        "permuted",
        "exponential",
        "poisson",
        "binomial",
        "geometric",
        "gamma",
        "beta",
        "lognormal",
        "multinomial",
        "multivariate_normal",
        "bytes",
        "bit_generator",
        "spawn",
    }
)

_RNG_FACTORIES = frozenset(
    {"numpy.random.default_rng", "numpy.random.RandomState"}
)
_RNG_CLEAN_SOURCES = frozenset(
    {"repro.rng.resolve_rng", "numpy.random.SeedSequence"}
)


# ---------------------------------------------------------------------------
# Graph data model (all plain, picklable dataclasses)
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class Effect:
    """One direct impurity observed in a function body."""

    kind: str  # "io" | "time" | "env" | "entropy" | "global-write" | "obs-recorder"
    detail: str
    line: int
    col: int


@dataclass(frozen=True)
class ArgBinding:
    """One argument at a call site: positional index or keyword -> var name."""

    position: Optional[int]
    keyword: Optional[str]
    var: str


@dataclass(frozen=True)
class CallSite:
    """One call expression, resolved as far as static analysis allows."""

    callee: str  # project qname when resolved, else canonical dotted name
    line: int
    col: int
    resolved: bool  # True when ``callee`` names a function in this graph
    args: Tuple[ArgBinding, ...] = ()


@dataclass(frozen=True)
class RaiseSite:
    """A ``raise X(...)`` statement with the resolved exception name."""

    exception: str  # canonical dotted name of the raised class
    line: int
    col: int


@dataclass(frozen=True)
class RngOp:
    """One micro-op of the per-function RNG provenance summary.

    ``op`` is one of:

    ``make``
        ``var`` bound to a freshly built generator; ``tainted`` says
        whether the construction is provenance-free (bare
        ``default_rng()``) or sanctioned (seeded/``resolve_rng``).
    ``copy``
        ``var`` bound to another local (``src``).
    ``call``
        ``var`` (may be empty) bound to the result of calling ``callee``;
        the bindings say which locals flow into which parameters.
    ``sample``
        a sampling method (``detail``) invoked on local ``var``.
    ``return``
        local ``src`` returned from the function.
    """

    op: str
    var: str = ""
    src: str = ""
    callee: str = ""
    detail: str = ""
    tainted: bool = False
    args: Tuple[ArgBinding, ...] = ()
    line: int = 0
    col: int = 0


@dataclass
class FunctionInfo:
    """Static summary of one function or method."""

    qname: str
    module: str
    name: str
    path: str
    line: int
    params: Tuple[str, ...]
    calls: List[CallSite] = field(default_factory=list)
    effects: List[Effect] = field(default_factory=list)
    raises: List[RaiseSite] = field(default_factory=list)
    rng_ops: List[RngOp] = field(default_factory=list)
    is_public: bool = True


@dataclass
class ModuleInfo:
    """One parsed module of the project."""

    name: str
    path: str
    functions: List[str] = field(default_factory=list)
    declared_roots: List[str] = field(default_factory=list)
    registry_runners: List[str] = field(default_factory=list)
    class_bases: Dict[str, Tuple[str, ...]] = field(default_factory=dict)
    #: Local name -> canonical dotted target, for re-export resolution
    #: (``from repro.store import ResultStore`` resolves through the
    #: package ``__init__``'s own imports to the defining module).
    import_aliases: Dict[str, str] = field(default_factory=dict)


@dataclass
class ProjectGraph:
    """The whole-program analysis artefact."""

    modules: Dict[str, ModuleInfo] = field(default_factory=dict)
    functions: Dict[str, FunctionInfo] = field(default_factory=dict)
    schema_version: int = GRAPH_SCHEMA_VERSION

    @property
    def roots(self) -> Tuple[str, ...]:
        """Cache-entering analysis roots that resolve to known functions."""
        return tuple(
            sorted(name for name in self.declared_roots() if name in self.functions)
        )

    def declared_roots(self) -> Tuple[str, ...]:
        """Every declared/registered root, resolvable or not."""
        names: Set[str] = set()
        for module in self.modules.values():
            names.update(module.declared_roots)
            names.update(module.registry_runners)
        return tuple(sorted(names))

    def unresolved_roots(self) -> Tuple[str, ...]:
        """Declared roots with no matching function (config drift guard)."""
        return tuple(
            sorted(
                name
                for name in self.declared_roots()
                if name not in self.functions
            )
        )

    def callees(self, qname: str) -> List[CallSite]:
        info = self.functions.get(qname)
        return list(info.calls) if info is not None else []

    def exception_classes(self) -> FrozenSet[str]:
        """Project classes transitively derived from ``ReproError``."""
        bases: Dict[str, Tuple[str, ...]] = {}
        for module in self.modules.values():
            for cls, cls_bases in module.class_bases.items():
                bases[f"{module.name}.{cls}"] = cls_bases
        approved: Set[str] = {
            name for name in bases if name.endswith(".ReproError")
        }
        changed = True
        while changed:
            changed = False
            for name, cls_bases in bases.items():
                if name in approved:
                    continue
                if any(base in approved for base in cls_bases):
                    approved.add(name)
                    changed = True
        return frozenset(approved)


# ---------------------------------------------------------------------------
# Module-name mapping
# ---------------------------------------------------------------------------
def _module_name(path: Path) -> str:
    """Dotted module name, walking up while ``__init__.py`` exists."""
    path = path.resolve()
    parts = [path.stem] if path.stem != "__init__" else []
    parent = path.parent
    while (parent / "__init__.py").exists():
        parts.insert(0, parent.name)
        parent = parent.parent
    if not parts:  # a bare __init__.py outside any package
        parts = [path.parent.name]
    return ".".join(parts)


def _import_aliases(tree: ast.Module) -> Dict[str, str]:
    aliases: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for name in node.names:
                local = name.asname or name.name.split(".")[0]
                target = name.name if name.asname else name.name.split(".")[0]
                aliases[local] = target
        elif isinstance(node, ast.ImportFrom):
            if node.module is None or node.level:
                continue
            for name in node.names:
                local = name.asname or name.name
                aliases[local] = f"{node.module}.{name.name}"
    return aliases


def _dotted(node: ast.expr, aliases: Dict[str, str]) -> Optional[str]:
    """Canonical dotted name of a Name/Attribute chain, alias-resolved."""
    parts: List[str] = []
    current = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if not isinstance(current, ast.Name):
        return None
    parts.append(current.id)
    parts.reverse()
    head = aliases.get(parts[0], parts[0])
    return ".".join([head, *parts[1:]])


# ---------------------------------------------------------------------------
# Per-function extraction
# ---------------------------------------------------------------------------
def _is_none(node: Optional[ast.expr]) -> bool:
    return isinstance(node, ast.Constant) and node.value is None


def _unseeded_factory(call: ast.Call) -> bool:
    if not call.args and not call.keywords:
        return True
    if call.args and _is_none(call.args[0]):
        return True
    return any(
        keyword.arg == "seed" and _is_none(keyword.value)
        for keyword in call.keywords
    )


def _arg_bindings(call: ast.Call) -> Tuple[ArgBinding, ...]:
    bindings: List[ArgBinding] = []
    for position, arg in enumerate(call.args):
        if isinstance(arg, ast.Name):
            bindings.append(ArgBinding(position, None, arg.id))
    for keyword in call.keywords:
        if keyword.arg is not None and isinstance(keyword.value, ast.Name):
            bindings.append(ArgBinding(None, keyword.arg, keyword.value.id))
    return tuple(bindings)


class _FunctionExtractor:
    """Builds one :class:`FunctionInfo` from a function AST node."""

    def __init__(
        self,
        module: str,
        path: str,
        aliases: Dict[str, str],
        module_globals: FrozenSet[str],
        local_functions: FrozenSet[str],
        class_name: Optional[str],
        class_methods: FrozenSet[str],
    ) -> None:
        self.module = module
        self.path = path
        self.aliases = aliases
        self.module_globals = module_globals
        self.local_functions = local_functions
        self.class_name = class_name
        self.class_methods = class_methods

    def extract(self, node: ast.AST) -> FunctionInfo:
        assert isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        arguments = node.args
        params = tuple(
            arg.arg
            for arg in (
                *arguments.posonlyargs,
                *arguments.args,
                *arguments.kwonlyargs,
            )
        )
        if self.class_name is not None:
            qname = f"{self.module}.{self.class_name}.{node.name}"
        else:
            qname = f"{self.module}.{node.name}"
        info = FunctionInfo(
            qname=qname,
            module=self.module,
            name=node.name,
            path=self.path,
            line=node.lineno,
            params=params,
            is_public=not node.name.startswith("_"),
        )
        shadowed = self._locally_bound_names(node)
        for inner in ast.walk(node):
            if isinstance(inner, ast.Call):
                self._record_call(info, inner)
            elif isinstance(inner, ast.Global):
                info.effects.append(
                    Effect(
                        "global-write",
                        f"global {', '.join(inner.names)}",
                        inner.lineno,
                        inner.col_offset,
                    )
                )
            elif isinstance(inner, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                self._record_assignment(info, inner, shadowed)
            elif isinstance(inner, ast.Subscript) and isinstance(
                inner.ctx, ast.Load
            ):
                canonical = _dotted(inner.value, self.aliases)
                if canonical == "os.environ":
                    info.effects.append(
                        Effect(
                            "env",
                            "os.environ[...] read",
                            inner.lineno,
                            inner.col_offset,
                        )
                    )
            elif isinstance(inner, ast.Raise):
                self._record_raise(info, inner)
            elif isinstance(inner, ast.Return):
                self._record_return(info, inner)
        return info

    # -- helpers --------------------------------------------------------
    @staticmethod
    def _locally_bound_names(
        node: ast.AST,
    ) -> FrozenSet[str]:
        """Names assigned (as plain locals) or taken as params in the body."""
        assert isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        bound: Set[str] = set(
            arg.arg
            for arg in (
                *node.args.posonlyargs,
                *node.args.args,
                *node.args.kwonlyargs,
            )
        )
        if node.args.vararg is not None:
            bound.add(node.args.vararg.arg)
        if node.args.kwarg is not None:
            bound.add(node.args.kwarg.arg)
        for inner in ast.walk(node):
            if isinstance(inner, ast.Assign):
                for target in inner.targets:
                    if isinstance(target, ast.Name):
                        bound.add(target.id)
            elif isinstance(inner, (ast.AnnAssign, ast.AugAssign)):
                if isinstance(inner.target, ast.Name):
                    bound.add(inner.target.id)
            elif isinstance(inner, (ast.For, ast.AsyncFor)):
                for name_node in ast.walk(inner.target):
                    if isinstance(name_node, ast.Name):
                        bound.add(name_node.id)
            elif isinstance(inner, ast.comprehension):
                for name_node in ast.walk(inner.target):
                    if isinstance(name_node, ast.Name):
                        bound.add(name_node.id)
            elif isinstance(inner, (ast.With, ast.AsyncWith)):
                for item in inner.items:
                    if item.optional_vars is not None:
                        for name_node in ast.walk(item.optional_vars):
                            if isinstance(name_node, ast.Name):
                                bound.add(name_node.id)
        return frozenset(bound)

    def _resolve_callee(self, call: ast.Call) -> Tuple[str, bool]:
        """``(name, resolved)`` for a call expression."""
        func = call.func
        if (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id == "self"
            and self.class_name is not None
            and func.attr in self.class_methods
        ):
            return f"{self.module}.{self.class_name}.{func.attr}", True
        canonical = _dotted(func, self.aliases)
        if canonical is None:
            return "", False
        head = canonical.split(".")[0]
        if canonical in self.local_functions:
            return canonical, True
        if head not in self.aliases and f"{self.module}.{canonical}" in (
            self.local_functions
        ):
            return f"{self.module}.{canonical}", True
        return canonical, False

    def _record_call(self, info: FunctionInfo, call: ast.Call) -> None:
        name, resolved = self._resolve_callee(call)
        if name:
            info.calls.append(
                CallSite(
                    name,
                    call.lineno,
                    call.col_offset,
                    resolved,
                    _arg_bindings(call),
                )
            )
        self._classify_effect_call(info, call, name if not resolved else "")
        self._record_rng_call(info, call, name, resolved)

    def _classify_effect_call(
        self, info: FunctionInfo, call: ast.Call, canonical: str
    ) -> None:
        def effect(kind: str, detail: str) -> None:
            info.effects.append(
                Effect(kind, detail, call.lineno, call.col_offset)
            )

        if canonical:
            if canonical in _TIME_READS:
                effect("time", f"{canonical}()")
            elif canonical in _ENV_READS:
                effect("env", f"{canonical}()")
            elif canonical in _ENTROPY_CALLS or canonical.startswith(
                _ENTROPY_PREFIXES
            ):
                effect("entropy", f"{canonical}()")
            elif canonical in _IO_CALLS or canonical.startswith(_IO_PREFIXES):
                effect("io", f"{canonical}()")
        func = call.func
        if isinstance(func, ast.Attribute):
            if func.attr in _IO_METHODS:
                effect("io", f".{func.attr}()")
            elif func.attr in _MUTATING_METHODS and isinstance(
                func.value, ast.Name
            ):
                root = func.value.id
                if (
                    root in self.module_globals
                    and root not in self._current_shadow
                ):
                    effect(
                        "global-write",
                        f"{root}.{func.attr}() mutates module-level state",
                    )

    _current_shadow: FrozenSet[str] = frozenset()

    def _record_assignment(
        self,
        info: FunctionInfo,
        node: ast.AST,
        shadowed: FrozenSet[str],
    ) -> None:
        self._current_shadow = shadowed
        targets: List[ast.expr]
        value: Optional[ast.expr]
        if isinstance(node, ast.Assign):
            targets, value = node.targets, node.value
        elif isinstance(node, ast.AugAssign):
            targets, value = [node.target], node.value
        else:
            assert isinstance(node, ast.AnnAssign)
            targets, value = [node.target], node.value
        for target in targets:
            # Writing through an imported module's attribute, a module
            # global's subscript, or os.environ is module-state mutation.
            if isinstance(target, ast.Attribute):
                canonical = _dotted(target, self.aliases)
                root = target
                while isinstance(root, ast.Attribute):
                    root = root.value
                if (
                    canonical is not None
                    and isinstance(root, ast.Name)
                    and root.id in self.aliases
                    and root.id not in shadowed
                ):
                    info.effects.append(
                        Effect(
                            "global-write",
                            f"assignment to {canonical}",
                            node.lineno,
                            node.col_offset,
                        )
                    )
            elif isinstance(target, ast.Subscript):
                canonical = _dotted(target.value, self.aliases)
                if canonical == "os.environ":
                    info.effects.append(
                        Effect(
                            "env",
                            "os.environ[...] write",
                            node.lineno,
                            node.col_offset,
                        )
                    )
                elif isinstance(target.value, ast.Name):
                    root_name = target.value.id
                    if (
                        root_name in self.module_globals
                        and root_name not in shadowed
                    ):
                        info.effects.append(
                            Effect(
                                "global-write",
                                f"{root_name}[...] write to module-level "
                                "state",
                                node.lineno,
                                node.col_offset,
                            )
                        )
        if value is not None:
            for target in targets:
                if isinstance(target, ast.Name):
                    self._record_rng_binding(info, target.id, value)

    # -- RNG micro-ops --------------------------------------------------
    def _rng_sources(self, value: ast.expr) -> List[Tuple[str, object]]:
        """Abstract sources of an expression: list of (kind, payload).

        Kinds: ``taint``/``clean`` (payload: detail str), ``var``
        (payload: name), ``call`` (payload: the ast.Call).
        """
        if isinstance(value, ast.Name):
            return [("var", value.id)]
        if isinstance(value, ast.IfExp):
            return self._rng_sources(value.body) + self._rng_sources(
                value.orelse
            )
        if isinstance(value, ast.BoolOp):
            sources: List[Tuple[str, object]] = []
            for operand in value.values:
                sources.extend(self._rng_sources(operand))
            return sources
        if isinstance(value, ast.Call):
            canonical = _dotted(value.func, self.aliases)
            if canonical in _RNG_FACTORIES:
                if _unseeded_factory(value):
                    return [("taint", f"{canonical}() without a seed")]
                seed_vars = [
                    arg.id for arg in value.args if isinstance(arg, ast.Name)
                ] + [
                    kw.value.id
                    for kw in value.keywords
                    if isinstance(kw.value, ast.Name)
                ]
                if seed_vars:
                    # Seeded from a local: inherits that local's taint.
                    return [("var", name) for name in seed_vars] + [
                        ("clean", f"{canonical}(seed)")
                    ]
                return [("clean", f"{canonical}(seed)")]
            if canonical in _RNG_CLEAN_SOURCES:
                return [("clean", f"{canonical}(...)")]
            if (
                isinstance(value.func, ast.Attribute)
                and value.func.attr == "spawn"
                and isinstance(value.func.value, ast.Name)
            ):
                # spawned streams inherit the parent's provenance
                return [("var", value.func.value.id)]
            return [("call", value)]
        if isinstance(value, (ast.Tuple, ast.List)):
            sources = []
            for element in value.elts:
                sources.extend(self._rng_sources(element))
            return sources
        if isinstance(value, ast.Subscript):
            return self._rng_sources(value.value)
        if isinstance(value, ast.Starred):
            return self._rng_sources(value.value)
        return []

    def _emit_sources(
        self, info: FunctionInfo, var: str, value: ast.expr
    ) -> None:
        for kind, payload in self._rng_sources(value):
            line = getattr(value, "lineno", 0)
            col = getattr(value, "col_offset", 0)
            if kind in ("taint", "clean"):
                op = RngOp(
                    "make",
                    var=var,
                    detail=str(payload),
                    tainted=(kind == "taint"),
                    line=line,
                    col=col,
                )
            elif kind == "var":
                op = RngOp("copy", var=var, src=str(payload), line=line, col=col)
            else:
                call = payload
                assert isinstance(call, ast.Call)
                name, _resolved = self._resolve_callee(call)
                if not name:
                    continue
                # Unresolved canonical names are kept: the whole-graph
                # link pass rewrites them to project qnames when the
                # callee lives in another module.
                op = RngOp(
                    "call",
                    var=var,
                    callee=name,
                    args=_arg_bindings(call),
                    line=call.lineno,
                    col=call.col_offset,
                )
            info.rng_ops.append(op)

    def _record_rng_binding(
        self, info: FunctionInfo, var: str, value: ast.expr
    ) -> None:
        self._emit_sources(info, var, value)

    def _record_rng_call(
        self,
        info: FunctionInfo,
        call: ast.Call,
        name: str,
        resolved: bool,
    ) -> None:
        func = call.func
        if (
            isinstance(func, ast.Attribute)
            and func.attr in SAMPLING_METHODS
            and isinstance(func.value, ast.Name)
        ):
            info.rng_ops.append(
                RngOp(
                    "sample",
                    var=func.value.id,
                    detail=func.attr,
                    line=call.lineno,
                    col=call.col_offset,
                )
            )
        if name:
            info.rng_ops.append(
                RngOp(
                    "call",
                    var="",
                    callee=name,
                    args=_arg_bindings(call),
                    line=call.lineno,
                    col=call.col_offset,
                )
            )

    def _record_raise(self, info: FunctionInfo, node: ast.Raise) -> None:
        exc = node.exc
        if exc is None:
            return
        if isinstance(exc, ast.Call):
            exc = exc.func
        canonical = _dotted(exc, self.aliases)
        if canonical is None:
            return
        info.raises.append(
            RaiseSite(canonical, node.lineno, node.col_offset)
        )

    def _record_return(self, info: FunctionInfo, node: ast.Return) -> None:
        if node.value is None:
            return
        if isinstance(node.value, ast.Name):
            info.rng_ops.append(
                RngOp(
                    "return",
                    src=node.value.id,
                    line=node.lineno,
                    col=node.col_offset,
                )
            )
            return
        # Returned expressions flow through a synthetic local so the
        # interprocedural pass sees e.g. ``return default_rng()``.
        synthetic = "<return-value>"
        self._emit_sources(info, synthetic, node.value)
        info.rng_ops.append(
            RngOp(
                "return",
                src=synthetic,
                line=node.lineno,
                col=node.col_offset,
            )
        )


# ---------------------------------------------------------------------------
# Registry/root extraction
# ---------------------------------------------------------------------------
def _registry_runners(
    tree: ast.Module, aliases: Dict[str, str], module: str
) -> List[str]:
    """Runner qnames from ``Experiment(...)`` constructions.

    ``Experiment("table2", ..., table2.run)`` (positional or ``runner=``
    keyword) yields ``repro.experiments.table2.run`` after alias
    resolution; a bare name yields ``<module>.<name>``.
    """
    runners: List[str] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        func_name = (
            func.id
            if isinstance(func, ast.Name)
            else func.attr
            if isinstance(func, ast.Attribute)
            else ""
        )
        if func_name != "Experiment":
            continue
        runner: Optional[ast.expr] = None
        if len(node.args) >= 4:
            runner = node.args[3]
        for keyword in node.keywords:
            if keyword.arg == "runner":
                runner = keyword.value
        if runner is None:
            continue
        canonical = _dotted(runner, aliases)
        if canonical is None:
            continue
        if "." in canonical:
            runners.append(canonical)
        else:
            runners.append(f"{module}.{canonical}")
    return runners


def _declared_roots(tree: ast.Module) -> List[str]:
    """String literals of a top-level ``ANALYSIS_ROOTS`` tuple/list."""
    roots: List[str] = []
    for node in ast.iter_child_nodes(tree):
        targets: List[ast.expr] = []
        value: Optional[ast.expr] = None
        if isinstance(node, ast.Assign):
            targets, value = node.targets, node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets, value = [node.target], node.value
        if value is None:
            continue
        named = any(
            isinstance(target, ast.Name) and target.id == "ANALYSIS_ROOTS"
            for target in targets
        )
        if not named or not isinstance(value, (ast.Tuple, ast.List)):
            continue
        for element in value.elts:
            if isinstance(element, ast.Constant) and isinstance(
                element.value, str
            ):
                roots.append(element.value)
    return roots


# ---------------------------------------------------------------------------
# Graph construction
# ---------------------------------------------------------------------------
def _collect_module(
    graph: ProjectGraph, path: Path, source: str
) -> None:
    try:
        tree = ast.parse(source)
    except SyntaxError:
        return  # the per-file pass reports REPRO900 for this
    module = _module_name(path)
    aliases = _import_aliases(tree)
    module_globals: Set[str] = set()
    for node in ast.iter_child_nodes(tree):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    module_globals.add(target.id)
        elif isinstance(node, ast.AnnAssign) and isinstance(
            node.target, ast.Name
        ):
            module_globals.add(node.target.id)

    info = ModuleInfo(name=module, path=str(path))
    info.import_aliases = dict(aliases)
    info.declared_roots = _declared_roots(tree)
    if path.name == "registry.py":
        info.registry_runners = _registry_runners(tree, aliases, module)

    # First pass: enumerate functions/classes so calls can resolve to them.
    local_functions: Set[str] = set()
    class_methods: Dict[str, Set[str]] = {}
    for node in ast.iter_child_nodes(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            local_functions.add(f"{module}.{node.name}")
        elif isinstance(node, ast.ClassDef):
            methods = {
                item.name
                for item in node.body
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
            }
            class_methods[node.name] = methods
            for method in methods:
                local_functions.add(f"{module}.{node.name}.{method}")
            bases = []
            for base in node.bases:
                canonical = _dotted(base, aliases)
                if canonical is not None:
                    if canonical in local_functions or "." not in canonical:
                        canonical = f"{module}.{canonical}"
                    bases.append(canonical)
            info.class_bases[node.name] = tuple(bases)

    frozen_globals = frozenset(module_globals)
    frozen_locals = frozenset(local_functions)
    for node in ast.iter_child_nodes(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            extractor = _FunctionExtractor(
                module,
                str(path),
                aliases,
                frozen_globals,
                frozen_locals,
                None,
                frozenset(),
            )
            function = extractor.extract(node)
            graph.functions[function.qname] = function
            info.functions.append(function.qname)
        elif isinstance(node, ast.ClassDef):
            for item in node.body:
                if not isinstance(
                    item, (ast.FunctionDef, ast.AsyncFunctionDef)
                ):
                    continue
                extractor = _FunctionExtractor(
                    module,
                    str(path),
                    aliases,
                    frozen_globals,
                    frozen_locals,
                    node.name,
                    frozenset(class_methods.get(node.name, set())),
                )
                function = extractor.extract(item)
                graph.functions[function.qname] = function
                info.functions.append(function.qname)
    graph.modules[module] = info


def _resolve_project_name(
    graph: ProjectGraph, name: str, *, _depth: int = 0
) -> Optional[str]:
    """Project function qname for a canonical dotted name, if any.

    Handles direct matches, class construction (``pkg.mod.Cls`` ->
    ``pkg.mod.Cls.__init__``) and package re-exports by following the
    import aliases of the longest module prefix (``repro.store.
    ResultStore`` -> the ``repro.store`` package's ``from repro.store.
    store import ResultStore`` -> ``repro.store.store.ResultStore``).
    """
    if _depth > 8:  # re-export cycles cannot recurse forever
        return None
    if name in graph.functions:
        return name
    if f"{name}.__init__" in graph.functions:
        return f"{name}.__init__"
    parts = name.split(".")
    for split in range(len(parts) - 1, 0, -1):
        prefix = ".".join(parts[:split])
        if prefix not in graph.modules:
            continue
        rest = parts[split:]
        alias = graph.modules[prefix].import_aliases.get(rest[0])
        if alias is None:
            return None
        return _resolve_project_name(
            graph, ".".join([alias, *rest[1:]]), _depth=_depth + 1
        )
    return None


def _function_reference(
    graph: ProjectGraph, info: FunctionInfo, var: str
) -> Optional[str]:
    """Project function a bare name argument refers to, if any."""
    if var in info.params:
        return None  # a parameter, not a module-level function reference
    candidate = f"{info.module}.{var}"
    if candidate in graph.functions:
        return candidate
    module = graph.modules.get(info.module)
    if module is not None:
        alias = module.import_aliases.get(var)
        if alias is not None:
            return _resolve_project_name(graph, alias)
    return None


def _link_graph(graph: ProjectGraph) -> None:
    """Second pass: resolve cross-module call edges and RNG callees."""
    for info in graph.functions.values():
        linked_calls: List[CallSite] = []
        for call in info.calls:
            if not call.resolved:
                target = _resolve_project_name(graph, call.callee)
                if target is not None:
                    call = CallSite(
                        target, call.line, call.col, True, call.args
                    )
            linked_calls.append(call)
            # A project function passed *by reference* (the worker given
            # to ``parallel_map``, an ``on_result`` hook, ...) will be
            # called by the receiver: add the higher-order edge so
            # purity certification follows it.
            for binding in call.args:
                target = _function_reference(graph, info, binding.var)
                if target is not None and target != call.callee:
                    linked_calls.append(
                        CallSite(target, call.line, call.col, True, ())
                    )
        info.calls = linked_calls
        linked_ops: List[RngOp] = []
        for op in info.rng_ops:
            if op.op == "call" and op.callee not in graph.functions:
                target = _resolve_project_name(graph, op.callee)
                if target is not None:
                    op = RngOp(
                        "call",
                        var=op.var,
                        callee=target,
                        args=op.args,
                        line=op.line,
                        col=op.col,
                    )
            linked_ops.append(op)
        info.rng_ops = linked_ops


def build_graph(
    roots: Sequence[Path],
    *,
    excluded_dirs: FrozenSet[str] = DEFAULT_EXCLUDED_DIRS,
) -> ProjectGraph:
    """Parse every file under ``roots`` into one :class:`ProjectGraph`."""
    graph = ProjectGraph()
    for path in iter_python_files(roots, excluded_dirs=excluded_dirs):
        _collect_module(graph, Path(path), path.read_text(encoding="utf-8"))
    _link_graph(graph)
    return graph


# ---------------------------------------------------------------------------
# On-disk cache (keyed on source bytes + schema version)
# ---------------------------------------------------------------------------
def graph_cache_key(
    roots: Sequence[Path],
    *,
    excluded_dirs: FrozenSet[str] = DEFAULT_EXCLUDED_DIRS,
) -> str:
    """Stable key over every source file's path and content hash."""
    digest = hashlib.sha256()
    digest.update(f"schema={GRAPH_SCHEMA_VERSION}".encode())
    for path in iter_python_files(roots, excluded_dirs=excluded_dirs):
        digest.update(str(path).encode())
        digest.update(hashlib.sha256(path.read_bytes()).digest())
    return digest.hexdigest()[:32]


def load_or_build(
    roots: Sequence[Path],
    *,
    cache_dir: Optional[Path] = None,
    excluded_dirs: FrozenSet[str] = DEFAULT_EXCLUDED_DIRS,
) -> ProjectGraph:
    """Return the project graph, via the pickle cache when possible.

    The cache key covers every source byte, so an edit anywhere under
    ``roots`` rebuilds; a corrupt or schema-mismatched pickle silently
    rebuilds as well (the cache is an accelerator, never a correctness
    dependency).
    """
    if cache_dir is None:
        return build_graph(roots, excluded_dirs=excluded_dirs)
    cache_dir = Path(cache_dir)
    key = graph_cache_key(roots, excluded_dirs=excluded_dirs)
    cache_file = cache_dir / f"graph-{key}.pkl"
    if cache_file.exists():
        try:
            with cache_file.open("rb") as handle:
                cached = pickle.load(handle)
            if (
                isinstance(cached, ProjectGraph)
                and cached.schema_version == GRAPH_SCHEMA_VERSION
            ):
                return cached
        except (OSError, pickle.UnpicklingError, EOFError, AttributeError):
            pass
    graph = build_graph(roots, excluded_dirs=excluded_dirs)
    try:
        cache_dir.mkdir(parents=True, exist_ok=True)
        scratch = cache_dir / f".graph-{key}.tmp"
        with scratch.open("wb") as handle:
            pickle.dump(graph, handle)
        scratch.replace(cache_file)
        _prune_cache(cache_dir, keep=5)
    except OSError:  # pragma: no cover - read-only cache dir
        pass
    return graph


def _prune_cache(cache_dir: Path, *, keep: int) -> None:
    entries = sorted(
        cache_dir.glob("graph-*.pkl"),
        key=lambda p: p.stat().st_mtime,
        reverse=True,
    )
    for stale in entries[keep:]:
        try:
            stale.unlink()
        except OSError:  # pragma: no cover - concurrent prune
            pass


def iter_sources(
    roots: Iterable[Path],
    *,
    excluded_dirs: FrozenSet[str] = DEFAULT_EXCLUDED_DIRS,
) -> Iterable[Tuple[Path, str]]:
    """Yield ``(path, source)`` pairs under ``roots`` (helper for rules)."""
    for path in iter_python_files(roots, excluded_dirs=excluded_dirs):
        yield path, path.read_text(encoding="utf-8")
