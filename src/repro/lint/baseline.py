"""Baseline ratchet for the lint pipeline.

A baseline file (``.repro-lint-baseline.json``) records fingerprints of
*accepted legacy* violations.  A lint run compared against it fails only
on violations whose fingerprint is **not** in the baseline, so new debt
is blocked while tracked legacy findings don't break the build; the
ratchet only ever tightens because ``--update-baseline`` prunes
fingerprints that no longer occur (it never silently adds new ones
unless you ask it to).

Fingerprints are deliberately **line-independent**:
``sha256(rule|normalized-path|message)`` plus an occurrence counter for
identical (rule, path, message) triples.  Whole-program rule messages
contain call chains but no line numbers, so moving code within a file
does not churn the baseline.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Sequence, Tuple

from repro.errors import LintError
from repro.lint.analyzer import Violation

__all__ = [
    "BASELINE_FILENAME",
    "BaselineComparison",
    "compare_to_baseline",
    "fingerprint_violations",
    "load_baseline",
    "save_baseline",
]

BASELINE_FILENAME = ".repro-lint-baseline.json"
_BASELINE_VERSION = 1


def _normalize_path(path: str) -> str:
    """Forward-slash, relative-to-cwd-if-possible form of ``path``."""
    candidate = Path(path)
    try:
        candidate = candidate.resolve().relative_to(Path.cwd().resolve())
    except (ValueError, OSError):
        pass
    return candidate.as_posix()


def fingerprint_violations(
    violations: Sequence[Violation],
) -> List[str]:
    """One stable fingerprint per violation, order-aligned with input.

    Identical (rule, path, message) triples get ``#0``, ``#1``, ...
    occurrence suffixes **in line order**, so two legacy duplicates stay
    two fingerprints and adding a third is a new (unbaselined) one.
    """
    ordered = sorted(
        range(len(violations)),
        key=lambda i: (
            violations[i].path,
            violations[i].line,
            violations[i].col,
            violations[i].rule,
            violations[i].message,
        ),
    )
    counters: Dict[Tuple[str, str, str], int] = {}
    fingerprints: List[str] = [""] * len(violations)
    for index in ordered:
        violation = violations[index]
        key = (
            violation.rule,
            _normalize_path(violation.path),
            violation.message,
        )
        occurrence = counters.get(key, 0)
        counters[key] = occurrence + 1
        payload = "|".join([*key, f"#{occurrence}"])
        fingerprints[index] = hashlib.sha256(
            payload.encode("utf-8")
        ).hexdigest()[:24]
    return fingerprints


@dataclass(frozen=True)
class BaselineComparison:
    """Outcome of checking a run against a baseline."""

    new: Tuple[Violation, ...]  # not in baseline: these fail the build
    legacy: Tuple[Violation, ...]  # tracked by the baseline: reported, pass
    stale: Tuple[str, ...]  # baselined fingerprints that no longer occur


def load_baseline(path: Path) -> List[str]:
    """Fingerprints recorded in ``path`` (empty list when absent)."""
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except FileNotFoundError:
        return []
    except (OSError, json.JSONDecodeError) as exc:
        raise LintError(f"unreadable lint baseline {path}: {exc}") from exc
    if (
        not isinstance(payload, dict)
        or not isinstance(payload.get("fingerprints"), list)
        or not all(isinstance(fp, str) for fp in payload["fingerprints"])
    ):
        raise LintError(
            f"malformed lint baseline {path}: expected "
            '{"version": ..., "fingerprints": [...]}'
        )
    return list(payload["fingerprints"])


def save_baseline(path: Path, violations: Sequence[Violation]) -> int:
    """Write the baseline for ``violations``; returns fingerprint count.

    Alongside each fingerprint a human-readable ``entries`` section
    records rule/path/message so baseline diffs review meaningfully; the
    ratchet itself only reads ``fingerprints``.
    """
    fingerprints = fingerprint_violations(violations)
    order = sorted(range(len(violations)), key=lambda i: fingerprints[i])
    payload = {
        "version": _BASELINE_VERSION,
        "fingerprints": [fingerprints[i] for i in order],
        "entries": [
            {
                "fingerprint": fingerprints[i],
                "rule": violations[i].rule,
                "path": _normalize_path(violations[i].path),
                "message": violations[i].message,
            }
            for i in order
        ],
    }
    path.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    return len(fingerprints)


def compare_to_baseline(
    violations: Sequence[Violation], baseline: Sequence[str]
) -> BaselineComparison:
    """Split ``violations`` into new vs. baseline-tracked legacy.

    Each baselined fingerprint absorbs at most one occurrence (the
    occurrence counter in the fingerprint already differentiates true
    duplicates), and fingerprints with no matching violation are
    reported stale so ``--update-baseline`` can prune them.
    """
    remaining: Dict[str, int] = {}
    for fingerprint in baseline:
        remaining[fingerprint] = remaining.get(fingerprint, 0) + 1
    new: List[Violation] = []
    legacy: List[Violation] = []
    for violation, fingerprint in zip(
        violations, fingerprint_violations(violations)
    ):
        if remaining.get(fingerprint, 0) > 0:
            remaining[fingerprint] -= 1
            legacy.append(violation)
        else:
            new.append(violation)
    stale = tuple(
        sorted(
            fingerprint
            for fingerprint, count in remaining.items()
            for _ in range(count)
            if count > 0
        )
    )
    return BaselineComparison(tuple(new), tuple(legacy), stale)
