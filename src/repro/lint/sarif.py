"""SARIF 2.1.0 output for the lint pipeline.

:func:`build_sarif` converts a violation list into a Static Analysis
Results Interchange Format log (the schema GitHub code scanning
ingests); :func:`validate_sarif` is a dependency-free structural
validator covering the subset of the 2.1.0 schema the builder emits, so
the SARIF tests run in CI without ``jsonschema`` or network access to
the published schema.

Every result carries a ``partialFingerprints`` entry with the same
stable fingerprint the baseline ratchet uses (rule + normalized path +
message, line-independent), so code-scanning alert identity survives
unrelated edits shifting line numbers.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from repro.lint.analyzer import Violation
from repro.lint.baseline import fingerprint_violations

__all__ = ["SARIF_SCHEMA_URI", "SARIF_VERSION", "build_sarif", "validate_sarif"]

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA_URI = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

_TOOL_NAME = "repro-lint"
_TOOL_URI = "https://example.invalid/repro/docs/static_analysis.md"


def _rule_descriptors(
    violations: Sequence[Violation],
    rule_summaries: Optional[Dict[str, str]] = None,
) -> List[dict]:
    summaries = rule_summaries or {}
    codes = sorted({violation.rule for violation in violations})
    descriptors = []
    for code in codes:
        descriptor = {
            "id": code,
            "name": code,
            "shortDescription": {
                "text": summaries.get(code, f"repro lint rule {code}")
            },
            "helpUri": _TOOL_URI,
        }
        descriptors.append(descriptor)
    return descriptors


def build_sarif(
    violations: Sequence[Violation],
    *,
    rule_summaries: Optional[Dict[str, str]] = None,
    base_dir: Optional[Path] = None,
) -> dict:
    """A SARIF 2.1.0 log object for ``violations``.

    ``base_dir`` relativizes result paths (GitHub code scanning wants
    repository-relative URIs); paths outside it are kept as-is.
    """
    descriptors = _rule_descriptors(violations, rule_summaries)
    rule_index = {d["id"]: i for i, d in enumerate(descriptors)}
    fingerprints = fingerprint_violations(violations)
    results = []
    for violation, fingerprint in zip(violations, fingerprints):
        uri = violation.path
        if base_dir is not None:
            try:
                uri = str(Path(violation.path).resolve().relative_to(
                    Path(base_dir).resolve()
                ))
            except ValueError:
                pass
        uri = uri.replace("\\", "/")
        results.append(
            {
                "ruleId": violation.rule,
                "ruleIndex": rule_index[violation.rule],
                "level": "error",
                "message": {"text": violation.message},
                "locations": [
                    {
                        "physicalLocation": {
                            "artifactLocation": {
                                "uri": uri,
                                "uriBaseId": "SRCROOT",
                            },
                            "region": {
                                "startLine": max(violation.line, 1),
                                "startColumn": max(violation.col, 1),
                            },
                        }
                    }
                ],
                "partialFingerprints": {
                    "reproLintFingerprint/v1": fingerprint
                },
            }
        )
    return {
        "$schema": SARIF_SCHEMA_URI,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": _TOOL_NAME,
                        "informationUri": _TOOL_URI,
                        "rules": descriptors,
                    }
                },
                "originalUriBaseIds": {"SRCROOT": {"uri": "file:///"}},
                "results": results,
                "columnKind": "unicodeCodePoints",
            }
        ],
    }


def render_sarif(
    violations: Sequence[Violation],
    *,
    rule_summaries: Optional[Dict[str, str]] = None,
    base_dir: Optional[Path] = None,
) -> str:
    """JSON text of the SARIF log (stable key order, trailing newline)."""
    log = build_sarif(
        violations, rule_summaries=rule_summaries, base_dir=base_dir
    )
    return json.dumps(log, indent=2, sort_keys=True) + "\n"


# ---------------------------------------------------------------------------
# Structural validation (dependency-free subset of the 2.1.0 schema)
# ---------------------------------------------------------------------------
def validate_sarif(log: object) -> List[str]:
    """Structural errors in ``log`` against the SARIF 2.1.0 shape.

    Returns an empty list when the document is valid.  This checks the
    subset of the published schema that :func:`build_sarif` can emit:
    required top-level members, run/tool/driver/rule shape, result
    shape, and location/region integer constraints.
    """
    errors: List[str] = []

    def expect(condition: bool, message: str) -> bool:
        if not condition:
            errors.append(message)
        return condition

    if not expect(isinstance(log, dict), "log must be a JSON object"):
        return errors
    assert isinstance(log, dict)
    expect(log.get("version") == SARIF_VERSION, "version must be '2.1.0'")
    runs = log.get("runs")
    if not expect(
        isinstance(runs, list) and len(runs) >= 1,
        "runs must be a non-empty array",
    ):
        return errors
    for run_index, run in enumerate(runs):
        where = f"runs[{run_index}]"
        if not expect(isinstance(run, dict), f"{where} must be an object"):
            continue
        driver = run.get("tool", {}).get("driver") if isinstance(
            run.get("tool"), dict
        ) else None
        if not expect(
            isinstance(driver, dict), f"{where}.tool.driver is required"
        ):
            continue
        expect(
            isinstance(driver.get("name"), str) and driver["name"],
            f"{where}.tool.driver.name must be a non-empty string",
        )
        rules = driver.get("rules", [])
        rule_ids: List[str] = []
        if expect(
            isinstance(rules, list), f"{where}.tool.driver.rules must be an array"
        ):
            for rule_index, rule in enumerate(rules):
                rwhere = f"{where}.tool.driver.rules[{rule_index}]"
                if not expect(
                    isinstance(rule, dict) and isinstance(rule.get("id"), str),
                    f"{rwhere}.id must be a string",
                ):
                    continue
                rule_ids.append(rule["id"])
        results = run.get("results", [])
        if not expect(
            isinstance(results, list), f"{where}.results must be an array"
        ):
            continue
        for result_index, result in enumerate(results):
            rwhere = f"{where}.results[{result_index}]"
            if not expect(
                isinstance(result, dict), f"{rwhere} must be an object"
            ):
                continue
            message = result.get("message")
            expect(
                isinstance(message, dict)
                and isinstance(message.get("text"), str),
                f"{rwhere}.message.text is required",
            )
            rule_id = result.get("ruleId")
            if isinstance(rule_id, str) and rule_ids:
                expect(
                    rule_id in rule_ids,
                    f"{rwhere}.ruleId {rule_id!r} not among driver rules",
                )
            rule_index_value = result.get("ruleIndex")
            if rule_index_value is not None:
                expect(
                    isinstance(rule_index_value, int)
                    and 0 <= rule_index_value < len(rule_ids),
                    f"{rwhere}.ruleIndex out of range",
                )
            level = result.get("level")
            if level is not None:
                expect(
                    level in ("none", "note", "warning", "error"),
                    f"{rwhere}.level must be a SARIF level",
                )
            locations = result.get("locations", [])
            if not expect(
                isinstance(locations, list),
                f"{rwhere}.locations must be an array",
            ):
                continue
            for loc_index, location in enumerate(locations):
                lwhere = f"{rwhere}.locations[{loc_index}]"
                physical = (
                    location.get("physicalLocation")
                    if isinstance(location, dict)
                    else None
                )
                if not expect(
                    isinstance(physical, dict),
                    f"{lwhere}.physicalLocation is required",
                ):
                    continue
                artifact = physical.get("artifactLocation")
                expect(
                    isinstance(artifact, dict)
                    and isinstance(artifact.get("uri"), str),
                    f"{lwhere}.physicalLocation.artifactLocation.uri "
                    "must be a string",
                )
                region = physical.get("region")
                if region is not None and expect(
                    isinstance(region, dict),
                    f"{lwhere}.physicalLocation.region must be an object",
                ):
                    for key in ("startLine", "startColumn"):
                        value = region.get(key)
                        if value is not None:
                            expect(
                                isinstance(value, int) and value >= 1,
                                f"{lwhere}.physicalLocation.region.{key} "
                                "must be an integer >= 1",
                            )
            fingerprints = result.get("partialFingerprints")
            if fingerprints is not None:
                expect(
                    isinstance(fingerprints, dict)
                    and all(
                        isinstance(value, str)
                        for value in fingerprints.values()
                    ),
                    f"{rwhere}.partialFingerprints must map to strings",
                )
    return errors
